package microlink

import (
	"errors"
	"fmt"
	"time"

	"microlink/internal/ingest"
	"microlink/internal/kb"
	"microlink/internal/reach"
	"microlink/internal/store"
)

// This file is the unified persistence API (DESIGN.md §8): one data
// directory per system, holding a committed snapshot (immutable segment
// files) plus a checksummed write-ahead log the ingest applier tees
// into. System.Snapshot commits a new generation; Open warm-restarts a
// whole System from the directory — regenerate the deterministic world,
// bulk-load the segments, replay the WAL — without rebuilding the
// 2-hop arena or re-running offline complementation.

// ErrNoStore reports a persistence call on a system with no data
// directory attached (bind one with Open or System.Snapshot).
var ErrNoStore = errors.New("microlink: no data directory attached (use Open or System.Snapshot)")

// ErrNoSnapshot re-exports the store's empty-directory error: Open on a
// directory without a committed MANIFEST.
var ErrNoSnapshot = store.ErrNoSnapshot

// ErrNotSnapshottable is returned by Snapshot for reach substrates with
// no serialised form (naive BFS, plain dynamic closure).
var ErrNotSnapshottable = fmt.Errorf("microlink: reach substrate is not snapshottable (use ReachClosure, ReachTwoHop or ReachStreaming)")

// SnapshotInfo summarises one committed snapshot.
type SnapshotInfo struct {
	Seq     uint64        // snapshot generation
	Dir     string        // data directory
	Elapsed time.Duration // capture + segment write + commit time
}

// RestartReport breaks a warm restart into its phases — the numbers the
// linkbench restart runner reports. Load and replay are separate on
// purpose: the acceptance story is cold-start dominated by segment load,
// with replay proportional to the WAL suffix, and no arena rebuild.
type RestartReport struct {
	Seq        uint64        // snapshot generation restored
	Generate   time.Duration // deterministic world regeneration
	Load       time.Duration // segment reads: graph, postings, tweets, arena
	Replay     time.Duration // WAL replay into the live stores
	WALFiles   int           // WAL files visited
	WALRecords int64         // records replayed
	WALBytes   int64         // record bytes replayed
	Tweets     int64         // replayed tweet records
	Follows    int64         // replayed follow records
	Feedback   int64         // replayed feedback records
	TornTail   bool          // the last WAL record was torn by a crash (truncated)
}

// Snapshot commits the system's full state — complemented-KB postings,
// live tweets, the follow graph, the frozen reachability arena and the
// world parameters — as the next snapshot generation in dir, and leaves
// the system bound to the directory: a running ingest pipeline's WAL tee
// is attached (or re-pointed) to it atomically with the capture.
//
// With an ingest pipeline running, the capture happens inside the
// pipeline's apply barrier, so the segment/WAL split is exact: every
// record at or past the rotation point replays onto state that does not
// include it. The expensive arena rebuild runs after the barrier
// releases — the graph may then include a few post-barrier edges, which
// is safe because follow replay deduplicates.
//
// dir may be empty when the system is already bound (SnapshotNow).
func (s *System) Snapshot(dir string) (SnapshotInfo, error) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	start := time.Now()

	st := s.persist
	switch {
	case st == nil && dir == "":
		return SnapshotInfo{}, ErrNoStore
	case st == nil:
		var err error
		st, err = store.Open(dir, store.Options{Fsync: s.fsync})
		if err != nil {
			return SnapshotInfo{}, err
		}
		st.Instrument(s.Metrics)
	case dir != "" && dir != st.Dir():
		return SnapshotInfo{}, fmt.Errorf("microlink: system already bound to data directory %s", st.Dir())
	}

	snap := store.Snapshot{World: s.World.Params}
	pipe := s.Ingest()

	switch idx := unwrapReach(s.Reach).(type) {
	case *reach.Streaming:
		snap.Reach = store.ReachStreaming
		snap.MaxHops = idx.MaxHops()
		capture := func() error {
			snap.Postings = s.CKB.SnapshotPostings()
			snap.Tweets = s.Live.All()
			return st.Rotate()
		}
		var rotateErr error
		if pipe != nil {
			pipe.Barrier(func(setJournal func(ingest.Journal)) {
				if rotateErr = capture(); rotateErr == nil {
					setJournal(st)
				}
			})
		} else {
			rotateErr = capture()
		}
		if rotateErr != nil {
			return SnapshotInfo{}, rotateErr
		}
		// The heavy rebuild runs off the barrier; the installed arena and
		// the graph it was built from go into the segments together.
		if pipe != nil {
			g, th, _ := pipe.RebuildForSnapshot()
			snap.Graph, snap.Index = g, th
		} else {
			g, th, at := idx.RebuildSnapshot()
			s.Linker.UpdateReachability(func() { idx.Install(th, at) })
			snap.Graph, snap.Index = g, th
		}
	case *reach.TwoHop:
		snap.Reach = store.ReachTwoHop
		snap.MaxHops = idx.MaxHops()
		snap.Postings = s.CKB.SnapshotPostings()
		snap.Tweets = s.Live.All()
		snap.Graph, snap.Index = s.World.Graph, idx
		if err := st.Rotate(); err != nil {
			return SnapshotInfo{}, err
		}
	case *reach.TransitiveClosure:
		snap.Reach = store.ReachClosure
		snap.MaxHops = idx.MaxHops()
		snap.Postings = s.CKB.SnapshotPostings()
		snap.Tweets = s.Live.All()
		snap.Graph, snap.Index = s.World.Graph, idx
		if err := st.Rotate(); err != nil {
			return SnapshotInfo{}, err
		}
	default:
		return SnapshotInfo{}, ErrNotSnapshottable
	}

	seq, err := st.Commit(snap)
	if err != nil {
		return SnapshotInfo{}, err
	}
	s.persist = st
	return SnapshotInfo{Seq: seq, Dir: st.Dir(), Elapsed: time.Since(start)}, nil
}

// SnapshotNow commits a snapshot to the directory the system is already
// bound to — the POST /v1/admin/snapshot path.
func (s *System) SnapshotNow() (SnapshotInfo, error) { return s.Snapshot("") }

// PersistStatus reports the persistence layer's state for the admin
// status endpoint. Enabled is false when no data directory is bound.
type PersistStatus struct {
	Enabled          bool   `json:"enabled"`
	Dir              string `json:"dir,omitempty"`
	SnapshotSeq      uint64 `json:"snapshot_seq,omitempty"`
	LastSnapshotUnix int64  `json:"last_snapshot_unix,omitempty"`
	WALBytes         int64  `json:"wal_bytes"`
	WALRecords       int64  `json:"wal_records"`
}

// Persist reports the current persistence binding.
func (s *System) Persist() PersistStatus {
	s.persistMu.Lock()
	st := s.persist
	s.persistMu.Unlock()
	if st == nil {
		return PersistStatus{}
	}
	bytes, records := st.WALStats()
	seq, at := st.LastSnapshot()
	ps := PersistStatus{
		Enabled:     true,
		Dir:         st.Dir(),
		SnapshotSeq: seq,
		WALBytes:    bytes,
		WALRecords:  records,
	}
	if !at.IsZero() {
		ps.LastSnapshotUnix = at.Unix()
	} else if man := st.Manifest(); man != nil {
		ps.LastSnapshotUnix = man.CreatedUnix
	}
	return ps
}

// ClosePersist flushes and closes the write-ahead log. Call it on
// shutdown after stopping the ingest pipeline; appends after close
// surface as journal failures, not crashes.
func (s *System) ClosePersist() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persist == nil {
		return nil
	}
	return s.persist.Close()
}

// RebuildReach synchronously re-freezes the 2-hop arena from the live
// graph and installs it — the explicit variant of the ingest manager's
// background rebuild, for streaming systems without a pipeline (and for
// deterministic tests). A warm-restored system pays its deferred
// dynamic-closure hydration here, on the first call.
func (s *System) RebuildReach() error {
	idx, ok := unwrapReach(s.Reach).(*reach.Streaming)
	if !ok {
		return ErrNotStreaming
	}
	if pipe := s.Ingest(); pipe != nil {
		pipe.ForceRebuild()
		return nil
	}
	_, th, at := idx.RebuildSnapshot()
	s.Linker.UpdateReachability(func() { idx.Install(th, at) })
	return nil
}

// Open warm-restarts a System from a data directory written by
// System.Snapshot: the deterministic base world regenerates from the
// manifest's parameters, the segments bulk-load the state regeneration
// cannot reproduce (streamed graph, postings, live tweets, frozen
// arena), and the WAL suffix replays on top. The manifest's reach kind,
// hop bound and world parameters override the corresponding opts fields;
// everything else (linker weights, batch options, candidate generation)
// applies as in Build.
//
// Cold-start cost is segment load plus replay: the offline
// complementation phase is skipped (postings come from the segment) and
// no reachability index is built — a restored streaming substrate serves
// from the loaded arena and defers its dynamic closure until the first
// rebuild. A torn final WAL record (the kill -9 signature) is truncated
// away and reported in the RestartReport, never an error.
func Open(dir string, opts Options) (*System, *RestartReport, error) {
	st, err := store.Open(dir, store.Options{Fsync: opts.Fsync})
	if err != nil {
		return nil, nil, err
	}
	man := st.Manifest()
	if man == nil {
		err := fmt.Errorf("%w: %s", ErrNoSnapshot, dir)
		if cerr := st.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, nil, err
	}
	rep := &RestartReport{Seq: man.Seq}

	t := time.Now()
	w := Generate(man.World)
	rep.Generate = time.Since(t)

	t = time.Now()
	g, err := st.LoadGraph()
	if err != nil {
		return nil, nil, err
	}
	if g.NumNodes() != w.Graph.NumNodes() {
		return nil, nil, fmt.Errorf("%w: snapshot graph has %d nodes, regenerated world has %d",
			reach.ErrGraphMismatch, g.NumNodes(), w.Graph.NumNodes())
	}
	postings, err := st.LoadPostings()
	if err != nil {
		return nil, nil, err
	}
	ckb, err := kb.ComplementRestore(w.KB, postings)
	if err != nil {
		return nil, nil, err
	}
	live, err := st.LoadTweets()
	if err != nil {
		return nil, nil, err
	}
	rc, err := st.OpenReach()
	if err != nil {
		return nil, nil, err
	}
	var pre ReachIndex
	switch man.Reach {
	case store.ReachTwoHop:
		pre, err = reach.ReadTwoHop(rc, g)
		opts.Reach = ReachTwoHop
	case store.ReachClosure:
		pre, err = reach.ReadTransitiveClosure(rc, g)
		opts.Reach = ReachClosure
	case store.ReachStreaming:
		var th *reach.TwoHop
		if th, err = reach.ReadTwoHop(rc, g); err == nil {
			pre = reach.NewStreamingFromFrozen(g, th, reach.TwoHopOptions{MaxHops: man.MaxHops})
		}
		opts.Reach = ReachStreaming
	default:
		err = fmt.Errorf("%w: unknown reach kind %q", store.ErrManifest, man.Reach)
	}
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	opts.MaxHops = man.MaxHops
	opts.PrebuiltReach = pre

	sys := build(w, opts, ckb)
	for i := range live {
		sys.Live.Append(live[i])
	}
	rep.Load = time.Since(t)

	t = time.Now()
	stats, err := st.Replay(func(r *store.Record) error { return sys.applyRecord(r, rep) })
	if err != nil {
		return nil, nil, err
	}
	rep.Replay = time.Since(t)
	rep.WALFiles = stats.Files
	rep.WALRecords = stats.Records
	rep.WALBytes = stats.Bytes
	rep.TornTail = stats.TornTail

	// Fresh WAL file: post-restart appends never touch a replayed
	// (possibly crash-truncated) file.
	if err := st.Rotate(); err != nil {
		return nil, nil, err
	}
	st.Instrument(sys.Metrics)
	sys.persistMu.Lock()
	sys.persist = st
	sys.persistMu.Unlock()
	return sys, rep, nil
}

// applyRecord re-applies one WAL record exactly as the pipeline applied
// it pre-crash: tweets re-enter the live corpus and feed back their
// recorded links (nil links means feedback was off — replay skips it
// too, never re-running the linker), follows re-enter the live graph
// (duplicates no-op), feedback re-applies directly.
func (s *System) applyRecord(r *store.Record, rep *RestartReport) error {
	switch r.Kind {
	case store.RecTweet:
		s.Live.Append(*r.Tweet)
		if r.Links != nil {
			s.Linker.Feedback(r.Tweet, r.Links)
		}
		rep.Tweets++
	case store.RecFollow:
		if err := s.Follow(r.U, r.V); err != nil {
			return fmt.Errorf("%w: follow record against %T substrate", store.ErrWALCorrupt, unwrapReach(s.Reach))
		}
		rep.Follows++
	case store.RecFeedback:
		s.Linker.Feedback(r.Tweet, r.Links)
		rep.Feedback++
	default:
		return fmt.Errorf("%w: unknown record kind %d", store.ErrWALCorrupt, r.Kind)
	}
	return nil
}
