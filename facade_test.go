package microlink

import (
	"strings"
	"sync"
	"testing"

	"microlink/internal/eval"
	"microlink/internal/influence"
)

func evalByTweetLength(l EvalLinker, ts []Tweet, maxLen int) []eval.Accuracy {
	return eval.ByTweetLength(l, ts, maxLen)
}

// facadeWorld is a small world for fast facade-level tests, separate from
// the big integration world.
func facadeWorld() *World {
	return Generate(WorldParams{Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20})
}

func TestBuildReachVariants(t *testing.T) {
	w := facadeWorld()
	for _, kind := range []ReachKind{ReachClosure, ReachTwoHop, ReachNaive, ReachDynamic} {
		sys := Build(w, Options{Reach: kind, TruthComplement: true})
		if sys.Reach == nil {
			t.Fatalf("kind %d: nil reach index", kind)
		}
		// All variants answer something sane for a self-query.
		if r := sys.Reach.R(0, 0); r != 1 {
			t.Errorf("kind %d: R(self) = %f", kind, r)
		}
	}
}

func TestTruthComplementCounts(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true})
	active := w.Store.FilterByActivity(10, 0)
	if int(sys.CKB.TotalCount()) != active.MentionCount() {
		t.Fatalf("postings %d != active mentions %d", sys.CKB.TotalCount(), active.MentionCount())
	}
}

func TestComplementThetaChangesCorpus(t *testing.T) {
	w := facadeWorld()
	d10 := Build(w, Options{TruthComplement: true, ComplementTheta: 10})
	d90 := Build(w, Options{TruthComplement: true, ComplementTheta: 90})
	if d90.CKB.TotalCount() >= d10.CKB.TotalCount() {
		t.Fatalf("θ=90 complement (%d) should be smaller than θ=10 (%d)",
			d90.CKB.TotalCount(), d10.CKB.TotalCount())
	}
}

func TestSearchPersonalizedAndOrdered(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true})
	var surface string
	w.KB.EachSurface(func(form string, cs []EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface = form
		}
	})
	now := w.Horizon()
	found := false
	for u := 0; u < w.Graph.NumNodes() && !found; u += 7 {
		hits := sys.Search(UserID(u), now, surface, 1)
		if len(hits) == 0 {
			continue
		}
		found = true
		for i := 1; i < len(hits); i++ {
			if hits[i].Posting.Time > hits[i-1].Posting.Time {
				t.Fatal("results not newest-first")
			}
		}
		// All hits must be linked to the entity the user's linker picked.
		top := sys.Linker.TopK(UserID(u), now, surface, 1)
		for _, h := range hits {
			if h.Entity != top[0].Entity {
				t.Fatalf("hit entity %d != linked %d", h.Entity, top[0].Entity)
			}
		}
		if hits[0].Text == "" {
			t.Error("hit text not resolved")
		}
	}
	if !found {
		t.Skip("no user cleared the threshold for this surface")
	}
}

func TestSearchNoMentions(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true})
	if hits := sys.Search(0, w.Horizon(), "zzz qqq xxx", 2); len(hits) != 0 {
		t.Fatalf("mention-free query returned %d hits", len(hits))
	}
}

func TestLinkStreamFacade(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true})
	test := sys.TestSet.All()
	n := min(len(test), 60)
	ptrs := make([]*Tweet, n)
	for i := 0; i < n; i++ {
		ptrs[i] = &test[i]
	}
	par := sys.Linker.LinkStream(ptrs, 8)
	for i, tw := range ptrs {
		seq := sys.Linker.LinkTweet(tw)
		for j := range seq {
			if par[i][j] != seq[j] {
				t.Fatalf("tweet %d mention %d: parallel %d != sequential %d", i, j, par[i][j], seq[j])
			}
		}
	}
}

func TestDescribeMentionsComponents(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true, InfluenceMethod: influence.TFIDF})
	d := sys.Describe()
	for _, want := range []string{"users", "entities", "tweets", "tfidf", "α=0.60"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q: %s", want, d)
		}
	}
}

func TestFollowUpdatesInterest(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{Reach: ReachDynamic, TruthComplement: true})
	// Find an ambiguous surface and a user whose top pick can flip by
	// following the influential user of a losing candidate.
	var surface string
	var cands []EntityID
	w.KB.EachSurface(func(form string, cs []EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface, cands = form, cs
		}
	})
	now := w.Horizon()
	user := UserID(w.Graph.NumNodes() - 1)
	before := sys.Linker.ScoreCandidates(user, now, surface)
	if len(before) < 2 {
		t.Skip("not enough candidates")
	}
	loser := before[len(before)-1].Entity
	// Follow every influential member of the loser's community directly.
	for _, v := range sys.Influence.TopInfluential(loser, cands, 5) {
		if err := sys.Follow(user, v); err != nil {
			t.Fatal(err)
		}
	}
	after := sys.Linker.ScoreCandidates(user, now, surface)
	var bi, ai float64
	for _, s := range before {
		if s.Entity == loser {
			bi = s.Interest
		}
	}
	for _, s := range after {
		if s.Entity == loser {
			ai = s.Interest
		}
	}
	if ai <= bi {
		t.Fatalf("interest in the loser did not rise after following its community: %f → %f", bi, ai)
	}

	// A non-dynamic system refuses Follow.
	static := Build(w, Options{TruthComplement: true})
	if err := static.Follow(user, 0); err == nil {
		t.Fatal("static reach must reject Follow")
	}
}

func TestSaveLoadReachIndex(t *testing.T) {
	w := facadeWorld()
	for _, kind := range []ReachKind{ReachClosure, ReachTwoHop} {
		sys := Build(w, Options{Reach: kind, TruthComplement: true})
		path := t.TempDir() + "/reach.idx"
		if err := SaveReachIndex(path, sys.Reach); err != nil {
			t.Fatalf("kind %d: save: %v", kind, err)
		}
		idx, err := LoadReachIndex(path, w.Graph, kind)
		if err != nil {
			t.Fatalf("kind %d: load: %v", kind, err)
		}
		// A system built with the prebuilt index links identically.
		reloaded := Build(w, Options{PrebuiltReach: idx, TruthComplement: true})
		test := sys.TestSet.All()
		for i := 0; i < min(len(test), 40); i++ {
			a := sys.Linker.LinkTweet(&test[i])
			b := reloaded.Linker.LinkTweet(&test[i])
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("kind %d: tweet %d mention %d: %d != %d", kind, i, j, a[j], b[j])
				}
			}
		}
	}
	// Naive has nothing to save; dynamic kind has no loader.
	sysN := Build(w, Options{Reach: ReachNaive, TruthComplement: true})
	if err := SaveReachIndex(t.TempDir()+"/x", sysN.Reach); err == nil {
		t.Fatal("naive index must not serialise")
	}
	if _, err := LoadReachIndex("/does/not/exist", w.Graph, ReachClosure); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestFig6cShape asserts the Appendix C tweet-length finding: the
// baselines' accuracy climbs with more mentions per tweet (more coherence
// signal) while our lead is largest on single-mention tweets.
func TestFig6cShape(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{})
	test := sys.TestSet.All()
	ours := evalByLength(sys.Linker, test)
	otf := evalByLength(sys.OnTheFly(), test)
	if ours[0] <= otf[0] {
		t.Errorf("len-1 lead missing: ours %.4f vs on-the-fly %.4f", ours[0], otf[0])
	}
	if otf[2] <= otf[0] {
		t.Errorf("on-the-fly should improve with length: len1 %.4f len3 %.4f", otf[0], otf[2])
	}
	lead1 := ours[0] - otf[0]
	lead3 := ours[2] - otf[2]
	if lead1 <= lead3 {
		t.Errorf("our lead should be largest at length 1: %.4f vs %.4f", lead1, lead3)
	}
}

func evalByLength(l EvalLinker, ts []Tweet) []float64 {
	buckets := evalByTweetLength(l, ts, 3)
	out := make([]float64, len(buckets))
	for i, a := range buckets {
		out[i] = a.MentionAccuracy()
	}
	return out
}

// TestConcurrentLinkAndFeedback drives the online loop from many
// goroutines at once — readers scoring candidates while writers feed
// confirmed links back — exactly the mixed workload a linkd deployment
// sees. Run with -race in CI.
func TestConcurrentLinkAndFeedback(t *testing.T) {
	w := facadeWorld()
	sys := Build(w, Options{TruthComplement: true})
	test := sys.TestSet.All()
	if len(test) == 0 {
		t.Skip("empty test set")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: replay feedback.
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < min(len(test), 120); i += 2 {
				tw := &test[i]
				sys.Linker.Feedback(tw, sys.Linker.LinkTweet(tw))
			}
		}(k)
	}
	// Readers: hammer scoring and search.
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tw := &test[(i*7+k)%len(test)]
				sys.Linker.LinkTweet(tw)
				if i > 200 {
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(stop)
}

func TestWorldEventsAccessible(t *testing.T) {
	w := facadeWorld()
	if len(w.Events) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range w.Events {
		if ev.Start >= ev.End {
			t.Fatalf("bad event window %+v", ev)
		}
		if ev.Entity < 0 || int(ev.Entity) >= w.KB.NumEntities() {
			t.Fatalf("bad event entity %+v", ev)
		}
	}
}
