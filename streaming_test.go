package microlink

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"microlink/internal/graph"
	"microlink/internal/reach"
	"microlink/internal/synth"
)

// streamWorld caches the streaming test world: both tests only read it
// (Build copies nothing out of the world that the pipeline mutates — the
// live closure and live store are per-system).
var (
	streamOnce  sync.Once
	streamState *World
)

func streamingWorld(t *testing.T) *World {
	t.Helper()
	streamOnce.Do(func() {
		streamState = Generate(WorldParams{Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20})
	})
	return streamState
}

// ambiguousStreamSurfaces returns surface forms with ≥ 2 candidates —
// the queries where a torn index would actually change a ranking.
func ambiguousStreamSurfaces(w *World) []string {
	var out []string
	w.KB.EachSurface(func(form string, cs []EntityID) {
		if len(cs) >= 2 {
			out = append(out, form)
		}
	})
	if len(out) == 0 {
		w.KB.EachSurface(func(form string, cs []EntityID) { out = append(out, form) })
	}
	return out
}

// TestStreamingIngestSoak is the -race soak for the ingest subsystem:
// a producer drives a mixed tweet/follow stream through the pipeline
// while two query workers run LinkBatch against the linker, and two
// copy-on-swap rebuilds are forced mid-stream. Queries must stay
// error-free and untorn (best candidate ≡ head of the ranking)
// throughout, staleness must return to zero after the final drain +
// rebuild, and the pipeline's goroutines must be gone after Close.
func TestStreamingIngestSoak(t *testing.T) {
	w := streamingWorld(t)
	sys := Build(w, Options{Reach: ReachStreaming})
	baseline := runtime.NumGoroutine()

	pipe, err := sys.StartIngest(IngestConfig{BlockOnFull: true, RebuildAfterEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	stream := synth.GenerateStream(w, synth.StreamParams{Seed: 6, Events: 1200, FollowFraction: 0.3})
	surfaces := ambiguousStreamSurfaces(w)
	ctx := context.Background()
	now := w.Horizon() + 3600

	queryStop := make(chan struct{})
	var queryWG sync.WaitGroup
	var tornErr error
	var tornMu sync.Mutex
	for i := 0; i < 2; i++ {
		queryWG.Add(1)
		go func(off int) {
			defer queryWG.Done()
			batch := make([]MentionQuery, 16)
			for n := 0; ; n++ {
				select {
				case <-queryStop:
					return
				default:
				}
				for j := range batch {
					batch[j] = MentionQuery{
						User:    UserID((off + n*17 + j*31) % w.Graph.NumNodes()),
						Now:     now,
						Surface: surfaces[(off+n+j)%len(surfaces)],
					}
				}
				for _, r := range sys.Linker.LinkBatch(ctx, batch) {
					if r.Err != nil {
						tornMu.Lock()
						tornErr = r.Err
						tornMu.Unlock()
						return
					}
					if len(r.Scored) > 0 && r.Entity != r.Scored[0].Entity {
						tornMu.Lock()
						tornErr = errTorn
						tornMu.Unlock()
						return
					}
				}
			}
		}(i * 131)
	}

	producerDone := make(chan error, 1)
	go func() {
		for _, ev := range stream {
			var e IngestEvent
			if ev.Tweet != nil {
				e = TweetEvent(ev.Tweet, nil)
			} else {
				e = FollowEvent(ev.U, ev.V)
			}
			if err := pipe.Submit(ctx, e); err != nil {
				producerDone <- err
				return
			}
		}
		producerDone <- nil
	}()

	// Two forced swaps while the stream is live, at ⅓ and ⅔ of the
	// event count.
	marks := []int64{int64(len(stream)) / 3, int64(len(stream)) * 2 / 3}
	for _, mark := range marks {
		for {
			st := pipe.Stats()
			if st.AppliedTweets+st.AppliedFollows+st.AppliedFeedback >= mark {
				pipe.ForceRebuild()
				break
			}
			select {
			case err := <-producerDone:
				if err != nil {
					t.Fatalf("producer: %v", err)
				}
				producerDone <- nil // producer already finished; re-arm
			case <-time.After(time.Millisecond):
			}
		}
	}
	if err := <-producerDone; err != nil {
		t.Fatalf("producer: %v", err)
	}

	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pipe.Close(cctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	pipe.ForceRebuild()
	close(queryStop)
	queryWG.Wait()

	tornMu.Lock()
	defer tornMu.Unlock()
	if tornErr != nil {
		t.Fatalf("query worker failed mid-stream: %v", tornErr)
	}
	st := pipe.Stats()
	if st.Dropped != 0 {
		t.Errorf("dropped %d events under the blocking policy", st.Dropped)
	}
	if st.Swaps < 2 {
		t.Errorf("swaps = %d, want ≥ 2 (two forced mid-stream)", st.Swaps)
	}
	if st.Staleness != 0 {
		t.Errorf("staleness = %d after drain + final rebuild, want 0", st.Staleness)
	}
	if total := st.AppliedTweets + st.AppliedFollows; total != int64(len(stream)) {
		t.Errorf("applied %d of %d events", total, len(stream))
	}

	// The applier and rebuild manager must be gone. Transient LinkBatch
	// workers also unwind here, so poll with slack.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after Close", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var errTorn = soakError("torn result: Entity != Scored[0].Entity")

type soakError string

func (e soakError) Error() string { return string(e) }

// TestStreamingIngestDeterministic checks the rebuild contract that
// makes copy-on-swap trustworthy: follow churn applied through the
// pipeline (coalesced batches, arbitrary interleaving with rebuilds)
// then frozen must yield the byte-identical 2-hop index as a cold batch
// build over the final edge set.
func TestStreamingIngestDeterministic(t *testing.T) {
	w := streamingWorld(t)
	sys := Build(w, Options{Reach: ReachStreaming})
	pipe, err := sys.StartIngest(IngestConfig{RebuildAfterEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	stream := synth.GenerateStream(w, synth.StreamParams{Seed: 9, Events: 800, FollowFraction: 0.9})
	ctx := context.Background()

	var follows [][2]UserID
	for _, ev := range stream {
		if ev.Tweet != nil {
			continue
		}
		follows = append(follows, [2]UserID{ev.U, ev.V})
		if err := pipe.Submit(ctx, FollowEvent(ev.U, ev.V)); err != nil {
			t.Fatal(err)
		}
	}
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pipe.Close(cctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	pipe.ForceRebuild()

	st, ok := unwrapReach(sys.Reach).(*reach.Streaming)
	if !ok {
		t.Fatalf("reach substrate is %T, want *reach.Streaming", sys.Reach)
	}
	var got bytes.Buffer
	if _, err := st.Frozen().WriteTo(&got); err != nil {
		t.Fatal(err)
	}

	// Cold batch build over world edges + streamed follows. NewStreaming
	// applies the same option defaults the system's substrate got, so the
	// two frozen arenas share construction parameters exactly.
	gb := graph.NewBuilder(w.Graph.NumNodes())
	for u := 0; u < w.Graph.NumNodes(); u++ {
		for _, v := range w.Graph.Out(graph.NodeID(u)) {
			gb.AddEdge(UserID(u), v)
		}
	}
	for _, e := range follows {
		gb.AddEdge(e[0], e[1])
	}
	cold := reach.NewStreaming(gb.Build(), reach.TwoHopOptions{MaxHops: reach.DefaultMaxHops})
	var want bytes.Buffer
	if _, err := cold.Frozen().WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("ingest-then-rebuild arena (%d bytes) differs from cold batch build (%d bytes)",
			got.Len(), want.Len())
	}
}
