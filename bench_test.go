// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment id; see DESIGN.md §4 for the index and cmd/linkbench for
// the row-printing harness). Accuracy experiments report their headline
// metric via b.ReportMetric, so `go test -bench=.` doubles as a compact
// reproduction log.
package microlink_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"microlink"
	"microlink/internal/eval"
	"microlink/internal/experiments"
	"microlink/internal/graph"
	"microlink/internal/influence"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/synth"
	"microlink/internal/textutil"
)

// benchWorld caches the default accuracy world and its systems across
// benchmarks: generation and index construction dominate otherwise.
var (
	benchOnce sync.Once
	bw        *microlink.World
	bsys      *microlink.System
)

func benchSetup(b *testing.B) (*microlink.World, *microlink.System) {
	b.Helper()
	benchOnce.Do(func() {
		bw = microlink.Generate(experiments.DefaultWorldParams())
		bsys = microlink.Build(bw, microlink.Options{})
	})
	return bw, bsys
}

// reportAccuracy runs one evaluation pass per iteration and reports the
// mention/tweet accuracies as benchmark metrics.
func reportAccuracy(b *testing.B, l eval.Linker, ts []microlink.Tweet) {
	b.Helper()
	var acc eval.Accuracy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = eval.Evaluate(l, ts)
	}
	b.ReportMetric(acc.MentionAccuracy(), "mention-acc")
	b.ReportMetric(acc.TweetAccuracy(), "tweet-acc")
}

// --- Fig 4(a): accuracy vs state of the art -----------------------------

func BenchmarkFig4aOurs(b *testing.B) {
	_, sys := benchSetup(b)
	reportAccuracy(b, sys.Linker, sys.TestSet.All())
}

func BenchmarkFig4aCollective(b *testing.B) {
	_, sys := benchSetup(b)
	reportAccuracy(b, sys.Collective(sys.TestSet), sys.TestSet.All())
}

func BenchmarkFig4aOnTheFly(b *testing.B) {
	_, sys := benchSetup(b)
	reportAccuracy(b, sys.OnTheFly(), sys.TestSet.All())
}

// --- Fig 4(b): accuracy vs complementation corpus -----------------------

func BenchmarkFig4bDatasets(b *testing.B) {
	w, _ := benchSetup(b)
	for _, theta := range []int{90, 50, 10} {
		theta := theta
		b.Run("D"+itoa(theta), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{ComplementTheta: theta})
			reportAccuracy(b, sys.Linker, sys.TestSet.All())
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// --- Fig 4(c): influence estimators --------------------------------------

func BenchmarkFig4cInfluence(b *testing.B) {
	w, _ := benchSetup(b)
	for _, m := range []influence.Method{influence.TFIDF, influence.Entropy} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{InfluenceMethod: m})
			reportAccuracy(b, sys.Linker, sys.TestSet.All())
		})
	}
}

// --- Fig 4(d): recency propagation ----------------------------------------

func BenchmarkFig4dPropagation(b *testing.B) {
	w, _ := benchSetup(b)
	b.Run("off", func(b *testing.B) {
		sys := microlink.Build(w, microlink.Options{Recency: recency.Options{NoPropagation: true}})
		reportAccuracy(b, sys.Linker, sys.TestSet.All())
	})
	b.Run("on", func(b *testing.B) {
		sys := microlink.Build(w, microlink.Options{})
		reportAccuracy(b, sys.Linker, sys.TestSet.All())
	})
}

// --- Table 4: feature ablation --------------------------------------------

func BenchmarkTable4Ablation(b *testing.B) {
	w, _ := benchSetup(b)
	cases := []struct {
		name string
		cfg  microlink.LinkerConfig
	}{
		{"interest", microlink.LinkerConfig{WInterest: 1}},
		{"recency", microlink.LinkerConfig{WRecency: 1}},
		{"popularity", microlink.LinkerConfig{WPopularity: 1}},
		{"all", microlink.LinkerConfig{}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{Linker: c.cfg})
			reportAccuracy(b, sys.Linker, sys.TestSet.All())
		})
	}
}

// --- Fig 5(a): linking latency ---------------------------------------------

// linkStream times LinkTweet per operation over the test stream.
func linkStream(b *testing.B, l eval.Linker, ts []microlink.Tweet) {
	b.Helper()
	mentions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw := &ts[i%len(ts)]
		l.LinkTweet(tw)
		mentions += len(tw.Mentions)
	}
	b.ReportMetric(float64(mentions)/float64(b.N), "mentions/tweet")
}

func BenchmarkFig5aLinkTimeOurs(b *testing.B) {
	_, sys := benchSetup(b)
	linkStream(b, sys.Linker, sys.TestSet.All())
}

func BenchmarkFig5aLinkTimeCollective(b *testing.B) {
	_, sys := benchSetup(b)
	linkStream(b, sys.Collective(sys.TestSet), sys.TestSet.All())
}

func BenchmarkFig5aLinkTimeOnTheFly(b *testing.B) {
	_, sys := benchSetup(b)
	linkStream(b, sys.OnTheFly(), sys.TestSet.All())
}

// --- Fig 5(b): closure construction -----------------------------------------

func fig5bGraph() *graph.Graph {
	return synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: 400, MeanFollows: 10})
}

func BenchmarkFig5bNaiveConstruction(b *testing.B) {
	g := fig5bGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach.NaiveClosureTime(g, 4, 0)
	}
}

func BenchmarkFig5bIncrementalConstruction(b *testing.B) {
	g := fig5bGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: 4})
	}
}

// --- Fig 5(c): influential-user truncation -----------------------------------

func BenchmarkFig5cInfluential(b *testing.B) {
	w, _ := benchSetup(b)
	for _, k := range []int{1, 5, 20} {
		k := k
		b.Run("top"+itoa(k), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{Linker: microlink.LinkerConfig{TopInfluential: k}})
			linkStream(b, sys.Linker, sys.TestSet.All())
		})
	}
	b.Run("whole-community", func(b *testing.B) {
		sys := microlink.Build(w, microlink.Options{Linker: microlink.LinkerConfig{WholeCommunity: true}})
		linkStream(b, sys.Linker, sys.TestSet.All())
	})
}

// --- Fig 5(d): scalability with KB size ----------------------------------------

func BenchmarkFig5dScalability(b *testing.B) {
	w, _ := benchSetup(b)
	for _, theta := range []int{90, 50, 10} {
		theta := theta
		b.Run("D"+itoa(theta), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{ComplementTheta: theta})
			linkStream(b, sys.Linker, sys.TestSet.All())
		})
	}
}

// --- Table 5: reachability substrates ---------------------------------------------

func table5Graph() *graph.Graph {
	return synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: 1500, MeanFollows: 10})
}

func BenchmarkTable5ClosureBuild(b *testing.B) {
	g := table5Graph()
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		tc := reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: 4})
		size = tc.SizeBytes()
	}
	b.ReportMetric(float64(size)/(1<<20), "index-MB")
}

func BenchmarkTable5TwoHopBuild(b *testing.B) {
	g := table5Graph()
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		th := reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: 4})
		size = th.SizeBytes()
	}
	b.ReportMetric(float64(size)/(1<<20), "index-MB")
}

func queryBench(b *testing.B, idx reach.Index, n int) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	srcs := make([]graph.NodeID, 1024)
	dsts := make([]graph.NodeID, 1024)
	for i := range srcs {
		srcs[i] = graph.NodeID(r.Intn(n))
		dsts[i] = graph.NodeID(r.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.R(srcs[i%1024], dsts[(i/1024+i)%1024])
	}
}

func BenchmarkTable5ClosureQuery(b *testing.B) {
	g := table5Graph()
	tc := reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: 4})
	queryBench(b, tc, g.NumNodes())
}

func BenchmarkTable5TwoHopQuery(b *testing.B) {
	g := table5Graph()
	th := reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: 4})
	queryBench(b, th, g.NumNodes())
}

func BenchmarkTable5NaiveQuery(b *testing.B) {
	g := table5Graph()
	queryBench(b, reach.NewNaive(g, 4), g.NumNodes())
}

// Online search with GRAIL-style interval pruning — §2's first category,
// which the paper dismisses for real-time use: queries cost a BFS whenever
// the pair is not refuted, orders of magnitude above the indexed
// substrates. The pruning only pays on unreachable pairs.
func BenchmarkTable5OnlineSearchQuery(b *testing.B) {
	g := table5Graph()
	queryBench(b, reach.NewPrunedSearch(g, reach.PrunedOptions{MaxHops: 4}), g.NumNodes())
}

// --- Fig 6(a,b): Weibo generalisability ----------------------------------------------

var (
	weiboOnce sync.Once
	weiboSys  *microlink.System
)

func weiboSetup(b *testing.B) *microlink.System {
	b.Helper()
	weiboOnce.Do(func() {
		weiboSys = microlink.Build(microlink.Generate(experiments.WeiboWorldParams()), microlink.Options{})
	})
	return weiboSys
}

func BenchmarkFig6abWeiboAccuracy(b *testing.B) {
	sys := weiboSetup(b)
	reportAccuracy(b, sys.Linker, sys.TestSet.All())
}

func BenchmarkFig6abWeiboLinkTime(b *testing.B) {
	sys := weiboSetup(b)
	linkStream(b, sys.Linker, sys.TestSet.All())
}

// --- Fig 6(c): tweet length -------------------------------------------------------------

func BenchmarkFig6cTweetLength(b *testing.B) {
	_, sys := benchSetup(b)
	test := sys.TestSet.All()
	var buckets []eval.Accuracy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets = eval.ByTweetLength(sys.Linker, test, 4)
	}
	for l, a := range buckets {
		b.ReportMetric(a.MentionAccuracy(), "len"+itoa(l+1)+"-acc")
	}
}

// --- Fig 6(d): weight sensitivity ----------------------------------------------------------

func BenchmarkFig6dSensitivity(b *testing.B) {
	w, _ := benchSetup(b)
	for _, alpha := range []float64{0.1, 0.6, 0.9} {
		alpha := alpha
		b.Run("alpha"+itoa(int(alpha*10)), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{Linker: microlink.LinkerConfig{
				WInterest: alpha, WRecency: (1 - alpha) * 0.75, WPopularity: (1 - alpha) * 0.25,
			}})
			reportAccuracy(b, sys.Linker, sys.TestSet.All())
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §5) -------------

// Degree-descending landmark order vs arbitrary order: the PLL insight that
// hubs first shrink labels and build time.
func BenchmarkAblationTwoHopOrdering(b *testing.B) {
	g := synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: 800, MeanFollows: 10})
	b.Run("degree", func(b *testing.B) {
		var entries int64
		for i := 0; i < b.N; i++ {
			entries = reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: 4}).BuildStats().Entries
		}
		b.ReportMetric(float64(entries), "labels")
	})
	b.Run("random", func(b *testing.B) {
		var entries int64
		for i := 0; i < b.N; i++ {
			entries = reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: 4, RandomOrder: true}).BuildStats().Entries
		}
		b.ReportMetric(float64(entries), "labels")
	})
}

// Banded vs full Levenshtein in the fuzzy index verification step.
func BenchmarkAblationEditDistance(b *testing.B) {
	words := []string{"michael jordan", "micheal jordan", "chicago bulls", "chicgao bulls", "jordan", "jodran"}
	b.Run("banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			textutil.WithinEditDistance(words[i%3*2], words[i%3*2+1], 2)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = textutil.Levenshtein(words[i%3*2], words[i%3*2+1]) <= 2
		}
	})
}

// θ₂ threshold of the propagation network: lower thresholds admit more
// edges and bigger clusters, slowing propagation.
func BenchmarkAblationTheta2(b *testing.B) {
	w, _ := benchSetup(b)
	for _, theta2 := range []float64{0.4, 0.6, 0.8} {
		theta2 := theta2
		b.Run("theta"+itoa(int(theta2*10)), func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				net := recency.BuildPropNet(w.KB, theta2)
				edges = net.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// Influential-user caching: the offline knowledge-acquisition trade
// (§3.2.1) vs recomputing per query.
func BenchmarkAblationInfluenceCache(b *testing.B) {
	_, sys := benchSetup(b)
	// Find a busy entity and its candidate set.
	var surface string
	var cands []microlink.EntityID
	sys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 3 {
			surface, cands = form, cs
		}
	})
	if surface == "" {
		b.Skip("no ambiguous surface")
	}
	est := sys.Influence
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est.TopInfluential(cands[0], cands, 5)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est.Invalidate(cands[0])
			est.TopInfluential(cands[0], cands, 5)
		}
	})
}

// Recency propagation memoisation (Options.Recency.CacheQuantum): repeated
// queries inside one time bucket reuse a cluster's propagation run.
func BenchmarkAblationRecencyCache(b *testing.B) {
	w, _ := benchSetup(b)
	run := func(b *testing.B, quantum int64) {
		sys := microlink.Build(w, microlink.Options{Recency: recency.Options{CacheQuantum: quantum}})
		linkStream(b, sys.Linker, sys.TestSet.All())
	}
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
	b.Run("quantum-tau10", func(b *testing.B) { run(b, 3*24*3600/10) })
}

// λ of Eq. 11: the trade-off between gathered and propagated recency. The
// accuracy surface across λ shows why the propagation term earns its cost
// (λ=1 disables reinforcement entirely).
func BenchmarkAblationLambda(b *testing.B) {
	w, _ := benchSetup(b)
	for _, lambda := range []float64{0.2, 0.5, 0.8, 0.999} {
		lambda := lambda
		b.Run("lambda"+itoa(int(lambda*10)), func(b *testing.B) {
			sys := microlink.Build(w, microlink.Options{Recency: recency.Options{Lambda: lambda}})
			reportAccuracy(b, sys.Linker, sys.TestSet.All())
		})
	}
}

// Fuzzy candidate generation throughput.
func BenchmarkCandidateLookup(b *testing.B) {
	_, sys := benchSetup(b)
	var exact, fuzzy string
	sys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if exact == "" && len(form) >= 6 {
			exact = form
			fuzzy = form[:2] + "x" + form[3:]
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Candidates.Candidates(exact)
		}
	})
	b.Run("fuzzy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Candidates.Candidates(fuzzy)
		}
	})
}

// --- Batch pipeline: LinkBatch vs the serial single-mention path ----------

// benchBatchQueries flattens the test set into serving-mode mention
// queries (now = world horizon, as the HTTP API defaults).
func benchBatchQueries(sys *microlink.System, n int) []microlink.MentionQuery {
	now := sys.World.Horizon()
	qs := make([]microlink.MentionQuery, 0, n)
	for _, tw := range sys.TestSet.All() {
		for _, m := range tw.Mentions {
			if len(qs) == n {
				return qs
			}
			qs = append(qs, microlink.MentionQuery{User: tw.User, Now: now, Surface: m.Surface})
		}
	}
	return qs
}

func BenchmarkBatchLink(b *testing.B) {
	_, sys := benchSetup(b)
	qs := benchBatchQueries(sys, 256)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				sys.Linker.ScoreCandidates(q.User, q.Now, q.Surface)
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Linker.LinkBatch(context.Background(), qs)
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
}

// NER throughput over realistic tweet text.
func BenchmarkNERExtract(b *testing.B) {
	_, sys := benchSetup(b)
	texts := make([]string, 64)
	all := sys.World.Store.All()
	for i := range texts {
		texts[i] = all[i*37%len(all)].Text
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.NER.Extract(texts[i%len(texts)])
	}
}
