package microlink

import (
	"fmt"
	"sync"
	"testing"

	"microlink/internal/eval"
	"microlink/internal/influence"
	"microlink/internal/recency"
)

// sharedWorld caches the integration world: generating it is the expensive
// part and every shape test reads it read-only.
var (
	worldOnce sync.Once
	world     *World
	baseSys   *System
)

func integrationWorld(t *testing.T) (*World, *System) {
	t.Helper()
	worldOnce.Do(func() {
		world = Generate(WorldParams{Seed: 42, Users: 1500, Topics: 12, EntitiesPerTopic: 20, Days: 60})
		baseSys = Build(world, Options{})
	})
	return world, baseSys
}

// TestHeadlineOrdering asserts the paper's Fig. 4(a) shape on the
// inactive-user test set: our social-temporal linker beats the collective
// baseline, which beats the on-the-fly baseline, on both metrics.
func TestHeadlineOrdering(t *testing.T) {
	_, sys := integrationWorld(t)
	test := sys.TestSet.All()

	ours := eval.Evaluate(sys.Linker, test)
	coll := eval.Evaluate(sys.Collective(sys.TestSet), test)
	otf := eval.Evaluate(sys.OnTheFly(), test)

	t.Logf("ours %.4f/%.4f collective %.4f/%.4f on-the-fly %.4f/%.4f (mention/tweet)",
		ours.MentionAccuracy(), ours.TweetAccuracy(),
		coll.MentionAccuracy(), coll.TweetAccuracy(),
		otf.MentionAccuracy(), otf.TweetAccuracy())

	if ours.MentionAccuracy() <= coll.MentionAccuracy() {
		t.Errorf("ours (%.4f) must beat collective (%.4f) on mention accuracy",
			ours.MentionAccuracy(), coll.MentionAccuracy())
	}
	if coll.MentionAccuracy() <= otf.MentionAccuracy() {
		t.Errorf("collective (%.4f) must beat on-the-fly (%.4f) on mention accuracy",
			coll.MentionAccuracy(), otf.MentionAccuracy())
	}
	if ours.TweetAccuracy() <= otf.TweetAccuracy() {
		t.Errorf("ours (%.4f) must beat on-the-fly (%.4f) on tweet accuracy",
			ours.TweetAccuracy(), otf.TweetAccuracy())
	}
	// Mention accuracy always dominates tweet accuracy (§5.2.1).
	for _, a := range []Accuracy{ours, coll, otf} {
		if a.MentionAccuracy() < a.TweetAccuracy() {
			t.Error("mention accuracy below tweet accuracy")
		}
	}
}

// TestFeatureAblation asserts Table 4's shape: user interest is the
// strongest single feature, recency beats popularity, and the full
// combination beats every single feature.
func TestFeatureAblation(t *testing.T) {
	w, sys := integrationWorld(t)
	test := sys.TestSet.All()

	all := eval.Evaluate(sys.Linker, test).MentionAccuracy()
	interest := eval.Evaluate(Build(w, Options{Linker: LinkerConfig{WInterest: 1}}).Linker, test).MentionAccuracy()
	rec := eval.Evaluate(Build(w, Options{Linker: LinkerConfig{WRecency: 1}}).Linker, test).MentionAccuracy()
	pop := eval.Evaluate(Build(w, Options{Linker: LinkerConfig{WPopularity: 1}}).Linker, test).MentionAccuracy()

	t.Logf("all %.4f | interest %.4f recency %.4f popularity %.4f", all, interest, rec, pop)
	if !(all > interest && interest > rec && rec > pop) {
		t.Errorf("Table 4 shape violated: all=%.4f interest=%.4f recency=%.4f popularity=%.4f",
			all, interest, rec, pop)
	}
}

// TestInfluenceMethodOrdering asserts Fig. 4(c): entropy-based influence
// estimation beats the tf-idf variant.
func TestInfluenceMethodOrdering(t *testing.T) {
	w, sys := integrationWorld(t)
	test := sys.TestSet.All()

	entropy := eval.Evaluate(sys.Linker, test).MentionAccuracy() // default = entropy
	tfidf := eval.Evaluate(Build(w, Options{InfluenceMethod: influence.TFIDF}).Linker, test).MentionAccuracy()

	t.Logf("entropy %.4f tfidf %.4f", entropy, tfidf)
	if entropy < tfidf {
		t.Errorf("entropy (%.4f) should not lose to tfidf (%.4f)", entropy, tfidf)
	}
}

// TestRecencyPropagationHelps asserts Fig. 4(d): linking with recency
// propagation beats linking without it.
func TestRecencyPropagationHelps(t *testing.T) {
	w, sys := integrationWorld(t)
	test := sys.TestSet.All()

	withProp := eval.Evaluate(sys.Linker, test).MentionAccuracy()
	noProp := eval.Evaluate(Build(w, Options{Recency: recency.Options{NoPropagation: true}}).Linker, test).MentionAccuracy()

	t.Logf("propagation %.4f none %.4f", withProp, noProp)
	if withProp < noProp {
		t.Errorf("propagation (%.4f) should not lose to no-propagation (%.4f)", withProp, noProp)
	}
}

// TestKBComplementationScale asserts the Fig. 4(b) trend: a knowledgebase
// complemented with the θ=10 corpus (more tweets) beats one complemented
// with the θ=90 corpus (fewer tweets).
func TestKBComplementationScale(t *testing.T) {
	w, sys := integrationWorld(t)
	test := sys.TestSet.All()

	d10 := eval.Evaluate(sys.Linker, test).MentionAccuracy() // default θ=10
	d90 := eval.Evaluate(Build(w, Options{ComplementTheta: 90}).Linker, test).MentionAccuracy()

	t.Logf("D10 %.4f D90 %.4f", d10, d90)
	if d10 <= d90 {
		t.Errorf("richer complementation D10 (%.4f) must beat D90 (%.4f)", d10, d90)
	}
}

// TestNewEntityDetection exercises the Appendix D path end to end: a
// mention whose true meaning is absent from the KB should yield an empty
// TopK for an uninterested user.
func TestNewEntityDetection(t *testing.T) {
	_, sys := integrationWorld(t)
	// Pick the user with the fewest follows and several ambiguous
	// surfaces; the invariant must hold regardless: TopK never returns a
	// candidate at or below β+γ.
	g := sys.World.Graph
	loner := UserID(0)
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(int32(u)) < g.OutDegree(int32(loner)) {
			loner = UserID(u)
		}
	}
	checked := 0
	sys.World.KB.EachSurface(func(form string, cands []EntityID) {
		if checked >= 25 || len(cands) < 3 {
			return
		}
		checked++
		for _, s := range sys.Linker.TopK(loner, sys.World.Horizon(), form, 3) {
			if s.Score <= sys.Linker.NewEntityThreshold() {
				t.Errorf("TopK leaked a below-threshold candidate for %q: %+v", form, s)
			}
		}
	})
	if checked == 0 {
		t.Fatal("no ambiguous surfaces found")
	}
}

// TestHeadlineAcrossSeeds re-checks the Fig. 4(a) ordering on fresh seeds,
// guarding against overfitting the generator to one world. Skipped in
// -short mode (three full worlds are expensive).
func TestHeadlineAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness check")
	}
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := Generate(WorldParams{Seed: seed, Users: 1200, Topics: 10, EntitiesPerTopic: 18, Days: 50})
			sys := Build(w, Options{})
			test := sys.TestSet.All()
			ours := eval.Evaluate(sys.Linker, test).MentionAccuracy()
			coll := eval.Evaluate(sys.Collective(sys.TestSet), test).MentionAccuracy()
			otf := eval.Evaluate(sys.OnTheFly(), test).MentionAccuracy()
			t.Logf("ours %.4f collective %.4f on-the-fly %.4f", ours, coll, otf)
			if !(ours > coll && coll > otf) {
				t.Errorf("ordering violated at seed %d: %.4f / %.4f / %.4f", seed, ours, coll, otf)
			}
		})
	}
}

// TestWeiboGeneralizability asserts the Fig. 6(a) shape on the second,
// Weibo-flavoured corpus (Appendix C.1): the ordering generalises beyond
// one parameterisation. Skipped in -short mode.
func TestWeiboGeneralizability(t *testing.T) {
	if testing.Short() {
		t.Skip("second world is expensive")
	}
	p := WorldParams{Seed: 2012, Users: 1500, Topics: 12, EntitiesPerTopic: 20, Days: 60,
		MentionAmbig: 0.5, AmbiguousSurfaces: 12 * 20 / 4}
	w := Generate(p)
	sys := Build(w, Options{})
	test := sys.TestSet.All()
	ours := eval.Evaluate(sys.Linker, test).MentionAccuracy()
	coll := eval.Evaluate(sys.Collective(sys.TestSet), test).MentionAccuracy()
	otf := eval.Evaluate(sys.OnTheFly(), test).MentionAccuracy()
	t.Logf("weibo: ours %.4f collective %.4f on-the-fly %.4f", ours, coll, otf)
	if !(ours > coll && coll > otf) {
		t.Errorf("Fig 6(a) ordering violated: %.4f / %.4f / %.4f", ours, coll, otf)
	}
}

// TestSystemDescribe sanity-checks the facade wiring.
func TestSystemDescribe(t *testing.T) {
	_, sys := integrationWorld(t)
	desc := sys.Describe()
	if desc == "" {
		t.Fatal("empty description")
	}
	if sys.NER == nil || sys.Candidates == nil || sys.Reach == nil {
		t.Fatal("facade left components nil")
	}
	if sys.TestSet.Len() == 0 {
		t.Fatal("empty test set")
	}
}

// TestReachSubstratesInterchangeable verifies the linker produces identical
// results over the transitive closure and the naive oracle (both exact).
func TestReachSubstratesInterchangeable(t *testing.T) {
	w, _ := integrationWorld(t)
	closure := Build(w, Options{TruthComplement: true})
	naive := Build(w, Options{Reach: ReachNaive, TruthComplement: true})
	test := closure.TestSet.All()
	n := min(len(test), 120)
	for i := 0; i < n; i++ {
		tw := &test[i]
		a := closure.Linker.LinkTweet(tw)
		b := naive.Linker.LinkTweet(tw)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tweet %d mention %d: closure=%d naive=%d", tw.ID, j, a[j], b[j])
			}
		}
	}
}

// TestStreamFeedbackLoop replays a stream slice through the interactive
// update path of §3.2.2 and verifies knowledge accumulates.
func TestStreamFeedbackLoop(t *testing.T) {
	w, _ := integrationWorld(t)
	sys := Build(w, Options{TruthComplement: true})
	before := sys.CKB.TotalCount()
	test := sys.TestSet.All()
	n := min(len(test), 50)
	linked := 0
	for i := 0; i < n; i++ {
		tw := &test[i]
		got := sys.Linker.LinkTweet(tw)
		sys.Linker.Feedback(tw, got)
		for _, e := range got {
			if e != NoEntity {
				linked++
			}
		}
	}
	if sys.CKB.TotalCount() != before+int64(linked) {
		t.Fatalf("feedback added %d, want %d", sys.CKB.TotalCount()-before, linked)
	}
}
