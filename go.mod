module microlink

go 1.22
