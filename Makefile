# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench repro repro-quick examples vet fmt cover

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/linkbench all

repro-quick:
	$(GO) run ./cmd/linkbench -quick all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/personalized
	$(GO) run ./examples/newsburst
	$(GO) run ./examples/streamfeed
