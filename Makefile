# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench bench-smoke repro repro-quick examples vet fmt fmt-check cover ci profile

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Mirror of .github/workflows/ci.yml.
ci: build vet fmt-check test test-race bench-smoke

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in the bench harness
# without paying for steady-state measurements.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/linkbench all

repro-quick:
	$(GO) run ./cmd/linkbench -quick all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/personalized
	$(GO) run ./examples/newsburst
	$(GO) run ./examples/streamfeed

# Profile the linking hot path: runs the per-stage latency experiment with
# CPU and heap profiling enabled (see EXPERIMENTS.md, "Profiling").
profile:
	$(GO) run ./cmd/linkbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof stages
	@echo ""
	@echo "profiles written to ./cpu.pprof and ./mem.pprof — inspect with:"
	@echo "  go tool pprof -top cpu.pprof"
	@echo "  go tool pprof -top mem.pprof"
