# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race race bench bench-smoke bench-index repro repro-quick examples vet lint lint-json lint-advisory fuzz-smoke fmt fmt-check cover ci profile snapshot-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis (internal/lint): lock discipline on
# annotated fields, context propagation, map-order determinism, dropped
# errors. Fails on any diagnostic; suppress only with a justified
# //nolint:microlint/<analyzer> comment (see README "Static analysis").
lint:
	$(GO) run ./cmd/microlint ./...

# Same diagnostics as `lint` but as a JSON report on stdout (the file CI
# uploads as an artifact), including the per-analyzer wall-time table
# from the worker-pool runner. `-only`/`-skip` narrow the analyzer set,
# e.g. `go run ./cmd/microlint -only durcheck,publishcheck ./...`.
lint-json:
	$(GO) run ./cmd/microlint -timing ./... > microlint.json || true
	@cat microlint.json

# Non-blocking advisory lane: racecheck in suggestion mode proposes
# `// microlint:guarded-by <mu>` annotations for fields it proves are
# consistently locked but unannotated. Always exits 0; CI publishes the
# output as an artifact for review, never as a gate.
lint-advisory:
	$(GO) run ./cmd/microlint -advisory ./... | tee microlint-advisory.txt

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Mirror of .github/workflows/ci.yml: `ci` is the fast lane, `race` the
# separate race-detector lane (run both before merging concurrency work).
ci: build vet lint fmt-check test bench-smoke fuzz-smoke snapshot-smoke

test:
	$(GO) test -vet=all ./...

test-race:
	$(GO) test -vet=all -race ./...

# The CI race lane: every test twice under the race detector. -count=2
# defeats test caching and gives racy interleavings a second roll. The
# firehose smoke drives the streaming ingest pipeline end to end (query
# workers + mid-stream copy-on-swap) under the race detector.
race:
	$(GO) test -race -count=2 ./...
	GOMAXPROCS=4 $(GO) test -race ./internal/reach/...
	$(GO) run -race ./cmd/linkbench -quick firehose

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in the bench harness
# without paying for steady-state measurements.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Reach-index construction/size/query benchmark: Go benchmarks for the
# 2-hop build and query hot path, then the JSON artefact BENCH_reach.json
# that EXPERIMENTS.md cites (serial vs parallel build, size delta,
# steady-state query allocations).
# -workers-sweep auto emits one record per worker count (1,2,4) on
# multi-core machines and falls back to the single parallel record on a
# single-CPU box; the wait gate fails the run if merge+barrier ever grows
# back past 25% of the parallel build.
bench-index:
	$(GO) test -run=NONE -bench='BuildTwoHop|TwoHopQuery' -benchmem ./internal/reach
	$(GO) run ./cmd/linkbench -out BENCH_reach.json -workers-sweep auto -max-wait-frac 0.25 index

# Durability smoke: snapshot a streaming system mid-firehose, reopen the
# data directory, and byte-compare top-k answers against the original
# (the runner exits non-zero on any divergence). The crash-shaped version
# of the same check (SIGKILL mid-stream) runs in `make test` as
# TestCrashRecovery.
snapshot-smoke:
	$(GO) run ./cmd/linkbench -quick restart

# A few seconds of coverage-guided fuzzing per target. Targets are named
# individually: -fuzz accepts only one match per package.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzTokenize -fuzztime=5s ./internal/textutil
	$(GO) test -run=NONE -fuzz=FuzzNormalizePhrase -fuzztime=5s ./internal/textutil
	$(GO) test -run=NONE -fuzz=FuzzWithinEditDistance -fuzztime=5s ./internal/textutil
	$(GO) test -run=NONE -fuzz=FuzzDecodeLinkRequest -fuzztime=5s ./internal/httpapi
	$(GO) test -run=NONE -fuzz=FuzzCFGBuild -fuzztime=5s ./internal/lint
	$(GO) test -run=NONE -fuzz=FuzzLocksetTransfer -fuzztime=5s ./internal/lint

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/linkbench all

repro-quick:
	$(GO) run ./cmd/linkbench -quick all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/personalized
	$(GO) run ./examples/newsburst
	$(GO) run ./examples/streamfeed

# Profile the linking hot path: runs the per-stage latency experiment with
# CPU and heap profiling enabled (see EXPERIMENTS.md, "Profiling").
profile:
	$(GO) run ./cmd/linkbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof stages
	@echo ""
	@echo "profiles written to ./cpu.pprof and ./mem.pprof — inspect with:"
	@echo "  go tool pprof -top cpu.pprof"
	@echo "  go tool pprof -top mem.pprof"
