// Personalized: the paper's Fig. 1 scenario end to end — the same
// ambiguous query returns different search results for users in different
// communities, misspelled queries still resolve through the fuzzy
// candidate index, and a user with no interest in any existing meaning
// gets an empty answer (the Appendix D new-entity signal).
package main

import (
	"fmt"

	"microlink"
)

func main() {
	world := microlink.Generate(microlink.WorldParams{
		Seed:             3,
		Users:            800,
		Topics:           8,
		EntitiesPerTopic: 12,
		Days:             30,
	})
	sys := microlink.Build(world, microlink.Options{})
	now := world.Horizon()

	// Find an ambiguous surface whose candidates live in different topics.
	var surface string
	var cands []microlink.EntityID
	world.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 3 {
			surface, cands = form, cs
		}
	})
	fmt.Printf("query: %q — candidates:\n", surface)
	for _, e := range cands {
		fmt.Printf("  %s (community %d)\n", world.KB.Entity(e).Name, world.EntityTopic[e])
	}

	// Two searchers from the communities of the first two candidates.
	for _, e := range cands[:2] {
		user := userOfTopic(world, world.EntityTopic[e])
		results := sys.Search(user, now, surface, 2)
		fmt.Printf("\nuser %d (community %d) searches %q → %d results",
			user, world.EntityTopic[e], surface, len(results))
		if len(results) > 0 {
			top := results[0]
			fmt.Printf("; top entity %s\n", world.KB.Entity(top.Entity).Name)
			for i, r := range results[:min(3, len(results))] {
				fmt.Printf("  %d. [t=%d by u%d] %s\n", i+1, r.Posting.Time, r.Posting.User, r.Text)
			}
		} else {
			fmt.Println()
		}
	}

	// Misspelled query: the segment-based fuzzy index recovers the
	// candidates within edit distance 1.
	typo := surface[:1] + "x" + surface[2:]
	fmt.Printf("\nmisspelled query %q:\n", typo)
	user := userOfTopic(world, world.EntityTopic[cands[0]])
	if e, ok := sys.Linker.LinkMention(user, now, typo); ok {
		fmt.Printf("  still resolves to %s\n", world.KB.Entity(e).Name)
	} else {
		fmt.Println("  no candidates found")
	}

	// A user with no interest in any candidate and no active burst: every
	// candidate scores ≤ β+γ, so TopK is empty — likely a meaning missing
	// from the knowledgebase (Appendix D).
	quietTime := int64(0) // before any tweet exists, recency is zero
	for u := world.Graph.NumNodes() - 1; u >= 0; u-- {
		got := sys.Linker.TopK(microlink.UserID(u), quietTime, surface, 3)
		if len(got) == 0 {
			fmt.Printf("\nuser %d has no social-temporal evidence for %q: empty top-k → probably a new entity/meaning (Appendix D)\n", u, surface)
			break
		}
	}
}

func userOfTopic(w *microlink.World, t int) microlink.UserID {
	nb := 0
	for _, bs := range w.Broadcasters {
		nb += len(bs)
	}
	for u := nb; u < len(w.UserTopic); u++ {
		if w.UserTopic[u] == t {
			return microlink.UserID(u)
		}
	}
	return 0
}
