// Newsburst: demonstrates the temporal half of the framework (§4.2) — a
// breaking-news burst flips the ranking of an ambiguous mention, and
// recency *propagation* lets a burst on a related entity (the "NBA" of the
// cluster) lift an entity nobody has tweeted about yet.
package main

import (
	"fmt"

	"microlink"
)

func main() {
	world := microlink.Generate(microlink.WorldParams{
		Seed:             7,
		Users:            800,
		Topics:           8,
		EntitiesPerTopic: 12,
		Days:             45,
	})
	sys := microlink.Build(world, microlink.Options{})

	// Find a burst event whose entity carries an ambiguous surface form.
	type pick struct {
		ev      microlink.WorldEvent
		surface string
	}
	var chosen *pick
	for _, ev := range world.Events {
		for _, s := range world.SurfacesOf[ev.Entity][1:] { // [0] is canonical
			chosen = &pick{ev: ev, surface: s}
			break
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil {
		fmt.Println("no burst on an ambiguous entity in this world; try another seed")
		return
	}
	ev, surface := chosen.ev, chosen.surface
	burstEnt := world.KB.Entity(ev.Entity)
	fmt.Printf("burst event: %q from t=%d to t=%d\n", burstEnt.Name, ev.Start, ev.End)
	fmt.Printf("ambiguous surface: %q\n\n", surface)

	// A user with no particular interest in any candidate: recency and
	// popularity decide. Compare linking well before the burst vs at its
	// peak.
	user := microlink.UserID(world.Graph.NumNodes() - 1)
	for u := world.Graph.NumNodes() - 1; u >= 0; u-- {
		neutral := true
		for _, s := range sys.Linker.ScoreCandidates(microlink.UserID(u), ev.Start-30*86400, surface) {
			if s.Interest > 0 {
				neutral = false
				break
			}
		}
		if neutral {
			user = microlink.UserID(u)
			break
		}
	}
	fmt.Printf("linking for user %d, who has no social interest in any candidate:\n\n", user)
	for _, when := range []struct {
		label string
		t     int64
	}{
		{"long before the burst", ev.Start - 30*86400},
		{"at the peak of the burst", ev.End - 1},
	} {
		scored := sys.Linker.ScoreCandidates(user, when.t, surface)
		fmt.Printf("%s (t=%d):\n", when.label, when.t)
		for i, s := range scored {
			marker := "  "
			if s.Entity == ev.Entity {
				marker = "→ "
			}
			fmt.Printf("  %s#%d %-28s score=%.3f (recency=%.2f popularity=%.2f)\n",
				marker, i+1, world.KB.Entity(s.Entity).Name, s.Score, s.Recency, s.Popularity)
		}
		fmt.Println()
	}

	// Recency propagation: a strongly related entity (same cluster in the
	// propagation network) gains recency from the burst even with zero
	// direct postings in the window.
	cluster := sys.Recency.Clusters(ev.Entity)
	if len(cluster) <= 1 {
		fmt.Println("burst entity is unclustered; no propagation to show")
		return
	}
	fmt.Printf("propagation cluster of %q has %d entities:\n", burstEnt.Name, len(cluster))
	for _, e := range cluster {
		if e == ev.Entity {
			continue
		}
		direct := sys.CKB.RecentCount(e, ev.End-1, 3*86400)
		prop := sys.Recency.Propagated(e, ev.End-1)
		fmt.Printf("  %-28s direct recent postings=%-3d propagated recency=%.2f\n",
			world.KB.Entity(e).Name, direct, prop)
	}
}
