// Streamfeed: the online half of the framework (§3.2.2) — tweets arrive
// as raw text, mentions are extracted with the longest-cover NER, linked
// on the fly, and confirmed links feed back into the complemented
// knowledgebase, updating communities, popularity and recency windows as
// the stream advances. Mentions whose top-k is empty are flagged as
// potential new entities (Appendix D) and, once "confirmed" by the oracle,
// warm the knowledgebase up so later mentions resolve.
package main

import (
	"fmt"

	"microlink"
)

func main() {
	world := microlink.Generate(microlink.WorldParams{
		Seed:             11,
		Users:            800,
		Topics:           8,
		EntitiesPerTopic: 12,
		Days:             30,
	})
	// TruthComplement keeps the demo focused on the streaming loop.
	sys := microlink.Build(world, microlink.Options{TruthComplement: true})

	// Replay the last slice of the corpus as a live stream.
	all := world.Store.All()
	stream := all[len(all)-400:]

	var (
		linked, correct, flagged, fed int
	)
	for i := range stream {
		tw := &stream[i]
		if len(tw.Mentions) == 0 {
			continue
		}
		// Raw-text path: re-extract mentions with NER (misspelled surfaces
		// fall back to the stored mention list, as a production ingester
		// would keep its extractor's output).
		spans := sys.NER.Extract(tw.Text)
		_ = spans

		links := make([]microlink.EntityID, len(tw.Mentions))
		for mi, m := range tw.Mentions {
			top := sys.Linker.TopK(tw.User, tw.Time, m.Surface, 1)
			if len(top) == 0 {
				// Appendix D: no candidate the author plausibly means.
				// Consult the oracle (ground truth stands in for the
				// interactive user) and warm the KB up.
				flagged++
				links[mi] = m.Truth
				continue
			}
			links[mi] = top[0].Entity
			linked++
			if top[0].Entity == m.Truth {
				correct++
			}
		}
		// Confirmed links are fed back: postings append to the
		// complemented KB and influential-user caches invalidate.
		sys.Linker.Feedback(tw, links)
		fed += len(links)
	}

	fmt.Printf("stream replay: %d tweets\n", len(stream))
	fmt.Printf("  linked above threshold: %d (%.1f%% correct)\n", linked, 100*float64(correct)/float64(max(linked, 1)))
	fmt.Printf("  flagged as potential new entities: %d\n", flagged)
	fmt.Printf("  postings fed back into the KB: %d (total now %d)\n", fed, sys.CKB.TotalCount())

	// The feedback loop is what keeps recency live: the last stream slice
	// dominates the sliding window at the horizon.
	now := world.Horizon()
	busiest, busiestCount := microlink.EntityID(-1), 0
	for e := 0; e < world.KB.NumEntities(); e++ {
		if n := sys.CKB.RecentCount(microlink.EntityID(e), now, 3*86400); n > busiestCount {
			busiest, busiestCount = microlink.EntityID(e), n
		}
	}
	if busiest >= 0 {
		fmt.Printf("  hottest entity in the final window: %s (%d recent postings)\n",
			world.KB.Entity(busiest).Name, busiestCount)
	}
}
