// Quickstart: generate a small synthetic world, build the full linking
// stack, and link a few mentions — the 60-second tour of the public API.
package main

import (
	"fmt"
	"time"

	"microlink"
)

func main() {
	// 1. Generate a world: a followee–follower network, a knowledgebase
	//    with ambiguous surface forms, and a tweet stream with ground
	//    truth. Everything is deterministic in the seed.
	world := microlink.Generate(microlink.WorldParams{
		Seed:             1,
		Users:            600,
		Topics:           8,
		EntitiesPerTopic: 12,
		Days:             30,
	})
	fmt.Printf("world: %d users, %d entities, %d tweets\n",
		world.Graph.NumNodes(), world.KB.NumEntities(), world.Store.Len())

	// 2. Build the system: complement the KB by running the collective
	//    linker over active users (§3.2.1), construct the weighted
	//    reachability index, the influence estimator, and the recency
	//    scorer.
	sys := microlink.Build(world, microlink.Options{})
	fmt.Println(sys.Describe())

	// 3. Pick an ambiguous mention and two users from different
	//    communities, then link.
	var surface string
	var cands []microlink.EntityID
	world.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 3 {
			surface, cands = form, cs
		}
	})
	fmt.Printf("\nmention %q is ambiguous between:\n", surface)
	for _, e := range cands {
		fmt.Printf("  - %s (%s)\n", world.KB.Entity(e).Name, world.KB.Entity(e).Category)
	}

	now := world.Horizon()
	for _, topic := range []int{world.EntityTopic[cands[0]], world.EntityTopic[cands[1]]} {
		user := pickUserOfTopic(world, topic)
		scored := sys.Linker.ScoreCandidates(user, now, surface)
		fmt.Printf("\nuser %d (community %d) → %q links to %s\n",
			user, topic, surface, world.KB.Entity(scored[0].Entity).Name)
		for _, s := range scored {
			fmt.Printf("  %-28s score=%.3f (interest=%.2f recency=%.2f popularity=%.2f)\n",
				world.KB.Entity(s.Entity).Name, s.Score, s.Interest, s.Recency, s.Popularity)
		}
	}

	// 4. End-to-end over raw text: NER → candidates → link.
	tw := world.Store.At(world.Store.Len() - 1)
	spans := sys.NER.Extract(tw.Text)
	fmt.Printf("\nraw tweet %q\n", tw.Text)
	for _, sp := range spans {
		if e, ok := sys.Linker.LinkMention(tw.User, tw.Time, sp.Surface); ok {
			fmt.Printf("  mention %q → %s\n", sp.Surface, world.KB.Entity(e).Name)
		}
	}

	// 5. The system's metrics registry has been recording all along: print
	//    where the Eq. 1 pipeline spent its time across the runs above.
	fmt.Println("\nper-stage latency (sys.Linker.StageStats):")
	stats := sys.Linker.StageStats()
	for _, stage := range []string{"candidate", "popularity", "recency", "interest"} {
		s := stats[stage]
		fmt.Printf("  %-11s n=%-3d p50=%-10v p95=%v\n", stage, s.Count,
			time.Duration(s.Quantile(0.50)*float64(time.Second)).Round(10*time.Nanosecond),
			time.Duration(s.Quantile(0.95)*float64(time.Second)).Round(10*time.Nanosecond))
	}
}

// pickUserOfTopic returns a non-broadcaster user whose primary topic is t.
func pickUserOfTopic(w *microlink.World, t int) microlink.UserID {
	nb := 0
	for _, bs := range w.Broadcasters {
		nb += len(bs)
	}
	for u := nb; u < len(w.UserTopic); u++ {
		if w.UserTopic[u] == t {
			return microlink.UserID(u)
		}
	}
	return 0
}
