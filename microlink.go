// Package microlink is a from-scratch reproduction of "Microblog Entity
// Linking with Social Temporal Context" (SIGMOD 2015): an on-the-fly
// entity linker for microblog streams that scores candidate entities by
// user interest (weighted reachability over the followee–follower network
// to influential community members), entity recency (sliding-window bursts
// with PageRank-style propagation between related entities), and entity
// popularity.
//
// The package is a thin facade: it re-exports the building blocks from the
// internal packages and wires them into a ready-to-query System. Typical
// use:
//
//	world := microlink.Generate(microlink.WorldParams{Seed: 1})
//	sys := microlink.Build(world, microlink.Options{})
//	entity, ok := sys.Linker.LinkMention(user, now, "jordan")
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every table and figure of the paper.
package microlink

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"microlink/internal/baseline"
	"microlink/internal/candidate"
	"microlink/internal/core"
	"microlink/internal/eval"
	"microlink/internal/graph"
	"microlink/internal/influence"
	"microlink/internal/ingest"
	"microlink/internal/kb"
	"microlink/internal/ner"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/store"
	"microlink/internal/synth"
	"microlink/internal/tweets"
)

// Re-exported building blocks. The aliases give external callers access to
// the full engine API without reaching into internal packages.
type (
	// WorldParams configures the synthetic world generator.
	WorldParams = synth.Params
	// World is a generated dataset: graph, KB, tweet corpus, events.
	World = synth.Dataset
	// WorldEvent is one scheduled burst in a generated world.
	WorldEvent = synth.Event
	// Linker is the paper's social-temporal linker.
	Linker = core.Linker
	// LinkerConfig weighs the Eq. 1 features.
	LinkerConfig = core.Config
	// Scored is a ranked candidate with its feature breakdown.
	Scored = core.Scored
	// MentionQuery is one (user, time, surface) triple for Linker.LinkBatch.
	MentionQuery = core.MentionQuery
	// BatchResult is the per-query outcome of Linker.LinkBatch.
	BatchResult = core.BatchResult
	// BatchOptions tunes the concurrent batch pipeline and interest cache.
	BatchOptions = core.BatchOptions
	// Tweet is one microblog posting.
	Tweet = tweets.Tweet
	// Mention is one entity mention inside a tweet.
	Mention = tweets.Mention
	// TweetStore is a frozen tweet corpus.
	TweetStore = tweets.Store
	// LiveStore is the append-only tweet corpus fed by the ingest
	// pipeline.
	LiveStore = tweets.LiveStore
	// KB is the base knowledgebase.
	KB = kb.KB
	// ComplementedKB carries per-entity postings (Definition 5).
	ComplementedKB = kb.Complemented
	// Posting is one confirmed (tweet, user, time) link in the
	// complemented KB.
	Posting = kb.Posting
	// EntityID identifies a knowledgebase entity.
	EntityID = kb.EntityID
	// UserID identifies a social-network user.
	UserID = kb.UserID
	// Accuracy is an evaluation tally.
	Accuracy = eval.Accuracy
	// EvalLinker is the contract shared by all evaluated linkers.
	EvalLinker = eval.Linker
	// NER is the longest-cover mention extractor.
	NER = ner.Extractor
	// CandidateIndex generates candidate entity sets (exact + fuzzy).
	CandidateIndex = candidate.Index
	// ReachIndex answers weighted reachability queries.
	ReachIndex = reach.Index
	// MetricsRegistry is the observability registry every built System
	// carries (see internal/obs): counters, gauges, latency histograms,
	// and a Prometheus text-exposition writer.
	MetricsRegistry = obs.Registry
	// HistogramSnapshot is a point-in-time histogram view with quantile
	// estimation (p50/p95/p99 via Quantile).
	HistogramSnapshot = obs.HistogramSnapshot
	// OnTheFlyBaseline is the TagMe-style comparator [14].
	OnTheFlyBaseline = baseline.OnTheFly
	// CollectiveBaseline is the batch comparator [2].
	CollectiveBaseline = baseline.Collective
	// IngestPipeline is the streaming firehose pipeline (see
	// internal/ingest and DESIGN.md §7); obtain one with
	// System.StartIngest.
	IngestPipeline = ingest.Pipeline
	// IngestConfig tunes the pipeline's queue, batching, backpressure
	// policy and rebuild cadence.
	IngestConfig = ingest.Config
	// IngestEvent is one firehose item (tweet, follow edge, feedback).
	IngestEvent = ingest.Event
	// IngestSource yields firehose events for IngestPipeline.Run.
	IngestSource = ingest.Source
	// IngestStats is a point-in-time snapshot of pipeline progress.
	IngestStats = ingest.Stats
)

// Firehose event constructors, re-exported from internal/ingest.
var (
	// TweetEvent wraps a posted tweet (nil links ⇒ link on apply).
	TweetEvent = ingest.TweetEvent
	// FollowEvent wraps a new follow edge u → v.
	FollowEvent = ingest.FollowEvent
	// FeedbackEvent wraps an explicit linking correction.
	FeedbackEvent = ingest.FeedbackEvent
)

// NoEntity marks an unlinkable mention.
const NoEntity = kb.NoEntity

// ReachKind selects the weighted reachability substrate.
type ReachKind int

// Reachability substrates (§4.1.1).
const (
	// ReachClosure is the extended transitive closure (Algorithm 1):
	// fastest queries, largest index.
	ReachClosure ReachKind = iota
	// ReachTwoHop is the extended 2-hop cover (Algorithm 2): compact
	// index, slightly slower queries.
	ReachTwoHop
	// ReachNaive answers queries by BFS with no index; only sensible for
	// tiny graphs and tests.
	ReachNaive
	// ReachDynamic is the transitive closure with incremental maintenance:
	// System.Follow repairs the index in place as new follow edges arrive,
	// instead of rebuilding (the paper's "maintenance cost" concern).
	ReachDynamic
	// ReachStreaming pairs a frozen 2-hop cover (serving queries
	// lock-free) with a dynamic closure absorbing follow edges online;
	// the ingest pipeline's rebuild manager periodically re-freezes the
	// cover and copy-on-swaps it in. Required by System.StartIngest.
	ReachStreaming
)

// Options wires a System. Zero values choose the paper's defaults:
// transitive-closure reachability with H=4, entropy influence, collective
// complementation over users with ≥10 postings, and Table 3's weights.
type Options struct {
	// Linker weighs the Eq. 1 features (Table 3 defaults when zero).
	Linker LinkerConfig
	// Batch tunes the concurrent batch-linking pipeline and the interest
	// cache (worker-pool size, intra-mention fan-out threshold, cache
	// sizing). Zero values select the defaults documented on
	// core.BatchOptions; when any field is set it takes precedence over a
	// Batch embedded in Linker.
	Batch BatchOptions
	// Reach selects the reachability substrate.
	Reach ReachKind
	// MaxHops is the reachability hop bound H (default 4).
	MaxHops int
	// InfluenceMethod selects Eq. 6 (TFIDF) or Eq. 7 (Entropy, default).
	InfluenceMethod influence.Method
	// Recency configures the sliding window and propagation (Table 3
	// defaults when zero).
	Recency recency.Options
	// ComplementTheta is the activity threshold θ of the complementation
	// corpus (default 10, the paper's D10).
	ComplementTheta int
	// TruthComplement complements the KB with ground-truth links instead
	// of running the collective linker — an oracle for controlled
	// experiments.
	TruthComplement bool
	// Candidate configures fuzzy candidate generation.
	Candidate candidate.Options
	// PrebuiltReach substitutes a previously built (or loaded) reachability
	// index; when set, Build skips index construction and ignores Reach.
	// It must have been built over the same graph (see Open).
	PrebuiltReach ReachIndex
	// Fsync syncs the write-ahead log on every append when the system is
	// bound to a data directory (Open / System.Snapshot). Off, appends
	// are flushed to the OS per batch — durable against process death
	// (kill -9) but not against power loss.
	Fsync bool
	// DisableMetrics builds the stack without hot-path instrumentation:
	// System.Metrics stays an empty registry, the linker records no stage
	// timings, and reachability queries go to the raw index. For
	// micro-benchmarks that begrudge the instrumentation's clock reads.
	DisableMetrics bool
}

// System is a fully wired linking stack over one world.
type System struct {
	World      *World
	CKB        *ComplementedKB
	Candidates *CandidateIndex
	Reach      ReachIndex
	Influence  *influence.Estimator
	Recency    *recency.Scorer
	Linker     *Linker
	NER        *NER

	// Metrics is the system's observability registry: the linker's
	// per-stage timings, reachability query histograms, and anything the
	// serving layer adds (HTTP traffic, runtime gauges). Always non-nil;
	// empty when Options.DisableMetrics is set. Expose it over HTTP with
	// Metrics.Handler() or print it with Metrics.WritePrometheus.
	Metrics *MetricsRegistry

	// TestSet holds the inactive-user tweets (≤9 postings) reserved for
	// evaluation, mirroring the paper's Dtest.
	TestSet *TweetStore

	// Live is the append-only corpus receiving streamed tweets; empty
	// until an ingest pipeline runs.
	Live *LiveStore

	ingestMu sync.Mutex      // microlint:lock-order sys-ingest
	pipe     *IngestPipeline // microlint:guarded-by ingestMu

	// persistMu serialises snapshot commits and store attachment. It is
	// acquired before every other lock a snapshot touches: the barrier
	// (ingest-apply), the rebuild manager, the store, and the state locks
	// captured under the barrier. StartIngest reads persist before
	// taking ingestMu, so sys-ingest never nests inside sys-persist's
	// subordinates.
	//
	// microlint:lock-order sys-persist < sys-ingest
	// microlint:lock-order sys-persist < ingest-apply
	// microlint:lock-order sys-persist < ingest-rebuild
	// microlint:lock-order sys-persist < store
	// microlint:lock-order sys-persist < ckb
	// microlint:lock-order sys-persist < reach-stream
	// microlint:lock-order sys-persist < tweets-live
	// microlint:lock-order sys-persist < linker
	persistMu sync.Mutex   // microlint:lock-order sys-persist
	persist   *store.Store // microlint:guarded-by persistMu — nil until Open/Snapshot binds a directory
	fsync     bool

	textOnce sync.Once
	textByID map[int64]string
}

// Generate creates a synthetic world (see internal/synth for the
// generative model and DESIGN.md §3 for why it stands in for the paper's
// Twitter/Wikipedia data).
func Generate(p WorldParams) *World { return synth.Generate(p) }

// Build assembles the full linking stack over a generated world.
func Build(w *World, opts Options) *System { return build(w, opts, nil) }

// build is Build parameterised over a pre-existing complemented KB: the
// warm-restart path (Open) supplies one restored from a snapshot segment
// so the offline complementation phase — collective linking over the
// whole active corpus — is skipped entirely.
func build(w *World, opts Options, pre *kb.Complemented) *System {
	if opts.MaxHops <= 0 {
		opts.MaxHops = reach.DefaultMaxHops
	}
	if opts.ComplementTheta <= 0 {
		opts.ComplementTheta = 10
	}

	cand := candidate.NewIndex(w.KB, opts.Candidate)

	var ckb *kb.Complemented
	switch {
	case pre != nil:
		ckb = pre
	case opts.TruthComplement:
		ckb = w.ComplementTruth(w.Store.FilterByActivity(opts.ComplementTheta, 0))
	default:
		ckb = w.ComplementCollective(w.Store.FilterByActivity(opts.ComplementTheta, 0), cand)
	}

	var rx reach.Index
	switch {
	case opts.PrebuiltReach != nil:
		rx = opts.PrebuiltReach
	default:
		rx = buildReach(w, opts)
	}

	reg := obs.NewRegistry()
	if !opts.DisableMetrics {
		switch v := unwrapReach(rx).(type) {
		case *reach.TwoHop:
			reach.PublishTwoHopBuild(v, reg)
		case *reach.Streaming:
			reach.PublishTwoHopBuild(v.Frozen(), reg)
		}
		rx = reach.Instrument(rx, reg)
	}

	inf := influence.New(ckb, opts.InfluenceMethod)
	var net *recency.PropNet
	if !opts.Recency.NoPropagation {
		theta2 := opts.Recency.Theta2
		if theta2 <= 0 {
			theta2 = 0.6
		}
		net = recency.BuildPropNet(w.KB, theta2)
	}
	rec := recency.NewScorer(ckb, net, opts.Recency)

	if opts.Batch != (BatchOptions{}) {
		opts.Linker.Batch = opts.Batch
	}
	linker := core.New(ckb, cand, rx, inf, rec, opts.Linker)
	if !opts.DisableMetrics {
		linker.Instrument(reg)
	}

	return &System{
		World:      w,
		CKB:        ckb,
		Candidates: cand,
		Reach:      rx,
		Influence:  inf,
		Recency:    rec,
		Linker:     linker,
		NER:        ner.NewExtractor(w.KB, ner.Options{}),
		Metrics:    reg,
		TestSet:    w.Store.FilterByActivity(1, 9),
		Live:       tweets.NewLiveStore(),
		fsync:      opts.Fsync,
	}
}

// unwrapReach peels the metrics wrapper off an index, returning the raw
// substrate for type-dependent operations (serialisation, incremental
// maintenance).
func unwrapReach(idx reach.Index) reach.Index {
	if x, ok := idx.(*reach.Instrumented); ok {
		return x.Unwrap()
	}
	return idx
}

func buildReach(w *World, opts Options) reach.Index {
	switch opts.Reach {
	case ReachTwoHop:
		return reach.BuildTwoHop(w.Graph, reach.TwoHopOptions{MaxHops: opts.MaxHops})
	case ReachNaive:
		return reach.NewNaive(w.Graph, opts.MaxHops)
	case ReachDynamic:
		return reach.NewDynamicClosure(w.Graph, opts.MaxHops)
	case ReachStreaming:
		return reach.NewStreaming(w.Graph, reach.TwoHopOptions{MaxHops: opts.MaxHops})
	default:
		return reach.BuildTransitiveClosure(w.Graph, reach.ClosureOptions{MaxHops: opts.MaxHops})
	}
}

// ErrNotDynamic is returned by Follow when the system was not built with
// ReachDynamic or ReachStreaming.
var ErrNotDynamic = fmt.Errorf("microlink: reachability substrate is not dynamic (build with Options{Reach: ReachDynamic} or ReachStreaming)")

// ErrNotStreaming is returned by StartIngest when the system was not
// built with ReachStreaming.
var ErrNotStreaming = fmt.Errorf("microlink: reachability substrate is not streaming (build with Options{Reach: ReachStreaming})")

// ErrIngestRunning is returned by StartIngest when a pipeline is already
// attached to this system.
var ErrIngestRunning = fmt.Errorf("microlink: ingest pipeline already started")

// Follow records a new follow edge u → v and incrementally repairs the
// weighted reachability index — the social half of the online feedback
// loop (tweets arrive via Linker.Feedback; follows arrive here).
//
// With ReachDynamic the repair runs under the linker's write lock — the
// dynamic closure is not safe for concurrent use, and the scoring paths
// read it behind the linker's read lock — and the linker's interest
// cache is invalidated wholesale afterwards: a repaired edge can move
// any user's weighted reachability, so every cached S_in value is
// suspect.
//
// With ReachStreaming the edge lands in the live closure under the
// substrate's own lock, with no linker lock and no cache invalidation:
// scorers read only the frozen arena, which per-edge inserts never
// touch, so cached scores stay exactly right until the next
// copy-on-swap rebuild (which invalidates then).
func (s *System) Follow(u, v UserID) error {
	switch idx := unwrapReach(s.Reach).(type) {
	case *reach.DynamicClosure:
		s.Linker.UpdateReachability(func() { idx.InsertEdge(u, v) })
		return nil
	case *reach.Streaming:
		idx.InsertEdge(u, v)
		return nil
	default:
		return ErrNotDynamic
	}
}

// StartIngest attaches a streaming firehose pipeline to the system and
// starts its applier and rebuild-manager goroutines. Requires
// Options.Reach = ReachStreaming (the pipeline's copy-on-swap rebuilds
// need the frozen-arena + live-closure pairing); at most one pipeline
// per system. Stop it with Pipeline.Close.
func (s *System) StartIngest(cfg IngestConfig) (*IngestPipeline, error) {
	st, ok := unwrapReach(s.Reach).(*reach.Streaming)
	if !ok {
		return nil, ErrNotStreaming
	}
	// Read the store before ingestMu: persistMu sits above sys-ingest in
	// the lock order (Snapshot holds it while querying the pipeline).
	s.persistMu.Lock()
	var journal ingest.Journal
	if s.persist != nil {
		journal = s.persist
	}
	s.persistMu.Unlock()
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.pipe != nil {
		return nil, ErrIngestRunning
	}
	p, err := ingest.New(ingest.Deps{
		Linker:  s.Linker,
		Stream:  st,
		Live:    s.Live,
		Metrics: s.Metrics,
		Journal: journal,
	}, cfg)
	if err != nil {
		return nil, err
	}
	s.pipe = p
	return p, nil
}

// Ingest returns the pipeline started with StartIngest, or nil.
func (s *System) Ingest() *IngestPipeline {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.pipe
}

// SaveReachIndex serialises a transitive-closure or 2-hop index to path.
// The naive oracle holds no index and returns an error.
//
// Deprecated: SaveReachIndex persists the reachability index alone. Use
// System.Snapshot, which captures the whole system state — KB postings,
// live tweets, graph, arena and WAL position — into a data directory.
func SaveReachIndex(path string, idx ReachIndex) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch v := unwrapReach(idx).(type) {
	case *reach.TransitiveClosure:
		_, err = v.WriteTo(f)
	case *reach.TwoHop:
		_, err = v.WriteTo(f)
	case *reach.Streaming:
		// The frozen arena is the serializable half; the live closure is
		// rebuilt from the graph on load.
		_, err = v.Frozen().WriteTo(f)
	default:
		err = fmt.Errorf("microlink: index type %T is not serialisable", idx)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadReachIndex reloads an index saved with SaveReachIndex, validating it
// against g. kind must match the saved index's kind.
//
// Deprecated: LoadReachIndex restores the reachability index alone. Use
// Open, which rebuilds a whole System from a data directory and replays
// the write-ahead log on top.
func LoadReachIndex(path string, g *graph.Graph, kind ReachKind) (ReachIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch kind {
	case ReachTwoHop:
		return reach.ReadTwoHop(f, g)
	case ReachClosure:
		return reach.ReadTransitiveClosure(f, g)
	default:
		return nil, fmt.Errorf("microlink: reach kind %d is not serialisable", kind)
	}
}

// OnTheFly returns the TagMe-style baseline over this system's KB.
func (s *System) OnTheFly() *OnTheFlyBaseline {
	return baseline.NewOnTheFly(s.World.KB, s.Candidates, baseline.OnTheFlyOptions{})
}

// Collective returns the batch baseline [2] whose user histories come from
// store (typically the test set, matching the paper's protocol).
func (s *System) Collective(store *TweetStore) *CollectiveBaseline {
	return baseline.NewCollective(s.World.KB, s.Candidates, store, baseline.CollectiveOptions{})
}

// Evaluate scores a linker against ground truth on ts.
func Evaluate(l EvalLinker, ts []Tweet) Accuracy { return eval.Evaluate(l, ts) }

// SearchResult is one answer of the personalized microblog search flow
// (§3.2.2, Fig. 1): a tweet retrieved because it is linked to one of the
// top-k entities of a query mention.
type SearchResult struct {
	Entity  EntityID
	Score   float64 // the entity's Eq. 1 score for the querying user
	Posting kb.Posting
	Text    string // tweet text when resolvable from the world's store
}

// Search implements personalized microblog search: mentions are extracted
// from the query, disambiguated per-user with the social-temporal scorer,
// and the postings linked to the winning entities are returned, most
// recent first. An empty result for a mention-bearing query signals the
// Appendix D case: the intended meaning is probably missing from the KB.
func (s *System) Search(user UserID, now int64, query string, k int) []SearchResult {
	spans := s.NER.Extract(query)
	var out []SearchResult
	for _, sp := range spans {
		for _, scored := range s.Linker.TopK(user, now, sp.Surface, k) {
			for _, p := range s.CKB.Postings(scored.Entity) {
				out = append(out, SearchResult{
					Entity:  scored.Entity,
					Score:   scored.Score,
					Posting: p,
					Text:    s.tweetText(p.Tweet),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Posting.Time != out[j].Posting.Time {
			return out[i].Posting.Time > out[j].Posting.Time
		}
		return out[i].Posting.Tweet > out[j].Posting.Tweet
	})
	return out
}

// tweetText resolves a tweet id against the world's store (linear scan is
// avoided via the store's time ordering only when ids are dense; fall back
// to a map built lazily).
func (s *System) tweetText(id int64) string {
	s.textOnce.Do(func() {
		s.textByID = make(map[int64]string, s.World.Store.Len())
		for _, tw := range s.World.Store.All() {
			s.textByID[tw.ID] = tw.Text
		}
	})
	return s.textByID[id]
}

// Describe returns a one-paragraph summary of the system's configuration,
// for CLI banners and experiment logs.
func (s *System) Describe() string {
	cfg := s.Linker.Config()
	return fmt.Sprintf(
		"microlink: %d users / %d entities / %d tweets; weights α=%.2f β=%.2f γ=%.2f; influence=%s; reach index=%T (%.1f MB)",
		s.World.Graph.NumNodes(), s.World.KB.NumEntities(), s.World.Store.Len(),
		cfg.WInterest, cfg.WRecency, cfg.WPopularity,
		s.Influence.Method(), unwrapReach(s.Reach), float64(s.Reach.SizeBytes())/(1<<20),
	)
}
