package ingest

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"microlink/internal/candidate"
	"microlink/internal/core"
	"microlink/internal/graph"
	"microlink/internal/influence"
	"microlink/internal/kb"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/tweets"
)

// fixture is a miniature serving stack: 32 users on a ring-with-chords
// graph behind a streaming reach substrate, 8 entities behind 4
// ambiguous surfaces.
type fixture struct {
	stream *reach.Streaming
	linker *core.Linker
	live   *tweets.LiveStore
	reg    *obs.Registry
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	const users, entities = 32, 8
	b := kb.NewBuilder()
	for e := 0; e < entities; e++ {
		b.AddEntity(kb.Entity{Name: fmt.Sprintf("entity-%d", e)})
		b.AddSurface(fmt.Sprintf("s%d", e/2), kb.EntityID(e))
	}
	k := b.Build()
	ckb := kb.Complement(k)
	id := int64(0)
	for e := 0; e < entities; e++ {
		for i := 0; i < 6; i++ {
			id++
			ckb.Link(kb.EntityID(e), kb.Posting{
				Tweet: id, User: kb.UserID((e*5 + i*3) % users), Time: int64(40 + i),
			})
		}
	}
	gb := graph.NewBuilder(users)
	for u := 0; u < users; u++ {
		gb.AddEdge(kb.UserID(u), kb.UserID((u+1)%users))
		gb.AddEdge(kb.UserID(u), kb.UserID((u+7)%users))
	}
	st := reach.NewStreaming(gb.Build(), reach.TwoHopOptions{MaxHops: 3})
	inf := influence.New(ckb, influence.Entropy)
	rec := recency.NewScorer(ckb, nil, recency.Options{Tau: 100, Theta1: 3, NoPropagation: true})
	return &fixture{
		stream: st,
		linker: core.New(ckb, candidate.NewIndex(k, candidate.Options{}), st, inf, rec, core.Config{}),
		live:   tweets.NewLiveStore(),
		reg:    obs.NewRegistry(),
	}
}

func (f *fixture) pipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := New(Deps{Linker: f.linker, Stream: f.stream, Live: f.live, Metrics: f.reg}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func closePipeline(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func streamTweet(id int64, user kb.UserID) *tweets.Tweet {
	return &tweets.Tweet{
		ID: id, User: user, Time: 1000 + id, Text: "s0 chatter",
		Mentions: []tweets.Mention{{Surface: "s0", Truth: kb.NoEntity}},
	}
}

func TestNewRejectsMissingDeps(t *testing.T) {
	if _, err := New(Deps{}, Config{}); err == nil {
		t.Fatal("New accepted empty deps")
	}
}

// TestPipelineAppliesEvents pushes one event of each kind through the
// pipeline and checks each mutation path fired: the live corpus grew,
// the live closure absorbed the edge, the feedback landed in the KB, and
// staleness reflects the unrebuilt edge until a forced swap clears it.
func TestPipelineAppliesEvents(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{})
	ctx := context.Background()

	if err := p.Submit(ctx, TweetEvent(streamTweet(1, 3), nil)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(ctx, FollowEvent(2, 19)); err != nil {
		t.Fatal(err)
	}
	fbTweet := streamTweet(2, 4)
	if err := p.Submit(ctx, FeedbackEvent(fbTweet, []kb.EntityID{1})); err != nil {
		t.Fatal(err)
	}
	closePipeline(t, p)

	st := p.Stats()
	if st.AppliedTweets != 1 || st.AppliedFollows != 1 || st.AppliedFeedback != 1 {
		t.Fatalf("applied = %+v, want 1/1/1", st)
	}
	if f.live.Len() != 1 {
		t.Errorf("live store len = %d, want 1", f.live.Len())
	}
	// (2, 19) is not a ring/chord edge, so it must have been new.
	if st.InsertedEdges != 1 {
		t.Errorf("inserted edges = %d, want 1", st.InsertedEdges)
	}
	if st.Staleness != 1 {
		t.Errorf("staleness = %d, want 1 before rebuild", st.Staleness)
	}

	p.ForceRebuild()
	st = p.Stats()
	if st.Staleness != 0 {
		t.Errorf("staleness = %d after forced rebuild, want 0", st.Staleness)
	}
	if st.Rebuilds != 1 || st.Swaps != 1 {
		t.Errorf("rebuilds/swaps = %d/%d, want 1/1", st.Rebuilds, st.Swaps)
	}
	// The swapped-in arena serves the new edge: 2 → 19 at distance 1.
	if r := f.stream.R(2, 19); r != 1 {
		t.Errorf("R(2,19) = %v after swap, want 1", r)
	}
}

// TestRebuildThreshold checks the applier kicks the rebuild manager once
// enough edges accumulate, without any manual ForceRebuild.
func TestRebuildThreshold(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{RebuildAfterEdges: 4})
	ctx := context.Background()

	for i := 0; i < 8; i++ {
		// Long chords, none in the seed graph.
		if err := p.Submit(ctx, FollowEvent(kb.UserID(i), kb.UserID((i+13)%32))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Swaps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold rebuild never fired: %+v", p.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	closePipeline(t, p)
}

// TestRebuildInterval checks the timer path: staleness left behind by a
// too-high edge threshold is cleared by the periodic rebuild.
func TestRebuildInterval(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{RebuildAfterEdges: -1, RebuildInterval: 10 * time.Millisecond})
	ctx := context.Background()
	if err := p.Submit(ctx, FollowEvent(5, 20)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Swaps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval rebuild never fired: %+v", p.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	closePipeline(t, p)
}

// TestCloseDrainsAndRejects: everything buffered before Close applies;
// intake afterwards is refused on both paths; double Close errors.
func TestCloseDrainsAndRejects(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{Queue: 256, MaxBatch: 8})
	ctx := context.Background()

	const n = 100
	for i := 0; i < n; i++ {
		if err := p.Submit(ctx, TweetEvent(streamTweet(int64(i+1), kb.UserID(i%32)), nil)); err != nil {
			t.Fatal(err)
		}
	}
	closePipeline(t, p)

	if got := p.Stats().AppliedTweets; got != n {
		t.Fatalf("applied %d of %d buffered tweets after Close", got, n)
	}
	if p.Offer(FollowEvent(1, 2)) {
		t.Error("Offer accepted after Close")
	}
	if err := p.Submit(ctx, FollowEvent(1, 2)); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := p.Close(cctx); err != ErrClosed {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

// TestOfferShedsWhenSaturated hammers a one-slot queue; the producer far
// outruns the applier (which repairs the dynamic closure per batch), so
// some offers must shed — and every shed must be counted.
func TestOfferShedsWhenSaturated(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{Queue: 1, MaxBatch: 1})

	accepted, shed := 0, 0
	for i := 0; i < 5000; i++ {
		if p.Offer(FollowEvent(kb.UserID(i%32), kb.UserID((i+11)%32))) {
			accepted++
		} else {
			shed++
		}
	}
	closePipeline(t, p)
	st := p.Stats()
	if shed == 0 {
		t.Skip("applier kept up with 5000 offers on a 1-slot queue; shed path covered elsewhere")
	}
	if st.Dropped != int64(shed) {
		t.Errorf("dropped counter = %d, want %d", st.Dropped, shed)
	}
	if st.AppliedFollows != int64(accepted) {
		t.Errorf("applied follows = %d, want %d accepted", st.AppliedFollows, accepted)
	}
}

// TestMetricsRegistered checks the satellite metric names all exist in
// the registry after a burst of traffic.
func TestMetricsRegistered(t *testing.T) {
	f := newFixture(t)
	p := f.pipeline(t, Config{})
	ctx := context.Background()
	if err := p.Submit(ctx, FollowEvent(1, 14)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(ctx, TweetEvent(streamTweet(1, 2), nil)); err != nil {
		t.Fatal(err)
	}
	closePipeline(t, p)
	p.ForceRebuild()

	for _, name := range []string{
		"microlink_ingest_queue_depth",
		"microlink_ingest_events_total",
		"microlink_ingest_dropped_total",
		"microlink_ingest_rebuild_seconds",
		"microlink_ingest_staleness_events",
		"microlink_ingest_rebuilds_total",
	} {
		if !registryHas(f.reg, name) {
			t.Errorf("metric %s not registered", name)
		}
	}
}

func registryHas(reg *obs.Registry, name string) bool {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return false
	}
	return strings.Contains(buf.String(), name)
}
