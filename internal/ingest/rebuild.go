package ingest

import (
	"time"

	"microlink/internal/obs"
	"microlink/internal/reach"
)

// rebuildLoop is the rebuild-manager goroutine: it waits for a threshold
// kick from the applier, an interval tick, or shutdown. Every trigger
// funnels into rebuild, which no-ops when the frozen arena is already
// current, so spurious wakeups are cheap.
func (p *Pipeline) rebuildLoop() {
	defer close(p.rebuildDone)
	var tick <-chan time.Time
	if p.cfg.RebuildInterval > 0 {
		t := time.NewTicker(p.cfg.RebuildInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.rebuild(false)
		case <-tick:
			p.rebuild(false)
		}
	}
}

// ForceRebuild synchronously rebuilds and installs a fresh arena even
// when staleness is zero. It is the deterministic variant the soak and
// determinism tests (and the firehose bench) use to place swaps at known
// stream positions; concurrent rebuilds serialise on rebuildMu.
func (p *Pipeline) ForceRebuild() { p.rebuild(true) }

// rebuild re-freezes the 2-hop arena from the live graph and
// copy-on-swaps it into the serving path. The expensive build runs
// outside every serving lock — the snapshot briefly holds the streaming
// substrate's read side, nothing more — and only the Install runs under
// the linker's write lock (via UpdateReachability), which flushes the
// interest cache in the same critical section so scorers atomically move
// from the old arena to the new one.
func (p *Pipeline) rebuild(force bool) {
	p.rebuildMu.Lock()
	defer p.rebuildMu.Unlock()
	st := p.deps.Stream
	if !force && st.Staleness() == 0 {
		return
	}
	sp := obs.StartSpan(p.met.rebuildSeconds)
	th, at := st.Rebuild()
	p.deps.Linker.UpdateReachability(func() {
		st.Install(th, at)
	})
	sp.Stop()
	p.rebuilds.Add(1)
	p.met.rebuilds.Inc()
	p.met.staleness.Set(float64(st.Staleness()))
	if p.deps.Metrics != nil {
		reach.PublishTwoHopBuild(th, p.deps.Metrics)
	}
}
