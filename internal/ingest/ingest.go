// Package ingest implements the streaming firehose pipeline that keeps a
// running linker incrementally fresh: a staged, bounded-queue conduit
// accepting tweet, follow-edge and feedback events and routing them into
// the serving stack's existing mutation paths, plus a background rebuild
// manager that periodically re-freezes the 2-hop reachability arena and
// copy-on-swaps it in without ever blocking queries.
//
// # Stages
//
// Events enter through Offer (non-blocking; drops with a counter when the
// queue is full) or Submit (blocks with context cancellation) into one
// bounded channel. A single applier goroutine drains it, coalescing up to
// Config.MaxBatch pending events per round so follow edges amortise one
// lock acquisition across the batch, and applies each kind to its
// mutation path:
//
//   - tweets append to the live corpus (tweets.LiveStore) and, unless
//     pre-linked, run through Linker.LinkTweet; the resulting links feed
//     Linker.Feedback so the comprehensive KB and influence caches track
//     the stream (disable with Config.NoFeedback),
//   - follow edges batch into reach.Streaming.InsertEdges, updating the
//     live dynamic closure while the frozen query arena stays untouched,
//   - feedback events call Linker.Feedback directly.
//
// # Staleness and rebuilds
//
// Queries are served lock-free from the frozen 2-hop arena, so every
// applied follow edge widens the gap between the live graph and the
// serving index. That gap is the pipeline's staleness
// (microlink_ingest_staleness_events). When it reaches
// Config.RebuildAfterEdges — or every Config.RebuildInterval, whichever
// fires first — the rebuild manager snapshots the live adjacency, runs
// the parallel 2-hop builder off the hot path, and installs the new
// arena inside Linker.UpdateReachability, whose write lock makes the
// swap plus interest-cache flush atomic with respect to scorers.
// Staleness then returns to zero (minus any edges that arrived during
// the build). Queries observe bounded staleness, never a torn index.
package ingest

import (
	"context"
	"errors"
	"time"

	"microlink/internal/core"
	"microlink/internal/kb"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/store"
	"microlink/internal/tweets"
)

// Kind discriminates firehose events.
type Kind uint8

const (
	// KindTweet is a newly posted tweet (Event.Tweet, optionally
	// pre-linked via Event.Links).
	KindTweet Kind = iota
	// KindFollow is a new follow edge Event.U → Event.V.
	KindFollow
	// KindFeedback is an explicit (tweet, links) correction applied to
	// the comprehensive KB.
	KindFeedback
)

// String names the kind as used by the events_total metric label.
func (k Kind) String() string {
	switch k {
	case KindTweet:
		return "tweet"
	case KindFollow:
		return "follow"
	case KindFeedback:
		return "feedback"
	default:
		return "unknown"
	}
}

// Event is one firehose item. Use the constructors; zero fields that a
// kind does not consume are ignored.
type Event struct {
	Kind  Kind
	Tweet *tweets.Tweet // KindTweet, KindFeedback
	Links []kb.EntityID // KindFeedback; for KindTweet nil means "link on apply"
	U, V  kb.UserID     // KindFollow: U starts following V
}

// TweetEvent wraps a posted tweet. links may be nil, in which case the
// applier resolves them with Linker.LinkTweet before feeding back.
func TweetEvent(tw *tweets.Tweet, links []kb.EntityID) Event {
	return Event{Kind: KindTweet, Tweet: tw, Links: links}
}

// FollowEvent wraps a new follow edge u → v.
func FollowEvent(u, v kb.UserID) Event {
	return Event{Kind: KindFollow, U: u, V: v}
}

// FeedbackEvent wraps an explicit linking correction.
func FeedbackEvent(tw *tweets.Tweet, links []kb.EntityID) Event {
	return Event{Kind: KindFeedback, Tweet: tw, Links: links}
}

// Source yields firehose events. Next blocks until an event is ready,
// the stream ends (io.EOF), or ctx is cancelled. Pipeline.Run drains a
// Source into the pipeline under the configured backpressure policy.
type Source interface {
	Next(ctx context.Context) (Event, error)
}

// Config tunes a Pipeline. The zero value selects all defaults.
type Config struct {
	// Queue is the bounded intake capacity. ≤ 0 selects DefaultQueue.
	Queue int
	// MaxBatch bounds how many pending events one applier round
	// coalesces. ≤ 0 selects DefaultMaxBatch.
	MaxBatch int
	// BlockOnFull selects the backpressure policy used by Run: true
	// blocks the source (Submit), false sheds load at intake (Offer,
	// counted in microlink_ingest_dropped_total). Direct Offer/Submit
	// callers choose per call.
	BlockOnFull bool
	// RebuildAfterEdges triggers a background arena rebuild once that
	// many follow edges have been applied beyond the frozen snapshot.
	// 0 selects DefaultRebuildAfterEdges; < 0 disables the threshold.
	RebuildAfterEdges int
	// RebuildInterval additionally rebuilds on a timer when staleness
	// is non-zero. 0 disables the timer.
	RebuildInterval time.Duration
	// NoFeedback stops applied tweets from feeding their links back
	// into the comprehensive KB (explicit KindFeedback events still
	// apply).
	NoFeedback bool
}

// Pipeline defaults.
const (
	DefaultQueue             = 1024
	DefaultMaxBatch          = 64
	DefaultRebuildAfterEdges = 512
)

// Journal receives the durable tee of applied mutations: the applier
// appends one record per event, per batch, while holding the apply lock.
// *store.Store satisfies it. Append must not call back into the pipeline.
type Journal interface {
	Append(recs []store.Record) error
}

// Deps wires a Pipeline into a serving stack. Linker and Stream are
// required; Live defaults to a fresh store, Metrics may be nil (all
// instruments become no-ops), and Journal may be nil (no durable tee; a
// persistence layer can attach one later via Barrier).
type Deps struct {
	Linker  *core.Linker
	Stream  *reach.Streaming
	Live    *tweets.LiveStore
	Metrics *obs.Registry
	Journal Journal
}

// ErrClosed is returned by Submit and Close after the pipeline has been
// closed.
var ErrClosed = errors.New("ingest: pipeline closed")

// errDeps reports a New call missing a required dependency.
var errDeps = errors.New("ingest: Deps.Linker and Deps.Stream are required")

// Stats is a point-in-time snapshot of pipeline progress.
type Stats struct {
	AppliedTweets   int64 // tweets appended to the live corpus
	AppliedFollows  int64 // follow events applied (including duplicates)
	AppliedFeedback int64 // explicit feedback events applied
	InsertedEdges   int64 // follow edges that were new to the live graph
	Dropped         int64 // events shed at intake (Offer on a full queue)
	Rebuilds        int64 // background arena rebuilds completed
	Swaps           int64 // arenas installed by copy-on-swap (normally equal to Rebuilds)
	QueueDepth      int   // events currently buffered
	Staleness       int64 // edges applied but not yet in the frozen arena
	JournalFailures int64 // batches whose WAL tee failed (state applied, durability lost)
}
