package ingest

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"microlink/internal/graph"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/store"
	"microlink/internal/tweets"
)

// Pipeline is the staged firehose conduit described in the package
// comment. Construct with New; events enter via Offer/Submit/Run and are
// applied by a single background goroutine, so all mutation paths see a
// serialised event order. Close drains and stops both background
// goroutines.
//
// Locking. sendMu protects the intake channel against send-on-closed
// races: every sender holds the read side for the duration of its send,
// and Close flips closed and closes the channel under the write side, so
// no send can be in flight when the channel closes. rebuildMu serialises
// rebuilds (threshold kick, timer and ForceRebuild can race) and sits
// above every lock a rebuild takes: the streaming substrate's snapshot
// lock, the builder pool, and the linker's write lock for the install.
// applyMu serialises batch application against the snapshot barrier: the
// applier holds it for the whole of apply (mutations plus the WAL tee),
// and Barrier holds it while capturing live state and rotating the WAL,
// so a snapshot never splits a batch between segments and log.
//
// microlint:lock-order ingest-rebuild < linker
// microlint:lock-order ingest-rebuild < reach-stream
// microlint:lock-order ingest-rebuild < reach-build
// microlint:lock-order ingest-apply < linker
// microlint:lock-order ingest-apply < reach-stream
// microlint:lock-order ingest-apply < tweets-live
// microlint:lock-order ingest-apply < ckb
// microlint:lock-order ingest-apply < store
type Pipeline struct {
	deps Deps
	cfg  Config

	in chan Event

	sendMu sync.RWMutex // microlint:lock-order ingest-send
	closed bool         // microlint:guarded-by sendMu

	applyMu sync.Mutex // microlint:lock-order ingest-apply
	journal Journal    // microlint:guarded-by applyMu — nil until a store attaches

	rebuildMu   sync.Mutex // microlint:lock-order ingest-rebuild
	kick        chan struct{}
	stop        chan struct{}
	done        chan struct{}
	rebuildDone chan struct{}

	appliedTweets   atomic.Int64
	appliedFollows  atomic.Int64
	appliedFeedback atomic.Int64
	insertedEdges   atomic.Int64
	dropped         atomic.Int64
	rebuilds        atomic.Int64
	journalFails    atomic.Int64

	met metrics
}

// New validates deps, fills cfg defaults, and starts the applier and
// rebuild-manager goroutines. The pipeline runs until Close.
func New(deps Deps, cfg Config) (*Pipeline, error) {
	if deps.Linker == nil || deps.Stream == nil {
		return nil, errDeps
	}
	if deps.Live == nil {
		deps.Live = tweets.NewLiveStore()
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.RebuildAfterEdges == 0 {
		cfg.RebuildAfterEdges = DefaultRebuildAfterEdges
	}
	p := &Pipeline{
		deps:        deps,
		cfg:         cfg,
		journal:     deps.Journal,
		in:          make(chan Event, cfg.Queue),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		rebuildDone: make(chan struct{}),
		met:         newMetrics(deps.Metrics),
	}
	go p.applier()
	go p.rebuildLoop()
	return p, nil
}

// Offer enqueues ev without blocking, reporting whether it was accepted.
// A full queue sheds the event and bumps microlink_ingest_dropped_total;
// a closed pipeline reports false without counting a drop.
func (p *Pipeline) Offer(ev Event) bool {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.in <- ev:
		return true
	default:
		p.dropped.Add(1)
		p.met.dropped.Inc()
		return false
	}
}

// Submit enqueues ev, blocking until the queue has room, the pipeline
// closes, or ctx is cancelled.
func (p *Pipeline) Submit(ctx context.Context, ev Event) error {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.in <- ev:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run drains src into the pipeline under the configured backpressure
// policy until the source ends (io.EOF, returned as nil), errors, or ctx
// is cancelled. With BlockOnFull unset, events that find the queue full
// are shed (counted) and Run keeps going.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	for {
		ev, err := src.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if p.cfg.BlockOnFull {
			if err := p.Submit(ctx, ev); err != nil {
				return err
			}
		} else {
			p.Offer(ev)
		}
	}
}

// Close stops intake, waits for the applier to drain every buffered
// event, then stops the rebuild manager. ctx bounds the wait; on
// cancellation the background goroutines are left to finish on their
// own. Close is not idempotent: a second call returns ErrClosed.
func (p *Pipeline) Close(ctx context.Context) error {
	p.sendMu.Lock()
	if p.closed {
		p.sendMu.Unlock()
		return ErrClosed
	}
	p.closed = true
	close(p.in)
	p.sendMu.Unlock()

	select {
	case <-p.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	close(p.stop)
	select {
	case <-p.rebuildDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// Stats snapshots pipeline progress.
func (p *Pipeline) Stats() Stats {
	return Stats{
		AppliedTweets:   p.appliedTweets.Load(),
		AppliedFollows:  p.appliedFollows.Load(),
		AppliedFeedback: p.appliedFeedback.Load(),
		InsertedEdges:   p.insertedEdges.Load(),
		Dropped:         p.dropped.Load(),
		Rebuilds:        p.rebuilds.Load(),
		Swaps:           p.deps.Stream.Swaps(),
		QueueDepth:      len(p.in),
		Staleness:       p.deps.Stream.Staleness(),
		JournalFailures: p.journalFails.Load(),
	}
}

// applier is the single consumer goroutine: it drains the intake
// channel, coalescing up to MaxBatch already-pending events per round so
// a burst of follow edges costs one closure lock instead of one each,
// and applies the batch. It exits when Close closes the channel, after
// applying everything buffered before the close.
func (p *Pipeline) applier() {
	defer close(p.done)
	batch := make([]Event, 0, p.cfg.MaxBatch)
	for {
		ev, ok := <-p.in
		if !ok {
			return
		}
		batch = append(batch[:0], ev)
	coalesce:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case ev, ok := <-p.in:
				if !ok {
					p.apply(batch)
					p.met.queueDepth.Set(0)
					return
				}
				batch = append(batch, ev)
			default:
				break coalesce
			}
		}
		p.apply(batch)
		p.met.queueDepth.Set(float64(len(p.in)))
	}
}

// apply routes one coalesced batch into the mutation paths. Tweets and
// feedback apply in arrival order; follow edges accumulate across the
// batch and land in one InsertEdges call at the end — reordering them
// past tweets is unobservable because scoring reads only the frozen
// arena, which no per-edge insert touches.
//
// The whole batch — mutations plus the WAL tee — runs under applyMu, so
// a snapshot barrier observes batches whole: every mutation it captures
// in segments has its record behind the rotation point, and every record
// ahead of it replays onto state that does not contain it yet. Tweet
// records carry the links actually fed back (nil when feedback was off),
// so replay reapplies the stream without re-running the linker.
func (p *Pipeline) apply(batch []Event) {
	p.applyMu.Lock()
	defer p.applyMu.Unlock()
	var pairs [][2]graph.NodeID
	var recs []store.Record
	if p.journal != nil {
		recs = make([]store.Record, 0, len(batch))
	}
	for i := range batch {
		ev := &batch[i]
		switch ev.Kind {
		case KindTweet:
			p.deps.Live.Append(*ev.Tweet)
			links := ev.Links
			if links == nil {
				links = p.deps.Linker.LinkTweet(ev.Tweet)
			}
			fed := links
			if p.cfg.NoFeedback {
				fed = nil
			} else {
				p.deps.Linker.Feedback(ev.Tweet, links)
			}
			if recs != nil {
				recs = append(recs, store.TweetRecord(ev.Tweet, fed))
			}
			p.appliedTweets.Add(1)
			p.met.evTweet.Inc()
		case KindFollow:
			pairs = append(pairs, [2]graph.NodeID{ev.U, ev.V})
			if recs != nil {
				recs = append(recs, store.FollowRecord(ev.U, ev.V))
			}
		case KindFeedback:
			p.deps.Linker.Feedback(ev.Tweet, ev.Links)
			if recs != nil {
				recs = append(recs, store.FeedbackRecord(ev.Tweet, ev.Links))
			}
			p.appliedFeedback.Add(1)
			p.met.evFeedback.Inc()
		}
	}
	if len(recs) > 0 {
		// A failed append loses durability for this batch, not liveness:
		// serving state is already updated, so count and continue.
		if err := p.journal.Append(recs); err != nil {
			p.journalFails.Add(1)
			p.met.journalFails.Inc()
		}
	}
	if len(pairs) == 0 {
		return
	}
	n := p.deps.Stream.InsertEdges(pairs)
	p.insertedEdges.Add(int64(n))
	p.appliedFollows.Add(int64(len(pairs)))
	p.met.evFollow.Add(uint64(len(pairs)))
	st := p.deps.Stream.Staleness()
	p.met.staleness.Set(float64(st))
	if p.cfg.RebuildAfterEdges > 0 && st >= int64(p.cfg.RebuildAfterEdges) {
		select {
		case p.kick <- struct{}{}:
		default: // a rebuild is already pending
		}
	}
}

// Barrier runs fn with batch application frozen: no batch is mid-apply
// and none can start until fn returns. The snapshot path captures live
// state (postings, tweets) and rotates the WAL inside fn, making the
// segment/log split exact; fn receives a setter so it can attach (or
// replace) the journal under the same critical section.
func (p *Pipeline) Barrier(fn func(setJournal func(Journal))) {
	p.applyMu.Lock()
	defer p.applyMu.Unlock()
	fn(func(j Journal) { p.journal = j })
}

// RebuildForSnapshot synchronously rebuilds and installs a fresh arena —
// ForceRebuild keeping the (graph, arena, edge-count) triple so the
// persistence path can write the graph the arena was built from.
func (p *Pipeline) RebuildForSnapshot() (*graph.Graph, *reach.TwoHop, int64) {
	p.rebuildMu.Lock()
	defer p.rebuildMu.Unlock()
	sp := obs.StartSpan(p.met.rebuildSeconds)
	g, th, at := p.deps.Stream.RebuildSnapshot()
	p.deps.Linker.UpdateReachability(func() {
		p.deps.Stream.Install(th, at)
	})
	sp.Stop()
	p.rebuilds.Add(1)
	p.met.rebuilds.Inc()
	p.met.staleness.Set(float64(p.deps.Stream.Staleness()))
	if p.deps.Metrics != nil {
		reach.PublishTwoHopBuild(th, p.deps.Metrics)
	}
	return g, th, at
}

// metrics are the pipeline's instruments (satellite of DESIGN.md §7).
// All fields stay nil — and every update a no-op — when Deps.Metrics is
// nil. The per-kind counters are resolved once here so the applier's hot
// path never touches the registry.
type metrics struct {
	queueDepth     *obs.Gauge
	evTweet        *obs.Counter
	evFollow       *obs.Counter
	evFeedback     *obs.Counter
	dropped        *obs.Counter
	rebuilds       *obs.Counter
	rebuildSeconds *obs.Histogram
	staleness      *obs.Gauge
	journalFails   *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	ev := reg.CounterVec("microlink_ingest_events_total",
		"Firehose events applied, by kind.", "kind")
	return metrics{
		queueDepth: reg.Gauge("microlink_ingest_queue_depth",
			"Events buffered in the ingest intake queue."),
		evTweet:    ev.With(KindTweet.String()),
		evFollow:   ev.With(KindFollow.String()),
		evFeedback: ev.With(KindFeedback.String()),
		dropped: reg.Counter("microlink_ingest_dropped_total",
			"Events shed at intake because the queue was full."),
		rebuilds: reg.Counter("microlink_ingest_rebuilds_total",
			"Background arena rebuilds completed."),
		rebuildSeconds: reg.Histogram("microlink_ingest_rebuild_seconds",
			"Duration of copy-on-swap 2-hop arena rebuilds.", nil),
		staleness: reg.Gauge("microlink_ingest_staleness_events",
			"Follow edges applied to the live closure but not yet reflected in the frozen arena."),
		journalFails: reg.Counter("microlink_ingest_journal_failures_total",
			"Applied batches whose WAL tee failed (state mutated, durability lost)."),
	}
}
