// Package cli implements the interactive console behind cmd/linkcli: a
// small command loop over a built System, factored out of the binary so
// the command surface is unit-testable.
package cli

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"microlink"
)

// Run drives the console: it reads commands from in and writes results to
// out until EOF or the quit command.
func Run(sys *microlink.System, in io.Reader, out io.Writer) {
	world := sys.World
	user := microlink.UserID(world.Graph.NumNodes() - 1)
	now := world.Horizon()
	nextTweetID := int64(1 << 40)

	prompt := func() { fmt.Fprintf(out, "u%d@t%d> ", user, now) }
	sc := bufio.NewScanner(in)
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "", "#":
		case "quit", "exit":
			return
		case "help":
			fmt.Fprintln(out, `commands:
  user N          switch the acting user
  now T           set the clock (unix seconds; "end" = world horizon)
  link MENTION    score all candidates of a mention
  topk MENTION    top-3 candidates above the new-entity threshold
  tweet TEXT      extract mentions, link them, feed back into the KB
  search QUERY    personalized microblog search
  entity ID       show one entity
  events          list burst events
  whoami          show the acting user's social profile
  stats           corpus and index statistics
  quit`)
		case "user":
			if n, err := strconv.Atoi(rest); err == nil && n >= 0 && n < world.Graph.NumNodes() {
				user = microlink.UserID(n)
			} else {
				fmt.Fprintln(out, "invalid user")
			}
		case "now":
			if rest == "end" {
				now = world.Horizon()
			} else if t, err := strconv.ParseInt(rest, 10, 64); err == nil {
				now = t
			} else {
				fmt.Fprintln(out, "invalid time")
			}
		case "link":
			scored := sys.Linker.ScoreCandidates(user, now, rest)
			if len(scored) == 0 {
				fmt.Fprintln(out, "no candidates")
				break
			}
			for i, s := range scored {
				fmt.Fprintf(out, "  #%d %-28s score=%.3f interest=%.2f recency=%.2f popularity=%.2f\n",
					i+1, world.KB.Entity(s.Entity).Name, s.Score, s.Interest, s.Recency, s.Popularity)
			}
		case "topk":
			top := sys.Linker.TopK(user, now, rest, 3)
			if len(top) == 0 {
				fmt.Fprintln(out, "empty top-k: probably a new entity or meaning (Appendix D)")
				break
			}
			for i, s := range top {
				fmt.Fprintf(out, "  #%d %s (%.3f)\n", i+1, world.KB.Entity(s.Entity).Name, s.Score)
			}
		case "tweet":
			spans := sys.NER.Extract(rest)
			if len(spans) == 0 {
				fmt.Fprintln(out, "no mentions found")
				break
			}
			tw := microlink.Tweet{ID: nextTweetID, User: user, Time: now, Text: rest}
			nextTweetID++
			for _, sp := range spans {
				tw.Mentions = append(tw.Mentions, microlink.Mention{Surface: sp.Surface, Truth: microlink.NoEntity})
			}
			links := sys.Linker.LinkTweet(&tw)
			for i, e := range links {
				if e == microlink.NoEntity {
					fmt.Fprintf(out, "  %q → (unlinkable)\n", tw.Mentions[i].Surface)
				} else {
					fmt.Fprintf(out, "  %q → %s\n", tw.Mentions[i].Surface, world.KB.Entity(e).Name)
				}
			}
			sys.Linker.Feedback(&tw, links)
			fmt.Fprintln(out, "  (fed back into the knowledgebase)")
		case "search":
			hits := sys.Search(user, now, rest, 2)
			if len(hits) == 0 {
				fmt.Fprintln(out, "no results")
				break
			}
			if len(hits) > 8 {
				hits = hits[:8]
			}
			for i, h := range hits {
				fmt.Fprintf(out, "  %d. [%s, t=%d, u%d] %s\n", i+1,
					world.KB.Entity(h.Entity).Name, h.Posting.Time, h.Posting.User, h.Text)
			}
		case "entity":
			id, err := strconv.Atoi(rest)
			if err != nil || id < 0 || id >= world.KB.NumEntities() {
				fmt.Fprintln(out, "invalid entity id")
				break
			}
			e := microlink.EntityID(id)
			ent := world.KB.Entity(e)
			fmt.Fprintf(out, "  %s (%s) topic=%d\n", ent.Name, ent.Category, world.EntityTopic[e])
			fmt.Fprintf(out, "  surfaces: %v\n", world.SurfacesOf[e])
			fmt.Fprintf(out, "  postings=%d community=%d recent(3d)=%d\n",
				sys.CKB.Count(e), sys.CKB.CommunitySize(e), sys.CKB.RecentCount(e, now, 3*86400))
		case "events":
			for _, ev := range world.Events {
				live := " "
				if now >= ev.Start && now <= ev.End {
					live = "*"
				}
				fmt.Fprintf(out, "  %s %-28s [%d, %d]\n", live, world.KB.Entity(ev.Entity).Name, ev.Start, ev.End)
			}
		case "whoami":
			fmt.Fprintf(out, "  user %d, community %d, follows %d accounts, %d tweets in corpus\n",
				user, world.UserTopic[user], world.Graph.OutDegree(user), world.Store.UserTweetCount(user))
		case "stats":
			st := world.Store.Stats()
			fmt.Fprintf(out, "  %d users, %d entities, %d tweets, %d postings in KB, reach index %.1f MB\n",
				world.Graph.NumNodes(), world.KB.NumEntities(), st.Tweets,
				sys.CKB.TotalCount(), float64(sys.Reach.SizeBytes())/(1<<20))
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", cmd)
		}
		prompt()
	}
}
