package cli

import (
	"strings"
	"sync"
	"testing"

	"microlink"
)

var (
	once sync.Once
	sys  *microlink.System
)

func testSys(t *testing.T) *microlink.System {
	t.Helper()
	once.Do(func() {
		w := microlink.Generate(microlink.WorldParams{
			Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20,
		})
		sys = microlink.Build(w, microlink.Options{TruthComplement: true})
	})
	return sys
}

// run feeds a script of commands and returns the console output.
func run(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	Run(testSys(t), strings.NewReader(script), &out)
	return out.String()
}

func ambiguousSurface(t *testing.T) string {
	t.Helper()
	var surface string
	testSys(t).World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface = form
		}
	})
	return surface
}

func TestHelpAndQuit(t *testing.T) {
	out := run(t, "help\nquit\n")
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "search QUERY") {
		t.Fatalf("help output: %s", out)
	}
}

func TestLinkCommand(t *testing.T) {
	s := ambiguousSurface(t)
	out := run(t, "link "+s+"\nquit\n")
	if !strings.Contains(out, "#1") || !strings.Contains(out, "score=") {
		t.Fatalf("link output: %s", out)
	}
	out = run(t, "link zzzzzz\nquit\n")
	if !strings.Contains(out, "no candidates") {
		t.Fatalf("unknown mention output: %s", out)
	}
}

func TestUserAndNowSwitch(t *testing.T) {
	out := run(t, "user 3\nnow 1000\nwhoami\nquit\n")
	if !strings.Contains(out, "u3@t1000>") {
		t.Fatalf("prompt did not update: %s", out)
	}
	if !strings.Contains(out, "user 3, community") {
		t.Fatalf("whoami output: %s", out)
	}
	out = run(t, "user -4\nnow abc\nquit\n")
	if !strings.Contains(out, "invalid user") || !strings.Contains(out, "invalid time") {
		t.Fatalf("validation output: %s", out)
	}
}

func TestNowEnd(t *testing.T) {
	horizon := testSys(t).World.Horizon()
	out := run(t, "now 5\nnow end\nquit\n")
	if !strings.Contains(out, "u399@t"+itoa(horizon)+">") {
		t.Fatalf("now end output: %s", out)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestTweetFeedbackLoop(t *testing.T) {
	s := ambiguousSurface(t)
	before := testSys(t).CKB.TotalCount()
	out := run(t, "tweet hello "+s+" world\nquit\n")
	if !strings.Contains(out, "fed back") {
		t.Fatalf("tweet output: %s", out)
	}
	if testSys(t).CKB.TotalCount() <= before {
		t.Fatal("feedback did not reach the KB")
	}
	out = run(t, "tweet no mentions whatsoever here\nquit\n")
	if !strings.Contains(out, "no mentions found") {
		t.Fatalf("mention-free tweet output: %s", out)
	}
}

func TestEntityAndEvents(t *testing.T) {
	out := run(t, "entity 0\nevents\nquit\n")
	if !strings.Contains(out, "surfaces:") || !strings.Contains(out, "postings=") {
		t.Fatalf("entity output: %s", out)
	}
	if !strings.Contains(out, "[") {
		t.Fatalf("events output: %s", out)
	}
	out = run(t, "entity 99999\nquit\n")
	if !strings.Contains(out, "invalid entity id") {
		t.Fatalf("entity validation: %s", out)
	}
}

func TestStatsAndUnknownCommand(t *testing.T) {
	out := run(t, "stats\nfrobnicate\nquit\n")
	if !strings.Contains(out, "postings in KB") {
		t.Fatalf("stats output: %s", out)
	}
	if !strings.Contains(out, `unknown command "frobnicate"`) {
		t.Fatalf("unknown command output: %s", out)
	}
}

func TestSearchCommand(t *testing.T) {
	s := ambiguousSurface(t)
	out := run(t, "search "+s+"\nquit\n")
	if !strings.Contains(out, "no results") && !strings.Contains(out, "1. [") {
		t.Fatalf("search output: %s", out)
	}
}

func TestEOFTerminates(t *testing.T) {
	out := run(t, "stats\n") // no quit: EOF ends the loop
	if !strings.Contains(out, "postings in KB") {
		t.Fatalf("output: %s", out)
	}
}
