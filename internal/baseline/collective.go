package baseline

import (
	"math"

	"microlink/internal/candidate"
	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// CollectiveOptions tunes the Shen et al. [2]-style batch linker.
type CollectiveOptions struct {
	// Lambda trades off the initial intra-tweet score against propagated
	// user interest in the PageRank-like iteration (default 0.4).
	Lambda float64
	// Iterations bounds the propagation loop (default 10).
	Iterations int
	// MinRelatedness prunes candidate-graph edges below this WLM value
	// (default 0.05) to keep the per-user graph sparse.
	MinRelatedness float64
	// Intra configures the intra-tweet seed scores.
	Intra OnTheFlyOptions
}

func (o *CollectiveOptions) fill() {
	if o.Lambda <= 0 {
		o.Lambda = 0.4
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.MinRelatedness <= 0 {
		o.MinRelatedness = 0.05
	}
	o.Intra.fill()
}

// Collective is the batch linker of [2]: it assumes each user has an
// underlying interest distribution over entities, scattered across her
// tweet history, and disambiguates all her mentions jointly. It needs the
// whole corpus (for user histories) up front — exactly the property that
// makes it unsuitable for information seekers with few tweets, which the
// paper's evaluation highlights.
type Collective struct {
	kb    *kb.KB
	cand  *candidate.Index
	store *tweets.Store
	intra *OnTheFly
	opts  CollectiveOptions
}

// NewCollective returns the collective baseline over a tweet corpus.
func NewCollective(k *kb.KB, cand *candidate.Index, store *tweets.Store, opts CollectiveOptions) *Collective {
	opts.fill()
	return &Collective{
		kb:    k,
		cand:  cand,
		store: store,
		intra: NewOnTheFly(k, cand, opts.Intra),
		opts:  opts,
	}
}

// Name implements the eval.Linker convention.
func (l *Collective) Name() string { return "collective" }

// node is one (tweet, mention, candidate) triple in the per-user graph.
type node struct {
	tweet   int // index into the user's tweet list
	mention int
	ent     kb.EntityID
	score   float64
}

// LinkUser jointly links every mention in every tweet of user u. The
// result maps tweet index (within store.ByUser(u)) to one entity per
// mention.
func (l *Collective) LinkUser(u kb.UserID) [][]kb.EntityID {
	history := l.store.ByUser(u)
	return l.linkHistory(history)
}

// LinkTweet links the mentions of tw by running collective inference over
// its author's full history and extracting the assignment for tw.
func (l *Collective) LinkTweet(tw *tweets.Tweet) []kb.EntityID {
	history := l.store.ByUser(tw.User)
	idx := -1
	for i, h := range history {
		if h.ID == tw.ID {
			idx = i
			break
		}
	}
	if idx == -1 {
		// Unknown to the corpus (e.g. a fresh stream tweet): treat the
		// tweet as a one-element history.
		history = []*tweets.Tweet{tw}
		idx = 0
	}
	return l.linkHistory(history)[idx]
}

func (l *Collective) linkHistory(history []*tweets.Tweet) [][]kb.EntityID {
	// Gather candidates for every mention of every tweet.
	var nodes []node
	type mentionRef struct{ first, n int } // node range per (tweet, mention)
	refs := make([][]mentionRef, len(history))
	for ti, tw := range history {
		ctx := contextVector(tw.Text)
		cands := make([][]candidate.Candidate, len(tw.Mentions))
		for mi, m := range tw.Mentions {
			cands[mi] = l.cand.Candidates(m.Surface)
		}
		refs[ti] = make([]mentionRef, len(tw.Mentions))
		for mi := range tw.Mentions {
			refs[ti][mi] = mentionRef{first: len(nodes), n: len(cands[mi])}
			for _, c := range cands[mi] {
				nodes = append(nodes, node{
					tweet:   ti,
					mention: mi,
					ent:     c.Entity,
					score:   l.intra.InitialScore(c.Entity, mi, cands, ctx),
				})
			}
		}
	}

	l.propagate(nodes)

	// Per-mention argmax.
	out := make([][]kb.EntityID, len(history))
	for ti := range history {
		out[ti] = make([]kb.EntityID, len(refs[ti]))
		for mi, ref := range refs[ti] {
			best, bestScore := kb.NoEntity, math.Inf(-1)
			for k := ref.first; k < ref.first+ref.n; k++ {
				if nodes[k].score > bestScore {
					best, bestScore = nodes[k].ent, nodes[k].score
				}
			}
			out[ti][mi] = best
		}
	}
	return out
}

// propagate runs the PageRank-like interest propagation of [2] over the
// candidate graph: edges connect candidates of *different* mentions with
// weight WLM(e, e′) when above the pruning threshold.
func (l *Collective) propagate(nodes []node) {
	n := len(nodes)
	if n <= 1 {
		return
	}
	type edge struct {
		to int
		w  float64
	}
	adj := make([][]edge, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if nodes[i].tweet == nodes[j].tweet && nodes[i].mention == nodes[j].mention {
				continue // same mention: candidates compete, never support
			}
			w := l.kb.Relatedness(nodes[i].ent, nodes[j].ent)
			if w < l.opts.MinRelatedness {
				continue
			}
			adj[i] = append(adj[i], edge{to: j, w: w})
			adj[j] = append(adj[j], edge{to: i, w: w})
		}
	}
	// Row-normalise.
	outSum := make([]float64, n)
	for i := range adj {
		for _, e := range adj[i] {
			outSum[i] += e.w
		}
	}
	s0 := make([]float64, n)
	cur := make([]float64, n)
	for i, nd := range nodes {
		s0[i] = nd.score
		cur[i] = nd.score
	}
	nxt := make([]float64, n)
	lam := l.opts.Lambda
	for it := 0; it < l.opts.Iterations; it++ {
		for i := 0; i < n; i++ {
			acc := 0.0
			for _, e := range adj[i] {
				if outSum[e.to] > 0 {
					acc += e.w / outSum[e.to] * cur[e.to]
				}
			}
			nxt[i] = lam*s0[i] + (1-lam)*acc
		}
		cur, nxt = nxt, cur
	}
	for i := range nodes {
		nodes[i].score = cur[i]
	}
}
