// Package baseline implements the two state-of-the-art comparators of the
// paper's evaluation (§5.1.3):
//
//   - OnTheFly — an intra-tweet linker in the style of TagMe [14]: entity
//     commonness (popularity prior), context similarity between the tweet
//     text and the entity's article terms, and topical-coherence voting
//     (WLM) between the candidates of co-occurring mentions.
//   - Collective — a batch linker in the style of Shen et al. [2]: all
//     mentions across one user's tweet history are disambiguated jointly by
//     propagating an interest distribution over a candidate-entity graph
//     with WLM edges (PageRank-like), seeded by the intra-tweet scores.
//
// The collective linker doubles as the offline knowledge-acquisition stage
// (§3.2.1) that complements the knowledgebase.
package baseline

import (
	"math"

	"microlink/internal/candidate"
	"microlink/internal/kb"
	"microlink/internal/textutil"
	"microlink/internal/tweets"
)

// OnTheFlyOptions weighs the intra-tweet features; zero values select the
// defaults (0.4 popularity, 0.3 context, 0.3 coherence).
type OnTheFlyOptions struct {
	WPopularity float64
	WContext    float64
	WCoherence  float64
}

func (o *OnTheFlyOptions) fill() {
	if o.WPopularity == 0 && o.WContext == 0 && o.WCoherence == 0 {
		o.WPopularity, o.WContext, o.WCoherence = 0.4, 0.3, 0.3
	}
}

// OnTheFly is the TagMe-style intra-tweet linker. Safe for concurrent use.
type OnTheFly struct {
	kb   *kb.KB
	cand *candidate.Index
	opts OnTheFlyOptions
}

// NewOnTheFly returns the on-the-fly baseline linker.
func NewOnTheFly(k *kb.KB, cand *candidate.Index, opts OnTheFlyOptions) *OnTheFly {
	opts.fill()
	return &OnTheFly{kb: k, cand: cand, opts: opts}
}

// Name implements the eval.Linker convention.
func (l *OnTheFly) Name() string { return "on-the-fly" }

// LinkTweet links every mention of tw independently of other tweets,
// returning one entity per mention (kb.NoEntity when no candidate exists).
func (l *OnTheFly) LinkTweet(tw *tweets.Tweet) []kb.EntityID {
	cands := make([][]candidate.Candidate, len(tw.Mentions))
	for i, m := range tw.Mentions {
		cands[i] = l.cand.Candidates(m.Surface)
	}
	ctx := contextVector(tw.Text)
	out := make([]kb.EntityID, len(tw.Mentions))
	for i := range tw.Mentions {
		out[i] = l.linkOne(i, cands, ctx)
	}
	return out
}

func (l *OnTheFly) linkOne(i int, cands [][]candidate.Candidate, ctx map[string]float64) kb.EntityID {
	own := cands[i]
	if len(own) == 0 {
		return kb.NoEntity
	}
	best, bestScore := kb.NoEntity, math.Inf(-1)
	for _, c := range own {
		s := l.opts.WPopularity*l.Commonness(c.Entity, own) +
			l.opts.WContext*l.ContextSimilarity(c.Entity, ctx) +
			l.opts.WCoherence*l.coherence(c.Entity, i, cands)
		if s > bestScore || (s == bestScore && c.Entity < best) {
			best, bestScore = c.Entity, s
		}
	}
	return best
}

// Commonness is the popularity prior of e within its candidate set,
// estimated from inlink counts (the Wikipedia-anchor commonness of TagMe).
func (l *OnTheFly) Commonness(e kb.EntityID, own []candidate.Candidate) float64 {
	var total, mine float64
	for _, c := range own {
		n := float64(len(l.kb.Inlinks(c.Entity))) + 1 // +1 smooths islands
		total += n
		if c.Entity == e {
			mine = n
		}
	}
	if total == 0 {
		return 0
	}
	return mine / total
}

// ContextSimilarity is the cosine similarity between the tweet's token
// vector and the entity's article term vector.
func (l *OnTheFly) ContextSimilarity(e kb.EntityID, ctx map[string]float64) float64 {
	terms := l.kb.Entity(e).Context
	if len(terms) == 0 || len(ctx) == 0 {
		return 0
	}
	var dot, na, nb float64
	for t, w := range terms {
		nb += float64(w) * float64(w)
		if cw, ok := ctx[t]; ok {
			dot += cw * float64(w)
		}
	}
	for _, w := range ctx {
		na += w * w
	}
	if dot == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// coherence is the WLM voting score of TagMe: candidates of the *other*
// mentions in the tweet vote for e, each vote weighted by the voter's own
// commonness.
func (l *OnTheFly) coherence(e kb.EntityID, i int, cands [][]candidate.Candidate) float64 {
	var total float64
	voters := 0
	for j, others := range cands {
		if j == i || len(others) == 0 {
			continue
		}
		var vote float64
		for _, o := range others {
			vote += l.kb.Relatedness(e, o.Entity) * l.Commonness(o.Entity, others)
		}
		total += vote
		voters++
	}
	if voters == 0 {
		return 0
	}
	return total / float64(voters)
}

// InitialScore exposes the combined intra-tweet score — the seed the
// collective linker propagates.
func (l *OnTheFly) InitialScore(e kb.EntityID, i int, cands [][]candidate.Candidate, ctx map[string]float64) float64 {
	return l.opts.WPopularity*l.Commonness(e, cands[i]) +
		l.opts.WContext*l.ContextSimilarity(e, ctx) +
		l.opts.WCoherence*l.coherence(e, i, cands)
}

// contextVector builds a normalised bag-of-words vector from tweet text.
func contextVector(text string) map[string]float64 {
	toks := textutil.Tokenize(text)
	v := make(map[string]float64, len(toks))
	for _, t := range toks {
		if k := t.Kind(); k == textutil.KindURL || k == textutil.KindUserRef {
			continue
		}
		v[t.Text]++
	}
	return v
}
