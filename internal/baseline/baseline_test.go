package baseline

import (
	"testing"

	"microlink/internal/candidate"
	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// fixture entities.
const (
	eMJBB  = kb.EntityID(0) // Michael Jordan (basketball) — popular
	eMJML  = kb.EntityID(1) // Michael Jordan (ML)
	eBulls = kb.EntityID(2)
	eNBA   = kb.EntityID(3)
	eICML  = kb.EntityID(4)
)

// fixtureKB wires a basketball cluster {MJBB, Bulls, NBA} and an ML
// cluster {MJML, ICML}; MJBB has many more inlinks (popularity prior).
func fixtureKB() *kb.KB {
	b := kb.NewBuilder()
	b.AddEntity(kb.Entity{Name: "Michael Jordan (basketball)", Context: map[string]float32{"basketball": 1, "nba": 1, "bulls": 1, "dunk": 1}})
	b.AddEntity(kb.Entity{Name: "Michael Jordan (ML)", Context: map[string]float32{"machine": 1, "learning": 1, "bayesian": 1, "icml": 1}})
	b.AddEntity(kb.Entity{Name: "Chicago Bulls", Context: map[string]float32{"basketball": 1, "chicago": 1, "nba": 1}})
	b.AddEntity(kb.Entity{Name: "NBA", Context: map[string]float32{"basketball": 1, "league": 1}})
	b.AddEntity(kb.Entity{Name: "ICML", Context: map[string]float32{"machine": 1, "learning": 1, "conference": 1}})
	// Extra article entities 5..14 to provide inlink mass.
	for i := 0; i < 10; i++ {
		b.AddEntity(kb.Entity{Name: "article"})
	}
	b.AddSurface("jordan", eMJBB)
	b.AddSurface("jordan", eMJML)
	b.AddSurface("michael jordan", eMJBB)
	b.AddSurface("michael jordan", eMJML)
	b.AddSurface("bulls", eBulls)
	b.AddSurface("nba", eNBA)
	b.AddSurface("icml", eICML)
	// Basketball cluster co-linked by articles 5..12 (8 co-linkers).
	for a := kb.EntityID(5); a <= 12; a++ {
		b.AddLink(a, eMJBB)
		b.AddLink(a, eBulls)
		b.AddLink(a, eNBA)
	}
	// ML cluster co-linked by articles 13..14.
	for a := kb.EntityID(13); a <= 14; a++ {
		b.AddLink(a, eMJML)
		b.AddLink(a, eICML)
	}
	return b.Build()
}

func fixtureIndex(k *kb.KB) *candidate.Index {
	return candidate.NewIndex(k, candidate.Options{MaxEdit: 1})
}

func mention(s string) tweets.Mention { return tweets.Mention{Surface: s} }

func TestOnTheFlyPopularityPrior(t *testing.T) {
	k := fixtureKB()
	l := NewOnTheFly(k, fixtureIndex(k), OnTheFlyOptions{})
	// Bare "jordan" with no context: the popular basketball Jordan wins.
	tw := &tweets.Tweet{Text: "jordan", Mentions: []tweets.Mention{mention("jordan")}}
	got := l.LinkTweet(tw)
	if len(got) != 1 || got[0] != eMJBB {
		t.Fatalf("got %v, want MJ (basketball) by commonness", got)
	}
}

func TestOnTheFlyContextSimilarity(t *testing.T) {
	k := fixtureKB()
	l := NewOnTheFly(k, fixtureIndex(k), OnTheFlyOptions{WContext: 1}) // context only
	tw := &tweets.Tweet{
		Text:     "jordan talk on bayesian machine learning",
		Mentions: []tweets.Mention{mention("jordan")},
	}
	if got := l.LinkTweet(tw); got[0] != eMJML {
		t.Fatalf("got %v, want MJ (ML) by context", got)
	}
}

func TestOnTheFlyCoherenceVoting(t *testing.T) {
	k := fixtureKB()
	l := NewOnTheFly(k, fixtureIndex(k), OnTheFlyOptions{WCoherence: 1}) // coherence only
	// "icml" co-occurring should pull "jordan" to the ML entity.
	tw := &tweets.Tweet{
		Text:     "jordan keynote at icml",
		Mentions: []tweets.Mention{mention("jordan"), mention("icml")},
	}
	got := l.LinkTweet(tw)
	if got[0] != eMJML || got[1] != eICML {
		t.Fatalf("got %v, want [MJML ICML]", got)
	}
	// And "bulls" should pull it to basketball.
	tw2 := &tweets.Tweet{
		Text:     "jordan and the bulls",
		Mentions: []tweets.Mention{mention("jordan"), mention("bulls")},
	}
	if got := l.LinkTweet(tw2); got[0] != eMJBB {
		t.Fatalf("got %v, want MJBB", got)
	}
}

func TestOnTheFlyUnknownMention(t *testing.T) {
	k := fixtureKB()
	l := NewOnTheFly(k, fixtureIndex(k), OnTheFlyOptions{})
	tw := &tweets.Tweet{Text: "zzz", Mentions: []tweets.Mention{mention("zzzzzzz")}}
	if got := l.LinkTweet(tw); got[0] != kb.NoEntity {
		t.Fatalf("got %v, want NoEntity", got)
	}
}

func TestOnTheFlyEmptyMentions(t *testing.T) {
	k := fixtureKB()
	l := NewOnTheFly(k, fixtureIndex(k), OnTheFlyOptions{})
	if got := l.LinkTweet(&tweets.Tweet{Text: "no mentions"}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if l.Name() != "on-the-fly" {
		t.Fatal("name")
	}
}

func historyStore() *tweets.Store {
	// User 1: heavy ML history. User 2: basketball fan. User 3: no history
	// beyond a single ambiguous tweet.
	var ts []tweets.Tweet
	id := int64(0)
	add := func(u kb.UserID, text string, ms ...tweets.Mention) *tweets.Tweet {
		id++
		ts = append(ts, tweets.Tweet{ID: id, User: u, Time: id, Text: text, Mentions: ms})
		return &ts[len(ts)-1]
	}
	for i := 0; i < 5; i++ {
		add(1, "reading about machine learning at icml", mention("icml"))
	}
	add(1, "jordan gave a talk", mention("jordan"))
	for i := 0; i < 5; i++ {
		add(2, "watching nba tonight", mention("nba"))
	}
	add(2, "jordan is the greatest", mention("jordan"))
	add(3, "jordan", mention("jordan"))
	return tweets.NewStore(ts)
}

func TestCollectiveUsesUserHistory(t *testing.T) {
	k := fixtureKB()
	store := historyStore()
	l := NewCollective(k, fixtureIndex(k), store, CollectiveOptions{})
	if l.Name() != "collective" {
		t.Fatal("name")
	}
	// The ML-heavy user's ambiguous "jordan" should go to MJML because
	// her ICML mentions propagate interest onto the ML cluster.
	var mlTweet, bbTweet *tweets.Tweet
	for _, tw := range store.ByUser(1) {
		if len(tw.Mentions) > 0 && tw.Mentions[0].Surface == "jordan" {
			mlTweet = tw
		}
	}
	for _, tw := range store.ByUser(2) {
		if len(tw.Mentions) > 0 && tw.Mentions[0].Surface == "jordan" {
			bbTweet = tw
		}
	}
	if got := l.LinkTweet(mlTweet); got[0] != eMJML {
		t.Fatalf("ML user's jordan = %v, want MJML", got)
	}
	if got := l.LinkTweet(bbTweet); got[0] != eMJBB {
		t.Fatalf("basketball user's jordan = %v, want MJBB", got)
	}
}

func TestCollectiveInactiveUserFallsBackToPrior(t *testing.T) {
	k := fixtureKB()
	store := historyStore()
	l := NewCollective(k, fixtureIndex(k), store, CollectiveOptions{})
	// User 3 has a single bare tweet: nothing to propagate, the popularity
	// prior decides — the weakness our framework targets.
	tw := store.ByUser(3)[0]
	if got := l.LinkTweet(tw); got[0] != eMJBB {
		t.Fatalf("inactive user's jordan = %v, want the prior's MJBB", got)
	}
}

func TestCollectiveUnknownTweetSingleton(t *testing.T) {
	k := fixtureKB()
	store := historyStore()
	l := NewCollective(k, fixtureIndex(k), store, CollectiveOptions{})
	fresh := &tweets.Tweet{ID: 999, User: 42, Text: "jordan", Mentions: []tweets.Mention{mention("jordan")}}
	got := l.LinkTweet(fresh)
	if len(got) != 1 || got[0] != eMJBB {
		t.Fatalf("fresh tweet linked to %v", got)
	}
}

func TestCollectiveLinkUserShape(t *testing.T) {
	k := fixtureKB()
	store := historyStore()
	l := NewCollective(k, fixtureIndex(k), store, CollectiveOptions{})
	res := l.LinkUser(1)
	if len(res) != len(store.ByUser(1)) {
		t.Fatalf("result rows = %d", len(res))
	}
	for i, tw := range store.ByUser(1) {
		if len(res[i]) != len(tw.Mentions) {
			t.Fatalf("row %d: %d assignments for %d mentions", i, len(res[i]), len(tw.Mentions))
		}
	}
}
