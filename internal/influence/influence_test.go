package influence

import (
	"math"
	"testing"

	"microlink/internal/kb"
)

// setupCKB builds a complemented KB over 4 candidate entities:
//
//	e0 Michael Jordan (basketball), e1 Michael Jordan (ML),
//	e2 Air Jordan, e3 Jordan (country)
//
// Users:
//
//	u10 = @NBAOfficial: 8 tweets about e0 only (discriminative, prolific)
//	u11 = ML expert who also likes basketball: 3 about e0, 3 about e1
//	u12 = casual: 1 tweet about e0
//	u13 = sneakerhead: 5 tweets about e2
func setupCKB() (*kb.Complemented, []kb.EntityID) {
	b := kb.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddEntity(kb.Entity{Name: "e"})
	}
	c := kb.Complement(b.Build())
	id := int64(0)
	add := func(e kb.EntityID, u kb.UserID, n int) {
		for i := 0; i < n; i++ {
			id++
			c.Link(e, kb.Posting{Tweet: id, User: u, Time: id})
		}
	}
	add(0, 10, 8)
	add(0, 11, 3)
	add(1, 11, 3)
	add(0, 12, 1)
	add(2, 13, 5)
	return c, []kb.EntityID{0, 1, 2, 3}
}

func TestInfluenceZeroWithoutPostings(t *testing.T) {
	c, cands := setupCKB()
	for _, m := range []Method{TFIDF, Entropy} {
		est := New(c, m)
		if inf := est.Influence(99, 0, cands); inf != 0 {
			t.Errorf("%v: influence of stranger = %f", m, inf)
		}
		if inf := est.Influence(10, 3, cands); inf != 0 {
			t.Errorf("%v: influence in empty community = %f", m, inf)
		}
	}
}

func TestDiscriminativeUserWinsBothMethods(t *testing.T) {
	c, cands := setupCKB()
	for _, m := range []Method{TFIDF, Entropy} {
		est := New(c, m)
		nba := est.Influence(10, 0, cands)
		mixed := est.Influence(11, 0, cands)
		casual := est.Influence(12, 0, cands)
		if nba <= mixed {
			t.Errorf("%v: @NBAOfficial (%f) should beat the mixed user (%f)", m, nba, mixed)
		}
		if nba <= casual {
			t.Errorf("%v: @NBAOfficial (%f) should beat the casual user (%f)", m, nba, casual)
		}
	}
}

func TestTFIDFPenalizesBreadth(t *testing.T) {
	c, cands := setupCKB()
	est := New(c, TFIDF)
	// u11 mentions 2 of 4 candidates → log(4/2); u10 mentions 1 → log(4/1).
	u10 := est.Influence(10, 0, cands)
	want10 := (8.0 / 12.0) * math.Log(4)
	if math.Abs(u10-want10) > 1e-9 {
		t.Errorf("u10 influence = %f, want %f", u10, want10)
	}
	u11 := est.Influence(11, 0, cands)
	want11 := (3.0 / 12.0) * math.Log(2)
	if math.Abs(u11-want11) > 1e-9 {
		t.Errorf("u11 influence = %f, want %f", u11, want11)
	}
}

func TestEntropyToleratesIncidentalPosting(t *testing.T) {
	// The paper's motivating case: an influential user who *occasionally*
	// tweets about another candidate should lose little influence under
	// the entropy estimator but a lot under tf-idf.
	b := kb.NewBuilder()
	for i := 0; i < 2; i++ {
		b.AddEntity(kb.Entity{Name: "e"})
	}
	c := kb.Complement(b.Build())
	id := int64(0)
	add := func(e kb.EntityID, u kb.UserID, n int) {
		for i := 0; i < n; i++ {
			id++
			c.Link(e, kb.Posting{Tweet: id, User: u, Time: id})
		}
	}
	// u1: 20 postings about e0, 1 incidental about e1.
	add(0, 1, 20)
	add(1, 1, 1)
	// u2: 20 postings about e0 only.
	add(0, 2, 20)
	cands := []kb.EntityID{0, 1}

	tf := New(c, TFIDF)
	en := New(c, Entropy)
	tfRatio := tf.Influence(1, 0, cands) / tf.Influence(2, 0, cands)
	enRatio := en.Influence(1, 0, cands) / en.Influence(2, 0, cands)
	if tfRatio != 0 {
		t.Errorf("tfidf ratio = %f, want 0 (log(2/2) = 0 kills u1 entirely)", tfRatio)
	}
	if enRatio < 0.15 {
		t.Errorf("entropy ratio = %f; incidental posting should not erase influence", enRatio)
	}
}

func TestTopInfluentialOrderAndK(t *testing.T) {
	c, cands := setupCKB()
	est := New(c, Entropy)
	top := est.TopInfluential(0, cands, 2)
	if len(top) != 2 || top[0] != 10 {
		t.Fatalf("top = %v", top)
	}
	all := est.TopInfluential(0, cands, 0)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	if est.Method() != Entropy {
		t.Fatal("method accessor")
	}
}

func TestTopInfluentialCacheInvalidation(t *testing.T) {
	c, cands := setupCKB()
	est := New(c, Entropy)
	before := est.TopInfluential(0, cands, 1)
	if before[0] != 10 {
		t.Fatalf("before = %v", before)
	}
	// A new hyper-active discriminative user dethrones u10 — but only
	// after invalidation.
	for i := 0; i < 50; i++ {
		c.Link(0, kb.Posting{Tweet: int64(1000 + i), User: 77, Time: int64(1000 + i)})
	}
	cached := est.TopInfluential(0, cands, 1)
	if cached[0] != 10 {
		t.Fatalf("cache should still answer 10, got %v", cached)
	}
	est.Invalidate(0)
	after := est.TopInfluential(0, cands, 1)
	if after[0] != 77 {
		t.Fatalf("after invalidation = %v", after)
	}
}

func TestMethodString(t *testing.T) {
	if TFIDF.String() != "tfidf" || Entropy.String() != "entropy" {
		t.Fatal("method names")
	}
}

func TestInfluenceEmptyCandidateSet(t *testing.T) {
	c, _ := setupCKB()
	est := New(c, TFIDF)
	if inf := est.Influence(10, 0, nil); inf != 0 {
		// |E_m| = 0 → log(0/·); guarded by mentioned == 0.
		t.Errorf("influence with empty candidate set = %f", inf)
	}
}
