// Package influence estimates user influence inside an entity's community
// (paper §4.1.2) and selects the most influential users, so that user
// interest can be measured by weighted reachability to a handful of
// discriminative accounts instead of the whole community.
//
// Two estimators are provided, matching the paper:
//
//   - TFIDF (Eq. 6):   Inf(u, U_e) = (|D_e^u| / |D_e|) · log(|E_m| / |E_m^u|)
//   - Entropy (Eq. 7): Inf(u, U_e) = (|D_e^u| / |D_e|) · 1 / entropy(u, E_m)
//
// Both depend on the candidate set E_m of the mention being linked: a user
// is influential for entity e only if her postings discriminate e from the
// *other* candidates of the same mention (the @NBAOfficial example).
package influence

import (
	"math"
	"sort"
	"strings"
	"sync"

	"microlink/internal/kb"
)

// Method selects the influence estimator. The zero value is Entropy, the
// method the paper finds superior (Fig. 4(c)) and uses by default.
type Method int

// Influence estimation methods (paper §4.1.2).
const (
	Entropy Method = iota
	TFIDF
)

// String returns the method name as used in Fig. 4(c).
func (m Method) String() string {
	if m == TFIDF {
		return "tfidf"
	}
	return "entropy"
}

// entropySmooth keeps Eq. 7 finite when a user's postings concentrate on a
// single candidate (entropy → 0, discriminativeness → ∞). The paper leaves
// this case undefined; additive smoothing preserves the ordering "more
// biased distribution ⇒ more influential" with a finite maximum, and its
// magnitude is chosen so that an *incidental* posting in another community
// (the @NBAOfficial example of §4.1.2) dents influence only mildly.
const entropySmooth = 0.1

// Estimator computes user influence over a complemented knowledgebase.
// Safe for concurrent use.
type Estimator struct {
	ckb    *kb.Complemented
	method Method

	mu    sync.RWMutex             // microlint:lock-order influence
	cache map[cacheKey][]kb.UserID // microlint:guarded-by mu
}

type cacheKey struct {
	e    kb.EntityID
	set  string // canonical encoding of the candidate set
	topK int
}

// New returns an Estimator using the given method.
func New(ckb *kb.Complemented, method Method) *Estimator {
	return &Estimator{ckb: ckb, method: method, cache: make(map[cacheKey][]kb.UserID)}
}

// Method returns the configured estimation method.
func (est *Estimator) Method() Method { return est.method }

// Influence computes Inf(u, U_e) for candidate set cands (which must
// contain e). Returns 0 when u has no postings about e.
func (est *Estimator) Influence(u kb.UserID, e kb.EntityID, cands []kb.EntityID) float64 {
	due := est.ckb.UserCount(e, u)
	if due == 0 {
		return 0
	}
	de := est.ckb.Count(e)
	if de == 0 {
		return 0
	}
	enthusiasm := float64(due) / float64(de)
	switch est.method {
	case TFIDF:
		mentioned := 0
		for _, c := range cands {
			if est.ckb.UserCount(c, u) > 0 {
				mentioned++
			}
		}
		if mentioned == 0 {
			return 0
		}
		disc := math.Log(float64(len(cands)) / float64(mentioned))
		return enthusiasm * disc
	default:
		return enthusiasm / (est.entropy(u, cands) + entropySmooth)
	}
}

// entropy computes entropy(u, E_m): the entropy of the distribution of u's
// postings across the candidate set (natural log).
func (est *Estimator) entropy(u kb.UserID, cands []kb.EntityID) float64 {
	total := 0
	counts := make([]int, len(cands))
	for i, c := range cands {
		counts[i] = est.ckb.UserCount(c, u)
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, n := range counts {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// TopInfluential returns the k most influential users of e's community
// U_e* with respect to candidate set cands, ordered by descending
// influence (ties by ascending user ID for determinism). k ≤ 0 returns the
// whole community ranked. Results are cached per (entity, candidate set,
// k) because the paper precomputes influential users during offline
// knowledge acquisition; the cache is invalidated by Invalidate when the
// feedback path appends new postings.
func (est *Estimator) TopInfluential(e kb.EntityID, cands []kb.EntityID, k int) []kb.UserID {
	key := cacheKey{e: e, set: encodeSet(cands), topK: k}
	est.mu.RLock()
	cached, ok := est.cache[key]
	est.mu.RUnlock()
	if ok {
		return cached
	}

	type scored struct {
		u   kb.UserID
		inf float64
	}
	var all []scored
	for _, u := range est.ckb.Community(e) {
		if inf := est.Influence(u, e, cands); inf > 0 {
			all = append(all, scored{u, inf})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].inf != all[j].inf {
			return all[i].inf > all[j].inf
		}
		return all[i].u < all[j].u
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	out := make([]kb.UserID, len(all))
	for i, s := range all {
		out[i] = s.u
	}

	est.mu.Lock()
	est.cache[key] = out
	est.mu.Unlock()
	return out
}

// Invalidate drops cached influential-user sets for entity e, called by the
// online feedback path after new postings are linked to e.
func (est *Estimator) Invalidate(e kb.EntityID) {
	est.mu.Lock()
	defer est.mu.Unlock()
	for key := range est.cache {
		if key.e == e {
			delete(est.cache, key)
		}
	}
}

func encodeSet(cands []kb.EntityID) string {
	sorted := append([]kb.EntityID(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for _, c := range sorted {
		b.WriteByte(byte(c))
		b.WriteByte(byte(c >> 8))
		b.WriteByte(byte(c >> 16))
		b.WriteByte(byte(c >> 24))
	}
	return b.String()
}
