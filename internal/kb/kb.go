// Package kb implements the knowledgebase of Definitions 4–5: entities,
// ambiguous surface forms (mentions) mapped to candidate entities, the
// hyperlink structure used by the Wikipedia Link-based Measure (WLM,
// Eq. 10), and the "complemented" knowledgebase in which every entity
// carries the time-stamped, author-attributed postings linked to it.
//
// The role Wikipedia plays in the paper — 29.3M mentions, 19.2M entities,
// 380M hyperlinks — is played here by a synthetically generated KB with the
// same structural properties (see internal/synth and DESIGN.md §3).
package kb

import (
	"fmt"
	"math"
	"sort"
)

// EntityID identifies an entity. IDs are dense: 0..NumEntities-1.
type EntityID = int32

// NoEntity marks the absence of an entity (e.g. an unlinkable mention).
const NoEntity EntityID = -1

// UserID identifies a microblog user; it matches graph.NodeID.
type UserID = int32

// Category classifies entities for the per-category accuracy breakdown of
// Appendix C.1.
type Category uint8

// Entity categories used in Appendix C.1.
const (
	CategoryPerson Category = iota
	CategoryLocation
	CategoryCompany
	CategoryProduct
	CategoryMovieMusic
	numCategories
)

// NumCategories is the number of entity categories.
const NumCategories = int(numCategories)

// String returns the category label used in the paper's Appendix C.1.
func (c Category) String() string {
	switch c {
	case CategoryPerson:
		return "Person"
	case CategoryLocation:
		return "Location"
	case CategoryCompany:
		return "Company"
	case CategoryProduct:
		return "Product"
	case CategoryMovieMusic:
		return "Movie&Music"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Entity is a knowledgebase entry: a unique real-world object (Def. 1).
type Entity struct {
	Name     string   // canonical title, e.g. "Michael Jordan (basketball)"
	Category Category // Appendix C.1 class
	// Context holds weighted terms from the entity's article, consumed by
	// the context-similarity feature of the baseline linkers.
	Context map[string]float32
}

// KB is the frozen knowledgebase. All methods are safe for concurrent use.
type KB struct {
	entities []Entity
	surface  map[string][]EntityID // normalised surface form → candidates
	outlinks [][]EntityID          // entity article → articles it links to (sorted)
	inlinks  [][]EntityID          // entity article → articles linking to it (sorted) = A_e
}

// Builder accumulates a knowledgebase before freezing.
type Builder struct {
	entities []Entity
	surface  map[string][]EntityID
	links    [][2]EntityID
}

// NewBuilder returns an empty knowledgebase builder.
func NewBuilder() *Builder {
	return &Builder{surface: make(map[string][]EntityID)}
}

// AddEntity registers an entity and returns its ID.
func (b *Builder) AddEntity(e Entity) EntityID {
	b.entities = append(b.entities, e)
	return EntityID(len(b.entities) - 1)
}

// AddSurface maps a (pre-normalised) surface form to a candidate entity.
// Duplicate pairs are tolerated and deduplicated at Build time.
func (b *Builder) AddSurface(form string, e EntityID) {
	b.surface[form] = append(b.surface[form], e)
}

// AddLink records a hyperlink from the article of entity `from` to the
// article of entity `to` (the raw material of WLM).
func (b *Builder) AddLink(from, to EntityID) {
	if from == to {
		return
	}
	b.links = append(b.links, [2]EntityID{from, to})
}

// Build freezes the builder into an immutable KB.
func (b *Builder) Build() *KB {
	n := len(b.entities)
	k := &KB{
		entities: b.entities,
		surface:  make(map[string][]EntityID, len(b.surface)),
		outlinks: make([][]EntityID, n),
		inlinks:  make([][]EntityID, n),
	}
	for form, cands := range b.surface {
		k.surface[form] = dedupSorted(cands)
	}
	outCount := make([]int, n)
	inCount := make([]int, n)
	for _, l := range b.links {
		outCount[l[0]]++
		inCount[l[1]]++
	}
	for i := 0; i < n; i++ {
		k.outlinks[i] = make([]EntityID, 0, outCount[i])
		k.inlinks[i] = make([]EntityID, 0, inCount[i])
	}
	for _, l := range b.links {
		k.outlinks[l[0]] = append(k.outlinks[l[0]], l[1])
		k.inlinks[l[1]] = append(k.inlinks[l[1]], l[0])
	}
	for i := 0; i < n; i++ {
		k.outlinks[i] = dedupSorted(k.outlinks[i])
		k.inlinks[i] = dedupSorted(k.inlinks[i])
	}
	return k
}

func dedupSorted(s []EntityID) []EntityID {
	if len(s) == 0 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	dst := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[dst] = s[i]
			dst++
		}
	}
	return s[:dst]
}

// NumEntities returns the number of entities (= articles, |A| in Eq. 10).
func (k *KB) NumEntities() int { return len(k.entities) }

// Entity returns the entity record for id.
func (k *KB) Entity(id EntityID) *Entity { return &k.entities[id] }

// Candidates returns the candidate entity set E_m for a normalised surface
// form, or nil when the form is unknown. The returned slice is shared and
// must not be modified.
func (k *KB) Candidates(form string) []EntityID { return k.surface[form] }

// HasSurface reports whether the exact surface form exists in the KB.
func (k *KB) HasSurface(form string) bool { _, ok := k.surface[form]; return ok }

// EachSurface calls fn for every surface form and its candidate set, in
// unspecified order. Used to build the fuzzy candidate index.
func (k *KB) EachSurface(fn func(form string, cands []EntityID)) {
	for form, cands := range k.surface {
		fn(form, cands)
	}
}

// NumSurfaces returns the number of distinct surface forms.
func (k *KB) NumSurfaces() int { return len(k.surface) }

// Inlinks returns A_e: the sorted set of articles linking to e's article.
func (k *KB) Inlinks(e EntityID) []EntityID { return k.inlinks[e] }

// Outlinks returns the sorted set of articles e's article links to.
func (k *KB) Outlinks(e EntityID) []EntityID { return k.outlinks[e] }

// Relatedness computes the Wikipedia Link-based Measure between two
// entities (Eq. 10), clamped to [0, 1]:
//
//	Rel = 1 − (log max(|A_i|,|A_j|) − log |A_i ∩ A_j|) / (log |A| − log min(|A_i|,|A_j|))
//
// Entities with no common inlinker have relatedness 0.
func (k *KB) Relatedness(ei, ej EntityID) float64 {
	if ei == ej {
		return 1
	}
	ai, aj := k.inlinks[ei], k.inlinks[ej]
	common := intersectSize(ai, aj)
	if common == 0 {
		return 0
	}
	la, lb := float64(len(ai)), float64(len(aj))
	total := float64(k.NumEntities())
	den := math.Log(total) - math.Log(math.Min(la, lb))
	if den <= 0 {
		return 1
	}
	rel := 1 - (math.Log(math.Max(la, lb))-math.Log(float64(common)))/den
	if rel < 0 {
		return 0
	}
	if rel > 1 {
		return 1
	}
	return rel
}

func intersectSize(a, b []EntityID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Stats summarises a knowledgebase the way §5.1.1 reports the Wikipedia
// dump: entity, surface and link counts plus the ambiguity profile.
type Stats struct {
	Entities          int
	Surfaces          int
	Links             int
	AmbiguousSurfaces int     // surfaces with ≥ 2 candidates
	AvgCandidates     float64 // mean |E_m| over surfaces
	MaxCandidates     int
}

// Stats computes knowledgebase statistics.
func (k *KB) Stats() Stats {
	s := Stats{Entities: k.NumEntities(), Surfaces: k.NumSurfaces()}
	totalCands := 0
	for _, cands := range k.surface {
		totalCands += len(cands)
		if len(cands) >= 2 {
			s.AmbiguousSurfaces++
		}
		if len(cands) > s.MaxCandidates {
			s.MaxCandidates = len(cands)
		}
	}
	if s.Surfaces > 0 {
		s.AvgCandidates = float64(totalCands) / float64(s.Surfaces)
	}
	for _, outs := range k.outlinks {
		s.Links += len(outs)
	}
	return s
}

// Pair is an entity pair with its WLM relatedness, produced by RelatedPairs.
type Pair struct {
	A, B EntityID
	Rel  float64
}

// RelatedPairs enumerates all entity pairs whose WLM relatedness is at
// least minRel. Rather than scoring all O(n²) pairs it only considers
// co-cited pairs — pairs sharing at least one inlinking article — found by
// expanding every article's outlink list, since WLM is zero otherwise.
func (k *KB) RelatedPairs(minRel float64) []Pair {
	type key struct{ a, b EntityID }
	seen := make(map[key]struct{})
	var pairs []Pair
	for _, outs := range k.outlinks {
		for x := 0; x < len(outs); x++ {
			for y := x + 1; y < len(outs); y++ {
				a, b := outs[x], outs[y]
				kk := key{a, b}
				if _, dup := seen[kk]; dup {
					continue
				}
				seen[kk] = struct{}{}
				if rel := k.Relatedness(a, b); rel >= minRel {
					pairs = append(pairs, Pair{A: a, B: b, Rel: rel})
				}
			}
		}
	}
	return pairs
}
