package kb

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// tinyKB builds a 6-entity KB with a clustered link structure:
// basketball cluster {0:MJ(bb), 1:Bulls, 2:NBA}, ML cluster {3:MJ(ml),
// 4:ICML}, plus 5:Jordan(country) linked to nothing. Articles inside a
// cluster link to each other.
func tinyKB() *KB {
	b := NewBuilder()
	mjbb := b.AddEntity(Entity{Name: "Michael Jordan (basketball)", Category: CategoryPerson})
	bulls := b.AddEntity(Entity{Name: "Chicago Bulls", Category: CategoryCompany})
	nba := b.AddEntity(Entity{Name: "NBA", Category: CategoryCompany})
	mjml := b.AddEntity(Entity{Name: "Michael Jordan (machine learning)", Category: CategoryPerson})
	icml := b.AddEntity(Entity{Name: "ICML", Category: CategoryCompany})
	country := b.AddEntity(Entity{Name: "Jordan (country)", Category: CategoryLocation})

	b.AddSurface("jordan", mjbb)
	b.AddSurface("jordan", mjml)
	b.AddSurface("jordan", country)
	b.AddSurface("michael jordan", mjbb)
	b.AddSurface("michael jordan", mjml)
	b.AddSurface("bulls", bulls)
	b.AddSurface("nba", nba)
	b.AddSurface("icml", icml)

	for _, from := range []EntityID{mjbb, bulls, nba} {
		for _, to := range []EntityID{mjbb, bulls, nba} {
			b.AddLink(from, to)
		}
	}
	for _, from := range []EntityID{mjml, icml} {
		for _, to := range []EntityID{mjml, icml} {
			b.AddLink(from, to)
		}
	}
	return b.Build()
}

func TestBuildBasics(t *testing.T) {
	k := tinyKB()
	if k.NumEntities() != 6 {
		t.Fatalf("entities = %d", k.NumEntities())
	}
	if k.NumSurfaces() != 5 {
		t.Fatalf("surfaces = %d", k.NumSurfaces())
	}
	cands := k.Candidates("jordan")
	if len(cands) != 3 {
		t.Fatalf("jordan candidates = %v", cands)
	}
	if k.Candidates("nosuch") != nil {
		t.Fatal("unknown surface should give nil")
	}
	if !k.HasSurface("bulls") || k.HasSurface("zzz") {
		t.Fatal("HasSurface wrong")
	}
}

func TestSurfaceDedup(t *testing.T) {
	b := NewBuilder()
	e := b.AddEntity(Entity{Name: "X"})
	b.AddSurface("x", e)
	b.AddSurface("x", e)
	k := b.Build()
	if len(k.Candidates("x")) != 1 {
		t.Fatalf("candidates = %v", k.Candidates("x"))
	}
}

func TestLinksDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder()
	a := b.AddEntity(Entity{Name: "A"})
	c := b.AddEntity(Entity{Name: "B"})
	b.AddLink(a, c)
	b.AddLink(a, c)
	b.AddLink(a, a) // ignored
	k := b.Build()
	if len(k.Outlinks(a)) != 1 || len(k.Inlinks(c)) != 1 {
		t.Fatalf("out=%v in=%v", k.Outlinks(a), k.Inlinks(c))
	}
	if len(k.Inlinks(a)) != 0 {
		t.Fatal("self link should be dropped")
	}
}

func TestRelatednessClusters(t *testing.T) {
	k := tinyKB()
	// Same-cluster entities share inlinkers → positive relatedness; cross
	// cluster → zero; isolated entity → zero. (Absolute WLM values are
	// modest at |A| = 6 because the log(|A|) normaliser is small.)
	if rel := k.Relatedness(0, 1); rel <= 0.3 {
		t.Errorf("intra-cluster relatedness = %f, want > 0.3", rel)
	}
	if rel := k.Relatedness(0, 3); rel != 0 {
		t.Errorf("cross-cluster relatedness = %f, want 0", rel)
	}
	if rel := k.Relatedness(0, 5); rel != 0 {
		t.Errorf("isolated relatedness = %f, want 0", rel)
	}
	if rel := k.Relatedness(2, 2); rel != 1 {
		t.Errorf("self relatedness = %f, want 1", rel)
	}
}

func TestRelatednessSymmetric(t *testing.T) {
	k := tinyKB()
	for i := EntityID(0); i < 6; i++ {
		for j := EntityID(0); j < 6; j++ {
			if a, b := k.Relatedness(i, j), k.Relatedness(j, i); math.Abs(a-b) > 1e-12 {
				t.Errorf("Rel(%d,%d)=%f != Rel(%d,%d)=%f", i, j, a, j, i, b)
			}
		}
	}
}

func TestRelatedPairs(t *testing.T) {
	k := tinyKB()
	pairs := k.RelatedPairs(0.3)
	// Expect exactly the basketball-cluster pairs (0,1),(0,2),(1,2). The
	// two-entity ML cluster has no *common* inlinker (each member is only
	// linked by the other), so WLM is zero there.
	if len(pairs) != 3 {
		t.Fatalf("pairs = %+v", pairs)
	}
	for _, p := range pairs {
		if p.Rel < 0.3 {
			t.Errorf("pair %+v below threshold", p)
		}
		if p.A > 2 || p.B > 2 {
			t.Errorf("unexpected cross-cluster pair %+v", p)
		}
	}
}

func TestKBStats(t *testing.T) {
	k := tinyKB()
	s := k.Stats()
	if s.Entities != 6 || s.Surfaces != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AmbiguousSurfaces != 2 { // "jordan" (3) and "michael jordan" (2)
		t.Fatalf("ambiguous = %d", s.AmbiguousSurfaces)
	}
	if s.MaxCandidates != 3 {
		t.Fatalf("max candidates = %d", s.MaxCandidates)
	}
	if s.AvgCandidates <= 1 || s.AvgCandidates >= 2 {
		t.Fatalf("avg candidates = %f", s.AvgCandidates)
	}
	if s.Links == 0 {
		t.Fatal("links missing")
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryMovieMusic.String() != "Movie&Music" || CategoryPerson.String() != "Person" {
		t.Fatal("category labels wrong")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should still print")
	}
}

func TestComplementedLinkAndCounts(t *testing.T) {
	c := Complement(tinyKB())
	c.Link(0, Posting{Tweet: 1, User: 10, Time: 100})
	c.Link(0, Posting{Tweet: 2, User: 10, Time: 200})
	c.Link(0, Posting{Tweet: 3, User: 20, Time: 300})
	c.Link(3, Posting{Tweet: 4, User: 30, Time: 250})

	if c.Count(0) != 3 || c.Count(3) != 1 || c.Count(5) != 0 {
		t.Fatalf("counts: %d %d %d", c.Count(0), c.Count(3), c.Count(5))
	}
	if c.TotalCount() != 4 {
		t.Fatalf("total = %d", c.TotalCount())
	}
	if c.UserCount(0, 10) != 2 || c.UserCount(0, 99) != 0 {
		t.Fatal("user counts wrong")
	}
	if c.CommunitySize(0) != 2 {
		t.Fatalf("community size = %d", c.CommunitySize(0))
	}
	comm := c.Community(0)
	if len(comm) != 2 {
		t.Fatalf("community = %v", comm)
	}
}

func TestRecentCountWindow(t *testing.T) {
	c := Complement(tinyKB())
	for i, ts := range []int64{100, 200, 300, 400, 500} {
		c.Link(0, Posting{Tweet: int64(i), User: 1, Time: ts})
	}
	if got := c.RecentCount(0, 500, 150); got != 2 { // window [350,500]
		t.Fatalf("recent = %d, want 2", got)
	}
	if got := c.RecentCount(0, 500, 1000); got != 5 {
		t.Fatalf("recent = %d, want 5", got)
	}
	if got := c.RecentCount(0, 1000, 100); got != 0 {
		t.Fatalf("recent = %d, want 0", got)
	}
}

func TestOutOfOrderInsertKeepsSorted(t *testing.T) {
	c := Complement(tinyKB())
	for _, ts := range []int64{300, 100, 200, 50} {
		c.Link(0, Posting{Tweet: ts, User: 1, Time: ts})
	}
	ps := c.Postings(0)
	for i := 1; i < len(ps); i++ {
		if ps[i].Time < ps[i-1].Time {
			t.Fatalf("postings unsorted: %+v", ps)
		}
	}
	if got := c.RecentCount(0, 300, 150); got != 2 { // cutoff 150 keeps 200, 300
		t.Fatalf("recent = %d", got)
	}
}

func TestEachUserCount(t *testing.T) {
	c := Complement(tinyKB())
	c.Link(0, Posting{Tweet: 1, User: 5, Time: 1})
	c.Link(0, Posting{Tweet: 2, User: 5, Time: 2})
	c.Link(0, Posting{Tweet: 3, User: 6, Time: 3})
	got := map[UserID]int{}
	c.EachUserCount(0, func(u UserID, n int) { got[u] = n })
	if got[5] != 2 || got[6] != 1 || len(got) != 2 {
		t.Fatalf("per-user counts = %v", got)
	}
}

func TestConcurrentLinkAndRead(t *testing.T) {
	c := Complement(tinyKB())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Link(EntityID(w%3), Posting{Tweet: int64(i), User: UserID(w), Time: int64(i)})
				_ = c.Count(0)
				_ = c.RecentCount(1, int64(i), 50)
				_ = c.CommunitySize(2)
			}
		}(w)
	}
	wg.Wait()
	if c.TotalCount() != 800 {
		t.Fatalf("total = %d", c.TotalCount())
	}
}

// Property: WLM relatedness is always within [0,1] and zero without common
// inlinkers, on randomly generated link structures.
func TestQuickRelatednessRange(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((r >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		b := NewBuilder()
		n := 3 + next(20)
		for i := 0; i < n; i++ {
			b.AddEntity(Entity{Name: "e"})
		}
		m := next(5 * n)
		for i := 0; i < m; i++ {
			b.AddLink(EntityID(next(n)), EntityID(next(n)))
		}
		k := b.Build()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rel := k.Relatedness(EntityID(i), EntityID(j))
				if rel < 0 || rel > 1 || math.IsNaN(rel) {
					return false
				}
				if i != j && intersectSize(k.Inlinks(EntityID(i)), k.Inlinks(EntityID(j))) == 0 && rel != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
