package kb

import (
	"fmt"
	"sort"
	"sync"
)

// Posting links one tweet to one entity inside the complemented
// knowledgebase (Definition 5): the tweet's identity, author, and
// timestamp (unix seconds).
type Posting struct {
	Tweet int64
	User  UserID
	Time  int64
}

// Complemented is the complemented knowledgebase K′ of Definition 5: the
// base KB plus, for every entity e, the list D_e of postings linked to it.
// It supports the online feedback path of §3.2.2 — newly linked tweets are
// appended under a write lock while inference reads concurrently.
type Complemented struct {
	kb *KB

	mu       sync.RWMutex       // microlint:lock-order ckb
	postings [][]Posting        // microlint:guarded-by mu — per entity, sorted by Time
	perUser  []map[UserID]int32 // microlint:guarded-by mu — per entity: |D_e^u|
	total    int64              // microlint:guarded-by mu — total postings across all entities
}

// Complement wraps a base KB into an (initially empty) complemented KB.
func Complement(k *KB) *Complemented {
	return &Complemented{
		kb:       k,
		postings: make([][]Posting, k.NumEntities()),
		perUser:  make([]map[UserID]int32, k.NumEntities()),
	}
}

// KB returns the underlying base knowledgebase.
func (c *Complemented) KB() *KB { return c.kb }

// Link appends a posting to D_e, keeping the list time-sorted. Postings
// normally arrive in stream order, so the common case is a pure append;
// out-of-order timestamps fall back to insertion.
func (c *Complemented) Link(e EntityID, p Posting) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := c.postings[e]
	if n := len(ps); n == 0 || ps[n-1].Time <= p.Time {
		c.postings[e] = append(ps, p)
	} else {
		i := sort.Search(n, func(i int) bool { return ps[i].Time > p.Time })
		ps = append(ps, Posting{})
		copy(ps[i+1:], ps[i:])
		ps[i] = p
		c.postings[e] = ps
	}
	m := c.perUser[e]
	if m == nil {
		m = make(map[UserID]int32)
		c.perUser[e] = m
	}
	m[p.User]++
	c.total++
}

// Count returns |D_e|: the number of postings linked to entity e — the
// numerator material of the popularity score (Eq. 2).
func (c *Complemented) Count(e EntityID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.postings[e])
}

// TotalCount returns the number of postings across all entities.
func (c *Complemented) TotalCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.total
}

// RecentCount returns |D_e^τ|: postings linked to e with now−tau ≤ Time ≤
// now (Eq. 9's sliding window), via two binary searches over the
// time-sorted list. The upper bound matters for evaluation over historical
// corpora: a linker replaying time "now" must not see postings from its
// future.
func (c *Complemented) RecentCount(e EntityID, now, tau int64) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ps := c.postings[e]
	cutoff := now - tau
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].Time >= cutoff })
	hi := sort.Search(len(ps), func(i int) bool { return ps[i].Time > now })
	return hi - lo
}

// UserCount returns |D_e^u|: postings by user u linked to entity e.
func (c *Complemented) UserCount(e EntityID, u UserID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int(c.perUser[e][u])
}

// CommunitySize returns |U_e|: the number of distinct users tweeting about
// e (Definition 6).
func (c *Complemented) CommunitySize(e EntityID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.perUser[e])
}

// Community returns U_e as a freshly allocated slice, sorted by user
// ID. The order matters: whole-community interest (Eq. 8) sums
// floating-point reachabilities over this slice, and float addition is
// not associative — iterating in map order would make scores differ in
// the last ulps from run to run.
func (c *Complemented) Community(e EntityID) []UserID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]UserID, 0, len(c.perUser[e]))
	for u := range c.perUser[e] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachUserCount calls fn for every (user, count) pair of entity e's
// community while holding the read lock; fn must not call back into c.
func (c *Complemented) EachUserCount(e EntityID, fn func(u UserID, count int)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for u, n := range c.perUser[e] {
		fn(u, int(n))
	}
}

// Postings returns a copy of D_e, time-sorted.
func (c *Complemented) Postings(e EntityID) []Posting {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Posting(nil), c.postings[e]...)
}

// SnapshotPostings deep-copies every posting list under one read lock —
// the persistence capture of the complemented state. Lists come out in
// the stored (time-sorted) order, so ComplementRestore reproduces the
// KB exactly.
func (c *Complemented) SnapshotPostings() [][]Posting {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]Posting, len(c.postings))
	for e, ps := range c.postings {
		if len(ps) > 0 {
			out[e] = append([]Posting(nil), ps...)
		}
	}
	return out
}

// ComplementRestore rebuilds a complemented KB from captured posting
// lists, re-deriving the per-user tallies. It is the load-side inverse of
// SnapshotPostings; the entity count must match the base KB.
func ComplementRestore(k *KB, postings [][]Posting) (*Complemented, error) {
	if len(postings) != k.NumEntities() {
		return nil, fmt.Errorf("kb: restore has %d posting lists, base KB has %d entities",
			len(postings), k.NumEntities())
	}
	c := Complement(k)
	// c is private here, but the mutation below goes through the guarded
	// fields, so hold the (uncontended) lock like every other writer.
	c.mu.Lock()
	defer c.mu.Unlock()
	for e, ps := range postings {
		if len(ps) == 0 {
			continue
		}
		c.postings[e] = append([]Posting(nil), ps...)
		m := make(map[UserID]int32, len(ps))
		for i := range ps {
			if i > 0 && ps[i].Time < ps[i-1].Time {
				return nil, fmt.Errorf("kb: restored postings for entity %d not time-sorted", e)
			}
			m[ps[i].User]++
		}
		c.perUser[e] = m
		c.total += int64(len(ps))
	}
	return c, nil
}
