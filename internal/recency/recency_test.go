package recency

import (
	"math"
	"testing"

	"microlink/internal/kb"
)

// clusterKB builds a KB with a strongly linked cluster {0,1,2} (e.g. MJ,
// Bulls, NBA), a pair {3,4} co-linked by several articles (MJml, ICML),
// and an isolated entity 5. Entities 0 and 3 share the surface "jordan",
// so a 0–3 propagation edge would be excluded even if they were related.
func clusterKB() *kb.KB {
	b := kb.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddEntity(kb.Entity{Name: "e"})
	}
	b.AddSurface("jordan", 0)
	b.AddSurface("jordan", 3)
	// Articles 6..9 act as co-linkers to force WLM > 0.
	for _, art := range []kb.EntityID{6, 7, 8, 9} {
		b.AddLink(art, 0)
		b.AddLink(art, 1)
		b.AddLink(art, 2)
	}
	for _, art := range []kb.EntityID{6, 7, 8} {
		b.AddLink(art, 3)
		b.AddLink(art, 4)
	}
	return b.Build()
}

func TestPropNetClustersAndExclusion(t *testing.T) {
	k := clusterKB()
	net := BuildPropNet(k, 0.4)
	// 0,1,2 share 4 inlinkers and 3,4 share 3; but 0–3, 0–4, 1–3 … also
	// share inlinkers (articles 6,7,8 link to all five). The same-mention
	// rule must cut 0–3 specifically.
	for _, ed := range net.Edges(0) {
		if ed.To == 3 {
			t.Fatal("same-mention edge 0–3 must be excluded")
		}
	}
	if len(net.ClusterOf(5)) != 0 {
		t.Fatal("isolated entity must be in no cluster")
	}
	if net.ClusterOf(0) == nil {
		t.Fatal("entity 0 must be clustered")
	}
	// Probabilities on each row sum to 1.
	for e := kb.EntityID(0); e < 10; e++ {
		edges := net.Edges(e)
		if len(edges) == 0 {
			continue
		}
		sum := 0.0
		for _, ed := range edges {
			sum += ed.P
			if ed.W < 0.4 {
				t.Errorf("edge below threshold survived: %+v", ed)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d probabilities sum to %f", e, sum)
		}
	}
	if net.NumEdges() == 0 || net.NumClusters() == 0 {
		t.Fatal("network should not be empty")
	}
}

func linkBurst(c *kb.Complemented, e kb.EntityID, n int, at int64) {
	for i := 0; i < n; i++ {
		c.Link(e, kb.Posting{Tweet: int64(i), User: 1, Time: at})
	}
}

func TestBurstGateTheta1(t *testing.T) {
	k := clusterKB()
	c := kb.Complement(k)
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 10, Tau: 100})
	linkBurst(c, 5, 9, 1000) // below threshold
	if got := s.Propagated(5, 1000); got != 0 {
		t.Fatalf("sub-threshold burst scored %f", got)
	}
	linkBurst(c, 5, 1, 1000) // now 10 postings
	if got := s.Propagated(5, 1000); got != 10 {
		t.Fatalf("burst = %f, want 10 (isolated entity, no propagation)", got)
	}
	// Outside the window the burst evaporates.
	if got := s.Propagated(5, 2000); got != 0 {
		t.Fatalf("stale burst scored %f", got)
	}
}

func TestPropagationReinforcesNeighbours(t *testing.T) {
	k := clusterKB()
	c := kb.Complement(k)
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100, Lambda: 0.5})
	// Burst on NBA (2) only; MJ (0) has no postings at all.
	linkBurst(c, 2, 20, 500)
	mj := s.Propagated(0, 500)
	if mj <= 0 {
		t.Fatal("propagation should lift MJ's recency above zero")
	}
	nba := s.Propagated(2, 500)
	if nba <= mj {
		t.Fatalf("source of the burst (%f) should outscore the neighbour (%f)", nba, mj)
	}
	// Without propagation MJ stays at zero (Fig. 4(d) ablation).
	noProp := NewScorer(c, nil, Options{Theta1: 5, Tau: 100, NoPropagation: true})
	if got := noProp.Propagated(0, 500); got != 0 {
		t.Fatalf("no-propagation MJ = %f", got)
	}
}

func TestPropagationStaysInsideCluster(t *testing.T) {
	k := clusterKB()
	c := kb.Complement(k)
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100})
	linkBurst(c, 2, 20, 500)
	// Entity 5 is isolated: no reinforcement can reach it.
	if got := s.Propagated(5, 500); got != 0 {
		t.Fatalf("burst leaked to isolated entity: %f", got)
	}
}

func TestScoresNormalisedOverCandidates(t *testing.T) {
	k := clusterKB()
	c := kb.Complement(k)
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100})
	linkBurst(c, 0, 20, 500)
	linkBurst(c, 3, 10, 500)
	scores := s.Scores(500, []kb.EntityID{0, 3, 5})
	sum := scores[0] + scores[1] + scores[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %f: %v", sum, scores)
	}
	if scores[0] <= scores[1] || scores[2] != 0 {
		t.Fatalf("scores = %v", scores)
	}
	// All-quiet candidate sets yield all-zero scores, not NaN.
	zero := s.Scores(99999, []kb.EntityID{0, 3, 5})
	for _, v := range zero {
		if v != 0 {
			t.Fatalf("quiet scores = %v", zero)
		}
	}
}

func TestLambdaExtreme(t *testing.T) {
	k := clusterKB()
	c := kb.Complement(k)
	linkBurst(c, 2, 20, 500)
	// λ→1: propagation contributes nothing; propagated == raw.
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100, Lambda: 0.999999})
	if got := s.Propagated(0, 500); got > 1e-3 {
		t.Fatalf("λ≈1 should suppress propagation, got %f", got)
	}
	if got := s.Propagated(2, 500); math.Abs(got-20) > 0.1 {
		t.Fatalf("λ≈1 source = %f, want ≈20", got)
	}
}

func TestScorerPanicsWithoutNet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := clusterKB()
	NewScorer(kb.Complement(k), nil, Options{})
}

func TestDefaultsFilled(t *testing.T) {
	k := clusterKB()
	s := NewScorer(kb.Complement(k), BuildPropNet(k, 0.6), Options{})
	o := s.Options()
	if o.Tau != 3*24*3600 || o.Theta1 != 10 || o.Theta2 != 0.6 || o.Lambda != 0.5 || o.Iterations != 10 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestPropagationConverges(t *testing.T) {
	// With more iterations the result must stabilise (contraction by 1−λ).
	k := clusterKB()
	c := kb.Complement(k)
	linkBurst(c, 2, 20, 500)
	a := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100, Iterations: 30}).Propagated(0, 500)
	b := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100, Iterations: 60}).Propagated(0, 500)
	if math.Abs(a-b) > 1e-6 {
		t.Fatalf("not converged: %f vs %f", a, b)
	}
}
