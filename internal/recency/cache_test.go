package recency

import (
	"math"
	"sync"
	"testing"

	"microlink/internal/kb"
)

func cachedScorer(q int64) (*Scorer, *kb.Complemented) {
	k := clusterKB()
	c := kb.Complement(k)
	s := NewScorer(c, BuildPropNet(k, 0.4), Options{Theta1: 5, Tau: 100, CacheQuantum: q})
	return s, c
}

func TestCacheHitsSameBucket(t *testing.T) {
	s, c := cachedScorer(50)
	linkBurst(c, 2, 20, 500)
	a := s.Propagated(0, 500)
	b := s.Propagated(0, 510) // same bucket (500-549)
	if a != b {
		t.Fatalf("same-bucket values differ: %f vs %f", a, b)
	}
	if s.MemoHits() == 0 {
		t.Fatal("no cache hit recorded")
	}
}

func TestCacheQuantumBoundedStaleness(t *testing.T) {
	s, c := cachedScorer(50)
	linkBurst(c, 2, 20, 500)
	within := s.Propagated(2, 549) // bucket start 500: burst visible
	if within <= 0 {
		t.Fatalf("burst invisible at 549: %f", within)
	}
	// Next bucket quantizes to 1000: the burst at t=500 has left the
	// τ=100 window.
	after := s.Propagated(2, 1001)
	if after != 0 {
		t.Fatalf("stale burst leaked into a fresh bucket: %f", after)
	}
}

func TestCacheMatchesUncachedAtBucketStart(t *testing.T) {
	cached, c1 := cachedScorer(50)
	plain, c2 := cachedScorer(0)
	for _, c := range []*kb.Complemented{c1, c2} {
		linkBurst(c, 2, 20, 500)
	}
	// At an exact bucket boundary the quantized time equals the query
	// time, so cached and uncached agree exactly.
	a := cached.Propagated(0, 500)
	b := plain.Propagated(0, 500)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("cached %f != plain %f", a, b)
	}
}

func TestCacheConcurrent(t *testing.T) {
	s, c := cachedScorer(50)
	linkBurst(c, 2, 20, 500)
	var wg sync.WaitGroup
	vals := make([]float64, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals[w] = s.Propagated(0, 500+int64(w%3))
		}(w)
	}
	wg.Wait()
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatalf("concurrent values diverge: %v", vals)
		}
	}
}
