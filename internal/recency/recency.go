// Package recency implements entity recency (paper §4.2): sliding-window
// burst detection over the complemented knowledgebase (Eq. 9) plus the
// PageRank-style recency-propagation model (Eq. 11) that lets bursts on
// highly related entities (NBA → Michael Jordan (basketball), ICML →
// Michael Jordan (ML)) reinforce each other.
//
// The propagation network is built per the paper's three heuristics: edges
// carry WLM topical relatedness (Eq. 10); edges below θ₂ are cut; edges
// between co-candidates of the same mention are removed (recency must
// discriminate candidates, not equalise them); and propagation is confined
// to the resulting clusters of strongly connected entities, which keeps
// the online cost bounded.
//
// Interpretation note. Eq. 9 normalises recency over the candidate set
// E_m, which is only known at query time, while the propagation of Eq. 11
// is mention-independent. We therefore propagate the *raw* burst signal
// (|D_e^τ| gated by θ₁) over the network and apply the candidate-set
// normalisation of Eq. 9 to the propagated scores when a query arrives.
package recency

import (
	"sort"
	"sync"

	"microlink/internal/kb"
)

// Options configures recency scoring; zero values select the paper's
// defaults from Table 3.
type Options struct {
	// Tau is the sliding-window length in seconds (default 3 days).
	Tau int64
	// Theta1 is the burst threshold: fewer than Theta1 recent postings is
	// no burst (default 10).
	Theta1 int
	// Theta2 is the relatedness threshold for propagation edges
	// (default 0.6).
	Theta2 float64
	// Lambda trades off gathered vs propagated recency in Eq. 11
	// (default 0.5).
	Lambda float64
	// Iterations bounds the propagation fixpoint loop (default 10).
	Iterations int
	// Propagate disables the propagation model when false — the ablation
	// of Fig. 4(d). Note the zero value *enables* propagation.
	NoPropagation bool
	// CacheQuantum enables memoisation of propagated cluster vectors: all
	// queries whose `now` falls into the same quantum (in seconds) share
	// one propagation run per cluster. 0 disables caching (every query
	// propagates afresh, the paper's literal behaviour); a quantum around
	// τ/10 trades bounded staleness for a large speedup on hot clusters.
	CacheQuantum int64
}

func (o *Options) fill() {
	if o.Tau <= 0 {
		o.Tau = 3 * 24 * 3600
	}
	if o.Theta1 <= 0 {
		o.Theta1 = 10
	}
	if o.Theta2 <= 0 {
		o.Theta2 = 0.6
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.5
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
}

// PropNet is the recency propagation network: thresholded, same-mention-
// pruned WLM edges partitioned into clusters (connected components — the
// "Graph-Cut" of §4.2). Immutable after construction.
type PropNet struct {
	// adjacency per member entity; only entities with ≥1 edge appear.
	adj map[kb.EntityID][]PropEdge
	// cluster id per member entity.
	cluster map[kb.EntityID]int32
	// members per cluster, ascending entity id.
	clusters [][]kb.EntityID
	// memberIdx is each member's position within its cluster slice,
	// precomputed so the propagation loop avoids a per-query index map.
	memberIdx map[kb.EntityID]int32
}

// PropEdge is one edge of the propagation network. P is the normalised
// propagation probability P(from, to) = w(from,to) / Σ_k w(from,k); RP is
// the reverse probability P(to, from), precomputed because the pull-form
// iteration of Eq. 11 consumes it on every step.
type PropEdge struct {
	To kb.EntityID
	W  float64 // raw WLM relatedness
	P  float64 // row-normalised probability
	RP float64 // reverse probability P(To, from)
}

// BuildPropNet constructs the propagation network for k with relatedness
// threshold theta2. Co-candidate pairs — entities sharing any surface form
// — are excluded per the first heuristic of §4.2.
func BuildPropNet(k *kb.KB, theta2 float64) *PropNet {
	sameMention := make(map[[2]kb.EntityID]struct{})
	k.EachSurface(func(_ string, cands []kb.EntityID) {
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				a, b := cands[i], cands[j]
				if a > b {
					a, b = b, a
				}
				sameMention[[2]kb.EntityID{a, b}] = struct{}{}
			}
		}
	})

	net := &PropNet{
		adj:     make(map[kb.EntityID][]PropEdge),
		cluster: make(map[kb.EntityID]int32),
	}
	for _, p := range k.RelatedPairs(theta2) {
		a, b := p.A, p.B
		if a > b {
			a, b = b, a
		}
		if _, excluded := sameMention[[2]kb.EntityID{a, b}]; excluded {
			continue
		}
		net.adj[p.A] = append(net.adj[p.A], PropEdge{To: p.B, W: p.Rel})
		net.adj[p.B] = append(net.adj[p.B], PropEdge{To: p.A, W: p.Rel})
	}
	// Row-normalise outgoing weights into probabilities, then fill in the
	// reverse probabilities.
	for e, edges := range net.adj {
		var sum float64
		for _, ed := range edges {
			sum += ed.W
		}
		for i := range edges {
			edges[i].P = edges[i].W / sum
		}
		net.adj[e] = edges
	}
	for e, edges := range net.adj {
		for i := range edges {
			edges[i].RP = reverseP(net, edges[i].To, e)
		}
		net.adj[e] = edges
	}
	net.findClusters()
	return net
}

// findClusters labels connected components. Seeds are visited in
// ascending entity order so that cluster IDs — and the order of the
// clusters slice — are the same on every run, not map-iteration order.
func (n *PropNet) findClusters() {
	seeds := make([]kb.EntityID, 0, len(n.adj))
	for e := range n.adj {
		seeds = append(seeds, e)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	next := int32(0)
	for _, e := range seeds {
		if _, done := n.cluster[e]; done {
			continue
		}
		// BFS flood fill.
		id := next
		next++
		queue := []kb.EntityID{e}
		n.cluster[e] = id
		var members []kb.EntityID
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			members = append(members, cur)
			for _, ed := range n.adj[cur] {
				if _, done := n.cluster[ed.To]; !done {
					n.cluster[ed.To] = id
					queue = append(queue, ed.To)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		n.clusters = append(n.clusters, members)
	}
	n.memberIdx = make(map[kb.EntityID]int32, len(n.cluster))
	for _, members := range n.clusters {
		for i, m := range members {
			n.memberIdx[m] = int32(i)
		}
	}
}

// NumClusters returns the number of clusters.
func (n *PropNet) NumClusters() int { return len(n.clusters) }

// ClusterOf returns the cluster members of entity e (including e), or nil
// when e participates in no propagation edge.
func (n *PropNet) ClusterOf(e kb.EntityID) []kb.EntityID {
	id, ok := n.cluster[e]
	if !ok {
		return nil
	}
	return n.clusters[id]
}

// Edges returns e's propagation edges (shared slice; do not modify).
func (n *PropNet) Edges(e kb.EntityID) []PropEdge { return n.adj[e] }

// NumEdges returns the number of undirected propagation edges.
func (n *PropNet) NumEdges() int {
	total := 0
	for _, edges := range n.adj {
		total += len(edges)
	}
	return total / 2
}

// Scorer computes recency scores S_r(e) (Eq. 9 + Eq. 11) over a
// complemented knowledgebase. Safe for concurrent use.
type Scorer struct {
	ckb  *kb.Complemented
	net  *PropNet
	opts Options

	mu    sync.RWMutex          // microlint:lock-order recency-memo
	memo  map[memoKey][]float64 // microlint:guarded-by mu
	memoN int64                 // microlint:guarded-by mu — hits, for introspection in benches
}

type memoKey struct {
	cluster int32
	bucket  int64
}

// NewScorer returns a Scorer. net may be nil only when opts.NoPropagation
// is set.
func NewScorer(ckb *kb.Complemented, net *PropNet, opts Options) *Scorer {
	opts.fill()
	if net == nil && !opts.NoPropagation {
		panic("recency: propagation enabled but no propagation network given")
	}
	return &Scorer{ckb: ckb, net: net, opts: opts, memo: make(map[memoKey][]float64)}
}

// Options returns the effective (defaults-filled) options.
func (s *Scorer) Options() Options { return s.opts }

// Clusters returns the propagation-network cluster containing e (including
// e itself), or nil when e is unclustered or propagation is disabled.
func (s *Scorer) Clusters(e kb.EntityID) []kb.EntityID {
	if s.net == nil {
		return nil
	}
	return s.net.ClusterOf(e)
}

// raw returns the gated burst signal of Eq. 9's numerator: |D_e^τ| when it
// reaches θ₁, else 0.
func (s *Scorer) raw(e kb.EntityID, now int64) float64 {
	n := s.ckb.RecentCount(e, now, s.opts.Tau)
	if n < s.opts.Theta1 {
		return 0
	}
	return float64(n)
}

// Propagated returns entity e's recency signal after propagation at time
// now (before candidate-set normalisation): the e-th component of the
// fixpoint of Eq. 11 computed over e's cluster only. With CacheQuantum
// set, queries within the same time bucket reuse one propagation run per
// cluster.
func (s *Scorer) Propagated(e kb.EntityID, now int64) float64 {
	if s.opts.NoPropagation {
		return s.raw(e, now)
	}
	members := s.net.ClusterOf(e)
	if members == nil {
		return s.raw(e, now)
	}
	var vec []float64
	if q := s.opts.CacheQuantum; q > 0 {
		qnow := now - now%q
		key := memoKey{cluster: s.net.cluster[e], bucket: qnow / q}
		s.mu.RLock()
		vec = s.memo[key]
		s.mu.RUnlock()
		if vec == nil {
			vec = s.propagateCluster(members, qnow)
			s.mu.Lock()
			s.memo[key] = vec
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.memoN++
			s.mu.Unlock()
		}
	} else {
		vec = s.propagateCluster(members, now)
	}
	for i, m := range members {
		if m == e {
			return vec[i]
		}
	}
	return 0
}

// MemoHits reports how many propagation runs the memo cache saved.
func (s *Scorer) MemoHits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memoN
}

// propagateCluster runs the Eq. 11 iteration over one cluster, returning
// the recency vector aligned with members.
func (s *Scorer) propagateCluster(members []kb.EntityID, now int64) []float64 {
	idx := s.net.memberIdx
	s0 := make([]float64, len(members))
	any := false
	for i, m := range members {
		s0[i] = s.raw(m, now)
		if s0[i] > 0 {
			any = true
		}
	}
	if !any {
		return s0 // all zeros
	}
	cur := append([]float64(nil), s0...)
	nxt := make([]float64, len(members))
	lam := s.opts.Lambda
	for it := 0; it < s.opts.Iterations; it++ {
		maxDelta := 0.0
		for i, m := range members {
			acc := 0.0
			// Pull formulation: S_r^i[m] = λ·S0[m] + (1−λ)·Σ_j P(j,m)·S_r^{i−1}[j],
			// with P(j,m) precomputed as the edge's reverse probability.
			for _, ed := range s.net.adj[m] {
				acc += ed.RP * cur[idx[ed.To]]
			}
			nxt[i] = lam*s0[i] + (1-lam)*acc
			if d := abs(nxt[i] - cur[i]); d > maxDelta {
				maxDelta = d
			}
		}
		cur, nxt = nxt, cur
		if maxDelta < 1e-9 {
			break
		}
	}
	return cur
}

func reverseP(n *PropNet, from, to kb.EntityID) float64 {
	for _, ed := range n.adj[from] {
		if ed.To == to {
			return ed.P
		}
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Scores computes S_r(e) for every candidate: the propagated burst signals
// normalised over the candidate set (Eq. 9's normalisation). The result
// sums to 1 when any candidate has a burst, else is all zeros.
func (s *Scorer) Scores(now int64, cands []kb.EntityID) []float64 {
	out := make([]float64, len(cands))
	var sum float64
	for i, e := range cands {
		out[i] = s.Propagated(e, now)
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}
