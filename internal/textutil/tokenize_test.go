package textutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func texts(ts []Token) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	ts := Tokenize("Jordan scored 40 points against the Bulls!")
	want := []string{"jordan", "scored", "40", "points", "against", "the", "bulls"}
	got := texts(ts)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeHashtagAndUser(t *testing.T) {
	ts := Tokenize("watching #NBA with @mike_23 tonight")
	if ts[1].Text != "nba" || ts[1].Kind() != KindHashtag {
		t.Errorf("hashtag: got %q kind %v", ts[1].Text, ts[1].Kind())
	}
	if ts[3].Text != "mike_23" || ts[3].Kind() != KindUserRef {
		t.Errorf("user ref: got %q kind %v", ts[3].Text, ts[3].Kind())
	}
}

func TestTokenizeURL(t *testing.T) {
	ts := Tokenize("read this https://t.co/abc123 now")
	if len(ts) != 4 {
		t.Fatalf("got %d tokens %v", len(ts), texts(ts))
	}
	if ts[2].Kind() != KindURL {
		t.Errorf("kind = %v, want URL", ts[2].Kind())
	}
}

func TestTokenizeApostropheHyphen(t *testing.T) {
	ts := Tokenize("O'Neal's buzzer-beater")
	got := texts(ts)
	if got[0] != "o'neal's" || got[1] != "buzzer-beater" {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if ts := Tokenize(""); len(ts) != 0 {
		t.Fatalf("empty input gave %v", ts)
	}
	if ts := Tokenize("   ...  !!"); len(ts) != 0 {
		t.Fatalf("punct-only input gave %v", ts)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "go Bulls, go!"
	for _, tok := range Tokenize(text) {
		if !strings.HasPrefix(text[tok.Offset:], tok.Raw) {
			t.Errorf("offset %d does not point at %q", tok.Offset, tok.Raw)
		}
	}
}

func TestTokenizePositionsSequential(t *testing.T) {
	ts := Tokenize("a b c d e")
	for i, tok := range ts {
		if tok.Pos != i {
			t.Errorf("token %d has pos %d", i, tok.Pos)
		}
	}
}

func TestTokenizeKindNumber(t *testing.T) {
	ts := Tokenize("23 points")
	if ts[0].Kind() != KindNumber {
		t.Errorf("kind = %v, want number", ts[0].Kind())
	}
	if ts[1].Kind() != KindWord {
		t.Errorf("kind = %v, want word", ts[1].Kind())
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Michael Jordan", "michael jordan"},
		{"  New   York -- City ", "new york city"},
		{"O'Neal", "o'neal"},
		{"", ""},
		{"!!!", ""},
	}
	for _, c := range cases {
		if got := NormalizePhrase(c.in); got != c.want {
			t.Errorf("NormalizePhrase(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestJoinTokens(t *testing.T) {
	ts := Tokenize("the Big Apple is NYC")
	if got := JoinTokens(ts, 1, 3); got != "big apple" {
		t.Errorf("got %q", got)
	}
	if got := JoinTokens(ts, 2, 2); got != "" {
		t.Errorf("empty span gave %q", got)
	}
	if got := JoinTokens(ts, 4, 5); got != "nyc" {
		t.Errorf("got %q", got)
	}
}

func TestLevenshteinTable(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"jordan", "jordan", 0},
		{"jordan", "jodran", 2},
		{"gumbo", "gambol", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestWithinEditDistanceMatchesExact(t *testing.T) {
	words := []string{"", "a", "ab", "abc", "abcd", "jordan", "jodan", "jordam", "michael", "micheal", "bulls", "bull", "bulks"}
	for _, a := range words {
		for _, b := range words {
			d := Levenshtein(a, b)
			for k := 0; k <= 3; k++ {
				if got, want := WithinEditDistance(a, b, k), d <= k; got != want {
					t.Errorf("WithinEditDistance(%q,%q,%d) = %v, dist=%d", a, b, k, got, d)
				}
			}
		}
	}
}

func TestWithinEditDistanceNegativeK(t *testing.T) {
	if WithinEditDistance("a", "a", -1) {
		t.Error("negative k must report false")
	}
}

// Property: banded check agrees with the exact distance on random strings.
func TestQuickWithinEditDistance(t *testing.T) {
	f := func(a, b string, k8 uint8) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		k := int(k8 % 4)
		return WithinEditDistance(a, b, k) == (Levenshtein(a, b) <= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Levenshtein.
func TestQuickLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		if len(c) > 24 {
			c = c[:24]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is stable — tokenizing the joined normalised text
// yields the same normalised token stream.
func TestQuickTokenizeStable(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		first := Tokenize(s)
		joined := strings.Join(texts(first), " ")
		second := Tokenize(joined)
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i].Text != second[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
