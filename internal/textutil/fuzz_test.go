package textutil

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize asserts the tokenizer's safety invariants on arbitrary
// input: no panics, offsets point at the raw token, normalised text is
// lowercase, and re-tokenising the normalised stream is stable.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "@user #Tag http://x.co done",
		"O'Neal's buzzer-beater!!", "ünïcödé tökens", "\x80\xff broken",
		strings.Repeat("a ", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for i, tok := range toks {
			if tok.Pos != i {
				t.Fatalf("pos %d at index %d", tok.Pos, i)
			}
			if tok.Offset < 0 || tok.Offset >= len(s) || !strings.HasPrefix(s[tok.Offset:], tok.Raw) {
				t.Fatalf("offset %d does not locate %q", tok.Offset, tok.Raw)
			}
			if tok.Text == "" {
				t.Fatal("empty normalised token")
			}
			if utf8.ValidString(tok.Text) && tok.Text != strings.ToLower(tok.Text) {
				t.Fatalf("token %q not lowercased", tok.Text)
			}
		}
		// Stability: tokenizing the joined normalised text reproduces it.
		texts := make([]string, len(toks))
		for i, tok := range toks {
			texts[i] = tok.Text
		}
		again := Tokenize(strings.Join(texts, " "))
		if len(again) != len(toks) {
			t.Fatalf("re-tokenisation changed count: %d → %d", len(toks), len(again))
		}
		for i := range again {
			if again[i].Text != toks[i].Text {
				t.Fatalf("token %d changed: %q → %q", i, toks[i].Text, again[i].Text)
			}
		}
	})
}

// FuzzWithinEditDistance cross-checks the banded distance against the
// exact DP on arbitrary byte strings.
func FuzzWithinEditDistance(f *testing.F) {
	f.Add("kitten", "sitting", 2)
	f.Add("", "abc", 1)
	f.Add("same", "same", 0)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		k = k % 5
		got := WithinEditDistance(a, b, k)
		want := k >= 0 && Levenshtein(a, b) <= k
		if got != want {
			t.Fatalf("WithinEditDistance(%q, %q, %d) = %v, exact says %v", a, b, k, got, want)
		}
	})
}

// FuzzNormalizePhrase asserts idempotence: normalising twice equals once.
func FuzzNormalizePhrase(f *testing.F) {
	f.Add("Michael  Jordan")
	f.Add("  !!x  Y ")
	f.Fuzz(func(t *testing.T, s string) {
		once := NormalizePhrase(s)
		twice := NormalizePhrase(once)
		if once != twice {
			t.Fatalf("not idempotent: %q → %q → %q", s, once, twice)
		}
	})
}
