package textutil

// Levenshtein returns the exact edit distance (insert/delete/substitute,
// unit costs) between a and b. It runs in O(len(a)·len(b)) time and
// O(min(len(a),len(b))) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return len(b)
	}
	prev := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		diag := prev[0]
		prev[0] = j
		for i := 1; i <= len(a); i++ {
			cur := prev[i]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := diag + cost
			if v := prev[i-1] + 1; v < best {
				best = v
			}
			if v := prev[i] + 1; v < best {
				best = v
			}
			prev[i] = best
			diag = cur
		}
	}
	return prev[len(a)]
}

// WithinEditDistance reports whether Levenshtein(a, b) <= k without
// computing the full matrix. It fills only a diagonal band of width 2k+1,
// giving O(k·min(len(a),len(b))) time — the verification step of the
// segment-based fuzzy index, where k is small (typically 1 or 2).
func WithinEditDistance(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	la, lb := len(a), len(b)
	if la > lb {
		a, b, la, lb = b, a, lb, la
	}
	if lb-la > k {
		return false
	}
	if k == 0 {
		return a == b
	}
	// Band DP: row i covers columns [i-k, i+k].
	const inf = 1 << 29
	width := 2*k + 1
	prev := make([]int, width)
	cur := make([]int, width)
	// Row 0: prev[off] corresponds to column j = off - k; D[0][j] = j.
	for off := 0; off < width; off++ {
		j := off - k
		if j < 0 || j > lb {
			prev[off] = inf
		} else {
			prev[off] = j
		}
	}
	for i := 1; i <= la; i++ {
		rowMin := inf
		for off := 0; off < width; off++ {
			j := i + off - k
			if j < 0 || j > lb {
				cur[off] = inf
				continue
			}
			if j == 0 {
				cur[off] = i
				rowMin = min(rowMin, i)
				continue
			}
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := inf
			// Substitution: D[i-1][j-1] is prev at same offset.
			if prev[off] < inf {
				best = prev[off] + cost
			}
			// Deletion from a: D[i-1][j] is prev at offset off+1.
			if off+1 < width && prev[off+1] < inf {
				if v := prev[off+1] + 1; v < best {
					best = v
				}
			}
			// Insertion into a: D[i][j-1] is cur at offset off-1.
			if off-1 >= 0 && cur[off-1] < inf {
				if v := cur[off-1] + 1; v < best {
					best = v
				}
			}
			cur[off] = best
			rowMin = min(rowMin, best)
		}
		if rowMin > k {
			return false
		}
		prev, cur = cur, prev
	}
	off := lb - la + k
	return off >= 0 && off < width && prev[off] <= k
}
