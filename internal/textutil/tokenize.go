// Package textutil provides the low-level text machinery shared by the
// mention extractor, the candidate generator and the baselines: a tokenizer
// tuned to informal microblog text, normalisation helpers, and edit-distance
// routines (full and banded Levenshtein) used by the segment-based fuzzy
// index.
package textutil

import (
	"strings"
	"unicode"
)

// Token is a single token produced by Tokenize, carrying its position in the
// token stream and its byte offset in the original text so that callers can
// map matches back to the source.
type Token struct {
	Text   string // normalised (lower-cased) token text
	Raw    string // original token text as it appeared
	Offset int    // byte offset of Raw in the input
	Pos    int    // index in the token stream
}

// TokenKind classifies tokens the tweet tokenizer distinguishes. Mentions of
// entities never start inside URLs or @usernames, so the NER stage skips
// them; hashtags are kept because they frequently carry entity names.
type TokenKind int

const (
	// KindWord is a plain word token.
	KindWord TokenKind = iota
	// KindHashtag is a #hashtag with the leading '#' stripped in Text.
	KindHashtag
	// KindUserRef is an @username reference.
	KindUserRef
	// KindURL is a URL token.
	KindURL
	// KindNumber is a purely numeric token.
	KindNumber
)

// Kind reports the classification of a token based on its raw form.
func (t Token) Kind() TokenKind {
	switch {
	case strings.HasPrefix(t.Raw, "#"):
		return KindHashtag
	case strings.HasPrefix(t.Raw, "@"):
		return KindUserRef
	case strings.HasPrefix(t.Raw, "http://"), strings.HasPrefix(t.Raw, "https://"), strings.HasPrefix(t.Raw, "www."):
		return KindURL
	case isNumeric(t.Raw):
		return KindNumber
	default:
		return KindWord
	}
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// Tokenize splits informal microblog text into tokens. It keeps @user, URL
// and #hashtag tokens intact (URLs are detected by prefix), lower-cases the
// normalised form, strips the '#' from hashtags, and drops all other
// punctuation. It never allocates more than one slice.
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/5+1)
	i := 0
	pos := 0
	for i < len(text) {
		// Skip separators.
		r := rune(text[i])
		if isSeparator(r) {
			i++
			continue
		}
		start := i
		// URL: consume until whitespace.
		if hasURLPrefix(text[i:]) {
			for i < len(text) && !unicode.IsSpace(rune(text[i])) {
				i++
			}
		} else if text[i] == '@' || text[i] == '#' {
			i++
			for i < len(text) && isTokenRune(rune(text[i])) {
				i++
			}
			if i == start+1 { // lone '@' or '#'
				continue
			}
		} else {
			for i < len(text) && isTokenRune(rune(text[i])) {
				i++
			}
			if i == start { // non-token punctuation
				i++
				continue
			}
		}
		raw := text[start:i]
		norm := normalizeToken(raw)
		if norm == "" {
			continue
		}
		tokens = append(tokens, Token{Text: norm, Raw: raw, Offset: start, Pos: pos})
		pos++
	}
	return tokens
}

func hasURLPrefix(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") || strings.HasPrefix(s, "www.")
}

func isSeparator(r rune) bool {
	return unicode.IsSpace(r)
}

// isTokenRune reports whether r may appear inside a word token. Apostrophes
// and hyphens are kept so "O'Neal" and "Ang-Lee" stay single tokens.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-' || r == '_' || r > unicode.MaxASCII
}

func normalizeToken(raw string) string {
	s := strings.TrimPrefix(raw, "#")
	s = strings.TrimFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	return strings.ToLower(s)
}

// NormalizePhrase lower-cases a multi-word surface form and collapses runs
// of whitespace/punctuation into single spaces, producing the canonical key
// used by the surface-form dictionary.
func NormalizePhrase(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			b.WriteRune(unicode.ToLower(r))
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// JoinTokens joins the normalised text of tokens[i:j] with single spaces,
// the phrase key for a candidate mention span.
func JoinTokens(tokens []Token, i, j int) string {
	if i >= j {
		return ""
	}
	if j-i == 1 {
		return tokens[i].Text
	}
	var b strings.Builder
	for k := i; k < j; k++ {
		if k > i {
			b.WriteByte(' ')
		}
		b.WriteString(tokens[k].Text)
	}
	return b.String()
}
