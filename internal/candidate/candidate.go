// Package candidate implements candidate generation (§3.2.2): given an
// entity mention it produces the candidate entity set E_m from the
// knowledgebase's surface forms. Exact lookups hit the surface dictionary
// directly; because queries and tweets are full of misspellings, a
// segment-based index with edit-distance verification (after Li et al.
// [36]) provides fuzzy matching.
//
// The segment index uses the pigeonhole partition scheme: every dictionary
// key is split into maxEdit+1 contiguous segments, so any string within
// edit distance maxEdit of the key must contain at least one segment as an
// exact substring, at a position shifted by at most maxEdit. Lookups
// enumerate query substrings of the indexed segment lengths, apply the
// position and length filters, and verify survivors with banded
// Levenshtein.
package candidate

import (
	"sort"

	"microlink/internal/kb"
	"microlink/internal/textutil"
)

// Candidate is one entry of the candidate entity set E_m.
type Candidate struct {
	Entity  kb.EntityID
	Surface string // the dictionary surface form that matched
	Dist    int    // edit distance between the mention and Surface
}

// Options configures the candidate index.
type Options struct {
	// MaxEdit is the maximum edit distance for fuzzy matching; 0 disables
	// fuzzy lookup entirely. Default 1.
	MaxEdit int
	// MinFuzzyLen is the minimum key length eligible for fuzzy matching;
	// very short strings produce too many false candidates. Default 4.
	MinFuzzyLen int
}

func (o *Options) fill() {
	if o.MaxEdit == 0 {
		o.MaxEdit = 1
	}
	if o.MaxEdit < 0 {
		o.MaxEdit = 0
	}
	if o.MinFuzzyLen <= 0 {
		o.MinFuzzyLen = 4
	}
}

type segRef struct {
	key int32 // index into keys
	pos int16 // byte offset of the segment within the key
}

// Index is the frozen candidate-generation index. Safe for concurrent use.
type Index struct {
	kb          *kb.KB
	maxEdit     int
	minFuzzyLen int
	keys        []string
	segs        map[string][]segRef
	segLens     []int // distinct indexed segment lengths, ascending
}

// NewIndex builds the candidate index over all surface forms of k.
func NewIndex(k *kb.KB, opts Options) *Index {
	opts.fill()
	ix := &Index{
		kb:          k,
		maxEdit:     opts.MaxEdit,
		minFuzzyLen: opts.MinFuzzyLen,
		segs:        make(map[string][]segRef),
	}
	if ix.maxEdit == 0 {
		return ix
	}
	lens := make(map[int]struct{})
	k.EachSurface(func(form string, _ []kb.EntityID) {
		if len(form) < ix.minFuzzyLen {
			return
		}
		ki := int32(len(ix.keys))
		ix.keys = append(ix.keys, form)
		for _, seg := range partition(form, ix.maxEdit+1) {
			ix.segs[seg.s] = append(ix.segs[seg.s], segRef{key: ki, pos: int16(seg.pos)})
			lens[len(seg.s)] = struct{}{}
		}
	})
	for l := range lens {
		ix.segLens = append(ix.segLens, l)
	}
	sort.Ints(ix.segLens)
	return ix
}

type segment struct {
	s   string
	pos int
}

// partition splits s into n contiguous segments of near-equal length
// (longer segments first), the standard pigeonhole partition.
func partition(s string, n int) []segment {
	if n > len(s) {
		n = len(s)
	}
	out := make([]segment, 0, n)
	base, rem := len(s)/n, len(s)%n
	pos := 0
	for i := 0; i < n; i++ {
		l := base
		if i < rem {
			l++
		}
		out = append(out, segment{s: s[pos : pos+l], pos: pos})
		pos += l
	}
	return out
}

// Candidates returns the candidate entity set for a normalised mention
// string, sorted by ascending edit distance then entity ID. Exact matches
// are returned alone when they exist; fuzzy candidates are consulted only
// otherwise, mirroring the paper's dictionary-first strategy.
func (ix *Index) Candidates(mention string) []Candidate {
	if ents := ix.kb.Candidates(mention); len(ents) > 0 {
		out := make([]Candidate, len(ents))
		for i, e := range ents {
			out[i] = Candidate{Entity: e, Surface: mention, Dist: 0}
		}
		return out
	}
	return ix.Fuzzy(mention)
}

// Fuzzy returns fuzzy-only candidates within the configured edit distance.
func (ix *Index) Fuzzy(mention string) []Candidate {
	if ix.maxEdit == 0 || len(mention) < ix.minFuzzyLen-ix.maxEdit {
		return nil
	}
	verified := make(map[int32]int) // key index → edit distance
	checked := make(map[int32]struct{})
	for _, l := range ix.segLens {
		if l > len(mention) {
			break
		}
		for start := 0; start+l <= len(mention); start++ {
			refs, ok := ix.segs[mention[start:start+l]]
			if !ok {
				continue
			}
			for _, ref := range refs {
				// Position filter: segment can shift by at most maxEdit.
				if d := start - int(ref.pos); d > ix.maxEdit || d < -ix.maxEdit {
					continue
				}
				if _, done := checked[ref.key]; done {
					continue
				}
				checked[ref.key] = struct{}{}
				key := ix.keys[ref.key]
				// Length filter.
				if d := len(key) - len(mention); d > ix.maxEdit || d < -ix.maxEdit {
					continue
				}
				if textutil.WithinEditDistance(mention, key, ix.maxEdit) {
					verified[ref.key] = textutil.Levenshtein(mention, key)
				}
			}
		}
	}
	if len(verified) == 0 {
		return nil
	}
	best := make(map[kb.EntityID]Candidate)
	for ki, dist := range verified {
		key := ix.keys[ki]
		for _, e := range ix.kb.Candidates(key) {
			if prev, ok := best[e]; !ok || dist < prev.Dist {
				best[e] = Candidate{Entity: e, Surface: key, Dist: dist}
			}
		}
	}
	out := make([]Candidate, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// Entities extracts just the entity IDs of a candidate list.
func Entities(cands []Candidate) []kb.EntityID {
	out := make([]kb.EntityID, len(cands))
	for i, c := range cands {
		out[i] = c.Entity
	}
	return out
}
