package candidate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microlink/internal/kb"
	"microlink/internal/textutil"
)

func testKB() *kb.KB {
	b := kb.NewBuilder()
	mjbb := b.AddEntity(kb.Entity{Name: "Michael Jordan (basketball)"})
	mjml := b.AddEntity(kb.Entity{Name: "Michael Jordan (ML)"})
	country := b.AddEntity(kb.Entity{Name: "Jordan (country)"})
	bulls := b.AddEntity(kb.Entity{Name: "Chicago Bulls"})
	nyc := b.AddEntity(kb.Entity{Name: "New York City"})

	b.AddSurface("jordan", mjbb)
	b.AddSurface("jordan", mjml)
	b.AddSurface("jordan", country)
	b.AddSurface("michael jordan", mjbb)
	b.AddSurface("michael jordan", mjml)
	b.AddSurface("bulls", bulls)
	b.AddSurface("chicago bulls", bulls)
	b.AddSurface("nyc", nyc)
	b.AddSurface("the big apple", nyc)
	b.AddSurface("new york city", nyc)
	return b.Build()
}

func TestExactLookup(t *testing.T) {
	ix := NewIndex(testKB(), Options{})
	cands := ix.Candidates("jordan")
	if len(cands) != 3 {
		t.Fatalf("candidates = %+v", cands)
	}
	for _, c := range cands {
		if c.Dist != 0 || c.Surface != "jordan" {
			t.Errorf("bad candidate %+v", c)
		}
	}
}

func TestExactPreferredOverFuzzy(t *testing.T) {
	ix := NewIndex(testKB(), Options{MaxEdit: 2})
	// "bulls" is exact; a fuzzy expansion would also reach it but exact
	// matches suppress the fuzzy path.
	cands := ix.Candidates("bulls")
	if len(cands) != 1 || cands[0].Dist != 0 {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestFuzzyOneTypo(t *testing.T) {
	ix := NewIndex(testKB(), Options{MaxEdit: 1})
	cases := []string{"jordon", "jorda", "jordans", "jrodan"} // sub, del, ins, transpose(=2 subs? no: jrodan is 2 ops)
	for _, m := range cases[:3] {
		cands := ix.Candidates(m)
		if len(cands) != 3 {
			t.Errorf("Candidates(%q) = %+v, want the 3 jordan entities", m, cands)
			continue
		}
		for _, c := range cands {
			if c.Dist != 1 || c.Surface != "jordan" {
				t.Errorf("Candidates(%q): bad candidate %+v", m, c)
			}
		}
	}
	// Transposition costs 2 under plain Levenshtein → not matched at k=1.
	if cands := ix.Candidates("jrodan"); len(cands) != 0 {
		t.Errorf("jrodan should not match at maxEdit=1, got %+v", cands)
	}
}

func TestFuzzyMultiWord(t *testing.T) {
	ix := NewIndex(testKB(), Options{MaxEdit: 1})
	cands := ix.Candidates("micheal jordan") // common misspelling: 2 ops? e↔a swap = 2 subs... actually "michael"→"micheal" is transposition = 2 edits
	if len(cands) != 0 {
		t.Logf("micheal jordan matched at k=1: %+v", cands)
	}
	ix2 := NewIndex(testKB(), Options{MaxEdit: 2})
	cands2 := ix2.Candidates("micheal jordan")
	if len(cands2) != 2 {
		t.Fatalf("micheal jordan at k=2 = %+v, want both michael jordans", cands2)
	}
}

func TestFuzzyDisabled(t *testing.T) {
	ix := NewIndex(testKB(), Options{MaxEdit: -1})
	if cands := ix.Candidates("jordon"); cands != nil {
		t.Fatalf("fuzzy disabled but got %+v", cands)
	}
	if cands := ix.Candidates("jordan"); len(cands) != 3 {
		t.Fatal("exact lookup must still work")
	}
}

func TestShortStringsNotFuzzy(t *testing.T) {
	ix := NewIndex(testKB(), Options{MaxEdit: 1, MinFuzzyLen: 4})
	// "nyc" (len 3) is below MinFuzzyLen: "nyd" must not match it.
	if cands := ix.Candidates("nyd"); len(cands) != 0 {
		t.Fatalf("short fuzzy match should be suppressed, got %+v", cands)
	}
}

func TestUnknownMention(t *testing.T) {
	ix := NewIndex(testKB(), Options{})
	if cands := ix.Candidates("completely unknown phrase"); len(cands) != 0 {
		t.Fatalf("got %+v", cands)
	}
}

func TestEntitiesHelper(t *testing.T) {
	ix := NewIndex(testKB(), Options{})
	ents := Entities(ix.Candidates("jordan"))
	if len(ents) != 3 {
		t.Fatalf("entities = %v", ents)
	}
}

func TestPartition(t *testing.T) {
	segs := partition("abcdefg", 2)
	if len(segs) != 2 || segs[0].s != "abcd" || segs[1].s != "efg" || segs[1].pos != 4 {
		t.Fatalf("segments = %+v", segs)
	}
	segs = partition("ab", 3) // n > len collapses to len
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestBestDistanceWins(t *testing.T) {
	// Entity reachable via two keys at different distances keeps the min.
	b := kb.NewBuilder()
	e := b.AddEntity(kb.Entity{Name: "X"})
	b.AddSurface("abcdef", e)
	b.AddSurface("abcdeg", e)
	ix := NewIndex(b.Build(), Options{MaxEdit: 1})
	cands := ix.Candidates("abcdeg")
	if len(cands) != 1 || cands[0].Dist != 0 {
		t.Fatalf("cands = %+v", cands)
	}
	cands = ix.Fuzzy("abcdex")
	if len(cands) != 1 || cands[0].Dist != 1 {
		t.Fatalf("fuzzy cands = %+v", cands)
	}
}

// Property: the segment index finds every dictionary key within maxEdit of
// the query (no false negatives vs brute force over the dictionary).
func TestQuickFuzzyComplete(t *testing.T) {
	letters := []rune("abcdef")
	randWord := func(r *rand.Rand, n int) string {
		s := make([]rune, n)
		for i := range s {
			s[i] = letters[r.Intn(len(letters))]
		}
		return string(s)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := kb.NewBuilder()
		dict := make([]string, 0, 30)
		seen := map[string]bool{}
		for i := 0; i < 30; i++ {
			w := randWord(r, 4+r.Intn(6))
			if seen[w] {
				continue
			}
			seen[w] = true
			e := b.AddEntity(kb.Entity{Name: w})
			b.AddSurface(w, e)
			dict = append(dict, w)
		}
		k := b.Build()
		maxEdit := 1 + r.Intn(2)
		ix := NewIndex(k, Options{MaxEdit: maxEdit})
		for i := 0; i < 20; i++ {
			q := randWord(r, 3+r.Intn(8))
			got := map[string]bool{}
			for _, c := range ix.Fuzzy(q) {
				got[c.Surface] = true
			}
			for _, w := range dict {
				want := textutil.Levenshtein(q, w) <= maxEdit
				if want && !got[w] {
					t.Logf("seed %d: query %q should match %q (k=%d)", seed, q, w, maxEdit)
					return false
				}
				if got[w] && !want {
					t.Logf("seed %d: query %q false positive %q", seed, q, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
