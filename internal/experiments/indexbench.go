package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"microlink/internal/graph"
	"microlink/internal/reach"
	"microlink/internal/synth"
)

// IndexBench quantifies PR 5's three reach optimisations on one synthetic
// graph: serial vs parallel 2-hop construction time, the parallel build's
// index-size delta (batch-frozen pruning admits slightly more labels), and
// the query hot path's steady-state allocation count. `linkbench index`
// serialises the result to BENCH_reach.json so the numbers are checked in
// next to the claims that cite them.

// IndexBenchResult is the JSON payload of `linkbench index`.
type IndexBenchResult struct {
	Users       int   `json:"users"`
	Edges       int   `json:"edges"`
	MaxHops     int   `json:"max_hops"`
	GOMAXPROCS  int   `json:"gomaxprocs"` // honest context for the speedup figure
	Workers     int   `json:"workers"`
	BatchSize   int   `json:"batch_size"`
	SerialMS    int64 `json:"serial_build_ms"`
	ParallelMS  int64 `json:"parallel_build_ms"`
	MergeWaitMS int64 `json:"parallel_merge_wait_ms"`

	// Per-stage split of the parallel build (BFS ≥ merge-wait; BFS +
	// merge + freeze ≈ parallel_build_ms), so regressions point at the
	// guilty stage instead of the aggregate.
	ParallelBFSMS    int64 `json:"parallel_bfs_ms"`
	ParallelMergeMS  int64 `json:"parallel_merge_ms"`
	ParallelFreezeMS int64 `json:"parallel_freeze_ms"`

	SerialBytes    int64   `json:"serial_index_bytes"`
	ParallelBytes  int64   `json:"parallel_index_bytes"`
	SizeRatio      float64 `json:"parallel_size_ratio"` // parallel / serial
	Speedup        float64 `json:"build_speedup"`       // serial / parallel
	SerialLabels   int64   `json:"serial_labels"`
	ParallelLabels int64   `json:"parallel_labels"`
	FolPoolEntries int64   `json:"fol_pool_entries"`
	FolRefs        int64   `json:"fol_refs"` // pre-intern followee ids

	QueryNS       int64   `json:"query_ns_per_op"`
	QueryAllocsOp float64 `json:"query_allocs_per_op"`
}

// IndexBenchOptions sizes the run. Zero values select the defaults.
type IndexBenchOptions struct {
	Users   int // default 4000 (Table 5's D50 scale)
	MaxHops int
	Workers int // default 4
}

// IndexBench builds the 2-hop cover serially and in parallel over the same
// graph and measures the construction/size/query deltas.
func IndexBench(opts IndexBenchOptions) IndexBenchResult {
	if opts.Users <= 0 {
		opts.Users = 4000
	}
	if opts.MaxHops <= 0 {
		opts.MaxHops = reach.DefaultMaxHops
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	g := synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: opts.Users, MeanFollows: 10})

	serial := reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: opts.MaxHops, Workers: 1})
	par := reach.BuildTwoHop(g, reach.TwoHopOptions{
		MaxHops: opts.MaxHops, Workers: opts.Workers, BatchSize: reach.DefaultTwoHopBatch,
	})

	sOut, sIn := serial.LabelCounts()
	pOut, pIn := par.LabelCounts()
	info := par.BuildInfo()
	res := IndexBenchResult{
		Users:            g.NumNodes(),
		Edges:            g.NumEdges(),
		MaxHops:          opts.MaxHops,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Workers:          info.Workers,
		BatchSize:        info.BatchSize,
		SerialMS:         serial.BuildStats().BuildTime.Milliseconds(),
		ParallelMS:       par.BuildStats().BuildTime.Milliseconds(),
		MergeWaitMS:      info.MergeWait.Milliseconds(),
		ParallelBFSMS:    info.BFSTime.Milliseconds(),
		ParallelMergeMS:  info.MergeTime.Milliseconds(),
		ParallelFreezeMS: info.FreezeTime.Milliseconds(),
		SerialBytes:      serial.SizeBytes(),
		ParallelBytes:    par.SizeBytes(),
		SerialLabels:     sOut + sIn,
		ParallelLabels:   pOut + pIn,
		FolPoolEntries:   info.FolPool,
		FolRefs:          info.FolRefs,
	}
	if res.SerialBytes > 0 {
		res.SizeRatio = float64(res.ParallelBytes) / float64(res.SerialBytes)
	}
	if par.BuildStats().BuildTime > 0 {
		res.Speedup = float64(serial.BuildStats().BuildTime) / float64(par.BuildStats().BuildTime)
	}
	res.QueryNS, res.QueryAllocsOp = measureQueryAllocs(par, g.NumNodes())
	return res
}

// measureQueryAllocs times R on the frozen cover and reports steady-state
// allocations per query via the runtime's malloc counter (the testing
// package's AllocsPerRun is unavailable outside tests).
func measureQueryAllocs(th *reach.TwoHop, nodes int) (nsPerOp int64, allocsPerOp float64) {
	r := rand.New(rand.NewSource(7))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(nodes)), graph.NodeID(r.Intn(nodes))}
	}
	for _, p := range pairs { // warm the scratch pool
		th.R(p[0], p[1])
	}
	const n = 50_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		p := pairs[i&1023]
		th.R(p[0], p[1])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return int64(elapsed) / n, float64(after.Mallocs-before.Mallocs) / n
}
