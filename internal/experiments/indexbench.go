package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"microlink/internal/graph"
	"microlink/internal/reach"
	"microlink/internal/synth"
)

// IndexBench quantifies the reach construction pipeline on one synthetic
// graph: serial vs partitioned-parallel 2-hop construction time with a
// per-stage split (BFS / merge / barrier / freeze), the parallel build's
// index-size delta (batch-frozen pruning admits slightly more labels), and
// the query hot path's steady-state allocation count. `linkbench index`
// serialises the result to BENCH_reach.json so the numbers are checked in
// next to the claims that cite them; `-workers-sweep` emits one record per
// worker count so multi-core scaling is measured, not asserted.

// IndexBenchResult is the JSON payload of `linkbench index`.
type IndexBenchResult struct {
	Users      int   `json:"users"`
	Edges      int   `json:"edges"`
	MaxHops    int   `json:"max_hops"`
	NumCPU     int   `json:"num_cpu"`    // hardware context for the speedup figure
	GOMAXPROCS int   `json:"gomaxprocs"` // scheduler width the parallel build ran under
	Workers    int   `json:"workers"`
	BatchSize  int   `json:"batch_size"`
	SerialMS   int64 `json:"serial_build_ms"`
	ParallelMS int64 `json:"parallel_build_ms"`

	// MergeWaitMS = merge wall clock + epoch barrier wait: the total the
	// build spent off the BFS/freeze fast path. The CI smoke gates this at
	// < 25% of parallel_build_ms so a serialized merge cannot come back.
	MergeWaitMS int64 `json:"parallel_merge_wait_ms"`

	// Per-stage split of the parallel build (BFS + merge + freeze ≈
	// parallel_build_ms; barrier is a slice of the BFS/merge walls), so
	// regressions point at the guilty stage instead of the aggregate.
	ParallelBFSMS     int64 `json:"parallel_bfs_ms"`
	ParallelMergeMS   int64 `json:"parallel_merge_ms"`
	ParallelBarrierMS int64 `json:"parallel_barrier_wait_ms"`
	ParallelFreezeMS  int64 `json:"parallel_freeze_ms"`

	// MergePartitions is the node-range partition count the concurrent
	// merge fanned over; MergeUtilization each merge worker's busy
	// fraction of the merge wall clock (absent for serial merges).
	MergePartitions  int       `json:"merge_partitions"`
	MergeUtilization []float64 `json:"merge_worker_utilization,omitempty"`

	SerialBytes    int64   `json:"serial_index_bytes"`
	ParallelBytes  int64   `json:"parallel_index_bytes"`
	SizeRatio      float64 `json:"parallel_size_ratio"` // parallel / serial
	Speedup        float64 `json:"build_speedup"`       // serial / parallel
	SerialLabels   int64   `json:"serial_labels"`
	ParallelLabels int64   `json:"parallel_labels"`
	FolPoolEntries int64   `json:"fol_pool_entries"`
	FolRefs        int64   `json:"fol_refs"` // pre-intern followee ids

	QueryNS       int64   `json:"query_ns_per_op"`
	QueryAllocsOp float64 `json:"query_allocs_per_op"`
}

// IndexBenchOptions sizes the run. Zero values select the defaults.
type IndexBenchOptions struct {
	Users   int // default 4000 (Table 5's D50 scale)
	MaxHops int
	Workers int // default 4
}

func (opts *IndexBenchOptions) setDefaults() {
	if opts.Users <= 0 {
		opts.Users = 4000
	}
	if opts.MaxHops <= 0 {
		opts.MaxHops = reach.DefaultMaxHops
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
}

// indexBenchGraph builds the shared benchmark graph.
func indexBenchGraph(opts IndexBenchOptions) *graph.Graph {
	return synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: opts.Users, MeanFollows: 10})
}

// buildSerial runs the exact serial Algorithm 2 baseline.
func buildSerial(g *graph.Graph, maxHops int) *reach.TwoHop {
	return reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: maxHops, Workers: 1})
}

// benchParallel builds the parallel cover with workers goroutines under a
// matching GOMAXPROCS and fills one result record against the serial
// baseline. Raising GOMAXPROCS per record is what lets a sweep measure
// real multi-core scaling in one process; the previous setting is
// restored before returning.
func benchParallel(g *graph.Graph, serial *reach.TwoHop, opts IndexBenchOptions) IndexBenchResult {
	prev := runtime.GOMAXPROCS(0)
	if opts.Workers != prev {
		runtime.GOMAXPROCS(opts.Workers)
		defer runtime.GOMAXPROCS(prev)
	}
	par := reach.BuildTwoHop(g, reach.TwoHopOptions{
		MaxHops: opts.MaxHops, Workers: opts.Workers, BatchSize: reach.DefaultTwoHopBatch,
	})

	sOut, sIn := serial.LabelCounts()
	pOut, pIn := par.LabelCounts()
	info := par.BuildInfo()
	res := IndexBenchResult{
		Users:             g.NumNodes(),
		Edges:             g.NumEdges(),
		MaxHops:           opts.MaxHops,
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           info.Workers,
		BatchSize:         info.BatchSize,
		SerialMS:          serial.BuildStats().BuildTime.Milliseconds(),
		ParallelMS:        par.BuildStats().BuildTime.Milliseconds(),
		MergeWaitMS:       (info.MergeTime + info.BarrierWait).Milliseconds(),
		ParallelBFSMS:     info.BFSTime.Milliseconds(),
		ParallelMergeMS:   info.MergeTime.Milliseconds(),
		ParallelBarrierMS: info.BarrierWait.Milliseconds(),
		ParallelFreezeMS:  info.FreezeTime.Milliseconds(),
		MergePartitions:   info.Partitions,
		MergeUtilization:  info.MergeUtilization,
		SerialBytes:       serial.SizeBytes(),
		ParallelBytes:     par.SizeBytes(),
		SerialLabels:      sOut + sIn,
		ParallelLabels:    pOut + pIn,
		FolPoolEntries:    info.FolPool,
		FolRefs:           info.FolRefs,
	}
	if res.SerialBytes > 0 {
		res.SizeRatio = float64(res.ParallelBytes) / float64(res.SerialBytes)
	}
	if par.BuildStats().BuildTime > 0 {
		res.Speedup = float64(serial.BuildStats().BuildTime) / float64(par.BuildStats().BuildTime)
	}
	res.QueryNS, res.QueryAllocsOp = measureQueryAllocs(par, g.NumNodes())
	return res
}

// IndexBench builds the 2-hop cover serially and in parallel over the same
// graph and measures the construction/size/query deltas.
func IndexBench(opts IndexBenchOptions) IndexBenchResult {
	opts.setDefaults()
	g := indexBenchGraph(opts)
	serial := buildSerial(g, opts.MaxHops)
	return benchParallel(g, serial, opts)
}

// IndexBenchSweep runs IndexBench once per worker count against a single
// shared serial baseline, returning one record per count. Each parallel
// build runs under GOMAXPROCS = workers, so the sweep captures genuine
// multi-core scaling (or, on a single-CPU box, honestly records ~1×).
func IndexBenchSweep(opts IndexBenchOptions, workerCounts []int) []IndexBenchResult {
	opts.setDefaults()
	g := indexBenchGraph(opts)
	serial := buildSerial(g, opts.MaxHops)
	results := make([]IndexBenchResult, 0, len(workerCounts))
	for _, w := range workerCounts {
		o := opts
		o.Workers = w
		results = append(results, benchParallel(g, serial, o))
	}
	return results
}

// measureQueryAllocs times R on the frozen cover and reports steady-state
// allocations per query via the runtime's malloc counter (the testing
// package's AllocsPerRun is unavailable outside tests).
func measureQueryAllocs(th *reach.TwoHop, nodes int) (nsPerOp int64, allocsPerOp float64) {
	r := rand.New(rand.NewSource(7))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(nodes)), graph.NodeID(r.Intn(nodes))}
	}
	for _, p := range pairs { // warm the scratch pool
		th.R(p[0], p[1])
	}
	const n = 50_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		p := pairs[i&1023]
		th.R(p[0], p[1])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return int64(elapsed) / n, float64(after.Mallocs-before.Mallocs) / n
}
