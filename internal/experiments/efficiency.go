package experiments

import (
	"math/rand"
	"time"

	"microlink/internal/graph"
	"microlink/internal/kb"
	"microlink/internal/reach"
	"microlink/internal/synth"
)

func categoryAt(i int) kb.Category { return kb.Category(i) }

func scaleGraphParams(sc GraphScale) synth.GraphParams {
	mf := sc.MeanFollows
	if mf <= 0 {
		mf = 10
	}
	return synth.GraphParams{Seed: 99, Users: sc.Users, MeanFollows: mf}
}

// GraphScale names one synthetic graph size in the D90…Twitter family of
// Table 5 / Fig. 5(b).
type GraphScale struct {
	Label string
	Users int
	// MeanFollows sets the average out-degree (default 10).
	MeanFollows int
	// ClosureFeasible marks scales where the transitive closure is still
	// buildable; beyond it Table 5 prints "-" exactly like the paper.
	ClosureFeasible bool
	// NaiveBudget bounds the naive-construction measurement (Fig. 5(b));
	// the result is extrapolated beyond it, mirroring the paper's "we
	// omit results that cannot finish within one day".
	NaiveBudget time.Duration
}

// DefaultScales mirrors the relative ladder of Table 5's datasets. The
// absolute sizes are scaled down to laptop hardware; the structural story
// (closure dies first, 2-hop keeps going) is preserved.
func DefaultScales() []GraphScale {
	return []GraphScale{
		{Label: "D90", Users: 1_000, ClosureFeasible: true, NaiveBudget: 3 * time.Second},
		{Label: "D70", Users: 2_000, ClosureFeasible: true, NaiveBudget: 3 * time.Second},
		{Label: "D50", Users: 4_000, ClosureFeasible: true, NaiveBudget: 3 * time.Second},
		{Label: "D30", Users: 8_000, ClosureFeasible: true, NaiveBudget: 3 * time.Second},
		{Label: "D10", Users: 16_000, ClosureFeasible: true, NaiveBudget: 3 * time.Second},
		{Label: "D", Users: 32_000, ClosureFeasible: false, NaiveBudget: 3 * time.Second},
		{Label: "Twitter", Users: 48_000, ClosureFeasible: false, NaiveBudget: 3 * time.Second},
	}
}

// Fig5bRow compares naive vs incremental transitive-closure construction.
type Fig5bRow struct {
	Label       string
	Users       int
	Naive       time.Duration // extrapolated when over budget
	Incremental time.Duration
}

// Fig5b measures pre-computation time for the weighted reachability
// matrix: the naive per-pair BFS (extrapolated once it exceeds the
// per-scale budget) versus Algorithm 1.
func Fig5b(scales []GraphScale, maxHops int) []Fig5bRow {
	var rows []Fig5bRow
	for _, sc := range scales {
		if !sc.ClosureFeasible {
			continue
		}
		g := synth.GenerateGraph(scaleGraphParams(sc))
		_, naive := reach.NaiveClosureTime(g, maxHops, sc.NaiveBudget)
		tc := reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: maxHops})
		rows = append(rows, Fig5bRow{
			Label:       sc.Label,
			Users:       sc.Users,
			Naive:       naive,
			Incremental: tc.BuildStats().BuildTime,
		})
	}
	return rows
}

// Table5Row is one dataset row of Table 5: graph statistics plus indexing
// time, index size and query time for both reachability substrates.
// Closure fields are zero when the closure is infeasible at that scale
// (printed as "-").
type Table5Row struct {
	Label     string
	Nodes     int
	Edges     int
	AvgDegree float64
	MaxDegree int

	ClosureBuild time.Duration
	TwoHopBuild  time.Duration
	ClosureBytes int64
	TwoHopBytes  int64
	ClosureQuery time.Duration // average over the query batch
	TwoHopQuery  time.Duration
}

// Table5 builds both indexes per scale and measures average query latency
// over nQueries random source/target pairs (the paper uses 10⁶).
func Table5(scales []GraphScale, maxHops, nQueries int) []Table5Row {
	var rows []Table5Row
	for _, sc := range scales {
		g := synth.GenerateGraph(scaleGraphParams(sc))
		st := g.Stats()
		row := Table5Row{
			Label:     sc.Label,
			Nodes:     st.Nodes,
			Edges:     st.Edges,
			AvgDegree: st.AvgDegree,
			MaxDegree: st.MaxDegree,
		}
		th := reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: maxHops})
		row.TwoHopBuild = th.BuildStats().BuildTime
		row.TwoHopBytes = th.SizeBytes()
		row.TwoHopQuery = measureQueries(th, g.NumNodes(), nQueries)
		if sc.ClosureFeasible {
			tc := reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: maxHops})
			row.ClosureBuild = tc.BuildStats().BuildTime
			row.ClosureBytes = tc.SizeBytes()
			row.ClosureQuery = measureQueries(tc, g.NumNodes(), nQueries)
		}
		rows = append(rows, row)
	}
	return rows
}

// TaxonomyRow compares one reachability substrate of the paper's §2
// taxonomy on the same graph: online search (GRAIL-style pruning),
// transitive closure, and 2-hop labeling, plus the unindexed naive BFS.
type TaxonomyRow struct {
	Substrate string
	Build     time.Duration
	Bytes     int64
	Query     time.Duration
}

// Taxonomy builds all four substrates over one graph and measures average
// query time over nQueries random pairs — the quantitative version of the
// paper's related-work argument for why it picks the indexed substrates.
func Taxonomy(users, maxHops, nQueries int) []TaxonomyRow {
	g := synth.GenerateGraph(synth.GraphParams{Seed: 99, Users: users, MeanFollows: 10})
	build := []struct {
		name string
		mk   func() reach.Index
	}{
		{"naive BFS", func() reach.Index { return reach.NewNaive(g, maxHops) }},
		{"online search (GRAIL)", func() reach.Index { return reach.NewPrunedSearch(g, reach.PrunedOptions{MaxHops: maxHops}) }},
		{"transitive closure", func() reach.Index {
			return reach.BuildTransitiveClosure(g, reach.ClosureOptions{MaxHops: maxHops})
		}},
		{"2-hop cover", func() reach.Index { return reach.BuildTwoHop(g, reach.TwoHopOptions{MaxHops: maxHops}) }},
	}
	var rows []TaxonomyRow
	for _, b := range build {
		start := time.Now()
		idx := b.mk()
		elapsed := time.Since(start)
		rows = append(rows, TaxonomyRow{
			Substrate: b.name,
			Build:     elapsed,
			Bytes:     idx.SizeBytes(),
			Query:     measureQueries(idx, g.NumNodes(), nQueries),
		})
	}
	return rows
}

// measureQueries mirrors §5.2.2's protocol: sample 1000 sources and 1000
// terminals, time the cross product (capped at n).
func measureQueries(idx reach.Index, nodes, n int) time.Duration {
	r := rand.New(rand.NewSource(7))
	srcs := make([]graph.NodeID, 1000)
	dsts := make([]graph.NodeID, 1000)
	for i := range srcs {
		srcs[i] = graph.NodeID(r.Intn(nodes))
		dsts[i] = graph.NodeID(r.Intn(nodes))
	}
	start := time.Now()
	done := 0
	for i := 0; done < n; i++ {
		s := srcs[i%1000]
		for j := 0; j < 1000 && done < n; j++ {
			idx.R(s, dsts[j])
			done++
		}
	}
	return time.Since(start) / time.Duration(n)
}
