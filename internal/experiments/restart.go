package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"microlink"
	"microlink/internal/synth"
)

// Restart is the warm-restart experiment for the persistence layer
// (DESIGN.md §8): a streaming system ingests a firehose, snapshots
// mid-stream (subsequent events tee into the WAL), shuts down, and is
// reopened from the data directory. The run reports the cold-start
// breakdown — world regeneration vs segment load vs WAL replay — next
// to the cost of building the same system from scratch, and verifies
// the restored system serves byte-identical top-k answers.

// RestartOptions sizes the run. Zero values select the defaults.
type RestartOptions struct {
	World          microlink.WorldParams // zero ⇒ 800-user world, seed 42
	Events         int                   // stream length (default 4000)
	FollowFraction float64               // follow share of the stream (default 0.25)
	SnapshotFrac   float64               // stream fraction ingested before the snapshot (default 0.5)
	Dir            string                // data directory (default: a fresh temp dir, removed afterwards)
}

// RestartResult is the JSON payload of `linkbench restart`.
type RestartResult struct {
	Users  int `json:"users"`
	Events int `json:"events"`

	FreshBuildMS int64  `json:"fresh_build_ms"` // cold Build over the generated world
	SnapshotMS   int64  `json:"snapshot_ms"`    // mid-stream System.Snapshot commit
	SnapshotSeq  uint64 `json:"snapshot_seq"`

	WALRecords int64 `json:"wal_records"` // records replayed on restart
	WALBytes   int64 `json:"wal_bytes"`

	// The cold-start breakdown the acceptance story hinges on: load and
	// replay are reported separately, and neither contains an arena
	// rebuild.
	GenerateMS  int64 `json:"generate_ms"`
	LoadMS      int64 `json:"load_ms"`
	ReplayMS    int64 `json:"replay_ms"`
	ColdStartMS int64 `json:"cold_start_ms"` // generate + load + replay

	ReplayedTweets  int64 `json:"replayed_tweets"`
	ReplayedFollows int64 `json:"replayed_follows"`
	TornTail        bool  `json:"torn_tail"`

	Probes    int  `json:"probes"`
	Identical bool `json:"identical"` // restored top-k byte-identical to the original
}

// restartProbe serialises a deterministic top-k sweep — every user
// stride × the first ambiguous surfaces — so two equivalent systems
// produce byte-identical dumps.
func restartProbe(sys *microlink.System, w *microlink.World) (int, []byte, error) {
	var surfaces []string
	w.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if len(cs) >= 2 {
			surfaces = append(surfaces, form)
		}
	})
	sort.Strings(surfaces)
	if len(surfaces) > 8 {
		surfaces = surfaces[:8]
	}
	now := w.Horizon() + 7200
	type probe struct {
		User    microlink.UserID
		Surface string
		TopK    []microlink.Scored
	}
	var probes []probe
	for u := 0; u < w.Graph.NumNodes(); u += 29 {
		for _, sf := range surfaces {
			probes = append(probes, probe{
				User:    microlink.UserID(u),
				Surface: sf,
				TopK:    sys.Linker.TopK(microlink.UserID(u), now, sf, 3),
			})
		}
	}
	b, err := json.Marshal(probes)
	return len(probes), b, err
}

// Restart runs the experiment.
func Restart(opts RestartOptions) (RestartResult, error) {
	if opts.World == (microlink.WorldParams{}) {
		opts.World = microlink.WorldParams{Seed: 42, Users: 800, Topics: 8, EntitiesPerTopic: 12, Days: 30}
	}
	if opts.Events <= 0 {
		opts.Events = 4000
	}
	if opts.FollowFraction <= 0 {
		opts.FollowFraction = 0.25
	}
	if opts.SnapshotFrac <= 0 || opts.SnapshotFrac >= 1 {
		opts.SnapshotFrac = 0.5
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "microlink-restart-*")
		if err != nil {
			return RestartResult{}, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}

	w := microlink.Generate(opts.World)
	buildStart := time.Now()
	sys := microlink.Build(w, microlink.Options{
		Reach:           microlink.ReachStreaming,
		TruthComplement: true,
	})
	res := RestartResult{
		Users:        w.Graph.NumNodes(),
		Events:       opts.Events,
		FreshBuildMS: time.Since(buildStart).Milliseconds(),
	}

	pipe, err := sys.StartIngest(microlink.IngestConfig{
		BlockOnFull:       true,
		RebuildAfterEdges: -1,
	})
	if err != nil {
		return res, err
	}
	stream := synth.GenerateStream(w, synth.StreamParams{
		Seed: opts.World.Seed + 1, Events: opts.Events, FollowFraction: opts.FollowFraction,
	})
	ctx := context.Background()
	cut := int(float64(len(stream)) * opts.SnapshotFrac)

	if err := pipe.Run(ctx, &sliceSource{events: stream[:cut]}); err != nil {
		return res, err
	}
	// Run returns when the source drains, not when the applier catches
	// up; wait for the first half to land so the snapshot's segments —
	// not the WAL — carry it.
	for {
		st := pipe.Stats()
		if st.AppliedTweets+st.AppliedFollows >= int64(cut) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snapStart := time.Now()
	info, err := sys.Snapshot(opts.Dir)
	if err != nil {
		return res, err
	}
	res.SnapshotMS = time.Since(snapStart).Milliseconds()
	res.SnapshotSeq = info.Seq

	if err := pipe.Run(ctx, &sliceSource{events: stream[cut:]}); err != nil {
		return res, err
	}
	if err := pipe.Close(ctx); err != nil {
		return res, err
	}
	pipe.ForceRebuild()
	nProbes, want, err := restartProbe(sys, w)
	if err != nil {
		return res, err
	}
	res.Probes = nProbes
	if err := sys.ClosePersist(); err != nil {
		return res, err
	}

	// The restart under measurement: everything the process would do
	// after a kill -9 — regenerate, load segments, replay the WAL.
	sys2, rep, err := microlink.Open(opts.Dir, microlink.Options{})
	if err != nil {
		return res, fmt.Errorf("reopen %s: %w", opts.Dir, err)
	}
	res.GenerateMS = rep.Generate.Milliseconds()
	res.LoadMS = rep.Load.Milliseconds()
	res.ReplayMS = rep.Replay.Milliseconds()
	res.ColdStartMS = (rep.Generate + rep.Load + rep.Replay).Milliseconds()
	res.WALRecords = rep.WALRecords
	res.WALBytes = rep.WALBytes
	res.ReplayedTweets = rep.Tweets
	res.ReplayedFollows = rep.Follows
	res.TornTail = rep.TornTail

	if err := sys2.RebuildReach(); err != nil {
		return res, err
	}
	_, got, err := restartProbe(sys2, w)
	if err != nil {
		return res, err
	}
	res.Identical = bytes.Equal(got, want)
	if err := sys2.ClosePersist(); err != nil {
		return res, err
	}
	return res, nil
}
