// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, Appendix C) over synthetic worlds: each function returns
// the same rows/series the paper reports, and the cmd/linkbench harness
// prints them. Absolute numbers differ from the paper (different data,
// different hardware); the shapes — who wins, by roughly what factor,
// where the crossovers fall — are what these functions reproduce, and
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"microlink"
	"time"

	"microlink/internal/eval"
	"microlink/internal/influence"
	"microlink/internal/recency"
)

// DefaultWorldParams is the world used by the accuracy experiments —
// matching the integration tests, so numbers are directly comparable.
func DefaultWorldParams() microlink.WorldParams {
	return microlink.WorldParams{Seed: 42, Users: 1500, Topics: 12, EntitiesPerTopic: 20, Days: 60}
}

// WeiboWorldParams flavours the generator like the Sina Weibo corpus of
// Appendix C.1: denser mentions per posting (the paper reports 2.3
// entities per tweet) and a slightly different ambiguity profile.
func WeiboWorldParams() microlink.WorldParams {
	p := DefaultWorldParams()
	p.Seed = 2012
	p.MentionAmbig = 0.5
	p.AmbiguousSurfaces = p.Topics * p.EntitiesPerTopic / 4
	return p
}

// AccuracyRow is one method's accuracy pair, the unit of Fig. 4 and
// Table 4.
type AccuracyRow struct {
	Label   string
	Mention float64
	Tweet   float64
}

// TimingRow is one method's per-mention / per-tweet linking latency
// (Fig. 5(a), Fig. 6(b)).
type TimingRow struct {
	Label      string
	PerMention time.Duration
	PerTweet   time.Duration
}

// evalRow evaluates one linker into an AccuracyRow.
func evalRow(label string, l eval.Linker, ts []microlink.Tweet) AccuracyRow {
	a := eval.Evaluate(l, ts)
	return AccuracyRow{Label: label, Mention: a.MentionAccuracy(), Tweet: a.TweetAccuracy()}
}

// Fig4a compares on-the-fly [14], collective [2] and our framework on the
// inactive-user test set.
func Fig4a(w *microlink.World) []AccuracyRow {
	sys := microlink.Build(w, microlink.Options{})
	test := sys.TestSet.All()
	return []AccuracyRow{
		evalRow("on-the-fly", sys.OnTheFly(), test),
		evalRow("collective", sys.Collective(sys.TestSet), test),
		evalRow("ours", sys.Linker, test),
	}
}

// Fig4b varies the activity threshold θ of the complementation corpus
// (the paper's D90 … D10 family).
func Fig4b(w *microlink.World, thetas []int) []AccuracyRow {
	var rows []AccuracyRow
	for _, th := range thetas {
		sys := microlink.Build(w, microlink.Options{ComplementTheta: th})
		rows = append(rows, evalRow(
			dLabel(th), sys.Linker, sys.TestSet.All()))
	}
	return rows
}

func dLabel(theta int) string {
	return "D" + itoa(theta)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Fig4c compares the tf-idf and entropy influence estimators.
func Fig4c(w *microlink.World) []AccuracyRow {
	tf := microlink.Build(w, microlink.Options{InfluenceMethod: influence.TFIDF})
	en := microlink.Build(w, microlink.Options{InfluenceMethod: influence.Entropy})
	test := tf.TestSet.All()
	return []AccuracyRow{
		evalRow("tfidf", tf.Linker, test),
		evalRow("entropy", en.Linker, test),
	}
}

// Fig4d compares linking with and without recency propagation.
func Fig4d(w *microlink.World) []AccuracyRow {
	noProp := microlink.Build(w, microlink.Options{Recency: recency.Options{NoPropagation: true}})
	prop := microlink.Build(w, microlink.Options{})
	test := prop.TestSet.All()
	return []AccuracyRow{
		evalRow("no propagation", noProp.Linker, test),
		evalRow("with propagation", prop.Linker, test),
	}
}

// Table4 ablates the three features of Eq. 1: each alone, then combined
// with the Table 3 defaults.
func Table4(w *microlink.World) []AccuracyRow {
	test := microlink.Build(w, microlink.Options{}).TestSet.All()
	configs := []struct {
		label string
		cfg   microlink.LinkerConfig
	}{
		{"interest only (α=1)", microlink.LinkerConfig{WInterest: 1}},
		{"recency only (β=1)", microlink.LinkerConfig{WRecency: 1}},
		{"popularity only (γ=1)", microlink.LinkerConfig{WPopularity: 1}},
		{"all features", microlink.LinkerConfig{}},
	}
	var rows []AccuracyRow
	for _, c := range configs {
		sys := microlink.Build(w, microlink.Options{Linker: c.cfg})
		rows = append(rows, evalRow(c.label, sys.Linker, test))
	}
	return rows
}

// Fig5a measures average linking time per mention and per tweet for the
// three methods over the test stream.
func Fig5a(w *microlink.World) []TimingRow {
	sys := microlink.Build(w, microlink.Options{})
	test := sys.TestSet.All()
	var rows []TimingRow
	for _, l := range []eval.Linker{sys.OnTheFly(), sys.Collective(sys.TestSet), sys.Linker} {
		_, tm := eval.EvaluateTimed(l, test)
		rows = append(rows, TimingRow{Label: l.Name(), PerMention: tm.PerMention, PerTweet: tm.PerTweet})
	}
	return rows
}

// Fig5c varies the number of influential users whose reachability is
// aggregated in Eq. 8 (0 = whole community, per Eq. 3).
func Fig5c(w *microlink.World, ks []int) []TimingRow {
	var rows []TimingRow
	for _, k := range ks {
		opts := microlink.Options{}
		label := "top-" + itoa(k)
		if k <= 0 {
			opts.Linker.WholeCommunity = true
			label = "whole community"
		} else {
			opts.Linker.TopInfluential = k
		}
		sys := microlink.Build(w, opts)
		_, tm := eval.EvaluateTimed(sys.Linker, sys.TestSet.All())
		rows = append(rows, TimingRow{Label: label, PerMention: tm.PerMention, PerTweet: tm.PerTweet})
	}
	return rows
}

// Fig5d measures linking time as the knowledgebase is complemented with
// increasingly large corpora (scalability; should stay flat).
func Fig5d(w *microlink.World, thetas []int) []TimingRow {
	var rows []TimingRow
	for _, th := range thetas {
		sys := microlink.Build(w, microlink.Options{ComplementTheta: th})
		_, tm := eval.EvaluateTimed(sys.Linker, sys.TestSet.All())
		rows = append(rows, TimingRow{Label: dLabel(th), PerMention: tm.PerMention, PerTweet: tm.PerTweet})
	}
	return rows
}

// Fig6ab reruns the headline accuracy and timing comparisons on the
// Weibo-flavoured world (Appendix C.1's generalisability study).
func Fig6ab(w *microlink.World) ([]AccuracyRow, []TimingRow) {
	return Fig4a(w), Fig5a(w)
}

// Fig6c partitions test accuracy by tweet length (mentions per tweet).
func Fig6c(w *microlink.World, maxLen int) map[string][]eval.Accuracy {
	sys := microlink.Build(w, microlink.Options{})
	test := sys.TestSet.All()
	return map[string][]eval.Accuracy{
		"on-the-fly": eval.ByTweetLength(sys.OnTheFly(), test, maxLen),
		"collective": eval.ByTweetLength(sys.Collective(sys.TestSet), test, maxLen),
		"ours":       eval.ByTweetLength(sys.Linker, test, maxLen),
	}
}

// Fig6dPoint is one (α, β, γ) setting with its accuracy.
type Fig6dPoint struct {
	Alpha, Beta, Gamma float64
	Mention            float64
}

// Fig6d sweeps the feature weights: for each α, β ranges over the
// remainder (γ = 1−α−β).
func Fig6d(w *microlink.World, alphas []float64, steps int) []Fig6dPoint {
	test := microlink.Build(w, microlink.Options{}).TestSet.All()
	var pts []Fig6dPoint
	for _, a := range alphas {
		rest := 1 - a
		for i := 0; i <= steps; i++ {
			b := rest * float64(i) / float64(steps)
			g := rest - b
			sys := microlink.Build(w, microlink.Options{Linker: microlink.LinkerConfig{
				WInterest: a, WRecency: b, WPopularity: g,
				MinInterest: 0.05,
			}})
			acc := eval.Evaluate(sys.Linker, test)
			pts = append(pts, Fig6dPoint{Alpha: a, Beta: b, Gamma: g, Mention: acc.MentionAccuracy()})
		}
	}
	return pts
}

// CategoryRow is Appendix C.1's per-category accuracy breakdown.
type CategoryRow struct {
	Category string
	Share    float64 // fraction of test mentions in this category
	Mention  float64
}

// Categories evaluates our linker per entity category.
func Categories(w *microlink.World) []CategoryRow {
	sys := microlink.Build(w, microlink.Options{})
	test := sys.TestSet.All()
	byCat := eval.ByCategory(sys.Linker, test, w.KB)
	total := 0
	for _, a := range byCat {
		total += a.Mentions
	}
	var rows []CategoryRow
	for c := 0; c < 5; c++ {
		cat := categoryAt(c)
		a := byCat[cat]
		if a.Mentions == 0 {
			continue
		}
		rows = append(rows, CategoryRow{
			Category: cat.String(),
			Share:    float64(a.Mentions) / float64(total),
			Mention:  a.MentionAccuracy(),
		})
	}
	return rows
}
