package experiments

import (
	"context"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"microlink"
	"microlink/internal/obs"
	"microlink/internal/synth"
)

// Firehose is the sustained-throughput experiment for the streaming
// ingest pipeline (DESIGN.md §7): a synthetic firehose — bursty tweets
// plus follow churn from synth.GenerateStream — is driven through
// System.StartIngest under the blocking backpressure policy while query
// workers hammer the linker, and the frozen reach arena is copy-on-swap
// rebuilt mid-stream. The run demonstrates the staleness contract
// end-to-end: queries are served (error-free) throughout, swaps land
// while the stream is live, and staleness returns to zero after the
// final drain + rebuild.

// FirehoseOptions sizes the run. Zero values select the defaults.
type FirehoseOptions struct {
	World          microlink.WorldParams // zero ⇒ 800-user world, seed 42
	Events         int                   // stream length (default 4000)
	FollowFraction float64               // follow share of the stream (default 0.25)
	QueryWorkers   int                   // concurrent query goroutines (default 2)
	Rebuilds       int                   // forced mid-stream swaps (default 2)
}

// FirehoseResult is the JSON payload of `linkbench firehose`.
type FirehoseResult struct {
	Users        int     `json:"users"`
	Events       int     `json:"events"`
	TweetEvents  int64   `json:"tweet_events"`
	FollowEvents int64   `json:"follow_events"`
	DurationMS   int64   `json:"duration_ms"`
	EventsPerSec float64 `json:"events_per_sec"`

	Dropped       int64 `json:"dropped"`
	InsertedEdges int64 `json:"inserted_edges"`
	Rebuilds      int64 `json:"rebuilds"`
	Swaps         int64 `json:"swaps"`

	Queries     int64 `json:"queries"`
	QueryErrors int64 `json:"query_errors"`
	QueryP50US  int64 `json:"query_p50_us"`
	QueryP99US  int64 `json:"query_p99_us"`

	PeakStaleness  int64 `json:"peak_staleness_events"`
	FinalStaleness int64 `json:"final_staleness_events"`
	PeakQueueDepth int   `json:"peak_queue_depth"`
}

// sliceSource replays a pre-generated stream as an ingest.Source.
type sliceSource struct {
	events []synth.StreamEvent
	next   int
}

func (s *sliceSource) Next(ctx context.Context) (microlink.IngestEvent, error) {
	if err := ctx.Err(); err != nil {
		return microlink.IngestEvent{}, err
	}
	if s.next >= len(s.events) {
		return microlink.IngestEvent{}, io.EOF
	}
	ev := s.events[s.next]
	s.next++
	if ev.Tweet != nil {
		return microlink.TweetEvent(ev.Tweet, nil), nil
	}
	return microlink.FollowEvent(ev.U, ev.V), nil
}

// Firehose runs the experiment.
func Firehose(opts FirehoseOptions) FirehoseResult {
	if opts.World == (microlink.WorldParams{}) {
		opts.World = microlink.WorldParams{Seed: 42, Users: 800, Topics: 8, EntitiesPerTopic: 12, Days: 30}
	}
	if opts.Events <= 0 {
		opts.Events = 4000
	}
	if opts.FollowFraction <= 0 {
		opts.FollowFraction = 0.25
	}
	if opts.QueryWorkers <= 0 {
		opts.QueryWorkers = 2
	}
	if opts.Rebuilds <= 0 {
		opts.Rebuilds = 2
	}

	w := microlink.Generate(opts.World)
	sys := microlink.Build(w, microlink.Options{
		Reach:           microlink.ReachStreaming,
		TruthComplement: true,
	})
	stream := synth.GenerateStream(w, synth.StreamParams{
		Seed: opts.World.Seed + 1, Events: opts.Events, FollowFraction: opts.FollowFraction,
	})
	res := FirehoseResult{Users: w.Graph.NumNodes(), Events: len(stream)}
	for _, ev := range stream {
		if ev.Tweet != nil {
			res.TweetEvents++
		} else {
			res.FollowEvents++
		}
	}

	// Manual swap placement: the edge-count trigger is disabled so the
	// forced rebuilds land at known stream fractions.
	pipe, err := sys.StartIngest(microlink.IngestConfig{
		BlockOnFull:       true,
		RebuildAfterEdges: -1,
	})
	if err != nil {
		panic(err) // unreachable: the system above is streaming-reach
	}

	// Ambiguous query surfaces, one scoring histogram for p50/p99.
	var surfaces []string
	w.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if len(cs) >= 2 {
			surfaces = append(surfaces, form)
		}
	})
	if len(surfaces) == 0 {
		w.KB.EachSurface(func(form string, cs []microlink.EntityID) {
			surfaces = append(surfaces, form)
		})
	}
	reg := obs.NewRegistry()
	lat := reg.Histogram("firehose_query_seconds", "Query latency during ingest.",
		obs.ExpBuckets(1e-6, 2, 24))

	ctx := context.Background()
	now := w.Horizon() + 3600
	producerDone := make(chan error, 1)
	queryStop := make(chan struct{})
	queryDone := make(chan struct{})
	var queries, queryErrors atomic.Int64

	for i := 0; i < opts.QueryWorkers; i++ {
		go func(seed int64) {
			defer func() { queryDone <- struct{}{} }()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-queryStop:
					return
				default:
				}
				u := microlink.UserID(r.Intn(res.Users))
				s := surfaces[r.Intn(len(surfaces))]
				t0 := time.Now()
				_, err := sys.Linker.ScoreCandidatesCtx(ctx, u, now, s)
				lat.ObserveSince(t0)
				queries.Add(1)
				if err != nil {
					queryErrors.Add(1)
				}
			}
		}(int64(1000 + i))
	}

	start := time.Now()
	go func() {
		producerDone <- pipe.Run(ctx, &sliceSource{events: stream})
	}()

	// Poll progress: force swaps at even fractions of the stream, track
	// peak staleness and queue depth.
	swapAt := make([]int64, 0, opts.Rebuilds)
	for i := 1; i <= opts.Rebuilds; i++ {
		swapAt = append(swapAt, int64(len(stream))*int64(i)/int64(opts.Rebuilds+1))
	}
	nextSwap := 0
	for running := true; running; {
		select {
		case err := <-producerDone:
			if err != nil {
				panic(err) // ctx is Background and the source is finite
			}
			running = false
		case <-time.After(2 * time.Millisecond):
		}
		st := pipe.Stats()
		res.PeakStaleness = max(res.PeakStaleness, st.Staleness)
		res.PeakQueueDepth = max(res.PeakQueueDepth, st.QueueDepth)
		applied := st.AppliedTweets + st.AppliedFollows + st.AppliedFeedback
		if nextSwap < len(swapAt) && applied >= swapAt[nextSwap] {
			pipe.ForceRebuild()
			nextSwap++
		}
	}

	// Drain, then one final swap so the arena reflects the full stream.
	if err := pipe.Close(ctx); err != nil {
		panic(err)
	}
	pipe.ForceRebuild()
	res.DurationMS = time.Since(start).Milliseconds()
	close(queryStop)
	for i := 0; i < opts.QueryWorkers; i++ {
		<-queryDone
	}

	st := pipe.Stats()
	res.Dropped = st.Dropped
	res.InsertedEdges = st.InsertedEdges
	res.Rebuilds = st.Rebuilds
	res.Swaps = st.Swaps
	res.FinalStaleness = st.Staleness
	res.Queries = queries.Load()
	res.QueryErrors = queryErrors.Load()
	if res.DurationMS > 0 {
		res.EventsPerSec = float64(res.Events) / (float64(res.DurationMS) / 1000)
	}
	snap := lat.Snapshot()
	res.QueryP50US = int64(snap.Quantile(0.50) * 1e6)
	res.QueryP99US = int64(snap.Quantile(0.99) * 1e6)
	return res
}
