package experiments

import (
	"testing"
	"time"

	"microlink"
)

func smallWorld() *microlink.World {
	p := DefaultWorldParams()
	p.Users = 400
	p.Topics = 6
	p.EntitiesPerTopic = 10
	p.Days = 20
	return microlink.Generate(p)
}

func checkAccuracyRows(t *testing.T, rows []AccuracyRow, wantLabels int) {
	t.Helper()
	if len(rows) != wantLabels {
		t.Fatalf("rows = %d, want %d: %+v", len(rows), wantLabels, rows)
	}
	for _, r := range rows {
		if r.Mention <= 0 || r.Mention > 1 || r.Tweet <= 0 || r.Tweet > 1 {
			t.Errorf("row %+v out of range", r)
		}
		if r.Mention < r.Tweet {
			t.Errorf("row %+v: mention accuracy below tweet accuracy", r)
		}
	}
}

func TestFig4aRows(t *testing.T) {
	rows := Fig4a(smallWorld())
	checkAccuracyRows(t, rows, 3)
	if rows[0].Label != "on-the-fly" || rows[2].Label != "ours" {
		t.Fatalf("labels: %+v", rows)
	}
}

func TestFig4bRows(t *testing.T) {
	rows := Fig4b(smallWorld(), []int{50, 10})
	checkAccuracyRows(t, rows, 2)
	if rows[0].Label != "D50" || rows[1].Label != "D10" {
		t.Fatalf("labels: %+v", rows)
	}
}

func TestFig4cRows(t *testing.T) {
	rows := Fig4c(smallWorld())
	checkAccuracyRows(t, rows, 2)
}

func TestFig4dRows(t *testing.T) {
	rows := Fig4d(smallWorld())
	checkAccuracyRows(t, rows, 2)
}

func TestTable4Rows(t *testing.T) {
	rows := Table4(smallWorld())
	checkAccuracyRows(t, rows, 4)
}

func TestFig5aRows(t *testing.T) {
	rows := Fig5a(smallWorld())
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.PerMention <= 0 || r.PerTweet < r.PerMention {
			t.Errorf("row %+v has inconsistent timings", r)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	scales := []GraphScale{
		{Label: "tiny", Users: 200, ClosureFeasible: true, NaiveBudget: time.Second},
		{Label: "small", Users: 400, ClosureFeasible: true, NaiveBudget: time.Second},
	}
	rows := Fig5b(scales, 4)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Naive <= r.Incremental {
			t.Errorf("%s: naive (%v) should dwarf incremental (%v)", r.Label, r.Naive, r.Incremental)
		}
	}
}

func TestFig5cRows(t *testing.T) {
	rows := Fig5c(smallWorld(), []int{1, 0})
	if len(rows) != 2 || rows[1].Label != "whole community" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFig5dRows(t *testing.T) {
	rows := Fig5d(smallWorld(), []int{50, 10})
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestTable5ShapeAndInfeasibleMarker(t *testing.T) {
	scales := []GraphScale{
		{Label: "small", Users: 400, ClosureFeasible: true},
		{Label: "big", Users: 600, ClosureFeasible: false},
	}
	rows := Table5(scales, 4, 2000)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	small, big := rows[0], rows[1]
	if small.ClosureBuild == 0 || small.TwoHopBuild == 0 {
		t.Fatalf("feasible scale missing builds: %+v", small)
	}
	if big.ClosureBuild != 0 {
		t.Fatalf("infeasible scale built a closure: %+v", big)
	}
	if big.TwoHopBuild == 0 || big.TwoHopQuery == 0 {
		t.Fatalf("2-hop must run at every scale: %+v", big)
	}
	// The headline Table 5 trade-off: closure queries faster, 2-hop index
	// smaller.
	if small.ClosureQuery >= small.TwoHopQuery {
		t.Errorf("closure query (%v) should beat 2-hop (%v)", small.ClosureQuery, small.TwoHopQuery)
	}
	if small.TwoHopBytes >= small.ClosureBytes {
		t.Errorf("2-hop index (%d) should be smaller than closure (%d)", small.TwoHopBytes, small.ClosureBytes)
	}
}

func TestFig6cBuckets(t *testing.T) {
	byMethod := Fig6c(smallWorld(), 4)
	if len(byMethod) != 3 {
		t.Fatalf("methods = %d", len(byMethod))
	}
	for m, buckets := range byMethod {
		if len(buckets) != 4 {
			t.Fatalf("%s: buckets = %d", m, len(buckets))
		}
		if buckets[0].Tweets == 0 {
			t.Errorf("%s: no single-mention tweets", m)
		}
	}
}

func TestFig6dGrid(t *testing.T) {
	pts := Fig6d(smallWorld(), []float64{0.6}, 2)
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	for _, p := range pts {
		sum := p.Alpha + p.Beta + p.Gamma
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("weights do not sum to 1: %+v", p)
		}
		if p.Mention <= 0 || p.Mention > 1 {
			t.Errorf("accuracy out of range: %+v", p)
		}
	}
}

func TestCategoriesRows(t *testing.T) {
	rows := Categories(smallWorld())
	if len(rows) == 0 {
		t.Fatal("no category rows")
	}
	var share float64
	for _, r := range rows {
		share += r.Share
		if r.Mention < 0 || r.Mention > 1 {
			t.Errorf("row %+v out of range", r)
		}
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("shares sum to %f", share)
	}
}

func TestWeiboWorldDenser(t *testing.T) {
	p := WeiboWorldParams()
	p.Users = 300
	p.Topics = 6
	p.EntitiesPerTopic = 10
	w := microlink.Generate(p)
	if w.Store.Len() == 0 {
		t.Fatal("empty weibo world")
	}
}

func TestTaxonomyRows(t *testing.T) {
	rows := Taxonomy(300, 4, 2000)
	if len(rows) != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]TaxonomyRow{}
	for _, r := range rows {
		byName[r.Substrate] = r
		if r.Query <= 0 {
			t.Errorf("%s: no query time", r.Substrate)
		}
	}
	tc := byName["transitive closure"]
	th := byName["2-hop cover"]
	online := byName["online search (GRAIL)"]
	if tc.Query >= th.Query {
		t.Errorf("closure query (%v) should beat 2-hop (%v)", tc.Query, th.Query)
	}
	if th.Query >= online.Query {
		t.Errorf("2-hop query (%v) should beat online search (%v)", th.Query, online.Query)
	}
	if online.Bytes >= th.Bytes {
		t.Errorf("online-search labels (%d B) should be tiny next to 2-hop (%d B)", online.Bytes, th.Bytes)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {90, "90"}, {123, "123"}} {
		if got := itoa(c.n); got != c.want {
			t.Errorf("itoa(%d) = %q", c.n, got)
		}
	}
}
