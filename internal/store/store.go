// Package store is the persistence layer: a versioned on-disk layout of
// immutable segment files plus an append-only, checksummed write-ahead
// log (WAL), giving the serving stack durable snapshots and warm
// restarts (ROADMAP item 3 — the audit-ledger discipline: append,
// checksum, replay).
//
// # Layout
//
// A data directory holds at most one committed snapshot and the WAL
// files that extend it:
//
//	MANIFEST                 JSON: version, seq, world params, reach
//	                         kind, segment names, first WAL seq
//	seg-<seq>-graph.bin      follow-graph edge list at the barrier
//	seg-<seq>-ckb.bin        complemented-KB posting lists (Definition 5)
//	seg-<seq>-tweets.bin     live (streamed) tweet corpus
//	seg-<seq>-reach.bin      frozen reachability arena (reach MLRI format)
//	wal-<seq>.log            mutations applied after the snapshot barrier
//
// Segments are written once and never modified; a snapshot becomes
// visible atomically when MANIFEST is renamed into place. The base world
// (graph, KB, corpus) is not serialized: it regenerates deterministically
// from the manifest's synth.Params, and the segments carry exactly the
// state that regeneration cannot reproduce — streamed follow edges,
// feedback postings, live tweets, and the (expensive to rebuild) frozen
// arena.
//
// # Durability contract
//
// Append buffers records and flushes them to the OS on every call, so a
// killed process (SIGKILL, panic) loses at most the batch being written;
// Options.Fsync additionally syncs the file per append for power-loss
// durability. A torn final record is the expected crash signature and is
// truncated away on replay; a checksum mismatch anywhere earlier is
// corruption and surfaces as ErrWALCorrupt. Replayed records re-enter
// the live stores exactly as they were applied pre-crash: tweet records
// carry their resolved entity links, so replay never re-runs the linker.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"microlink/internal/graph"
	"microlink/internal/kb"
	"microlink/internal/obs"
	"microlink/internal/synth"
	"microlink/internal/tweets"
)

// Typed failure classes. Every decode path returns one of these (wrapped
// with detail) — corruption never panics.
var (
	// ErrNoSnapshot reports a data directory with no committed MANIFEST.
	ErrNoSnapshot = errors.New("store: no snapshot in data directory")
	// ErrManifest reports a malformed or incompatible MANIFEST.
	ErrManifest = errors.New("store: bad manifest")
	// ErrSegment reports a malformed or corrupt segment file (bad magic,
	// checksum mismatch, impossible counts).
	ErrSegment = errors.New("store: bad segment file")
	// ErrSegmentVersion reports a segment written by an incompatible
	// format version.
	ErrSegmentVersion = errors.New("store: segment version skew")
	// ErrWAL reports a WAL file with a bad header (magic or version).
	ErrWAL = errors.New("store: bad WAL file")
	// ErrWALCorrupt reports a WAL record that fails its checksum or frames
	// past the file — mid-file damage, as opposed to the benign torn tail
	// a crash leaves.
	ErrWALCorrupt = errors.New("store: WAL corruption")
	// ErrNoWAL reports an Append before Rotate opened a WAL file.
	ErrNoWAL = errors.New("store: WAL not started (call Rotate first)")
)

// Reach kind names recorded in the manifest.
const (
	ReachClosure   = "closure"
	ReachTwoHop    = "twohop"
	ReachStreaming = "streaming"
)

// Options configures a Store.
type Options struct {
	// Fsync syncs the WAL file on every Append. Without it appends are
	// flushed to the OS per call — durable against process death but not
	// against power loss.
	Fsync bool
}

// Store manages one data directory: the committed snapshot (if any) and
// the open WAL file receiving the ingest tee. One Store owns its
// directory exclusively; the snapshot/replay protocol assumes a single
// process.
type Store struct {
	dir   string
	fsync bool

	mu      sync.Mutex // microlint:lock-order store
	man     *Manifest  // microlint:guarded-by mu — nil before the first commit
	wal     *walWriter // microlint:guarded-by mu — nil before Rotate
	walSeq  uint64     // microlint:guarded-by mu — seq of the open WAL file
	lastMan time.Time  // microlint:guarded-by mu — wall time of the last commit
	met     metrics    // microlint:guarded-by mu
}

// Open attaches a Store to dir, creating the directory if needed and
// loading the committed manifest if one exists (Manifest returns nil
// otherwise — the caller decides whether that is ErrNoSnapshot or a
// fresh start).
func Open(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, fsync: o.Fsync, man: man}, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the committed manifest, or nil when the directory
// holds no snapshot yet. The returned value is shared and must be
// treated as read-only.
func (s *Store) Manifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man
}

// Instrument registers the microlink_store_* metric family on reg and
// seeds the gauges with current state. Call once, before concurrent use.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = newMetrics(reg)
	if s.wal != nil {
		s.met.setWALBytes(s.wal.bytes)
	}
}

// Rotate closes the current WAL file (if any) and opens a fresh one with
// the next sequence number. Callers invoke it inside the snapshot
// barrier — records appended afterwards extend the snapshot being
// written — and once at warm open so post-restart appends never touch a
// replayed (possibly truncated) file.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			return err
		}
		s.wal = nil
	}
	next := s.maxWALSeqLocked() + 1
	w, err := createWAL(filepath.Join(s.dir, walName(next)), s.fsync)
	if err != nil {
		return err
	}
	s.wal = w
	s.walSeq = next
	s.met.setWALBytes(w.bytes)
	return nil
}

// maxWALSeqLocked scans the directory for the highest wal-<seq>.log
// present, 0 when none. os.ReadDir returns entries sorted by name, so
// the scan is deterministic.
func (s *Store) maxWALSeqLocked() uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return s.walSeq
	}
	max := uint64(0)
	for _, e := range entries {
		if seq, ok := parseWALName(e.Name()); ok && seq > max {
			max = seq
		}
	}
	if s.walSeq > max {
		max = s.walSeq
	}
	return max
}

// Append encodes recs into the open WAL file and flushes them to the OS
// (plus fsync when configured). The call is atomic with respect to
// Rotate: a snapshot barrier either sees the whole batch in the old file
// or finds it in the new one.
func (s *Store) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return ErrNoWAL
	}
	if err := s.wal.append(recs); err != nil {
		return err
	}
	s.met.setWALBytes(s.wal.bytes)
	s.met.addWALRecords(len(recs))
	return nil
}

// WALStats reports the byte size of the open WAL file and the total
// records written to it since it was opened.
func (s *Store) WALStats() (bytes, records int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.bytes, s.wal.records
}

// LastSnapshot reports the committed snapshot's sequence number and the
// wall-clock time of the commit (zero when the commit predates this
// process).
func (s *Store) LastSnapshot() (seq uint64, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return 0, time.Time{}
	}
	return s.man.Seq, s.lastMan
}

// Close flushes and closes the open WAL file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}

// Snapshot is the captured system state Commit persists: the follow
// graph and index at the rebuild point, the posting lists and live
// tweets at the WAL rotation barrier, and the world parameters that
// regenerate everything else.
type Snapshot struct {
	World    synth.Params
	Graph    *graph.Graph
	Postings [][]kb.Posting
	Tweets   []tweets.Tweet
	// Reach is the index kind (ReachClosure, ReachTwoHop,
	// ReachStreaming) and Index its serializer — the frozen arena's
	// WriteTo.
	Reach   string
	MaxHops int
	Index   io.WriterTo
}

// Commit writes snap as the next snapshot generation: four segment
// files, then the manifest (atomically, via rename), then prunes
// obsolete segments and WAL files older than the rotation barrier. The
// caller must have rotated the WAL while capturing snap, so the
// manifest's WALSeq points at records applied after the capture.
func (s *Store) Commit(snap Snapshot) (uint64, error) {
	start := time.Now()
	s.mu.Lock()
	seq := uint64(1)
	if s.man != nil {
		seq = s.man.Seq + 1
	}
	walSeq := s.walSeq
	s.mu.Unlock()
	if walSeq == 0 {
		return 0, ErrNoWAL
	}

	man := &Manifest{
		Version:     manifestVersion,
		Seq:         seq,
		CreatedUnix: start.Unix(),
		World:       snap.World,
		Reach:       snap.Reach,
		MaxHops:     snap.MaxHops,
		WALSeq:      walSeq,
		Segments: map[string]string{
			segGraphName:  segName(seq, segGraphName),
			segCKBName:    segName(seq, segCKBName),
			segTweetsName: segName(seq, segTweetsName),
			segReachName:  segName(seq, segReachName),
		},
	}

	// Segment writes run off the store lock: they are pure file IO on
	// fresh names no reader can see until the manifest commits.
	if err := writeSegment(filepath.Join(s.dir, man.Segments[segGraphName]), segKindGraph,
		func(w io.Writer) error { return writeGraphPayload(w, snap.Graph) }); err != nil {
		return 0, err
	}
	if err := writeSegment(filepath.Join(s.dir, man.Segments[segCKBName]), segKindCKB,
		func(w io.Writer) error { return writePostingsPayload(w, snap.Postings) }); err != nil {
		return 0, err
	}
	if err := writeSegment(filepath.Join(s.dir, man.Segments[segTweetsName]), segKindTweets,
		func(w io.Writer) error { return writeTweetsPayload(w, snap.Tweets) }); err != nil {
		return 0, err
	}
	if err := writeRawSegment(filepath.Join(s.dir, man.Segments[segReachName]), snap.Index); err != nil {
		return 0, err
	}
	if err := writeManifest(s.dir, man); err != nil {
		return 0, err
	}

	s.mu.Lock()
	s.man = man
	s.lastMan = time.Now()
	s.met.observeSnapshot(time.Since(start))
	s.mu.Unlock()
	return seq, s.prune(man)
}

// prune removes segments from older generations and WAL files below the
// committed barrier. The manifest is already durable, so a prune failure
// is reported but does not invalidate the commit.
func (s *Store) prune(man *Manifest) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	keep := make(map[string]bool, len(man.Segments)+2)
	for _, f := range man.Segments {
		keep[f] = true
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseWALName(name); ok {
			if seq < man.WALSeq {
				errs = append(errs, os.Remove(filepath.Join(s.dir, name)))
			}
			continue
		}
		if isSegName(name) && !keep[name] {
			errs = append(errs, os.Remove(filepath.Join(s.dir, name)))
		}
	}
	return errors.Join(errs...)
}

// LoadGraph reads the committed graph segment.
func (s *Store) LoadGraph() (*graph.Graph, error) {
	path, err := s.segPath(segGraphName)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	err = readSegment(path, segKindGraph, func(r io.Reader) error {
		var err error
		g, err = readGraphPayload(r)
		return err
	})
	return g, err
}

// LoadPostings reads the committed complemented-KB segment: one posting
// list per entity, time-sorted as captured.
func (s *Store) LoadPostings() ([][]kb.Posting, error) {
	path, err := s.segPath(segCKBName)
	if err != nil {
		return nil, err
	}
	var ps [][]kb.Posting
	err = readSegment(path, segKindCKB, func(r io.Reader) error {
		var err error
		ps, err = readPostingsPayload(r)
		return err
	})
	return ps, err
}

// LoadTweets reads the committed live-tweet segment in arrival order.
func (s *Store) LoadTweets() ([]tweets.Tweet, error) {
	path, err := s.segPath(segTweetsName)
	if err != nil {
		return nil, err
	}
	var ts []tweets.Tweet
	err = readSegment(path, segKindTweets, func(r io.Reader) error {
		var err error
		ts, err = readTweetsPayload(r)
		return err
	})
	return ts, err
}

// OpenReach opens the committed reachability segment for reading. The
// file is in the reach package's own serialized format (versioned,
// fingerprinted, checksummed); feed it to reach.ReadTwoHop or
// reach.ReadTransitiveClosure per the manifest's Reach kind.
func (s *Store) OpenReach() (io.ReadCloser, error) {
	path, err := s.segPath(segReachName)
	if err != nil {
		return nil, err
	}
	return os.Open(path)
}

func (s *Store) segPath(kind string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return "", ErrNoSnapshot
	}
	f, ok := s.man.Segments[kind]
	if !ok {
		return "", fmt.Errorf("%w: manifest missing %s segment", ErrManifest, kind)
	}
	return filepath.Join(s.dir, f), nil
}

// ReplayStats summarises one Replay pass.
type ReplayStats struct {
	Files    int   // WAL files visited
	Records  int64 // records delivered to the callback
	Bytes    int64 // record bytes replayed (excluding file headers)
	TornTail bool  // the last file ended mid-record (truncated away)
}

// Replay streams every WAL record since the committed snapshot through
// fn, in append order across files. A torn record at the tail of the
// last file is the expected crash signature: it is truncated off (so
// later passes see a clean file) and reported in the stats. A torn or
// checksum-failing record anywhere else is ErrWALCorrupt. Replay is part
// of the single-threaded open protocol — it must not run concurrently
// with Append or Rotate.
func (s *Store) Replay(fn func(*Record) error) (ReplayStats, error) {
	start := time.Now()
	s.mu.Lock()
	if s.man == nil {
		s.mu.Unlock()
		return ReplayStats{}, ErrNoSnapshot
	}
	first := s.man.WALSeq
	last := s.maxWALSeqLocked()
	s.mu.Unlock()

	var stats ReplayStats
	for seq := first; seq <= last; seq++ {
		path := filepath.Join(s.dir, walName(seq))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			continue
		}
		records, bytes, torn, err := replayWALFile(path, fn)
		stats.Files++
		stats.Records += records
		stats.Bytes += bytes
		if err != nil {
			return stats, err
		}
		if torn {
			if seq != last {
				return stats, fmt.Errorf("%w: %s torn mid-sequence (file %d of %d)",
					ErrWALCorrupt, walName(seq), seq, last)
			}
			stats.TornTail = true
		}
	}
	s.mu.Lock()
	s.met.observeReplay(time.Since(start))
	s.mu.Unlock()
	return stats, nil
}

// metrics is the microlink_store_* family, exported like the PR 6 ingest
// family: all fields nil (every update a no-op) until Instrument.
type metrics struct {
	walBytes        *obs.Gauge
	walRecordsTotal *obs.Counter
	snapshotSeconds *obs.Histogram
	replaySeconds   *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	return metrics{
		walBytes: reg.Gauge("microlink_store_wal_bytes",
			"Size of the open write-ahead-log file (resets on snapshot rotation)."),
		walRecordsTotal: reg.Counter("microlink_store_wal_records_total",
			"Mutation records appended to the write-ahead log."),
		snapshotSeconds: reg.Histogram("microlink_store_snapshot_seconds",
			"Duration of snapshot segment writes and manifest commits.", nil),
		replaySeconds: reg.Histogram("microlink_store_replay_seconds",
			"Duration of WAL replay at warm open.", nil),
	}
}

func (m *metrics) setWALBytes(b int64) {
	if m.walBytes != nil {
		m.walBytes.Set(float64(b))
	}
}

func (m *metrics) addWALRecords(n int) {
	if m.walRecordsTotal != nil {
		m.walRecordsTotal.Add(uint64(n))
	}
}

func (m *metrics) observeSnapshot(d time.Duration) {
	if m.snapshotSeconds != nil {
		m.snapshotSeconds.Observe(d.Seconds())
	}
}

func (m *metrics) observeReplay(d time.Duration) {
	if m.replaySeconds != nil {
		m.replaySeconds.Observe(d.Seconds())
	}
}
