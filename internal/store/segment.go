package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"strings"

	"microlink/internal/graph"
	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// Segment file format (little endian):
//
//	header:  magic "MLSG" | version u16 | kind u8
//	payload: kind-specific, self-delimiting
//	trailer: crc64(payload) u64
//
// Segments are immutable: written once under a fresh sequence-numbered
// name, made visible by the manifest commit, deleted when a newer
// generation supersedes them. The reach segment is the exception — it
// uses the reach package's own (equally versioned and checksummed) MLRI
// format verbatim, so the arena bytes on disk are exactly what
// reach.WriteTo produces.

const (
	segMagic   = "MLSG"
	segVersion = 1

	segKindGraph  = 1
	segKindCKB    = 2
	segKindTweets = 3

	// Decode-time sanity bounds: a corrupt count field must produce a
	// typed error, not an absurd allocation.
	maxNodes      = 1 << 28
	maxEdges      = 1 << 33
	maxEntities   = 1 << 24
	maxPostings   = 1 << 31
	maxTweets     = 1 << 28
	maxTweetBytes = 1 << 36
)

// Segment base names, used as manifest keys and in file names.
const (
	segGraphName  = "graph"
	segCKBName    = "ckb"
	segTweetsName = "tweets"
	segReachName  = "reach"
)

// segName formats the file name of a segment at generation seq.
func segName(seq uint64, kind string) string {
	return fmt.Sprintf("seg-%06d-%s.bin", seq, kind)
}

// isSegName reports whether name looks like a segment file (for pruning).
func isSegName(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".bin")
}

// writeSegment writes one framed segment: header, payload (checksummed
// as written), trailer. The file is synced before close so a committed
// manifest never references a segment the OS might still lose.
//
// microlint:durable
func writeSegment(path string, kind uint8, payload func(w io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(segMagic); err != nil {
		return err
	}
	var hdr [3]byte
	binary.LittleEndian.PutUint16(hdr[:2], segVersion)
	hdr[2] = kind
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	if err := payload(cw); err != nil {
		return err
	}
	var tr [8]byte
	binary.LittleEndian.PutUint64(tr[:], cw.crc)
	if _, err := bw.Write(tr[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// writeRawSegment writes an externally-framed segment (the reach arena,
// which carries its own magic, version, fingerprint and checksum).
//
// microlint:durable
func writeRawSegment(path string, wt io.WriterTo) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := wt.WriteTo(f); err != nil {
		return err
	}
	return f.Sync()
}

// readSegment validates the header, streams the payload through fn with
// checksum accounting, and verifies the trailer.
func readSegment(path string, kind uint8, payload func(r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, 7)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return fmt.Errorf("%w: %s: short header", ErrSegment, path)
	}
	if string(hdr[:4]) != segMagic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrSegment, path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segVersion {
		return fmt.Errorf("%w: %s: version %d, want %d", ErrSegmentVersion, path, v, segVersion)
	}
	if hdr[6] != kind {
		return fmt.Errorf("%w: %s: kind %d, want %d", ErrSegment, path, hdr[6], kind)
	}

	cr := &crcReader{r: br}
	if err := payload(cr); err != nil {
		return err
	}
	var tr [8]byte
	if _, err := io.ReadFull(br, tr[:]); err != nil {
		return fmt.Errorf("%w: %s: missing checksum trailer", ErrSegment, path)
	}
	if want := binary.LittleEndian.Uint64(tr[:]); cr.crc != want {
		return fmt.Errorf("%w: %s: checksum mismatch", ErrSegment, path)
	}
	return nil
}

type crcWriter struct {
	w   io.Writer
	crc uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc64.Update(cw.crc, walCRCTable, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint64
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc64.Update(cr.crc, walCRCTable, p[:n])
	return n, err
}

// Graph payload: n u32 | m u64 | m × (u i32, v i32) in CSR order.

func writeGraphPayload(w io.Writer, g *graph.Graph) error {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(g.NumNodes()))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(g.NumEdges()))
	if _, err := w.Write(buf[:12]); err != nil {
		return err
	}
	var edge [8]byte
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Out(graph.NodeID(u)) {
			binary.LittleEndian.PutUint32(edge[:4], uint32(u))
			binary.LittleEndian.PutUint32(edge[4:], uint32(v))
			if _, err := w.Write(edge[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

func readGraphPayload(r io.Reader) (*graph.Graph, error) {
	var buf [12]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: graph header: %v", ErrSegment, err)
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	m := binary.LittleEndian.Uint64(buf[4:12])
	if n > maxNodes || m > maxEdges {
		return nil, fmt.Errorf("%w: graph claims %d nodes / %d edges", ErrSegment, n, m)
	}
	b := graph.NewBuilder(int(n))
	var edge [8]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(r, edge[:]); err != nil {
			return nil, fmt.Errorf("%w: graph edge %d: %v", ErrSegment, i, err)
		}
		u := int32(binary.LittleEndian.Uint32(edge[:4]))
		v := int32(binary.LittleEndian.Uint32(edge[4:]))
		// Builder.AddEdge panics on out-of-range nodes; corruption must
		// surface as a typed error instead.
		if u < 0 || v < 0 || u >= int32(n) || v >= int32(n) {
			return nil, fmt.Errorf("%w: graph edge %d→%d out of range [0,%d)", ErrSegment, u, v, n)
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build(), nil
}

// Complemented-KB payload: nEntities u32 | per entity: count u32 +
// count × (tweet i64, user i32, time i64), lists in captured
// (time-sorted) order. Per-user tallies are re-derived on load.

func writePostingsPayload(w io.Writer, postings [][]kb.Posting) error {
	var buf [20]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(postings)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	for _, ps := range postings {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(ps)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		for _, p := range ps {
			binary.LittleEndian.PutUint64(buf[:8], uint64(p.Tweet))
			binary.LittleEndian.PutUint32(buf[8:12], uint32(p.User))
			binary.LittleEndian.PutUint64(buf[12:20], uint64(p.Time))
			if _, err := w.Write(buf[:20]); err != nil {
				return err
			}
		}
	}
	return nil
}

func readPostingsPayload(r io.Reader) ([][]kb.Posting, error) {
	var buf [20]byte
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: ckb header: %v", ErrSegment, err)
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	if n > maxEntities {
		return nil, fmt.Errorf("%w: ckb claims %d entities", ErrSegment, n)
	}
	out := make([][]kb.Posting, n)
	var total uint64
	for e := range out {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return nil, fmt.Errorf("%w: ckb entity %d: %v", ErrSegment, e, err)
		}
		cnt := binary.LittleEndian.Uint32(buf[:4])
		total += uint64(cnt)
		if total > maxPostings {
			return nil, fmt.Errorf("%w: ckb claims over %d postings", ErrSegment, maxPostings)
		}
		if cnt == 0 {
			continue
		}
		ps := make([]kb.Posting, cnt)
		for i := range ps {
			if _, err := io.ReadFull(r, buf[:20]); err != nil {
				return nil, fmt.Errorf("%w: ckb entity %d posting %d: %v", ErrSegment, e, i, err)
			}
			ps[i] = kb.Posting{
				Tweet: int64(binary.LittleEndian.Uint64(buf[:8])),
				User:  kb.UserID(int32(binary.LittleEndian.Uint32(buf[8:12]))),
				Time:  int64(binary.LittleEndian.Uint64(buf[12:20])),
			}
		}
		out[e] = ps
	}
	return out, nil
}

// Live-tweet payload: count u32 | byteLen u64 | byteLen bytes of packed
// tweet bodies (the WAL tweet encoding), in arrival order. The byte
// length makes the payload self-delimiting, leaving the checksum trailer
// to readSegment.

func writeTweetsPayload(w io.Writer, ts []tweets.Tweet) error {
	body := make([]byte, 0, 64*len(ts))
	for i := range ts {
		var err error
		if body, err = appendTweet(body, &ts[i]); err != nil {
			return err
		}
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ts)))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(len(body)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readTweetsPayload(r io.Reader) ([]tweets.Tweet, error) {
	var buf [12]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: tweets header: %v", ErrSegment, err)
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	byteLen := binary.LittleEndian.Uint64(buf[4:12])
	if n > maxTweets || byteLen > maxTweetBytes {
		return nil, fmt.Errorf("%w: tweets segment claims %d tweets in %d bytes", ErrSegment, n, byteLen)
	}
	body := make([]byte, byteLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: tweets payload: %v", ErrSegment, err)
	}
	d := &decoder{b: body}
	out := make([]tweets.Tweet, 0, min(int(n), 1<<20))
	for i := uint32(0); i < n; i++ {
		tw, err := decodeTweet(d)
		if err != nil {
			return nil, fmt.Errorf("%w: tweet %d: %v", ErrSegment, i, err)
		}
		out = append(out, tw)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in tweets segment", ErrSegment, len(d.b))
	}
	return out, nil
}
