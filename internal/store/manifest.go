package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"microlink/internal/synth"
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
)

// Manifest is the commit record of one snapshot generation. It is the
// single mutable file in the layout, replaced atomically by rename, so a
// crash during Commit leaves either the old snapshot or the new one —
// never a half-written mix.
type Manifest struct {
	// Version is the layout format version (manifestVersion).
	Version int `json:"version"`
	// Seq is the snapshot generation, embedded in segment file names.
	Seq uint64 `json:"seq"`
	// CreatedUnix is the commit wall time, seconds since the epoch.
	CreatedUnix int64 `json:"created_unix"`
	// World regenerates the deterministic base dataset (graph, KB,
	// corpus); only state beyond it is serialized in segments.
	World synth.Params `json:"world"`
	// Reach names the persisted index kind: ReachClosure, ReachTwoHop or
	// ReachStreaming.
	Reach string `json:"reach"`
	// MaxHops is the bounded-reachability horizon the index was built
	// with (0 for unbounded closure).
	MaxHops int `json:"max_hops,omitempty"`
	// Segments maps segment base names (graph, ckb, tweets, reach) to
	// file names inside the data directory.
	Segments map[string]string `json:"segments"`
	// WALSeq is the first WAL file extending this snapshot: replay
	// starts there and pruning deletes everything below it.
	WALSeq uint64 `json:"wal_seq"`
}

// readManifest loads and validates path. A missing file is (nil, nil) —
// an empty data directory, not an error.
func readManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrManifest, path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrManifest, path, m.Version, manifestVersion)
	}
	switch m.Reach {
	case ReachClosure, ReachTwoHop, ReachStreaming:
	default:
		return nil, fmt.Errorf("%w: %s: unknown reach kind %q", ErrManifest, path, m.Reach)
	}
	if m.Seq == 0 || m.WALSeq == 0 {
		return nil, fmt.Errorf("%w: %s: zero sequence numbers", ErrManifest, path)
	}
	for _, name := range []string{segGraphName, segCKBName, segTweetsName, segReachName} {
		if m.Segments[name] == "" {
			return nil, fmt.Errorf("%w: %s: missing %s segment entry", ErrManifest, path, name)
		}
	}
	return &m, nil
}

// writeManifest commits man atomically: write MANIFEST.tmp, sync it,
// rename over MANIFEST, sync the directory so the rename is durable.
// Failed commits remove the temp file so the next generation starts
// from a clean directory.
//
// microlint:durable
func writeManifest(dir string, man *Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSynced(tmp, append(b, '\n')); err != nil {
		return errors.Join(err, removeTemp(tmp))
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return errors.Join(err, removeTemp(tmp))
	}
	return syncDir(dir)
}

// removeTemp deletes a leftover temp file, tolerating its absence.
func removeTemp(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeFileSynced writes data to a fresh file and syncs it before close.
//
// microlint:durable
func writeFileSynced(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir makes a just-renamed directory entry durable. Best-effort:
// platforms that refuse to open directories are tolerated.
//
// microlint:durable
func syncDir(dir string) (err error) {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer func() {
		if cerr := d.Close(); err == nil {
			err = cerr
		}
	}()
	return d.Sync()
}
