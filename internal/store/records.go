package store

import (
	"encoding/binary"
	"fmt"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// Kind discriminates WAL records, mirroring ingest event kinds.
type Kind uint8

// WAL record kinds. Values are part of the on-disk format.
const (
	// RecTweet is a streamed tweet with its resolved entity links (the
	// links actually fed back pre-crash, so replay never re-links).
	RecTweet Kind = 1
	// RecFollow is a follow edge U → V.
	RecFollow Kind = 2
	// RecFeedback is an explicit linking correction.
	RecFeedback Kind = 3
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case RecTweet:
		return "tweet"
	case RecFollow:
		return "follow"
	case RecFeedback:
		return "feedback"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one durable mutation. For RecTweet, Links are the entity
// links that were fed back into the complemented KB when the tweet was
// applied — nil means no feedback happened (e.g. the pipeline ran with
// NoFeedback) and replay must skip it too.
type Record struct {
	Kind  Kind
	Tweet *tweets.Tweet // RecTweet, RecFeedback
	Links []kb.EntityID // links fed back; nil ⇒ none were
	U, V  kb.UserID     // RecFollow
}

// TweetRecord wraps an applied tweet and the links fed back for it.
func TweetRecord(tw *tweets.Tweet, links []kb.EntityID) Record {
	return Record{Kind: RecTweet, Tweet: tw, Links: links}
}

// FollowRecord wraps an applied follow edge u → v.
func FollowRecord(u, v kb.UserID) Record {
	return Record{Kind: RecFollow, U: u, V: v}
}

// FeedbackRecord wraps an applied linking correction.
func FeedbackRecord(tw *tweets.Tweet, links []kb.EntityID) Record {
	return Record{Kind: RecFeedback, Tweet: tw, Links: links}
}

// Encoding limits. Bounds both encode-time validation and decode-time
// sanity checks, so a corrupt length field can never drive a huge
// allocation.
const (
	maxTextLen  = 1 << 20 // tweet text bytes
	maxMentions = 1 << 16 // mentions per tweet
	maxSurface  = 1 << 16 // surface bytes per mention
	maxLinks    = 1 << 16 // links per record
)

// appendTweet serialises a tweet body (shared by WAL records and the
// tweets segment): id i64 | user i32 | time i64 | textLen u32 + bytes |
// nMentions u16 | {surfLen u16 + bytes, start i32, end i32, truth i32,
// kind u8}…, all little endian.
func appendTweet(b []byte, tw *tweets.Tweet) ([]byte, error) {
	if len(tw.Text) > maxTextLen {
		return nil, fmt.Errorf("store: tweet %d text exceeds %d bytes", tw.ID, maxTextLen)
	}
	if len(tw.Mentions) >= maxMentions {
		return nil, fmt.Errorf("store: tweet %d carries too many mentions", tw.ID)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(tw.ID))
	b = binary.LittleEndian.AppendUint32(b, uint32(tw.User))
	b = binary.LittleEndian.AppendUint64(b, uint64(tw.Time))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(tw.Text)))
	b = append(b, tw.Text...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(tw.Mentions)))
	for i := range tw.Mentions {
		m := &tw.Mentions[i]
		if len(m.Surface) >= maxSurface {
			return nil, fmt.Errorf("store: tweet %d mention surface too long", tw.ID)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Surface)))
		b = append(b, m.Surface...)
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Start))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.End))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Truth))
		b = append(b, byte(m.Kind))
	}
	return b, nil
}

// decoder walks a byte slice with bounds checking; every overrun is a
// typed error, never a panic.
type decoder struct {
	b []byte
}

func (d *decoder) need(n int) ([]byte, error) {
	if len(d.b) < n {
		return nil, fmt.Errorf("%w: record truncated (%d bytes short)", ErrWALCorrupt, n-len(d.b))
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out, nil
}

func (d *decoder) u8() (uint8, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func decodeTweet(d *decoder) (tweets.Tweet, error) {
	var tw tweets.Tweet
	id, err := d.u64()
	if err != nil {
		return tw, err
	}
	user, err := d.u32()
	if err != nil {
		return tw, err
	}
	ts, err := d.u64()
	if err != nil {
		return tw, err
	}
	textLen, err := d.u32()
	if err != nil {
		return tw, err
	}
	if textLen > maxTextLen {
		return tw, fmt.Errorf("%w: tweet text length %d", ErrWALCorrupt, textLen)
	}
	text, err := d.need(int(textLen))
	if err != nil {
		return tw, err
	}
	nm, err := d.u16()
	if err != nil {
		return tw, err
	}
	tw.ID = int64(id)
	tw.User = kb.UserID(int32(user))
	tw.Time = int64(ts)
	tw.Text = string(text)
	if nm > 0 {
		tw.Mentions = make([]tweets.Mention, nm)
	}
	for i := 0; i < int(nm); i++ {
		sl, err := d.u16()
		if err != nil {
			return tw, err
		}
		surf, err := d.need(int(sl))
		if err != nil {
			return tw, err
		}
		start, err := d.u32()
		if err != nil {
			return tw, err
		}
		end, err := d.u32()
		if err != nil {
			return tw, err
		}
		truth, err := d.u32()
		if err != nil {
			return tw, err
		}
		kind, err := d.u8()
		if err != nil {
			return tw, err
		}
		tw.Mentions[i] = tweets.Mention{
			Surface: string(surf),
			Start:   int(int32(start)),
			End:     int(int32(end)),
			Truth:   kb.EntityID(int32(truth)),
			Kind:    tweets.MentionKind(kind),
		}
	}
	return tw, nil
}

// appendRecord serialises r's payload (the frame around it — kind, length,
// checksum — is the WAL writer's job). Links use a nil-preserving count:
// 0 ⇒ nil, n+1 ⇒ n links.
func appendRecord(b []byte, r *Record) ([]byte, error) {
	switch r.Kind {
	case RecTweet, RecFeedback:
		if r.Tweet == nil {
			return nil, fmt.Errorf("store: %s record without a tweet", r.Kind)
		}
		if len(r.Links) >= maxLinks {
			return nil, fmt.Errorf("store: record carries too many links")
		}
		var err error
		if b, err = appendTweet(b, r.Tweet); err != nil {
			return nil, err
		}
		if r.Links == nil {
			b = binary.LittleEndian.AppendUint16(b, 0)
		} else {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Links)+1))
			for _, e := range r.Links {
				b = binary.LittleEndian.AppendUint32(b, uint32(e))
			}
		}
		return b, nil
	case RecFollow:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.V))
		return b, nil
	default:
		return nil, fmt.Errorf("store: unknown record kind %d", r.Kind)
	}
}

// decodeRecord parses one checksum-verified payload back into a Record.
func decodeRecord(kind Kind, payload []byte) (Record, error) {
	d := &decoder{b: payload}
	r := Record{Kind: kind}
	switch kind {
	case RecTweet, RecFeedback:
		tw, err := decodeTweet(d)
		if err != nil {
			return r, err
		}
		nl, err := d.u16()
		if err != nil {
			return r, err
		}
		r.Tweet = &tw
		if nl > 0 {
			r.Links = make([]kb.EntityID, nl-1)
			for i := range r.Links {
				e, err := d.u32()
				if err != nil {
					return r, err
				}
				r.Links[i] = kb.EntityID(int32(e))
			}
		}
	case RecFollow:
		u, err := d.u32()
		if err != nil {
			return r, err
		}
		v, err := d.u32()
		if err != nil {
			return r, err
		}
		r.U = kb.UserID(int32(u))
		r.V = kb.UserID(int32(v))
	default:
		return r, fmt.Errorf("%w: unknown record kind %d", ErrWALCorrupt, kind)
	}
	if len(d.b) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes after %s record", ErrWALCorrupt, len(d.b), kind)
	}
	return r, nil
}
