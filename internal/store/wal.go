package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"strconv"
	"strings"
)

// WAL file format (little endian):
//
//	header: magic "MLWL" | version u16
//	record: kind u8 | payloadLen u32 | payload | crc64(kind…payload) u64
//
// The checksum covers the kind byte, the length field and the payload,
// so a flipped bit anywhere in the frame is detected. Records are
// appended with buffered writes flushed per batch: a crash can tear at
// most the final record, which replay truncates away; anything else that
// fails the checksum is ErrWALCorrupt.

const (
	walMagic   = "MLWL"
	walVersion = 1

	walHeaderSize    = 6         // magic + version
	walFrameOverhead = 1 + 4 + 8 // kind + length + crc
	maxRecordPayload = 1 << 24   // sanity bound for decode-time allocation
)

var walCRCTable = crc64.MakeTable(crc64.ECMA)

// walName formats the file name of WAL sequence seq.
func walName(seq uint64) string { return fmt.Sprintf("wal-%06d.log", seq) }

// parseWALName extracts the sequence from a wal-<seq>.log name.
func parseWALName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// walWriter appends framed records to one WAL file. Not safe for
// concurrent use — the Store serialises access behind its mutex: the
// advisory lane (racecheck -advisory) proves bytes and records are
// consistently protected by Store.mu (level `store`) across every
// concurrent access, a cross-struct guard the same-struct guarded-by
// grammar cannot declare — see the inferred-lockset table in
// DESIGN.md §6.
type walWriter struct {
	f       *os.File
	bw      *bufio.Writer
	fsync   bool
	bytes   int64 // advisory-inferred guard: Store.mu
	records int64 // advisory-inferred guard: Store.mu
	scratch []byte
}

// createWAL creates path (which must not exist — sequence numbers never
// repeat) and writes the header.
//
// microlint:durable
func createWAL(path string, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, bw: bufio.NewWriter(f), fsync: fsync}
	if _, err := w.bw.WriteString(walMagic); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], walVersion)
	if _, err := w.bw.Write(v[:]); err != nil {
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		return nil, err
	}
	w.bytes = walHeaderSize
	return w, nil
}

// append frames and writes recs, then flushes to the OS (and syncs when
// configured). The whole batch is one flush: after append returns, every
// record in it survives process death.
//
// microlint:durable
func (w *walWriter) append(recs []Record) error {
	for i := range recs {
		frame, err := appendWALFrame(w.scratch[:0], &recs[i])
		if err != nil {
			return err
		}
		w.scratch = frame[:0]
		if _, err := w.bw.Write(frame); err != nil {
			return err
		}
		w.bytes += int64(len(frame))
		w.records++
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

// appendWALFrame encodes one record into its on-disk frame.
func appendWALFrame(b []byte, r *Record) ([]byte, error) {
	start := len(b)
	b = append(b, byte(r.Kind))
	b = append(b, 0, 0, 0, 0) // length backpatched below
	payloadStart := len(b)
	b, err := appendRecord(b, r)
	if err != nil {
		return nil, err
	}
	payloadLen := len(b) - payloadStart
	if payloadLen > maxRecordPayload {
		return nil, fmt.Errorf("store: record payload %d exceeds %d bytes", payloadLen, maxRecordPayload)
	}
	binary.LittleEndian.PutUint32(b[start+1:], uint32(payloadLen))
	crc := crc64.Checksum(b[start:], walCRCTable)
	return binary.LittleEndian.AppendUint64(b, crc), nil
}

// close flushes, syncs and closes the file.
//
// microlint:durable
func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// replayWALFile streams every record of one WAL file through fn. A torn
// frame at EOF is truncated off (the crash signature; later passes see a
// clean file) and reported via torn; a frame that fails its checksum, or
// tears before EOF within the buffered view, is ErrWALCorrupt.
func replayWALFile(path string, fn func(*Record) error) (records, bytes int64, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()

	br := bufio.NewReader(f)
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, false, fmt.Errorf("%w: %s: short header", ErrWAL, path)
	}
	if string(hdr[:4]) != walMagic {
		return 0, 0, false, fmt.Errorf("%w: %s: bad magic %q", ErrWAL, path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != walVersion {
		return 0, 0, false, fmt.Errorf("%w: %s: version %d, want %d", ErrWAL, path, v, walVersion)
	}

	offset := int64(walHeaderSize) // end of the last good record
	var frame []byte
	for {
		prefix := make([]byte, 5) // kind + length
		if _, err := io.ReadFull(br, prefix); err != nil {
			if err == io.EOF {
				return records, bytes, false, nil
			}
			// Tore inside the frame prefix.
			return records, bytes, true, truncateTail(f, offset)
		}
		payloadLen := binary.LittleEndian.Uint32(prefix[1:])
		if payloadLen > maxRecordPayload {
			return records, bytes, false, fmt.Errorf("%w: %s: frame length %d at offset %d",
				ErrWALCorrupt, path, payloadLen, offset)
		}
		frameLen := int(payloadLen) + walFrameOverhead
		if cap(frame) < frameLen {
			frame = make([]byte, frameLen)
		}
		frame = frame[:frameLen]
		copy(frame, prefix)
		if _, err := io.ReadFull(br, frame[5:]); err != nil {
			// Tore inside the payload or checksum.
			return records, bytes, true, truncateTail(f, offset)
		}
		body := frame[:frameLen-8]
		want := binary.LittleEndian.Uint64(frame[frameLen-8:])
		if crc64.Checksum(body, walCRCTable) != want {
			return records, bytes, false, fmt.Errorf("%w: %s: checksum mismatch at offset %d",
				ErrWALCorrupt, path, offset)
		}
		rec, err := decodeRecord(Kind(frame[0]), body[5:])
		if err != nil {
			return records, bytes, false, fmt.Errorf("%s: offset %d: %w", path, offset, err)
		}
		if err := fn(&rec); err != nil {
			return records, bytes, false, err
		}
		records++
		bytes += int64(frameLen)
		offset += int64(frameLen)
	}
}

// truncateTail chops a torn final record off at the last good frame
// boundary, restoring the file to a cleanly-appendable state.
func truncateTail(f *os.File, offset int64) error {
	return f.Truncate(offset)
}
