package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"microlink/internal/graph"
	"microlink/internal/kb"
	"microlink/internal/synth"
	"microlink/internal/tweets"
)

func sampleTweet(id int64) tweets.Tweet {
	return tweets.Tweet{
		ID:   id,
		User: kb.UserID(7),
		Time: 1000 + id,
		Text: "galaxy launch @ court",
		Mentions: []tweets.Mention{
			{Surface: "galaxy", Start: 0, End: 1, Truth: 3, Kind: tweets.KindProfile},
			{Surface: "court", Start: 3, End: 4, Truth: 9, Kind: tweets.KindHot},
		},
	}
}

func sampleRecords() []Record {
	tw1 := sampleTweet(1)
	tw2 := sampleTweet(2)
	tw3 := sampleTweet(3)
	return []Record{
		TweetRecord(&tw1, []kb.EntityID{3, 9}),
		TweetRecord(&tw2, nil), // NoFeedback: links nil, must stay nil
		FollowRecord(4, 11),
		FeedbackRecord(&tw3, []kb.EntityID{5}),
	}
}

func sampleGraph() *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 5)
	return b.Build()
}

// fakeIndex stands in for a reach arena at the store layer, which treats
// the reach segment as an opaque self-checked blob.
type fakeIndex struct{ data []byte }

func (f fakeIndex) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(f.data)
	return int64(n), err
}

func sampleSnapshot() Snapshot {
	return Snapshot{
		World: synth.Params{Seed: 42, Users: 50, Topics: 3},
		Graph: sampleGraph(),
		Postings: [][]kb.Posting{
			{{Tweet: 1, User: 7, Time: 1001}, {Tweet: 2, User: 8, Time: 1002}},
			nil,
			{{Tweet: 3, User: 7, Time: 1003}},
		},
		Tweets:  []tweets.Tweet{sampleTweet(1), sampleTweet(2)},
		Reach:   ReachStreaming,
		MaxHops: 2,
		Index:   fakeIndex{data: []byte("MLRI-stand-in arena bytes")},
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func commitSample(t *testing.T, s *Store) uint64 {
	t.Helper()
	seq, err := s.Commit(sampleSnapshot())
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return seq
}

func TestEmptyDirectory(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if s.Manifest() != nil {
		t.Fatal("fresh directory should have no manifest")
	}
	if _, err := s.LoadGraph(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("LoadGraph on empty dir: got %v, want ErrNoSnapshot", err)
	}
	if _, err := s.Replay(func(*Record) error { return nil }); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Replay on empty dir: got %v, want ErrNoSnapshot", err)
	}
	if err := s.Append(sampleRecords()); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Append before Rotate: got %v, want ErrNoWAL", err)
	}
	if _, err := s.Commit(sampleSnapshot()); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Commit before Rotate: got %v, want ErrNoWAL", err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	commitSample(t, s)
	want := sampleRecords()
	if err := s.Append(want); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	var got []Record
	stats, err := s2.Replay(func(r *Record) error {
		cp := *r
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.TornTail {
		t.Error("clean close reported a torn tail")
	}
	if stats.Records != int64(len(want)) {
		t.Fatalf("replayed %d records, want %d", stats.Records, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, want)
	}
	if got[1].Links != nil {
		t.Error("nil links did not survive the round trip")
	}
}

func TestWALSpansRotations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	recs := sampleRecords()
	if err := s.Append(recs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(recs[2:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	var got []Record
	stats, err := s2.Replay(func(r *Record) error { got = append(got, *r); return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Files != 2 {
		t.Errorf("visited %d files, want 2", stats.Files)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay across rotation lost order:\n got %+v\nwant %+v", got, recs)
	}
}

// walPath returns the single WAL file in dir, failing if there isn't
// exactly one.
func walPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one WAL file, got %v (%v)", matches, err)
	}
	return matches[0]
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	recs := sampleRecords()
	if err := s.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop into the final record's checksum: the crash signature.
	path := walPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	var n int
	stats, err := s2.Replay(func(*Record) error { n++; return nil })
	if err != nil {
		t.Fatalf("Replay over torn tail: %v", err)
	}
	if !stats.TornTail {
		t.Error("torn tail not reported")
	}
	if n != len(recs)-1 {
		t.Fatalf("replayed %d records, want %d (last torn away)", n, len(recs)-1)
	}

	// The torn record was truncated off: a second pass sees a clean file.
	stats2, err := s2.Replay(func(*Record) error { return nil })
	if err != nil {
		t.Fatalf("second Replay: %v", err)
	}
	if stats2.TornTail {
		t.Error("tail still torn after truncating pass")
	}
	if stats2.Records != int64(len(recs)-1) {
		t.Errorf("second pass replayed %d records, want %d", stats2.Records, len(recs)-1)
	}
}

func TestWALChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	if err := s.Append(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the first record's payload — mid-file damage,
	// not a torn tail.
	path := walPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[walHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	_, err = s2.Replay(func(*Record) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Replay over flipped byte: got %v, want ErrWALCorrupt", err)
	}
}

func TestWALVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := walPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[4] = 0xEE // version low byte
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	_, err = s2.Replay(func(*Record) error { return nil })
	if !errors.Is(err, ErrWAL) {
		t.Fatalf("Replay with version skew: got %v, want ErrWAL", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	snap := sampleSnapshot()
	seq, err := s.Commit(snap)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if seq != 1 {
		t.Errorf("first commit seq = %d, want 1", seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	man := s2.Manifest()
	if man == nil {
		t.Fatal("manifest missing after reopen")
	}
	if man.Seq != 1 || man.Reach != ReachStreaming || man.MaxHops != 2 {
		t.Errorf("manifest fields wrong: %+v", man)
	}
	if man.World != snap.World {
		t.Errorf("world params did not round-trip: %+v", man.World)
	}

	g, err := s2.LoadGraph()
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if g.NumNodes() != snap.Graph.NumNodes() || g.NumEdges() != snap.Graph.NumEdges() {
		t.Fatalf("graph shape %d/%d, want %d/%d",
			g.NumNodes(), g.NumEdges(), snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if !reflect.DeepEqual(g.Out(graph.NodeID(u)), snap.Graph.Out(graph.NodeID(u))) {
			t.Fatalf("out-edges of %d differ", u)
		}
	}

	ps, err := s2.LoadPostings()
	if err != nil {
		t.Fatalf("LoadPostings: %v", err)
	}
	if len(ps) != len(snap.Postings) {
		t.Fatalf("got %d posting lists, want %d", len(ps), len(snap.Postings))
	}
	for e := range ps {
		if len(ps[e]) == 0 && len(snap.Postings[e]) == 0 {
			continue
		}
		if !reflect.DeepEqual(ps[e], snap.Postings[e]) {
			t.Fatalf("postings for entity %d differ: %+v vs %+v", e, ps[e], snap.Postings[e])
		}
	}

	ts, err := s2.LoadTweets()
	if err != nil {
		t.Fatalf("LoadTweets: %v", err)
	}
	if !reflect.DeepEqual(ts, snap.Tweets) {
		t.Fatalf("tweets differ:\n got %+v\nwant %+v", ts, snap.Tweets)
	}

	rc, err := s2.OpenReach()
	if err != nil {
		t.Fatalf("OpenReach: %v", err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(raw, []byte("MLRI-stand-in arena bytes")) {
		t.Fatalf("reach segment bytes differ (%v): %q", err, raw)
	}
}

func TestCommitPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	if err := s.Append(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	// Second snapshot: rotate (barrier), commit, old WAL + segments gone.
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if seq := commitSample(t, s); seq != 2 {
		t.Fatalf("second commit seq = %d, want 2", seq)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseWALName(name); ok && seq < 2 {
			t.Errorf("stale WAL file %s survived prune", name)
		}
		if isSegName(name) && name[:10] != "seg-000002" {
			t.Errorf("stale segment %s survived prune", name)
		}
	}

	// The pruned directory must still replay (zero records).
	stats, err := s.ReplayForTest()
	if err != nil {
		t.Fatalf("Replay after prune: %v", err)
	}
	if stats.Records != 0 {
		t.Errorf("replayed %d records from pruned WAL, want 0", stats.Records)
	}
}

// ReplayForTest closes the open WAL (replay must not race appends) and
// replays into the void.
func (s *Store) ReplayForTest() (ReplayStats, error) {
	if err := s.Close(); err != nil {
		return ReplayStats{}, err
	}
	return s.Replay(func(*Record) error { return nil })
}

func segmentPath(t *testing.T, s *Store, kind string) string {
	t.Helper()
	p, err := s.segPath(kind)
	if err != nil {
		t.Fatalf("segPath(%s): %v", kind, err)
	}
	return p
}

func TestSegmentVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	path := segmentPath(t, s, segGraphName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[4] = 0xEE // version low byte
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadGraph(); !errors.Is(err, ErrSegmentVersion) {
		t.Fatalf("LoadGraph with version skew: got %v, want ErrSegmentVersion", err)
	}
}

func TestSegmentChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	for _, kind := range []string{segCKBName, segTweetsName} {
		path := segmentPath(t, s, kind)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-12] ^= 0xFF // inside payload or checksum either way
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		var loadErr error
		switch kind {
		case segCKBName:
			_, loadErr = s.LoadPostings()
		case segTweetsName:
			_, loadErr = s.LoadTweets()
		}
		if !errors.Is(loadErr, ErrSegment) {
			t.Errorf("load %s with flipped byte: got %v, want ErrSegment", kind, loadErr)
		}
	}
}

func TestSegmentTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	path := segmentPath(t, s, segGraphName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadGraph(); !errors.Is(err, ErrSegment) {
		t.Fatalf("LoadGraph on truncated segment: got %v, want ErrSegment", err)
	}
}

func TestSegmentBadMagic(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	path := segmentPath(t, s, segTweetsName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(b, "NOPE")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTweets(); !errors.Is(err, ErrSegment) {
		t.Fatalf("LoadTweets with bad magic: got %v, want ErrSegment", err)
	}
}

func TestManifestDamage(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)

	// Corrupt JSON.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrManifest) {
		t.Fatalf("Open with corrupt manifest: got %v, want ErrManifest", err)
	}

	// Version skew.
	if err := os.WriteFile(path, []byte(`{"version":99,"seq":1,"wal_seq":1,"reach":"twohop","segments":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrManifest) {
		t.Fatalf("Open with manifest version skew: got %v, want ErrManifest", err)
	}

	// Unknown reach kind.
	if err := os.WriteFile(path, []byte(`{"version":1,"seq":1,"wal_seq":1,"reach":"psychic","segments":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrManifest) {
		t.Fatalf("Open with unknown reach kind: got %v, want ErrManifest", err)
	}
}

func TestRecordEncodingRejectsOversize(t *testing.T) {
	tw := sampleTweet(1)
	tw.Text = string(make([]byte, maxTextLen+1))
	r := TweetRecord(&tw, nil)
	if _, err := appendRecord(nil, &r); err == nil {
		t.Fatal("oversized tweet text encoded without error")
	}
}

func TestWALStatsAndLastSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if b, r := s.WALStats(); b != 0 || r != 0 {
		t.Errorf("fresh store WALStats = %d/%d, want 0/0", b, r)
	}
	if seq, _ := s.LastSnapshot(); seq != 0 {
		t.Errorf("fresh store LastSnapshot seq = %d, want 0", seq)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	commitSample(t, s)
	if err := s.Append(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	b, r := s.WALStats()
	if r != int64(len(sampleRecords())) {
		t.Errorf("WALStats records = %d, want %d", r, len(sampleRecords()))
	}
	if b <= walHeaderSize {
		t.Errorf("WALStats bytes = %d, want > header", b)
	}
	seq, at := s.LastSnapshot()
	if seq != 1 || at.IsZero() {
		t.Errorf("LastSnapshot = %d/%v, want 1/non-zero", seq, at)
	}
}
