package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestMetricsEndpoint scrapes GET /metrics and checks both that the body
// is valid Prometheus text exposition (every sample line parses) and that
// the catalogue promised by the observability subsystem is present:
// per-endpoint HTTP latency histograms and the linker's per-stage
// timings.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	// Generate traffic so lazily created series exist.
	for i := 0; i < 3; i++ {
		get(t, s, "/v1/link?user=100&mention="+surface, nil)
	}
	get(t, s, "/v1/link?mention=nouser", nil) // a 4xx

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		`microlink_http_requests_total{endpoint="/v1/link",code="2xx"}`,
		`microlink_http_requests_total{endpoint="/v1/link",code="4xx"}`,
		`microlink_http_request_seconds_bucket{endpoint="/v1/link",le="+Inf"}`,
		`microlink_http_request_seconds_count{endpoint="/v1/link"}`,
		"microlink_http_in_flight_requests",
		`microlink_linker_stage_seconds_bucket{stage="candidate",le=`,
		`microlink_linker_stage_seconds_count{stage="candidate"}`,
		`microlink_linker_stage_seconds_count{stage="interest"}`,
		`microlink_linker_stage_seconds_count{stage="recency"}`,
		`microlink_linker_stage_seconds_count{stage="popularity"}`,
		"microlink_linker_link_seconds_count",
		"microlink_linker_mentions_total",
		`microlink_reach_queries_total{kind="closure"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The stage histograms must have recorded at least the three scoring
	// calls above (the shared world means earlier tests may add more).
	if n := parseValue(t, body, `microlink_linker_stage_seconds_count{stage="interest"}`); n < 3 {
		t.Errorf("interest stage count = %v, want ≥ 3", n)
	}

	parseExposition(t, body)
}

// parseValue extracts the sample value for an exact series prefix.
func parseValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %q has unparseable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %q not found", series)
	return 0
}

// parseExposition validates the text format line by line: comments are
// HELP/TYPE, every other line is `name[{labels}] value` with quoted label
// values and a float value.
func parseExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: bad comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces %q", ln+1, line)
			}
			for _, pair := range strings.Split(line[i+1:j], `",`) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || k == "" || !strings.HasPrefix(v, `"`) {
					t.Fatalf("line %d: bad label %q", ln+1, pair)
				}
			}
			name = line[:i] + line[j+1:]
		}
		base, value, ok := strings.Cut(name, " ")
		if !ok {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		if value != "+Inf" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("line %d: unparseable value %q", ln+1, value)
			}
		}
		// Histogram series must belong to a TYPE-declared histogram family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suffix); fam != base {
				if typ, ok := typed[fam]; ok && typ != "histogram" {
					t.Fatalf("line %d: %s series on %s family", ln+1, suffix, typ)
				}
			}
		}
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE comments in exposition")
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

// TestFeedbackRace is the -race regression test for the interactive
// feedback path: writers hammer POST /v1/tweet with feedback enabled and
// POST /v1/confirm (both mutate the complemented KB and invalidate the
// influence cache through Linker.Feedback) while readers score the same
// entities through GET /v1/link and GET /v1/search. Before the linker
// held an RWMutex across the multi-substrate update, this interleaving
// raced on the influence cache contents vs the KB postings.
func TestFeedbackRace(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	const workers, iters = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body, _ := json.Marshal(TweetRequest{
					ID: int64(100000 + w*iters + i), User: int32(60 + w),
					Text: "race " + surface, Feedback: true,
				})
				req := httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("tweet: status = %d", rec.Code)
					return
				}
				cb, _ := json.Marshal(ConfirmRequest{Tweet: int64(200000 + w*iters + i), User: int32(70 + w), Entity: 0})
				req = httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(cb))
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("confirm: status = %d", rec.Code)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/link?user="+strconv.Itoa(80+w)+"&mention="+surface, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("link: status = %d", rec.Code)
					return
				}
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?user=90&q="+surface, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("search: status = %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
