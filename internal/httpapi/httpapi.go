// Package httpapi exposes the online-inference module (§3.2.2) over HTTP:
// per-mention linking, top-k with the new-entity threshold, raw-tweet
// ingestion with NER and optional feedback, personalized microblog
// search, and Prometheus metrics. The cmd/linkd binary mounts this API;
// the package keeps the handlers testable without a socket.
package httpapi

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"microlink"
	"microlink/internal/obs"
)

// Server wires the linking system into an http.Handler. Every endpoint is
// wrapped with the obs HTTP middleware, recording per-endpoint request
// counts by status class, an in-flight gauge, and latency histograms into
// the system's metrics registry; GET /metrics exposes the registry in
// Prometheus text format.
type Server struct {
	sys *microlink.System
	mux *http.ServeMux

	started time.Time
	nLink   atomic.Int64
	nTweet  atomic.Int64
	nSearch atomic.Int64
}

// New returns a Server over sys.
func New(sys *microlink.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), started: time.Now()}
	mw := obs.NewHTTPMetrics(sys.Metrics, "microlink")
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		s.mux.Handle(pattern, mw.WrapFunc(endpoint, h))
	}
	handle("GET /healthz", "/healthz", s.handleHealth)
	handle("GET /v1/link", "/v1/link", s.handleLink)
	handle("GET /v1/topk", "/v1/topk", s.handleTopK)
	handle("GET /v1/search", "/v1/search", s.handleSearch)
	handle("POST /v1/tweet", "/v1/tweet", s.handleTweet)
	handle("POST /v1/confirm", "/v1/confirm", s.handleConfirm)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", sys.Metrics.Handler())
	return s
}

// ServeHTTP implements http.Handler with basic request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start))
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpapi: encode response: %v", err)
	}
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: msg})
}

// parseUser extracts and validates the user parameter.
func (s *Server) parseUser(r *http.Request) (microlink.UserID, bool) {
	u, err := strconv.Atoi(r.URL.Query().Get("user"))
	if err != nil || u < 0 || u >= s.sys.World.Graph.NumNodes() {
		return 0, false
	}
	return microlink.UserID(u), true
}

// parseNow extracts the optional now parameter, defaulting to the world
// horizon.
func (s *Server) parseNow(r *http.Request) int64 {
	if v := r.URL.Query().Get("now"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return s.sys.World.Horizon()
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ScoredEntity is the JSON form of one ranked candidate.
type ScoredEntity struct {
	Entity     microlink.EntityID `json:"entity"`
	Name       string             `json:"name"`
	Category   string             `json:"category"`
	Score      float64            `json:"score"`
	Interest   float64            `json:"interest"`
	Recency    float64            `json:"recency"`
	Popularity float64            `json:"popularity"`
}

func (s *Server) scoredJSON(in []microlink.Scored) []ScoredEntity {
	out := make([]ScoredEntity, len(in))
	for i, sc := range in {
		e := s.sys.World.KB.Entity(sc.Entity)
		out[i] = ScoredEntity{
			Entity:     sc.Entity,
			Name:       e.Name,
			Category:   e.Category.String(),
			Score:      sc.Score,
			Interest:   sc.Interest,
			Recency:    sc.Recency,
			Popularity: sc.Popularity,
		}
	}
	return out
}

// LinkResponse is the body of /v1/link.
type LinkResponse struct {
	Mention    string         `json:"mention"`
	Candidates []ScoredEntity `json:"candidates"`
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	s.nLink.Add(1)
	user, ok := s.parseUser(r)
	if !ok {
		badRequest(w, "missing or invalid user")
		return
	}
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		badRequest(w, "missing mention")
		return
	}
	scored := s.sys.Linker.ScoreCandidates(user, s.parseNow(r), mention)
	writeJSON(w, http.StatusOK, LinkResponse{Mention: mention, Candidates: s.scoredJSON(scored)})
}

// TopKResponse is the body of /v1/topk. NewEntityLikely reports the
// Appendix D signal: no candidate cleared the β+γ threshold.
type TopKResponse struct {
	Mention         string         `json:"mention"`
	Top             []ScoredEntity `json:"top"`
	NewEntityLikely bool           `json:"new_entity_likely"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.nLink.Add(1)
	user, ok := s.parseUser(r)
	if !ok {
		badRequest(w, "missing or invalid user")
		return
	}
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		badRequest(w, "missing mention")
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		k = 3
	}
	top := s.sys.Linker.TopK(user, s.parseNow(r), mention, k)
	writeJSON(w, http.StatusOK, TopKResponse{
		Mention:         mention,
		Top:             s.scoredJSON(top),
		NewEntityLikely: len(top) == 0 && len(s.sys.Candidates.Candidates(mention)) > 0,
	})
}

// TweetRequest is the body of POST /v1/tweet: a raw tweet to ingest.
type TweetRequest struct {
	ID       int64  `json:"id"`
	User     int32  `json:"user"`
	Time     int64  `json:"time"`
	Text     string `json:"text"`
	Feedback bool   `json:"feedback"` // append confirmed links to the KB
}

// TweetMention is one extracted and linked mention.
type TweetMention struct {
	Surface string             `json:"surface"`
	Entity  microlink.EntityID `json:"entity"` // -1 when unlinkable
	Name    string             `json:"name,omitempty"`
}

// TweetResponse is the body of /v1/tweet.
type TweetResponse struct {
	Mentions []TweetMention `json:"mentions"`
}

func (s *Server) handleTweet(w http.ResponseWriter, r *http.Request) {
	s.nTweet.Add(1)
	var req TweetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "invalid JSON: "+err.Error())
		return
	}
	if req.User < 0 || int(req.User) >= s.sys.World.Graph.NumNodes() {
		badRequest(w, "invalid user")
		return
	}
	if req.Time == 0 {
		req.Time = s.sys.World.Horizon()
	}
	spans := s.sys.NER.Extract(req.Text)
	tw := microlink.Tweet{ID: req.ID, User: req.User, Time: req.Time, Text: req.Text}
	for _, sp := range spans {
		tw.Mentions = append(tw.Mentions, microlink.Mention{Surface: sp.Surface, Truth: microlink.NoEntity})
	}
	links := s.sys.Linker.LinkTweet(&tw)
	resp := TweetResponse{Mentions: make([]TweetMention, len(links))}
	for i, e := range links {
		m := TweetMention{Surface: tw.Mentions[i].Surface, Entity: e}
		if e != microlink.NoEntity {
			m.Name = s.sys.World.KB.Entity(e).Name
		}
		resp.Mentions[i] = m
	}
	if req.Feedback {
		s.sys.Linker.Feedback(&tw, links)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ConfirmRequest is the body of POST /v1/confirm: the interactive
// consultation of §3.2.2 — the author confirms which entity a mention
// meant, and the confirmed link complements the knowledgebase (including
// the Appendix D warm-up case where the top-k was empty).
type ConfirmRequest struct {
	Tweet  int64              `json:"tweet"`
	User   int32              `json:"user"`
	Time   int64              `json:"time"`
	Entity microlink.EntityID `json:"entity"`
}

func (s *Server) handleConfirm(w http.ResponseWriter, r *http.Request) {
	var req ConfirmRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "invalid JSON: "+err.Error())
		return
	}
	if req.User < 0 || int(req.User) >= s.sys.World.Graph.NumNodes() {
		badRequest(w, "invalid user")
		return
	}
	if req.Entity < 0 || int(req.Entity) >= s.sys.World.KB.NumEntities() {
		badRequest(w, "invalid entity")
		return
	}
	if req.Time == 0 {
		req.Time = s.sys.World.Horizon()
	}
	tw := microlink.Tweet{ID: req.Tweet, User: req.User, Time: req.Time,
		Mentions: []microlink.Mention{{Truth: microlink.NoEntity}}}
	s.sys.Linker.Feedback(&tw, []microlink.EntityID{req.Entity})
	writeJSON(w, http.StatusOK, map[string]string{"status": "linked"})
}

// SearchResponse is the body of /v1/search.
type SearchResponse struct {
	Query   string         `json:"query"`
	Results []SearchResult `json:"results"`
}

// SearchResult is one personalized search answer.
type SearchResult struct {
	Entity microlink.EntityID `json:"entity"`
	Name   string             `json:"name"`
	Tweet  int64              `json:"tweet"`
	User   int32              `json:"user"`
	Time   int64              `json:"time"`
	Text   string             `json:"text"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.nSearch.Add(1)
	user, ok := s.parseUser(r)
	if !ok {
		badRequest(w, "missing or invalid user")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing q")
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		k = 2
	}
	limit, err := strconv.Atoi(r.URL.Query().Get("limit"))
	if err != nil || limit <= 0 {
		limit = 10
	}
	hits := s.sys.Search(user, s.parseNow(r), q, k)
	if len(hits) > limit {
		hits = hits[:limit]
	}
	resp := SearchResponse{Query: q, Results: make([]SearchResult, len(hits))}
	for i, h := range hits {
		resp.Results[i] = SearchResult{
			Entity: h.Entity,
			Name:   s.sys.World.KB.Entity(h.Entity).Name,
			Tweet:  h.Posting.Tweet,
			User:   h.Posting.User,
			Time:   h.Posting.Time,
			Text:   h.Text,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the body of /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Users         int     `json:"users"`
	Entities      int     `json:"entities"`
	Postings      int64   `json:"postings"`
	LinkRequests  int64   `json:"link_requests"`
	TweetIngests  int64   `json:"tweet_ingests"`
	Searches      int64   `json:"searches"`
	ReachIndexMB  float64 `json:"reach_index_mb"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Users:         s.sys.World.Graph.NumNodes(),
		Entities:      s.sys.World.KB.NumEntities(),
		Postings:      s.sys.CKB.TotalCount(),
		LinkRequests:  s.nLink.Load(),
		TweetIngests:  s.nTweet.Load(),
		Searches:      s.nSearch.Load(),
		ReachIndexMB:  float64(s.sys.Reach.SizeBytes()) / (1 << 20),
	})
}
