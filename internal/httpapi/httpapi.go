// Package httpapi exposes the online-inference module (§3.2.2) over HTTP:
// per-mention linking (single and batched), top-k with the new-entity
// threshold, raw-tweet ingestion with NER and optional feedback,
// personalized microblog search, and Prometheus metrics. The cmd/linkd
// binary mounts this API; the package keeps the handlers testable without
// a socket.
//
// # Errors
//
// Every error response carries a structured envelope,
//
//	{"error": {"code": "unknown_user", "message": "user 9000 out of range"}}
//
// with a machine-readable code from the catalogue below. Malformed input
// (unparseable JSON, non-numeric or missing parameters) is 400; references
// to IDs outside the world (users, entities) are 404.
//
//	invalid_json       400  request body is not valid JSON
//	invalid_user       400  user parameter missing or not an integer
//	missing_mention    400  mention parameter/field missing or empty
//	missing_query      400  q parameter missing or empty
//	empty_batch        400  batch request carries no queries
//	batch_too_large    400  batch request exceeds MaxBatchQueries
//	unknown_user       404  user ID outside the world
//	unknown_entity     404  entity ID outside the knowledgebase
//	ingest_disabled    503  no ingest pipeline attached (start linkd with -ingest)
//	queue_full         503  ingest queue full; shed by backpressure, retry later
//	persistence_disabled 503  no data directory bound (start linkd with -data)
//	snapshot_failed    500  snapshot commit failed (disk error, etc.)
//	deadline_exceeded  504  request (or batch item) deadline expired
//	canceled           499  request context canceled mid-flight
//	internal           500  unexpected failure
//
// The deadline_exceeded and canceled codes also appear per item in batch
// responses, where the HTTP status stays 200 and failures are isolated to
// the items they hit.
//
// # Deadlines
//
// Handlers propagate the request context into the scoring pipeline
// (core.ScoreCandidatesCtx and friends), so server-side timeouts and
// client disconnects cancel in-flight scoring instead of burning CPU on
// an answer nobody will read.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"microlink"
	"microlink/internal/obs"
)

// Error codes returned in the error envelope. See the package
// documentation for the status each maps to.
const (
	CodeInvalidJSON         = "invalid_json"
	CodeInvalidUser         = "invalid_user"
	CodeMissingMention      = "missing_mention"
	CodeMissingQuery        = "missing_query"
	CodeEmptyBatch          = "empty_batch"
	CodeBatchTooLarge       = "batch_too_large"
	CodeUnknownUser         = "unknown_user"
	CodeUnknownEntity       = "unknown_entity"
	CodeIngestDisabled      = "ingest_disabled"
	CodeQueueFull           = "queue_full"
	CodePersistenceDisabled = "persistence_disabled"
	CodeSnapshotFailed      = "snapshot_failed"
	CodeDeadlineExceeded    = "deadline_exceeded"
	CodeCanceled            = "canceled"
	CodeInternal            = "internal"
)

// MaxBatchQueries caps the number of queries one /v1/link/batch request
// may carry; larger batches are rejected with batch_too_large.
const MaxBatchQueries = 256

// StatusClientClosedRequest is the (nginx-conventional) status reported
// when the client goes away mid-request; net/http cannot actually deliver
// it, but it keeps the metrics honest.
const StatusClientClosedRequest = 499

// Server wires the linking system into an http.Handler. Every endpoint is
// wrapped with the obs HTTP middleware, recording per-endpoint request
// counts by status class, an in-flight gauge, and latency histograms into
// the system's metrics registry; GET /metrics exposes the registry in
// Prometheus text format.
type Server struct {
	sys  *microlink.System
	mux  *http.ServeMux
	logf func(format string, args ...any)

	started time.Time
	nLink   atomic.Int64
	nBatch  atomic.Int64
	nTweet  atomic.Int64
	nSearch atomic.Int64
}

// Option customises a Server.
type Option func(*Server)

// WithLogger replaces the request/error logger (default log.Printf). Pass
// a no-op to silence the server, e.g. under `go test`.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// New returns a Server over sys.
func New(sys *microlink.System, opts ...Option) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), logf: log.Printf, started: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	mw := obs.NewHTTPMetrics(sys.Metrics, "microlink")
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		s.mux.Handle(pattern, mw.WrapFunc(endpoint, h))
	}
	handle("GET /healthz", "/healthz", s.handleHealth)
	handle("GET /v1/link", "/v1/link", s.handleLink)
	handle("POST /v1/link/batch", "/v1/link/batch", s.handleLinkBatch)
	handle("GET /v1/topk", "/v1/topk", s.handleTopK)
	handle("GET /v1/search", "/v1/search", s.handleSearch)
	handle("POST /v1/tweet", "/v1/tweet", s.handleTweet)
	handle("POST /v1/confirm", "/v1/confirm", s.handleConfirm)
	handle("POST /v1/ingest/tweet", "/v1/ingest/tweet", s.handleIngestTweet)
	handle("POST /v1/ingest/follow", "/v1/ingest/follow", s.handleIngestFollow)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("POST /v1/admin/snapshot", "/v1/admin/snapshot", s.handleSnapshot)
	handle("GET /v1/admin/status", "/v1/admin/status", s.handleAdminStatus)
	s.mux.Handle("GET /metrics", sys.Metrics.Handler())
	return s
}

// ServeHTTP implements http.Handler with request logging through the
// injectable logger (the obs middleware separately records metrics).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.logf("%s %s %v", r.Method, r.URL.Path, time.Since(start))
}

// ErrorInfo is the machine-readable payload of the error envelope.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is the uniform error envelope: {"error":{"code":...,"message":...}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("httpapi: encode response: %v", err)
	}
}

// writeError emits the structured error envelope.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: msg}})
}

// apiErr is a deferred writeError: parse/validation helpers return it so
// handlers decide uniformly whether to fail the request or one batch item.
type apiErr struct {
	status int
	code   string
	msg    string
}

func (e *apiErr) send(s *Server, w http.ResponseWriter) {
	s.writeError(w, e.status, e.code, e.msg)
}

// ctxErrInfo maps a context error onto the catalogue.
func ctxErrInfo(err error) (int, ErrorInfo) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ErrorInfo{Code: CodeDeadlineExceeded, Message: "deadline exceeded while scoring"}
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, ErrorInfo{Code: CodeCanceled, Message: "request canceled"}
	default:
		return http.StatusInternalServerError, ErrorInfo{Code: CodeInternal, Message: err.Error()}
	}
}

// validateUser range-checks an already-parsed user ID.
func (s *Server) validateUser(u int64) *apiErr {
	if u < 0 || u >= int64(s.sys.World.Graph.NumNodes()) {
		return &apiErr{http.StatusNotFound, CodeUnknownUser,
			"user " + strconv.FormatInt(u, 10) + " out of range"}
	}
	return nil
}

// parseUser extracts and validates the user query parameter: 400 for a
// missing or non-numeric value, 404 for an out-of-range ID.
func (s *Server) parseUser(r *http.Request) (microlink.UserID, *apiErr) {
	raw := r.URL.Query().Get("user")
	u, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, &apiErr{http.StatusBadRequest, CodeInvalidUser,
			"user parameter missing or not an integer: " + strconv.Quote(raw)}
	}
	if e := s.validateUser(u); e != nil {
		return 0, e
	}
	return microlink.UserID(u), nil
}

// parseNow extracts the optional now parameter, defaulting to the world
// horizon.
func (s *Server) parseNow(r *http.Request) int64 {
	if v := r.URL.Query().Get("now"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return s.sys.World.Horizon()
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ScoredEntity is the JSON form of one ranked candidate.
type ScoredEntity struct {
	Entity     microlink.EntityID `json:"entity"`
	Name       string             `json:"name"`
	Category   string             `json:"category"`
	Score      float64            `json:"score"`
	Interest   float64            `json:"interest"`
	Recency    float64            `json:"recency"`
	Popularity float64            `json:"popularity"`
}

func (s *Server) scoredJSON(in []microlink.Scored) []ScoredEntity {
	out := make([]ScoredEntity, len(in))
	for i, sc := range in {
		e := s.sys.World.KB.Entity(sc.Entity)
		out[i] = ScoredEntity{
			Entity:     sc.Entity,
			Name:       e.Name,
			Category:   e.Category.String(),
			Score:      sc.Score,
			Interest:   sc.Interest,
			Recency:    sc.Recency,
			Popularity: sc.Popularity,
		}
	}
	return out
}

// LinkResponse is the body of /v1/link.
type LinkResponse struct {
	Mention    string         `json:"mention"`
	Candidates []ScoredEntity `json:"candidates"`
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	s.nLink.Add(1)
	user, aerr := s.parseUser(r)
	if aerr != nil {
		aerr.send(s, w)
		return
	}
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		s.writeError(w, http.StatusBadRequest, CodeMissingMention, "missing mention parameter")
		return
	}
	scored, err := s.sys.Linker.ScoreCandidatesCtx(r.Context(), user, s.parseNow(r), mention)
	if err != nil {
		status, info := ctxErrInfo(err)
		s.writeError(w, status, info.Code, info.Message)
		return
	}
	s.writeJSON(w, http.StatusOK, LinkResponse{Mention: mention, Candidates: s.scoredJSON(scored)})
}

// BatchQuery is one query of POST /v1/link/batch. A missing now defaults
// to the world horizon ("link it as of right now").
type BatchQuery struct {
	User    int32  `json:"user"`
	Now     *int64 `json:"now,omitempty"`
	Mention string `json:"mention"`
}

// BatchRequest is the body of POST /v1/link/batch.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchItem is the outcome of one batch query, in request order. Exactly
// one of Candidates or Error is populated; Entity is the best candidate
// (-1 when unlinkable or failed).
type BatchItem struct {
	Mention    string             `json:"mention"`
	Entity     microlink.EntityID `json:"entity"`
	Candidates []ScoredEntity     `json:"candidates,omitempty"`
	Error      *ErrorInfo         `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/link/batch. Linked counts the
// items that scored successfully; failures stay per-item.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	Linked  int         `json:"linked"`
	Failed  int         `json:"failed"`
}

func (s *Server) handleLinkBatch(w http.ResponseWriter, r *http.Request) {
	s.nBatch.Add(1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, CodeEmptyBatch, "batch carries no queries")
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		s.writeError(w, http.StatusBadRequest, CodeBatchTooLarge,
			"batch of "+strconv.Itoa(len(req.Queries))+" queries exceeds the cap of "+strconv.Itoa(MaxBatchQueries))
		return
	}

	resp := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	// Validate items first so malformed ones fail without occupying the
	// scoring pool; valid ones are forwarded to LinkBatch positionally.
	queries := make([]microlink.MentionQuery, 0, len(req.Queries))
	forward := make([]int, 0, len(req.Queries)) // queries[j] scores Results[forward[j]]
	for i, q := range req.Queries {
		resp.Results[i] = BatchItem{Mention: q.Mention, Entity: microlink.NoEntity}
		if aerr := s.validateUser(int64(q.User)); aerr != nil {
			resp.Results[i].Error = &ErrorInfo{Code: aerr.code, Message: aerr.msg}
			continue
		}
		if q.Mention == "" {
			resp.Results[i].Error = &ErrorInfo{Code: CodeMissingMention, Message: "missing mention field"}
			continue
		}
		now := s.sys.World.Horizon()
		if q.Now != nil {
			now = *q.Now
		}
		queries = append(queries, microlink.MentionQuery{
			User: microlink.UserID(q.User), Now: now, Surface: q.Mention,
		})
		forward = append(forward, i)
	}

	for j, br := range s.sys.Linker.LinkBatch(r.Context(), queries) {
		item := &resp.Results[forward[j]]
		if br.Err != nil {
			_, info := ctxErrInfo(br.Err)
			item.Error = &info
			continue
		}
		item.Entity = br.Entity
		item.Candidates = s.scoredJSON(br.Scored)
	}
	for _, item := range resp.Results {
		if item.Error != nil {
			resp.Failed++
		} else {
			resp.Linked++
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// TopKResponse is the body of /v1/topk. NewEntityLikely reports the
// Appendix D signal: no candidate cleared the β+γ threshold.
type TopKResponse struct {
	Mention         string         `json:"mention"`
	Top             []ScoredEntity `json:"top"`
	NewEntityLikely bool           `json:"new_entity_likely"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.nLink.Add(1)
	user, aerr := s.parseUser(r)
	if aerr != nil {
		aerr.send(s, w)
		return
	}
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		s.writeError(w, http.StatusBadRequest, CodeMissingMention, "missing mention parameter")
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		k = 3
	}
	top, err := s.sys.Linker.TopKCtx(r.Context(), user, s.parseNow(r), mention, k)
	if err != nil {
		status, info := ctxErrInfo(err)
		s.writeError(w, status, info.Code, info.Message)
		return
	}
	s.writeJSON(w, http.StatusOK, TopKResponse{
		Mention:         mention,
		Top:             s.scoredJSON(top),
		NewEntityLikely: len(top) == 0 && len(s.sys.Candidates.Candidates(mention)) > 0,
	})
}

// TweetRequest is the body of POST /v1/tweet: a raw tweet to ingest. Time
// is a pointer so that an explicit epoch-0 timestamp is distinguishable
// from an absent field (which defaults to the world horizon).
type TweetRequest struct {
	ID       int64  `json:"id"`
	User     int32  `json:"user"`
	Time     *int64 `json:"time,omitempty"`
	Text     string `json:"text"`
	Feedback bool   `json:"feedback"` // append confirmed links to the KB
}

// TweetMention is one extracted and linked mention.
type TweetMention struct {
	Surface string             `json:"surface"`
	Entity  microlink.EntityID `json:"entity"` // -1 when unlinkable
	Name    string             `json:"name,omitempty"`
}

// TweetResponse is the body of /v1/tweet.
type TweetResponse struct {
	Mentions []TweetMention `json:"mentions"`
}

// timeOrHorizon resolves an optional timestamp field.
func (s *Server) timeOrHorizon(t *int64) int64 {
	if t != nil {
		return *t
	}
	return s.sys.World.Horizon()
}

func (s *Server) handleTweet(w http.ResponseWriter, r *http.Request) {
	s.nTweet.Add(1)
	var req TweetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: "+err.Error())
		return
	}
	if aerr := s.validateUser(int64(req.User)); aerr != nil {
		aerr.send(s, w)
		return
	}
	spans := s.sys.NER.Extract(req.Text)
	tw := microlink.Tweet{ID: req.ID, User: req.User, Time: s.timeOrHorizon(req.Time), Text: req.Text}
	for _, sp := range spans {
		tw.Mentions = append(tw.Mentions, microlink.Mention{Surface: sp.Surface, Truth: microlink.NoEntity})
	}
	links := s.sys.Linker.LinkTweet(&tw)
	resp := TweetResponse{Mentions: make([]TweetMention, len(links))}
	for i, e := range links {
		m := TweetMention{Surface: tw.Mentions[i].Surface, Entity: e}
		if e != microlink.NoEntity {
			m.Name = s.sys.World.KB.Entity(e).Name
		}
		resp.Mentions[i] = m
	}
	if req.Feedback {
		s.sys.Linker.Feedback(&tw, links)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ConfirmRequest is the body of POST /v1/confirm: the interactive
// consultation of §3.2.2 — the author confirms which entity a mention
// meant, and the confirmed link complements the knowledgebase (including
// the Appendix D warm-up case where the top-k was empty). Time is a
// pointer for the same epoch-0 reason as TweetRequest.Time.
type ConfirmRequest struct {
	Tweet  int64              `json:"tweet"`
	User   int32              `json:"user"`
	Time   *int64             `json:"time,omitempty"`
	Entity microlink.EntityID `json:"entity"`
}

func (s *Server) handleConfirm(w http.ResponseWriter, r *http.Request) {
	var req ConfirmRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: "+err.Error())
		return
	}
	if aerr := s.validateUser(int64(req.User)); aerr != nil {
		aerr.send(s, w)
		return
	}
	if req.Entity < 0 || int(req.Entity) >= s.sys.World.KB.NumEntities() {
		s.writeError(w, http.StatusNotFound, CodeUnknownEntity,
			"entity "+strconv.FormatInt(int64(req.Entity), 10)+" out of range")
		return
	}
	tw := microlink.Tweet{ID: req.Tweet, User: req.User, Time: s.timeOrHorizon(req.Time),
		Mentions: []microlink.Mention{{Truth: microlink.NoEntity}}}
	s.sys.Linker.Feedback(&tw, []microlink.EntityID{req.Entity})
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "linked"})
}

// SearchResponse is the body of /v1/search.
type SearchResponse struct {
	Query   string         `json:"query"`
	Results []SearchResult `json:"results"`
}

// SearchResult is one personalized search answer.
type SearchResult struct {
	Entity microlink.EntityID `json:"entity"`
	Name   string             `json:"name"`
	Tweet  int64              `json:"tweet"`
	User   int32              `json:"user"`
	Time   int64              `json:"time"`
	Text   string             `json:"text"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.nSearch.Add(1)
	user, aerr := s.parseUser(r)
	if aerr != nil {
		aerr.send(s, w)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeError(w, http.StatusBadRequest, CodeMissingQuery, "missing q parameter")
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		k = 2
	}
	limit, err := strconv.Atoi(r.URL.Query().Get("limit"))
	if err != nil || limit <= 0 {
		limit = 10
	}
	hits := s.sys.Search(user, s.parseNow(r), q, k)
	if len(hits) > limit {
		hits = hits[:limit]
	}
	resp := SearchResponse{Query: q, Results: make([]SearchResult, len(hits))}
	for i, h := range hits {
		resp.Results[i] = SearchResult{
			Entity: h.Entity,
			Name:   s.sys.World.KB.Entity(h.Entity).Name,
			Tweet:  h.Posting.Tweet,
			User:   h.Posting.User,
			Time:   h.Posting.Time,
			Text:   h.Text,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the body of /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Users         int     `json:"users"`
	Entities      int     `json:"entities"`
	Postings      int64   `json:"postings"`
	LinkRequests  int64   `json:"link_requests"`
	BatchRequests int64   `json:"batch_requests"`
	TweetIngests  int64   `json:"tweet_ingests"`
	Searches      int64   `json:"searches"`
	ReachIndexMB  float64 `json:"reach_index_mb"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Users:         s.sys.World.Graph.NumNodes(),
		Entities:      s.sys.World.KB.NumEntities(),
		Postings:      s.sys.CKB.TotalCount(),
		LinkRequests:  s.nLink.Load(),
		BatchRequests: s.nBatch.Load(),
		TweetIngests:  s.nTweet.Load(),
		Searches:      s.nSearch.Load(),
		ReachIndexMB:  float64(s.sys.Reach.SizeBytes()) / (1 << 20),
	})
}
