package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"microlink"
)

// adminServer builds a private server (the shared test system must stay
// unbound — snapshotting it would leak a data directory binding into the
// other tests).
func adminServer(t *testing.T, opts microlink.Options) *Server {
	t.Helper()
	w := microlink.Generate(microlink.WorldParams{
		Seed: 7, Users: 200, Topics: 4, EntitiesPerTopic: 8, Days: 10,
	})
	opts.TruthComplement = true
	return New(microlink.Build(w, opts), WithLogger(func(string, ...any) {}))
}

func TestAdminSnapshotWithoutStore(t *testing.T) {
	s := adminServer(t, microlink.Options{})
	req := httptest.NewRequest("POST", "/v1/admin/snapshot", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	decodeError(t, rec, http.StatusServiceUnavailable, CodePersistenceDisabled)
}

func TestAdminStatusUnbound(t *testing.T) {
	s := adminServer(t, microlink.Options{})
	var resp StatusResponse
	rec := get(t, s, "/v1/admin/status", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if resp.Persist.Enabled {
		t.Error("unbound server reports persistence enabled")
	}
	if resp.Ingest.Running {
		t.Error("no pipeline, but ingest reported running")
	}
}

func TestAdminSnapshotAndStatus(t *testing.T) {
	s := adminServer(t, microlink.Options{Reach: microlink.ReachStreaming})
	dir := t.TempDir()
	if _, err := s.sys.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.sys.StartIngest(microlink.IngestConfig{}); err != nil {
		t.Fatal(err)
	}

	var snap SnapshotResponse
	req := httptest.NewRequest("POST", "/v1/admin/snapshot", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status = %d (%s)", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot response does not parse: %v", err)
	}
	if snap.Seq != 2 || snap.Dir != dir {
		t.Fatalf("snapshot response = %+v", snap)
	}

	var resp StatusResponse
	if rec := get(t, s, "/v1/admin/status", &resp); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !resp.Persist.Enabled || resp.Persist.SnapshotSeq != 2 || resp.Persist.Dir != dir {
		t.Fatalf("persist status = %+v", resp.Persist)
	}
	if !resp.Ingest.Running {
		t.Error("pipeline attached but not reported running")
	}
}
