package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"microlink"
)

var (
	once sync.Once
	sys  *microlink.System
)

func testServer(t *testing.T) *Server {
	t.Helper()
	once.Do(func() {
		w := microlink.Generate(microlink.WorldParams{
			Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20,
		})
		sys = microlink.Build(w, microlink.Options{TruthComplement: true})
	})
	return New(sys)
}

func get(t *testing.T, s *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", path, err, rec.Body.String())
		}
	}
	return rec
}

func ambiguousSurface(t *testing.T) string {
	t.Helper()
	var surface string
	sys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface = form
		}
	})
	if surface == "" {
		t.Fatal("no ambiguous surface")
	}
	return surface
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestLinkEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp LinkResponse
	rec := get(t, s, "/v1/link?user=100&mention="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Candidates) < 2 {
		t.Fatalf("candidates = %+v", resp.Candidates)
	}
	for i := 1; i < len(resp.Candidates); i++ {
		if resp.Candidates[i].Score > resp.Candidates[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
	if resp.Candidates[0].Name == "" || resp.Candidates[0].Category == "" {
		t.Fatalf("missing entity metadata: %+v", resp.Candidates[0])
	}
}

func TestLinkValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/v1/link?mention=x", // no user
		"/v1/link?user=-1&mention=x",
		"/v1/link?user=999999&mention=x",
		"/v1/link?user=1", // no mention
	} {
		if rec := get(t, s, path, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
	}
}

func TestTopKEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp TopKResponse
	rec := get(t, s, "/v1/topk?user=100&k=2&mention="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(resp.Top) > 2 {
		t.Fatalf("k=2 returned %d", len(resp.Top))
	}
	// Unknown mention: not flagged as new entity (no candidates at all).
	var resp2 TopKResponse
	get(t, s, "/v1/topk?user=100&mention=zzzzzzzz", &resp2)
	if resp2.NewEntityLikely {
		t.Fatal("unknown surface must not be flagged new-entity")
	}
}

func TestTweetEndpoint(t *testing.T) {
	s := testServer(t)
	// Build a text containing a known surface.
	surface := ambiguousSurface(t)
	body, _ := json.Marshal(TweetRequest{ID: 9999, User: 50, Text: "talking about " + surface + " today"})
	req := httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp TweetResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range resp.Mentions {
		if m.Surface == surface && m.Entity != microlink.NoEntity {
			found = true
		}
	}
	if !found {
		t.Fatalf("mention %q not linked: %+v", surface, resp.Mentions)
	}
}

func TestTweetFeedback(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	before := sys.CKB.TotalCount()
	body, _ := json.Marshal(TweetRequest{ID: 10000, User: 51, Text: surface, Feedback: true})
	req := httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if sys.CKB.TotalCount() <= before {
		t.Fatal("feedback did not append postings")
	}
}

func TestTweetValidation(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/v1/tweet", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	body, _ := json.Marshal(TweetRequest{User: -5, Text: "x"})
	req = httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid user: status = %d", rec.Code)
	}
}

func TestConfirmEndpoint(t *testing.T) {
	s := testServer(t)
	before := sys.CKB.Count(0)
	body, _ := json.Marshal(ConfirmRequest{Tweet: 777, User: 10, Time: 500, Entity: 0})
	req := httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if sys.CKB.Count(0) != before+1 {
		t.Fatal("confirm did not complement the KB")
	}
	// Validation paths.
	for _, bad := range []ConfirmRequest{
		{User: -1, Entity: 0},
		{User: 1, Entity: -2},
		{User: 1, Entity: 1 << 30},
	} {
		b, _ := json.Marshal(bad)
		req := httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(b))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", bad, rec.Code)
		}
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp SearchResponse
	rec := get(t, s, "/v1/search?user=100&limit=5&q="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(resp.Results) == 0 {
		t.Skip("no results for this user; acceptable for a below-threshold user")
	}
	if len(resp.Results) > 5 {
		t.Fatalf("limit ignored: %d results", len(resp.Results))
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Time > resp.Results[i-1].Time {
			t.Fatal("results not newest-first")
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/link?user=100&mention=x", nil) // count something
	var resp StatsResponse
	rec := get(t, s, "/v1/stats", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if resp.Users == 0 || resp.Entities == 0 {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.LinkRequests == 0 {
		t.Fatal("link counter not incremented")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/v1/link?user=1&mention=x", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}
