package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"microlink"
)

var (
	once sync.Once
	sys  *microlink.System
)

func testServer(t *testing.T) *Server {
	t.Helper()
	once.Do(func() {
		w := microlink.Generate(microlink.WorldParams{
			Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20,
		})
		sys = microlink.Build(w, microlink.Options{TruthComplement: true})
	})
	return New(sys, WithLogger(func(string, ...any) {}))
}

// i64 builds the optional timestamp fields of the POST bodies.
func i64(v int64) *int64 { return &v }

// decodeError asserts an error-envelope response with the given status and
// code.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Errorf("status = %d, want %d (%s)", rec.Code, status, rec.Body.String())
	}
	var e ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error envelope does not parse: %v (%s)", err, rec.Body.String())
	}
	if e.Error.Code != code {
		t.Errorf("error code = %q, want %q (%s)", e.Error.Code, code, rec.Body.String())
	}
	if e.Error.Message == "" {
		t.Errorf("error message empty: %s", rec.Body.String())
	}
}

func get(t *testing.T, s *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", path, err, rec.Body.String())
		}
	}
	return rec
}

func ambiguousSurface(t *testing.T) string {
	t.Helper()
	var surface string
	sys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface = form
		}
	})
	if surface == "" {
		t.Fatal("no ambiguous surface")
	}
	return surface
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestLinkEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp LinkResponse
	rec := get(t, s, "/v1/link?user=100&mention="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Candidates) < 2 {
		t.Fatalf("candidates = %+v", resp.Candidates)
	}
	for i := 1; i < len(resp.Candidates); i++ {
		if resp.Candidates[i].Score > resp.Candidates[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
	if resp.Candidates[0].Name == "" || resp.Candidates[0].Category == "" {
		t.Fatalf("missing entity metadata: %+v", resp.Candidates[0])
	}
}

func TestLinkValidation(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/link?mention=x", http.StatusBadRequest, CodeInvalidUser}, // no user
		{"/v1/link?user=-1&mention=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/link?user=999999&mention=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/link?user=1", http.StatusBadRequest, CodeMissingMention}, // no mention
	} {
		decodeError(t, get(t, s, tc.path, nil), tc.status, tc.code)
	}
}

func TestTopKEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp TopKResponse
	rec := get(t, s, "/v1/topk?user=100&k=2&mention="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(resp.Top) > 2 {
		t.Fatalf("k=2 returned %d", len(resp.Top))
	}
	// Unknown mention: not flagged as new entity (no candidates at all).
	var resp2 TopKResponse
	get(t, s, "/v1/topk?user=100&mention=zzzzzzzz", &resp2)
	if resp2.NewEntityLikely {
		t.Fatal("unknown surface must not be flagged new-entity")
	}
}

func TestTweetEndpoint(t *testing.T) {
	s := testServer(t)
	// Build a text containing a known surface.
	surface := ambiguousSurface(t)
	body, _ := json.Marshal(TweetRequest{ID: 9999, User: 50, Text: "talking about " + surface + " today"})
	req := httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp TweetResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range resp.Mentions {
		if m.Surface == surface && m.Entity != microlink.NoEntity {
			found = true
		}
	}
	if !found {
		t.Fatalf("mention %q not linked: %+v", surface, resp.Mentions)
	}
}

func TestTweetFeedback(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	before := sys.CKB.TotalCount()
	body, _ := json.Marshal(TweetRequest{ID: 10000, User: 51, Text: surface, Feedback: true})
	req := httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if sys.CKB.TotalCount() <= before {
		t.Fatal("feedback did not append postings")
	}
}

func TestTweetValidation(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/v1/tweet", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	decodeError(t, rec, http.StatusBadRequest, CodeInvalidJSON)

	body, _ := json.Marshal(TweetRequest{User: -5, Text: "x"})
	req = httptest.NewRequest("POST", "/v1/tweet", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	decodeError(t, rec, http.StatusNotFound, CodeUnknownUser)
}

// TestTimeZeroNotConflatedWithUnset is the regression test for the *int64
// Time fields: an explicit epoch-0 timestamp must reach the substrate as
// 0, while an absent field defaults to the world horizon. Before the
// pointer switch both decoded to int64(0) and were rewritten to the
// horizon.
func TestTimeZeroNotConflatedWithUnset(t *testing.T) {
	s := testServer(t)
	post := func(req ConfirmRequest) {
		t.Helper()
		b, _ := json.Marshal(req)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(b)))
		if rec.Code != http.StatusOK {
			t.Fatalf("confirm %+v: status = %d: %s", req, rec.Code, rec.Body.String())
		}
	}
	byTweet := func(id int64) microlink.Posting {
		t.Helper()
		for _, p := range sys.CKB.Postings(1) {
			if p.Tweet == id {
				return p
			}
		}
		t.Fatalf("posting for tweet %d not found", id)
		return microlink.Posting{}
	}

	post(ConfirmRequest{Tweet: 31337, User: 10, Time: i64(0), Entity: 1})
	if p := byTweet(31337); p.Time != 0 {
		t.Fatalf("explicit time=0 stored as %d (conflated with unset)", p.Time)
	}
	post(ConfirmRequest{Tweet: 31338, User: 10, Entity: 1})
	if p := byTweet(31338); p.Time != sys.World.Horizon() {
		t.Fatalf("unset time stored as %d, want horizon %d", p.Time, sys.World.Horizon())
	}
}

// TestLoggerInjection is the regression test for the double-logging bug:
// the injected logger must see exactly one line per request (ServeHTTP
// used to log unconditionally on top of the caller's own logging).
func TestLoggerInjection(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := New(sys, WithLogger(func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}))
	get(t, s, "/healthz", nil)
	get(t, s, "/v1/stats", nil)
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("logger saw %d lines for 2 requests: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "/healthz") || !strings.Contains(lines[1], "/v1/stats") {
		t.Fatalf("unexpected log lines: %q", lines)
	}
}

func TestConfirmEndpoint(t *testing.T) {
	s := testServer(t)
	before := sys.CKB.Count(0)
	body, _ := json.Marshal(ConfirmRequest{Tweet: 777, User: 10, Time: i64(500), Entity: 0})
	req := httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if sys.CKB.Count(0) != before+1 {
		t.Fatal("confirm did not complement the KB")
	}
	// Unknown IDs are 404 with the matching code.
	for _, tc := range []struct {
		bad  ConfirmRequest
		code string
	}{
		{ConfirmRequest{User: -1, Entity: 0}, CodeUnknownUser},
		{ConfirmRequest{User: 1, Entity: -2}, CodeUnknownEntity},
		{ConfirmRequest{User: 1, Entity: 1 << 30}, CodeUnknownEntity},
	} {
		b, _ := json.Marshal(tc.bad)
		req := httptest.NewRequest("POST", "/v1/confirm", bytes.NewReader(b))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		decodeError(t, rec, http.StatusNotFound, tc.code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	var resp SearchResponse
	rec := get(t, s, "/v1/search?user=100&limit=5&q="+surface, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(resp.Results) == 0 {
		t.Skip("no results for this user; acceptable for a below-threshold user")
	}
	if len(resp.Results) > 5 {
		t.Fatalf("limit ignored: %d results", len(resp.Results))
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Time > resp.Results[i-1].Time {
			t.Fatal("results not newest-first")
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/link?user=100&mention=x", nil) // count something
	var resp StatsResponse
	rec := get(t, s, "/v1/stats", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if resp.Users == 0 || resp.Entities == 0 {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.LinkRequests == 0 {
		t.Fatal("link counter not incremented")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/v1/link?user=1&mention=x", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}
