package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"microlink"
)

// TestMalformedBodies covers the JSON decoding error paths of both POST
// endpoints: truncated JSON, wrong top-level type, and empty bodies.
func TestMalformedBodies(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/v1/tweet", "{not json"},
		{"/v1/tweet", `[1,2,3]`},
		{"/v1/tweet", ""},
		{"/v1/confirm", `{"tweet": "not-a-number"}`},
		{"/v1/confirm", "{"},
		{"/v1/confirm", ""},
	} {
		req := httptest.NewRequest("POST", tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s body %q: status = %d, want 400", tc.path, tc.body, rec.Code)
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s body %q: error body = %q", tc.path, tc.body, rec.Body.String())
		}
	}
}

// TestOutOfRangeIDs covers user/entity validation across every endpoint
// that takes one.
func TestOutOfRangeIDs(t *testing.T) {
	s := testServer(t)
	users := sys.World.Graph.NumNodes()
	for _, path := range []string{
		"/v1/link?user=" + strconv.Itoa(users) + "&mention=x",
		"/v1/topk?user=-1&mention=x",
		"/v1/topk?user=" + strconv.Itoa(users+5) + "&mention=x",
		"/v1/search?user=-3&q=x",
		"/v1/search?user=" + strconv.Itoa(users) + "&q=x",
		"/v1/link?user=notanumber&mention=x",
	} {
		if rec := get(t, s, path, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
	}
	for _, body := range []any{
		TweetRequest{User: int32(users), Text: "x"},
		ConfirmRequest{User: 1, Entity: microlink.EntityID(sys.World.KB.NumEntities())},
		ConfirmRequest{User: int32(users), Entity: 0},
	} {
		b, _ := json.Marshal(body)
		path := "/v1/tweet"
		if _, ok := body.(ConfirmRequest); ok {
			path = "/v1/confirm"
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(b))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s %+v: status = %d, want 400", path, body, rec.Code)
		}
	}
}

// TestWrongMethods checks that each route rejects the other verb.
func TestWrongMethods(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/healthz"},
		{"POST", "/v1/link"},
		{"POST", "/v1/topk"},
		{"POST", "/v1/search"},
		{"GET", "/v1/tweet"},
		{"GET", "/v1/confirm"},
		{"DELETE", "/v1/stats"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", tc.method, tc.path, rec.Code)
		}
	}
}

func TestUnknownRoute(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/v1/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}
