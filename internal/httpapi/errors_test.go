package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"microlink"
)

// TestMalformedBodies covers the JSON decoding error paths of the POST
// endpoints: truncated JSON, wrong top-level type, and empty bodies. All
// are 400 invalid_json in the structured envelope.
func TestMalformedBodies(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/v1/tweet", "{not json"},
		{"/v1/tweet", `[1,2,3]`},
		{"/v1/tweet", ""},
		{"/v1/confirm", `{"tweet": "not-a-number"}`},
		{"/v1/confirm", "{"},
		{"/v1/confirm", ""},
		{"/v1/link/batch", `{"queries": "nope"}`},
		{"/v1/link/batch", ""},
	} {
		req := httptest.NewRequest("POST", tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s body %q: status = %d, want 400", tc.path, tc.body, rec.Code)
		}
		var e ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code != CodeInvalidJSON {
			t.Errorf("%s body %q: error body = %q", tc.path, tc.body, rec.Body.String())
		}
	}
}

// TestOutOfRangeIDs covers the 400-vs-404 split across every endpoint
// that takes an ID: malformed values are 400, well-formed IDs outside the
// world are 404 with unknown_user / unknown_entity.
func TestOutOfRangeIDs(t *testing.T) {
	s := testServer(t)
	users := sys.World.Graph.NumNodes()
	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/link?user=" + strconv.Itoa(users) + "&mention=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/topk?user=-1&mention=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/topk?user=" + strconv.Itoa(users+5) + "&mention=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/search?user=-3&q=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/search?user=" + strconv.Itoa(users) + "&q=x", http.StatusNotFound, CodeUnknownUser},
		{"/v1/link?user=notanumber&mention=x", http.StatusBadRequest, CodeInvalidUser},
	} {
		decodeError(t, get(t, s, tc.path, nil), tc.status, tc.code)
	}
	for _, tc := range []struct {
		body any
		code string
	}{
		{TweetRequest{User: int32(users), Text: "x"}, CodeUnknownUser},
		{ConfirmRequest{User: 1, Entity: microlink.EntityID(sys.World.KB.NumEntities())}, CodeUnknownEntity},
		{ConfirmRequest{User: int32(users), Entity: 0}, CodeUnknownUser},
	} {
		b, _ := json.Marshal(tc.body)
		path := "/v1/tweet"
		if _, ok := tc.body.(ConfirmRequest); ok {
			path = "/v1/confirm"
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(b))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		decodeError(t, rec, http.StatusNotFound, tc.code)
	}
}

// TestWrongMethods checks that each route rejects the other verb.
func TestWrongMethods(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/healthz"},
		{"POST", "/v1/link"},
		{"GET", "/v1/link/batch"},
		{"POST", "/v1/topk"},
		{"POST", "/v1/search"},
		{"GET", "/v1/tweet"},
		{"GET", "/v1/confirm"},
		{"DELETE", "/v1/stats"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", tc.method, tc.path, rec.Code)
		}
	}
}

func TestUnknownRoute(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/v1/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}
