package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"microlink"
)

var (
	ingestOnce sync.Once
	ingestSys  *microlink.System
)

// ingestServer returns a server over a streaming-reach system with an
// attached pipeline. The system (and its pipeline goroutines) is shared
// across tests; per-test servers are cheap views over it.
func ingestServer(t *testing.T) *Server {
	t.Helper()
	ingestOnce.Do(func() {
		w := microlink.Generate(microlink.WorldParams{
			Seed: 6, Users: 300, Topics: 6, EntitiesPerTopic: 10, Days: 20,
		})
		ingestSys = microlink.Build(w, microlink.Options{
			TruthComplement: true,
			Reach:           microlink.ReachStreaming,
		})
		if _, err := ingestSys.StartIngest(microlink.IngestConfig{}); err != nil {
			panic(err)
		}
	})
	return New(ingestSys, WithLogger(func(string, ...any) {}))
}

func postJSON(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// waitApplied polls until the pipeline has applied at least the wanted
// number of tweet + follow events.
func waitApplied(t *testing.T, p *microlink.IngestPipeline, tweets, follows int64) microlink.IngestStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.AppliedTweets >= tweets && st.AppliedFollows >= follows {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not apply %d tweets / %d follows in time: %+v", tweets, follows, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestIngestTweetAccepted(t *testing.T) {
	s := ingestServer(t)
	before := ingestSys.Ingest().Stats()

	rec := postJSON(t, s, "/v1/ingest/tweet", IngestTweetRequest{
		ID: 1 << 50, User: 3, Text: "streaming hello " + ambiguousIngestSurface(t),
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%s)", rec.Code, rec.Body.String())
	}
	var acc IngestAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatalf("decode: %v (%s)", err, rec.Body.String())
	}
	if acc.Status != "queued" {
		t.Errorf("status field = %q, want queued", acc.Status)
	}

	st := waitApplied(t, ingestSys.Ingest(), before.AppliedTweets+1, 0)
	if st.AppliedTweets <= before.AppliedTweets {
		t.Errorf("applied tweets did not advance: %+v", st)
	}
	if ingestSys.Live.Len() == 0 {
		t.Error("live store empty after applied tweet")
	}
}

func TestIngestFollowAccepted(t *testing.T) {
	s := ingestServer(t)
	before := ingestSys.Ingest().Stats()

	rec := postJSON(t, s, "/v1/ingest/follow", IngestFollowRequest{Follower: 1, Followee: 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%s)", rec.Code, rec.Body.String())
	}
	waitApplied(t, ingestSys.Ingest(), 0, before.AppliedFollows+1)
}

func TestIngestValidation(t *testing.T) {
	s := ingestServer(t)

	rec := postJSON(t, s, "/v1/ingest/tweet", IngestTweetRequest{User: 1 << 20, Text: "x"})
	decodeError(t, rec, http.StatusNotFound, CodeUnknownUser)

	rec = postJSON(t, s, "/v1/ingest/follow", IngestFollowRequest{Follower: 0, Followee: -5})
	decodeError(t, rec, http.StatusNotFound, CodeUnknownUser)

	req := httptest.NewRequest("POST", "/v1/ingest/tweet", bytes.NewReader([]byte("{nope")))
	raw := httptest.NewRecorder()
	s.ServeHTTP(raw, req)
	decodeError(t, raw, http.StatusBadRequest, CodeInvalidJSON)
}

func TestIngestDisabled(t *testing.T) {
	s := testServer(t) // closure-reach fixture: no pipeline attached
	rec := postJSON(t, s, "/v1/ingest/tweet", IngestTweetRequest{User: 1, Text: "x"})
	decodeError(t, rec, http.StatusServiceUnavailable, CodeIngestDisabled)
	rec = postJSON(t, s, "/v1/ingest/follow", IngestFollowRequest{Follower: 1, Followee: 2})
	decodeError(t, rec, http.StatusServiceUnavailable, CodeIngestDisabled)
}

// TestIngestQueueFull drives a throwaway pipeline whose applier is
// blocked by queue saturation being faster than the drain; with a
// one-slot queue and a storm of offers, at least one must shed with 503.
func TestIngestQueueFull(t *testing.T) {
	w := microlink.Generate(microlink.WorldParams{
		Seed: 7, Users: 120, Topics: 4, EntitiesPerTopic: 8, Days: 10,
	})
	sys := microlink.Build(w, microlink.Options{
		TruthComplement: true,
		Reach:           microlink.ReachStreaming,
	})
	p, err := sys.StartIngest(microlink.IngestConfig{Queue: 1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	s := New(sys, WithLogger(func(string, ...any) {}))

	sawFull := false
	for i := 0; i < 200 && !sawFull; i++ {
		rec := postJSON(t, s, "/v1/ingest/follow", IngestFollowRequest{
			Follower: int32(i % 100), Followee: int32((i + 7) % 100),
		})
		switch rec.Code {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			var e ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("decode 503: %v", err)
			}
			if e.Error.Code != CodeQueueFull {
				t.Fatalf("503 code = %q, want %q", e.Error.Code, CodeQueueFull)
			}
			sawFull = true
		default:
			t.Fatalf("unexpected status %d (%s)", rec.Code, rec.Body.String())
		}
	}
	if !sawFull {
		t.Skip("queue never saturated on this machine; drop path covered by unit tests")
	}
	if p.Stats().Dropped == 0 {
		t.Error("queue_full seen but dropped counter still zero")
	}
}

func ambiguousIngestSurface(t *testing.T) string {
	t.Helper()
	var surface string
	ingestSys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 1 {
			surface = form
		}
	})
	if surface == "" {
		t.Fatal("no surface in KB")
	}
	return surface
}
