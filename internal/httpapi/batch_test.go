package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"microlink"
)

func postBatch(t *testing.T, s *Server, req BatchRequest, ctx context.Context) *httptest.ResponseRecorder {
	t.Helper()
	b, _ := json.Marshal(req)
	r := httptest.NewRequest("POST", "/v1/link/batch", bytes.NewReader(b))
	if ctx != nil {
		r = r.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, r)
	return rec
}

// TestBatchEndpoint checks the happy path: results come back in request
// order and agree with the single-mention endpoint for the same (user,
// mention) pair.
func TestBatchEndpoint(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	req := BatchRequest{Queries: []BatchQuery{
		{User: 100, Mention: surface},
		{User: 101, Mention: surface},
		{User: 100, Mention: "zzzzzzzz"}, // unlinkable, not an error
	}}
	rec := postBatch(t, s, req, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Linked != 3 || resp.Failed != 0 {
		t.Fatalf("resp = %+v", resp)
	}
	for i, item := range resp.Results {
		if item.Mention != req.Queries[i].Mention {
			t.Fatalf("item %d out of order: %+v", i, item)
		}
		if item.Error != nil {
			t.Fatalf("item %d unexpected error: %+v", i, item.Error)
		}
	}
	if len(resp.Results[0].Candidates) < 2 || resp.Results[0].Entity != resp.Results[0].Candidates[0].Entity {
		t.Fatalf("ambiguous item: %+v", resp.Results[0])
	}
	if resp.Results[2].Entity != microlink.NoEntity || len(resp.Results[2].Candidates) != 0 {
		t.Fatalf("unlinkable item: %+v", resp.Results[2])
	}

	// Agreement with the single-mention endpoint.
	var single LinkResponse
	if rec := get(t, s, "/v1/link?user=100&mention="+surface, &single); rec.Code != http.StatusOK {
		t.Fatalf("single link status = %d", rec.Code)
	}
	if len(single.Candidates) != len(resp.Results[0].Candidates) {
		t.Fatalf("batch %d candidates vs single %d", len(resp.Results[0].Candidates), len(single.Candidates))
	}
	for i := range single.Candidates {
		if single.Candidates[i] != resp.Results[0].Candidates[i] {
			t.Fatalf("candidate %d: batch %+v != single %+v", i, resp.Results[0].Candidates[i], single.Candidates[i])
		}
	}
}

// TestBatchValidation covers the request-level rejections: empty batches
// and batches over the cap.
func TestBatchValidation(t *testing.T) {
	s := testServer(t)

	decodeError(t, postBatch(t, s, BatchRequest{}, nil), http.StatusBadRequest, CodeEmptyBatch)

	over := BatchRequest{Queries: make([]BatchQuery, MaxBatchQueries+1)}
	for i := range over.Queries {
		over.Queries[i] = BatchQuery{User: 1, Mention: "x"}
	}
	decodeError(t, postBatch(t, s, over, nil), http.StatusBadRequest, CodeBatchTooLarge)
}

// TestBatchPartialFailure checks per-item isolation: invalid items carry
// their own error codes while valid ones in the same request still score.
func TestBatchPartialFailure(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	users := int32(sys.World.Graph.NumNodes())
	rec := postBatch(t, s, BatchRequest{Queries: []BatchQuery{
		{User: users, Mention: surface}, // out of range
		{User: 100, Mention: surface},   // valid
		{User: -7, Mention: surface},    // out of range
		{User: 100, Mention: ""},        // missing mention
	}}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Linked != 1 || resp.Failed != 3 {
		t.Fatalf("linked/failed = %d/%d: %+v", resp.Linked, resp.Failed, resp)
	}
	wantCodes := []string{CodeUnknownUser, "", CodeUnknownUser, CodeMissingMention}
	for i, item := range resp.Results {
		switch {
		case wantCodes[i] == "":
			if item.Error != nil || len(item.Candidates) == 0 {
				t.Errorf("item %d should have scored: %+v", i, item)
			}
		case item.Error == nil || item.Error.Code != wantCodes[i]:
			t.Errorf("item %d error = %+v, want code %q", i, item.Error, wantCodes[i])
		}
	}
}

// TestBatchExpiredContext checks the deadline path end to end: a request
// whose context has already expired returns promptly with every scored
// item marked deadline_exceeded (HTTP status stays 200 — failures are per
// item).
func TestBatchExpiredContext(t *testing.T) {
	s := testServer(t)
	surface := ambiguousSurface(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	queries := make([]BatchQuery, 32)
	for i := range queries {
		queries[i] = BatchQuery{User: int32(i), Mention: surface}
	}
	rec := postBatch(t, s, BatchRequest{Queries: queries}, ctx)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("expired batch took %v, want prompt return", elapsed)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Failed != len(queries) {
		t.Fatalf("failed = %d, want %d: %+v", resp.Failed, len(queries), resp)
	}
	for i, item := range resp.Results {
		if item.Error == nil || item.Error.Code != CodeDeadlineExceeded {
			t.Fatalf("item %d error = %+v, want %s", i, item.Error, CodeDeadlineExceeded)
		}
	}
}
