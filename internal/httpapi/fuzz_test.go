package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"microlink"
)

// fuzzServer shares the package test fixture: the world build is
// expensive, the server is cheap.
func fuzzServer() *Server {
	once.Do(func() {
		w := microlink.Generate(microlink.WorldParams{
			Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20,
		})
		sys = microlink.Build(w, microlink.Options{TruthComplement: true})
	})
	return New(sys, WithLogger(func(string, ...any) {}))
}

// FuzzDecodeLinkRequest throws arbitrary bytes at the batch-link
// decoder. The contract under test: the server never panics, and every
// non-200 response is the structured error envelope — malformed JSON
// must yield a 400 with a machine-readable code, not a naked http.Error
// line or a crash.
func FuzzDecodeLinkRequest(f *testing.F) {
	seeds := []string{
		`{"queries":[{"user":1,"surface":"acme"}]}`,
		`{"queries":[{"user":1,"surface":"acme","now":123,"k":3}]}`,
		`{"queries":[]}`,
		`{"queries":null}`,
		`{}`,
		``,
		`{`,
		`[]`,
		`null`,
		`"queries"`,
		`{"queries":[{"user":"not a number"}]}`,
		`{"queries":[{"user":-1,"surface":""}]}`,
		`{"queries":[{"user":1e309}]}`,
		`{"queries":[{"user":1,"surface":"a","now":9223372036854775807}]}`,
		strings.Repeat(`{"queries":[`, 40) + strings.Repeat(`]}`, 40),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	srv := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/link/batch", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // a panic here fails the fuzz run

		switch {
		case rec.Code == http.StatusOK:
			var out BatchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("200 body does not parse as BatchResponse: %v (%q)", err, rec.Body.String())
			}
		default:
			var e ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("status %d body is not the error envelope: %v (%q)", rec.Code, err, rec.Body.String())
			}
			if e.Error.Code == "" {
				t.Fatalf("status %d envelope has empty code (%q)", rec.Code, rec.Body.String())
			}
		}
	})
}
