package httpapi

import (
	"errors"
	"net/http"

	"microlink"
)

// The admin endpoints are the operational face of the persistence layer
// (DESIGN.md §8): POST /v1/admin/snapshot commits the system's full
// state to its data directory, and GET /v1/admin/status reports the
// serving system's freshness — snapshot generation, WAL accumulation,
// and the ingest pipeline's staleness and swap counters — for dashboards
// and restart tooling. A server whose system is not bound to a data
// directory rejects snapshots with 503 persistence_disabled; status
// always answers 200 so probes keep working on ephemeral deployments.

// SnapshotResponse is the body of POST /v1/admin/snapshot.
type SnapshotResponse struct {
	Seq       uint64  `json:"seq"`
	Dir       string  `json:"dir"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	info, err := s.sys.SnapshotNow()
	if err != nil {
		if errors.Is(err, microlink.ErrNoStore) {
			s.writeError(w, http.StatusServiceUnavailable, CodePersistenceDisabled,
				"no data directory bound to this server (start linkd with -data)")
			return
		}
		s.writeError(w, http.StatusInternalServerError, CodeSnapshotFailed,
			"snapshot failed: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		Seq:       info.Seq,
		Dir:       info.Dir,
		ElapsedMS: float64(info.Elapsed.Microseconds()) / 1e3,
	})
}

// IngestStatus is the pipeline half of the admin status: staleness and
// swaps cover the gap between the live graph and the frozen arena.
type IngestStatus struct {
	Running         bool  `json:"running"`
	Staleness       int64 `json:"staleness"`
	Swaps           int64 `json:"swaps"`
	Rebuilds        int64 `json:"rebuilds"`
	AppliedTweets   int64 `json:"applied_tweets"`
	AppliedFollows  int64 `json:"applied_follows"`
	QueueDepth      int   `json:"queue_depth"`
	JournalFailures int64 `json:"journal_failures"`
}

// StatusResponse is the body of GET /v1/admin/status.
type StatusResponse struct {
	Persist microlink.PersistStatus `json:"persist"`
	Ingest  IngestStatus            `json:"ingest"`
}

func (s *Server) handleAdminStatus(w http.ResponseWriter, _ *http.Request) {
	resp := StatusResponse{Persist: s.sys.Persist()}
	if p := s.sys.Ingest(); p != nil {
		st := p.Stats()
		resp.Ingest = IngestStatus{
			Running:         true,
			Staleness:       st.Staleness,
			Swaps:           st.Swaps,
			Rebuilds:        st.Rebuilds,
			AppliedTweets:   st.AppliedTweets,
			AppliedFollows:  st.AppliedFollows,
			QueueDepth:      st.QueueDepth,
			JournalFailures: st.JournalFailures,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
