package httpapi

import (
	"encoding/json"
	"net/http"

	"microlink"
)

// The firehose endpoints differ from their synchronous cousins
// (/v1/tweet, the System.Follow path) in their contract: the request is
// validated, converted into a pipeline event and enqueued, and the
// response is 202 Accepted before any linking or index maintenance has
// happened. A full queue is surfaced as 503 queue_full — the client-side
// half of the pipeline's backpressure policy — and a server running
// without a pipeline rejects both endpoints with 503 ingest_disabled.

// pipeline fetches the attached ingest pipeline, writing the
// ingest_disabled envelope when there is none.
func (s *Server) pipeline(w http.ResponseWriter) *microlink.IngestPipeline {
	p := s.sys.Ingest()
	if p == nil {
		s.writeError(w, http.StatusServiceUnavailable, CodeIngestDisabled,
			"no ingest pipeline attached to this server")
	}
	return p
}

// IngestAccepted is the 202 body of both firehose endpoints.
type IngestAccepted struct {
	Status     string `json:"status"` // always "queued"
	QueueDepth int    `json:"queue_depth"`
}

// offer enqueues ev without blocking, writing the 202 or 503 response.
func (s *Server) offer(w http.ResponseWriter, p *microlink.IngestPipeline, ev microlink.IngestEvent) {
	if !p.Offer(ev) {
		s.writeError(w, http.StatusServiceUnavailable, CodeQueueFull,
			"ingest queue full; retry later")
		return
	}
	s.writeJSON(w, http.StatusAccepted, IngestAccepted{
		Status:     "queued",
		QueueDepth: p.Stats().QueueDepth,
	})
}

// IngestTweetRequest is the body of POST /v1/ingest/tweet: a raw tweet
// for the firehose. Unlike /v1/tweet, mentions are extracted here but
// linked asynchronously by the pipeline's applier.
type IngestTweetRequest struct {
	ID   int64  `json:"id"`
	User int32  `json:"user"`
	Time *int64 `json:"time,omitempty"`
	Text string `json:"text"`
}

func (s *Server) handleIngestTweet(w http.ResponseWriter, r *http.Request) {
	p := s.pipeline(w)
	if p == nil {
		return
	}
	var req IngestTweetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: "+err.Error())
		return
	}
	if aerr := s.validateUser(int64(req.User)); aerr != nil {
		aerr.send(s, w)
		return
	}
	tw := microlink.Tweet{ID: req.ID, User: req.User, Time: s.timeOrHorizon(req.Time), Text: req.Text}
	for _, sp := range s.sys.NER.Extract(req.Text) {
		tw.Mentions = append(tw.Mentions, microlink.Mention{Surface: sp.Surface, Truth: microlink.NoEntity})
	}
	s.offer(w, p, microlink.TweetEvent(&tw, nil))
}

// IngestFollowRequest is the body of POST /v1/ingest/follow: a new
// follower → followee edge for the live social graph.
type IngestFollowRequest struct {
	Follower int32 `json:"follower"`
	Followee int32 `json:"followee"`
}

func (s *Server) handleIngestFollow(w http.ResponseWriter, r *http.Request) {
	p := s.pipeline(w)
	if p == nil {
		return
	}
	var req IngestFollowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: "+err.Error())
		return
	}
	if aerr := s.validateUser(int64(req.Follower)); aerr != nil {
		aerr.send(s, w)
		return
	}
	if aerr := s.validateUser(int64(req.Followee)); aerr != nil {
		aerr.send(s, w)
		return
	}
	s.offer(w, p, microlink.FollowEvent(req.Follower, req.Followee))
}
