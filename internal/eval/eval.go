// Package eval measures linker accuracy and latency against generator
// ground truth, in the two granularities the paper reports: mention
// accuracy (fraction of mentions correctly linked) and tweet accuracy
// (fraction of tweets whose mentions are *all* correctly linked).
package eval

import (
	"time"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// Linker is the contract every evaluated system satisfies: the core linker
// and both baselines. LinkTweet returns one entity per mention of the
// tweet (kb.NoEntity for unlinkable mentions).
type Linker interface {
	Name() string
	LinkTweet(tw *tweets.Tweet) []kb.EntityID
}

// Accuracy accumulates correctness counts.
type Accuracy struct {
	Mentions       int
	Tweets         int
	MentionCorrect int
	TweetCorrect   int
}

// MentionAccuracy returns the fraction of correctly linked mentions.
func (a Accuracy) MentionAccuracy() float64 {
	if a.Mentions == 0 {
		return 0
	}
	return float64(a.MentionCorrect) / float64(a.Mentions)
}

// TweetAccuracy returns the fraction of tweets with all mentions correct.
func (a Accuracy) TweetAccuracy() float64 {
	if a.Tweets == 0 {
		return 0
	}
	return float64(a.TweetCorrect) / float64(a.Tweets)
}

// add folds one tweet's outcome in.
func (a *Accuracy) add(mentions, correct int) {
	if mentions == 0 {
		return
	}
	a.Tweets++
	a.Mentions += mentions
	a.MentionCorrect += correct
	if correct == mentions {
		a.TweetCorrect++
	}
}

// Merge combines two accuracy tallies.
func (a Accuracy) Merge(b Accuracy) Accuracy {
	return Accuracy{
		Mentions:       a.Mentions + b.Mentions,
		Tweets:         a.Tweets + b.Tweets,
		MentionCorrect: a.MentionCorrect + b.MentionCorrect,
		TweetCorrect:   a.TweetCorrect + b.TweetCorrect,
	}
}

// Timing reports linking latency the way Fig. 5(a) does.
type Timing struct {
	Total      time.Duration
	PerMention time.Duration
	PerTweet   time.Duration
}

// Evaluate links every tweet of ts and scores it against ground truth.
// Tweets without mentions are skipped.
func Evaluate(l Linker, ts []tweets.Tweet) Accuracy {
	acc, _ := run(l, ts, false)
	return acc
}

// EvaluateTimed is Evaluate plus wall-clock latency per mention and tweet.
func EvaluateTimed(l Linker, ts []tweets.Tweet) (Accuracy, Timing) {
	return run(l, ts, true)
}

func run(l Linker, ts []tweets.Tweet, timed bool) (Accuracy, Timing) {
	var acc Accuracy
	start := time.Now()
	for i := range ts {
		tw := &ts[i]
		if len(tw.Mentions) == 0 {
			continue
		}
		got := l.LinkTweet(tw)
		correct := 0
		for mi, m := range tw.Mentions {
			if mi < len(got) && got[mi] == m.Truth {
				correct++
			}
		}
		acc.add(len(tw.Mentions), correct)
	}
	var t Timing
	if timed {
		t.Total = time.Since(start)
		if acc.Mentions > 0 {
			t.PerMention = t.Total / time.Duration(acc.Mentions)
		}
		if acc.Tweets > 0 {
			t.PerTweet = t.Total / time.Duration(acc.Tweets)
		}
	}
	return acc, t
}

// ByCategory evaluates mention accuracy per entity category (Appendix
// C.1), attributing each mention to its ground-truth entity's category.
func ByCategory(l Linker, ts []tweets.Tweet, k *kb.KB) map[kb.Category]Accuracy {
	out := make(map[kb.Category]Accuracy)
	for i := range ts {
		tw := &ts[i]
		if len(tw.Mentions) == 0 {
			continue
		}
		got := l.LinkTweet(tw)
		for mi, m := range tw.Mentions {
			if m.Truth == kb.NoEntity {
				continue
			}
			cat := k.Entity(m.Truth).Category
			a := out[cat]
			correct := 0
			if mi < len(got) && got[mi] == m.Truth {
				correct = 1
			}
			a.add(1, correct)
			out[cat] = a
		}
	}
	return out
}

// ByTweetLength evaluates accuracy partitioned by the number of mentions
// per tweet (Fig. 6(c)). Index i of the result holds tweets with i+1
// mentions; tweets longer than maxLen fold into the last bucket.
func ByTweetLength(l Linker, ts []tweets.Tweet, maxLen int) []Accuracy {
	out := make([]Accuracy, maxLen)
	for i := range ts {
		tw := &ts[i]
		n := len(tw.Mentions)
		if n == 0 {
			continue
		}
		bucket := min(n, maxLen) - 1
		got := l.LinkTweet(tw)
		correct := 0
		for mi, m := range tw.Mentions {
			if mi < len(got) && got[mi] == m.Truth {
				correct++
			}
		}
		out[bucket].add(n, correct)
	}
	return out
}
