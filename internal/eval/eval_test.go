package eval

import (
	"testing"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// fakeLinker links mention i of each tweet to answers[surface], and
// records how many tweets it saw.
type fakeLinker struct {
	name    string
	answers map[string]kb.EntityID
	calls   int
}

func (f *fakeLinker) Name() string { return f.name }
func (f *fakeLinker) LinkTweet(tw *tweets.Tweet) []kb.EntityID {
	f.calls++
	out := make([]kb.EntityID, len(tw.Mentions))
	for i, m := range tw.Mentions {
		if e, ok := f.answers[m.Surface]; ok {
			out[i] = e
		} else {
			out[i] = kb.NoEntity
		}
	}
	return out
}

func corpus() []tweets.Tweet {
	return []tweets.Tweet{
		{ID: 1, User: 1, Time: 1, Mentions: []tweets.Mention{{Surface: "a", Truth: 0}, {Surface: "b", Truth: 1}}},
		{ID: 2, User: 1, Time: 2, Mentions: []tweets.Mention{{Surface: "a", Truth: 0}}},
		{ID: 3, User: 2, Time: 3, Mentions: []tweets.Mention{{Surface: "c", Truth: 2}}},
		{ID: 4, User: 2, Time: 4}, // no mentions: skipped
	}
}

func TestEvaluatePerfect(t *testing.T) {
	l := &fakeLinker{name: "x", answers: map[string]kb.EntityID{"a": 0, "b": 1, "c": 2}}
	acc := Evaluate(l, corpus())
	if acc.MentionAccuracy() != 1 || acc.TweetAccuracy() != 1 {
		t.Fatalf("acc = %+v", acc)
	}
	if acc.Mentions != 4 || acc.Tweets != 3 {
		t.Fatalf("counts = %+v", acc)
	}
	if l.calls != 3 {
		t.Fatalf("mention-free tweet must be skipped; calls = %d", l.calls)
	}
}

func TestEvaluatePartial(t *testing.T) {
	// "b" wrong: tweet 1 has 1/2 mentions correct → tweet-level incorrect.
	l := &fakeLinker{name: "x", answers: map[string]kb.EntityID{"a": 0, "b": 99, "c": 2}}
	acc := Evaluate(l, corpus())
	if acc.MentionCorrect != 3 || acc.TweetCorrect != 2 {
		t.Fatalf("acc = %+v", acc)
	}
	if acc.MentionAccuracy() != 0.75 {
		t.Fatalf("mention accuracy = %f", acc.MentionAccuracy())
	}
	// Mention accuracy is always ≥ tweet accuracy (§5.2.1).
	if acc.MentionAccuracy() < acc.TweetAccuracy() {
		t.Fatal("mention accuracy below tweet accuracy")
	}
}

func TestEvaluateTimed(t *testing.T) {
	l := &fakeLinker{name: "x", answers: map[string]kb.EntityID{"a": 0}}
	acc, tm := EvaluateTimed(l, corpus())
	if tm.Total <= 0 || tm.PerMention <= 0 || tm.PerTweet <= 0 {
		t.Fatalf("timing = %+v", tm)
	}
	if tm.PerMention > tm.PerTweet {
		t.Fatal("per-mention time cannot exceed per-tweet time")
	}
	if acc.Mentions != 4 {
		t.Fatalf("acc = %+v", acc)
	}
}

func TestAccuracyZeroDivision(t *testing.T) {
	var a Accuracy
	if a.MentionAccuracy() != 0 || a.TweetAccuracy() != 0 {
		t.Fatal("empty accuracy must be zero")
	}
}

func TestMerge(t *testing.T) {
	a := Accuracy{Mentions: 2, Tweets: 1, MentionCorrect: 1, TweetCorrect: 0}
	b := Accuracy{Mentions: 3, Tweets: 2, MentionCorrect: 3, TweetCorrect: 2}
	m := a.Merge(b)
	if m.Mentions != 5 || m.TweetCorrect != 2 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestByTweetLength(t *testing.T) {
	l := &fakeLinker{name: "x", answers: map[string]kb.EntityID{"a": 0, "b": 99, "c": 2}}
	buckets := ByTweetLength(l, corpus(), 4)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// Length-1 bucket: tweets 2 and 3, both correct.
	if buckets[0].Tweets != 2 || buckets[0].MentionCorrect != 2 {
		t.Fatalf("bucket 1 = %+v", buckets[0])
	}
	// Length-2 bucket: tweet 1, one of two correct.
	if buckets[1].Tweets != 1 || buckets[1].MentionCorrect != 1 {
		t.Fatalf("bucket 2 = %+v", buckets[1])
	}
}

func TestByCategory(t *testing.T) {
	b := kb.NewBuilder()
	b.AddEntity(kb.Entity{Name: "p", Category: kb.CategoryPerson})
	b.AddEntity(kb.Entity{Name: "l", Category: kb.CategoryLocation})
	b.AddEntity(kb.Entity{Name: "c", Category: kb.CategoryCompany})
	k := b.Build()
	l := &fakeLinker{name: "x", answers: map[string]kb.EntityID{"a": 0, "b": 99, "c": 2}}
	got := ByCategory(l, corpus(), k)
	if got[kb.CategoryPerson].MentionAccuracy() != 1 {
		t.Fatalf("person = %+v", got[kb.CategoryPerson])
	}
	if got[kb.CategoryLocation].MentionAccuracy() != 0 {
		t.Fatalf("location = %+v", got[kb.CategoryLocation])
	}
	if got[kb.CategoryCompany].MentionAccuracy() != 1 {
		t.Fatalf("company = %+v", got[kb.CategoryCompany])
	}
}
