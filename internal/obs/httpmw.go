package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments HTTP handlers with the standard serving
// signals: per-endpoint request counts split by status class, an
// in-flight gauge, and per-endpoint latency histograms. One instance is
// shared by every endpoint of a server; Wrap attaches it to a handler
// under a fixed endpoint label (use the route pattern, not the raw URL,
// to keep cardinality bounded).
type HTTPMetrics struct {
	requests *CounterVec   // {endpoint, code}
	inflight *Gauge        //
	seconds  *HistogramVec // {endpoint}
}

// NewHTTPMetrics registers the HTTP metric families under
// <prefix>_http_*.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec(prefix+"_http_requests_total",
			"HTTP requests served, by endpoint and status class.", "endpoint", "code"),
		inflight: r.Gauge(prefix+"_http_in_flight_requests",
			"HTTP requests currently being served."),
		seconds: r.HistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency by endpoint.", DefTimeBuckets, "endpoint"),
	}
}

// Wrap returns next instrumented under the given endpoint label.
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	hist := m.seconds.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		hist.ObserveSince(start)
		m.inflight.Dec()
		m.requests.With(endpoint, codeClass(sw.status)).Inc()
	})
}

// WrapFunc is Wrap for http.HandlerFunc.
func (m *HTTPMetrics) WrapFunc(endpoint string, next http.HandlerFunc) http.Handler {
	return m.Wrap(endpoint, next)
}

// statusWriter records the response status (200 when the handler never
// calls WriteHeader).
//
// microlint:owned — each instance wraps exactly one request's
// ResponseWriter and lives on that request's handler goroutine; the
// wrapper is never shared across requests.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// codeClass maps a status code to its Prometheus-conventional class label
// ("2xx", "4xx", …).
func codeClass(status int) string {
	if status < 100 || status > 599 {
		return strconv.Itoa(status)
	}
	return strconv.Itoa(status/100) + "xx"
}
