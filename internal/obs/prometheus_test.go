package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_ops_total", "Total ops.").Add(7)
	r.Gauge("app_temp_celsius", "Temperature.").Set(-3.5)
	r.CounterVec("app_reqs_total", "Requests.", "endpoint", "code").With("/v1/link", "2xx").Add(2)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(8)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP app_ops_total Total ops.",
		"# TYPE app_ops_total counter",
		"app_ops_total 7",
		"app_temp_celsius -3.5",
		`app_reqs_total{endpoint="/v1/link",code="2xx"} 2`,
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.5"} 1`,
		`app_latency_seconds_bucket{le="2"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 9.25",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families must appear sorted by name.
	if strings.Index(out, "app_latency_seconds") > strings.Index(out, "app_ops_total") {
		t.Error("families not sorted by name")
	}

	checkExposition(t, out)
}

// checkExposition is a minimal parser for the text format: every
// non-comment line must be `name[{labels}] value` with a parseable float
// value and balanced, quoted labels.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
			for _, pair := range splitLabels(rest[i+1 : j]) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("bad label %q in %q", pair, line)
				}
			}
			rest = rest[:i] + rest[j+1:]
		}
		name, value, ok := strings.Cut(rest, " ")
		if !ok || !validName(name) {
			t.Fatalf("bad sample line %q", line)
		}
		if value != "+Inf" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("unparseable value %q in %q", value, line)
			}
		}
	}
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("app_weird_total", "", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `app_weird_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "app_x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
