package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeCollector periodically samples Go runtime health into gauges:
// goroutine count, heap allocation, GC cycle count, and cumulative GC
// pause time. Start it once per process; Stop shuts the sampling goroutine
// down cleanly (idempotently).
type RuntimeCollector struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	heapObj    *Gauge
	gcCycles   *Gauge
	gcPause    *Gauge

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// CollectRuntime registers the runtime gauges under
// <prefix>_runtime_<name> and starts sampling them every interval
// (default 10 s when interval ≤ 0). The first sample is taken
// synchronously so the gauges are populated before the first scrape.
func CollectRuntime(r *Registry, prefix string, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	c := &RuntimeCollector{
		goroutines: r.Gauge(prefix+"_runtime_goroutines", "Number of live goroutines."),
		heapAlloc:  r.Gauge(prefix+"_runtime_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapSys:    r.Gauge(prefix+"_runtime_heap_sys_bytes", "Bytes of heap obtained from the OS."),
		heapObj:    r.Gauge(prefix+"_runtime_heap_objects", "Number of allocated heap objects."),
		gcCycles:   r.Gauge(prefix+"_runtime_gc_cycles_total", "Completed GC cycles."),
		gcPause:    r.Gauge(prefix+"_runtime_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time."),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	c.sample()
	go c.loop(interval)
	return c
}

func (c *RuntimeCollector) loop(interval time.Duration) {
	defer close(c.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sample()
		}
	}
}

func (c *RuntimeCollector) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapSys.Set(float64(ms.HeapSys))
	c.heapObj.Set(float64(ms.HeapObjects))
	c.gcCycles.Set(float64(ms.NumGC))
	c.gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
}

// Stop terminates the sampling goroutine and waits for it to exit. Safe to
// call more than once.
func (c *RuntimeCollector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
