package obs

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1 holds 0.5 and 1 (inclusive bound); le=2 holds 1.5; le=4 holds 3;
	// +Inf holds 100.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 5 || math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "", ExpBuckets(0.001, 2, 16))
	// 1000 observations uniform in (0, 1): p50 ≈ 0.5, p95 ≈ 0.95.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	// Log buckets of factor 2 bound the relative error by 2x.
	if p50 < 0.25 || p50 > 1.0 {
		t.Fatalf("p50 = %v", p50)
	}
	if p95 < 0.5 || p95 > 1.5 {
		t.Fatalf("p95 = %v", p95)
	}
	if p99 < p95 {
		t.Fatalf("p99 (%v) < p95 (%v)", p99, p95)
	}
	if m := s.Mean(); m < 0.4 || m > 0.6 {
		t.Fatalf("mean = %v, want ≈ 0.5", m)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_m_seconds", "", nil)
	for _, v := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// Observation beyond the last bound clamps to it.
	if got, last := s.Quantile(1), DefTimeBuckets[len(DefTimeBuckets)-1]; got != last {
		t.Fatalf("q=1 over +Inf bucket = %v, want clamp to %v", got, last)
	}
}

func TestBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets must panic")
		}
	}()
	r.Histogram("test_bad_seconds", "", []float64{1, 1})
}
