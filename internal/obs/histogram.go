package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefTimeBuckets are the default latency buckets: powers of two from 1 µs
// to ~8.4 s. Log-spaced bounds keep relative quantile-estimation error
// constant across the four decades a linking stage can span (a cached
// reachability query is nanoseconds; whole-community interest is
// milliseconds).
var DefTimeBuckets = ExpBuckets(1e-6, 2, 24)

// ExpBuckets returns count exponential bucket upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count ≥ 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// normBuckets validates and copies bucket bounds, defaulting to
// DefTimeBuckets.
func normBuckets(b []float64) []float64 {
	if b == nil {
		return DefTimeBuckets
	}
	if len(b) == 0 {
		panic("obs: empty bucket list")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: bucket bounds must be strictly ascending")
		}
	}
	return append([]float64(nil), b...)
}

// Histogram counts observations into fixed buckets, tracking total count
// and sum. Observing is two atomic adds plus a CAS for the sum — no locks,
// no allocation. Quantiles are estimated from the bucket layout
// (Snapshot/Quantile). Methods are nil-receiver-safe.
type Histogram struct {
	upper  []float64       // ascending upper bounds (le, inclusive)
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot captures the histogram state for quantile estimation and
// exposition. Buckets are read without a global lock, so a snapshot taken
// during concurrent observation may be off by the in-flight observations —
// fine for monitoring, which is the use case.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Upper  []float64 // bucket upper bounds (shared, do not modify)
	Counts []uint64  // per-bucket counts, len(Upper)+1 (last = +Inf)
	Count  uint64
	Sum    float64
}

// Mean returns the average observed value, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket containing the rank. Values beyond the last finite
// bound clamp to it; an empty histogram yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, n := range s.Counts {
		prev := cum
		cum += n
		if float64(cum) < rank || n == 0 {
			continue
		}
		if i >= len(s.Upper) {
			return s.Upper[len(s.Upper)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = s.Upper[i-1]
		}
		hi := s.Upper[i]
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return s.Upper[len(s.Upper)-1]
}
