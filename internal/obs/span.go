package obs

import "time"

// Span times one operation into a histogram:
//
//	defer obs.StartSpan(h).Stop()
//
// A nil histogram still measures (Stop returns the elapsed time) but
// records nothing, so spans can wrap code that is only sometimes
// instrumented.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan starts timing into h.
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// Stop records the elapsed seconds into the histogram and returns the
// duration.
func (s Span) Stop() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// Stopwatch times the successive stages of one request into a labelled
// histogram family: each Stage call records the time elapsed since the
// previous one under {label=stage}. This is the per-request stage-timer
// used by the Eq. 1 scoring pipeline — one Stopwatch per request, one
// Stage mark per pipeline section.
//
//	sw := obs.StartStopwatch(stageVec)
//	… candidate generation …
//	sw.Stage("candidate")
//	… recency scoring …
//	sw.Stage("recency")
//
// A Stopwatch over a nil vec keeps correct time and records nothing.
type Stopwatch struct {
	vec  *HistogramVec
	last time.Time
}

// StartStopwatch starts a stopwatch recording into vec, which must have
// exactly one label (the stage name).
func StartStopwatch(vec *HistogramVec) Stopwatch {
	return Stopwatch{vec: vec, last: time.Now()}
}

// Stage records the time since the last mark (or start) under the given
// stage label and resets the mark. Returns the stage duration.
func (w *Stopwatch) Stage(stage string) time.Duration {
	now := time.Now()
	d := now.Sub(w.last)
	w.last = now
	w.vec.With(stage).Observe(d.Seconds())
	return d
}
