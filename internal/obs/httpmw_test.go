package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMetricsWrap(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "app")
	okHandler := m.WrapFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	})
	failHandler := m.WrapFunc("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		okHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	failHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/fail", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}

	if got := m.requests.With("/ok", "2xx").Value(); got != 3 {
		t.Fatalf("/ok 2xx = %d, want 3", got)
	}
	if got := m.requests.With("/fail", "4xx").Value(); got != 1 {
		t.Fatalf("/fail 4xx = %d, want 1", got)
	}
	if v := m.inflight.Value(); v != 0 {
		t.Fatalf("in-flight after completion = %v", v)
	}
	if m.seconds.With("/ok").Count() != 3 {
		t.Fatalf("latency observations = %d", m.seconds.With("/ok").Count())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`app_http_requests_total{endpoint="/fail",code="4xx"} 1`,
		`app_http_requests_total{endpoint="/ok",code="2xx"} 3`,
		"app_http_in_flight_requests 0",
		`app_http_request_seconds_count{endpoint="/ok"} 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestCodeClass(t *testing.T) {
	for status, want := range map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 42: "42"} {
		if got := codeClass(status); got != want {
			t.Errorf("codeClass(%d) = %q, want %q", status, got, want)
		}
	}
}
