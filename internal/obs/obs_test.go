package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_temp", "temp")
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "")
	b := r.Counter("test_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	v1 := r.CounterVec("test_labelled_total", "", "kind")
	v2 := r.CounterVec("test_labelled_total", "", "kind")
	v1.With("x").Inc()
	if v2.With("x").Value() != 1 {
		t.Fatal("vec children must be shared across lookups")
	}
}

func TestRegistryTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a gauge must panic")
		}
	}()
	r.Gauge("test_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("9bad-name", "")
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if s := h.Snapshot(); s.Quantile(0.5) != 0 {
		t.Fatal("nil histogram snapshot must quantile to 0")
	}
	sw := StartStopwatch(nil)
	sw.Stage("a") // must not panic
	if d := StartSpan(nil).Stop(); d < 0 {
		t.Fatal("nil span must still measure")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	g := r.Gauge("test_g", "")
	h := r.Histogram("test_seconds", "", nil)
	vec := r.CounterVec("test_kinds_total", "", "kind")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := string(rune('a' + w%3))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				vec.With(kind).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var total uint64
	for _, k := range []string{"a", "b", "c"} {
		total += vec.With(k).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("vec total = %d, want %d", total, workers*perWorker)
	}
}

func TestStopwatchStages(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("test_stage_seconds", "", nil, "stage")
	sw := StartStopwatch(vec)
	time.Sleep(time.Millisecond)
	d1 := sw.Stage("first")
	d2 := sw.Stage("second")
	if d1 < time.Millisecond {
		t.Fatalf("first stage = %v, want ≥ 1ms", d1)
	}
	if d2 > d1 {
		t.Fatalf("second stage (%v) should be ~instant, first was %v", d2, d1)
	}
	snaps := vec.Snapshots()
	if snaps["first"].Count != 1 || snaps["second"].Count != 1 {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_span_seconds", "", nil)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.Stop()
	if d < time.Millisecond {
		t.Fatalf("span = %v, want ≥ 1ms", d)
	}
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}
