package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	c := CollectRuntime(r, "app", time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"app_runtime_goroutines",
		"app_runtime_heap_alloc_bytes",
		"app_runtime_heap_sys_bytes",
		"app_runtime_heap_objects",
		"app_runtime_gc_cycles_total",
		"app_runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("missing %s in exposition", name)
		}
	}
	if c.goroutines.Value() < 1 {
		t.Fatalf("goroutines gauge = %v", c.goroutines.Value())
	}
	if c.heapAlloc.Value() <= 0 {
		t.Fatalf("heap alloc gauge = %v", c.heapAlloc.Value())
	}
}
