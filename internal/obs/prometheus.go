package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in Prometheus text
// exposition format 0.0.4: families sorted by name, children sorted by
// label values, histograms expanded into cumulative _bucket/_sum/_count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, ch := range f.sortedChildren() {
			switch f.typ {
			case typeCounter:
				writeSample(bw, f.name, "", f.labels, ch.values, "", "", formatUint(ch.c.Value()))
			case typeGauge:
				writeSample(bw, f.name, "", f.labels, ch.values, "", "", formatFloat(ch.g.Value()))
			default:
				s := ch.h.Snapshot()
				var cum uint64
				for i, n := range s.Counts {
					cum += n
					le := "+Inf"
					if i < len(s.Upper) {
						le = formatFloat(s.Upper[i])
					}
					writeSample(bw, f.name, "_bucket", f.labels, ch.values, "le", le, formatUint(cum))
				}
				writeSample(bw, f.name, "_sum", f.labels, ch.values, "", "", formatFloat(s.Sum))
				writeSample(bw, f.name, "_count", f.labels, ch.values, "", "", formatUint(s.Count))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		//nolint:microlint/errdrop -- write error means the scraper hung up mid-scrape; nothing to report it to
		_ = r.WritePrometheus(w)
	})
}

// writeSample emits one line: name[suffix]{labels…[,extraK="extraV"]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, extraK, extraV, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraK != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraK)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraV))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
