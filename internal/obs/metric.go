package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// nil-receiver-safe no-ops so uninstrumented components can keep the calls
// compiled in.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrary float metric that can go up and down. All methods
// are nil-receiver-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (may be negative) via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
