// Package obs is the stdlib-only observability subsystem: a metrics
// registry of atomic counters, gauges, and log-bucketed latency
// histograms; a lightweight span/stopwatch API for timing the stages of a
// hot path; a Prometheus text-format exposition writer; an HTTP middleware
// recording per-endpoint traffic; and a background collector of Go
// runtime health gauges.
//
// The paper's efficiency study (Table 5, Figures 5–6) measures per-stage
// linking cost offline; this package makes the same breakdown visible on a
// live serving system, which is the prerequisite for any further
// performance work on the Eq. 1 pipeline.
//
// Metric naming follows the Prometheus convention
//
//	microlink_<subsystem>_<name>_<unit>
//
// e.g. microlink_linker_stage_seconds, microlink_http_requests_total,
// microlink_reach_queries_total. Registries hand out one instance per
// metric name: asking twice for the same name returns the same metric, so
// independent components can share a registry without coordination.
//
// Hot-path cost model: updating a counter or observing into a histogram is
// one or two atomic operations and never allocates; label resolution
// (Vec.With) is a read-locked map lookup, so resolve children once and
// retain them where nanoseconds matter. All types are safe for concurrent
// use. Metric methods are nil-receiver-safe so instrumentation can be
// compiled in unconditionally and enabled by wiring a registry.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry.
// Registry metrics lookups nest registry → family when a family must be
// created on first use; exposition deliberately copies the family list
// out under the registry lock before touching family locks.
//
// microlint:lock-order obs-registry < obs-family
type Registry struct {
	mu       sync.RWMutex       // microlint:lock-order obs-registry
	families map[string]*family // microlint:guarded-by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed type, help string, and label
// schema; children are the per-label-value instances (a single anonymous
// child when the family has no labels).
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds; nil otherwise

	mu       sync.RWMutex      // microlint:lock-order obs-family
	children map[string]*child // microlint:guarded-by mu
}

// child is one (label values → metric) instance of a family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

const labelSep = "\xff"

// lookup returns the family registered under name, creating it on first
// use. A name collision with a different type or label schema panics: that
// is a wiring bug, not a runtime condition.
func (r *Registry) lookup(name, help string, typ metricType, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor resolves (creating on first use) the child for the given label
// values.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok = f.children[key]; ok {
		return ch
	}
	// Build the child completely in a private local and publish it into
	// the map only once immutable: lock-free readers that got it from the
	// fast path above must never observe a half-built child.
	nc := &child{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		nc.c = &Counter{}
	case typeGauge:
		nc.g = &Gauge{}
	default:
		nc.h = newHistogram(f.buckets)
	}
	f.children[key] = nc
	return nc
}

// sortedChildren returns the family's children in deterministic
// (label-value) order, for exposition.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.RUnlock()
	return out
}

// Counter returns the label-less counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, typeCounter, nil, nil).childFor(nil).c
}

// CounterVec returns the counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.lookup(name, help, typeCounter, nil, labels)}
}

// Gauge returns the label-less gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, typeGauge, nil, nil).childFor(nil).g
}

// GaugeVec returns the gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.lookup(name, help, typeGauge, nil, labels)}
}

// Histogram returns the label-less histogram registered under name.
// buckets are the upper bounds (ascending); nil selects DefTimeBuckets.
// Bucket bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, typeHistogram, normBuckets(buckets), nil).childFor(nil).h
}

// HistogramVec returns the histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.lookup(name, help, typeHistogram, normBuckets(buckets), labels)}
}

// CounterVec is a labelled counter family.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values. Nil-safe: a nil vec
// yields a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).c
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).g
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).h
}

// Snapshots returns a consistent-enough view of every child keyed by its
// joined label values (single-label vecs key directly by the value).
func (v *HistogramVec) Snapshots() map[string]HistogramSnapshot {
	if v == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot)
	for _, ch := range v.fam.sortedChildren() {
		out[strings.Join(ch.values, ",")] = ch.h.Snapshot()
	}
	return out
}

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
