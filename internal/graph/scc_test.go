package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reachClosure computes unbounded reachability by Floyd–Warshall.
func reachClosure(g *Graph) [][]bool {
	n := g.NumNodes()
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, n)
		r[i][i] = true
		for _, v := range g.Out(NodeID(i)) {
			r[i][v] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r[k][j] {
					r[i][j] = true
				}
			}
		}
	}
	return r
}

func TestSCCTwoCycles(t *testing.T) {
	// 0↔1 and 2↔3, bridge 1→2.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 2)
	b.AddEdge(1, 2)
	g := b.Build()
	s := StronglyConnected(g)
	if s.Count != 2 {
		t.Fatalf("components = %d", s.Count)
	}
	if s.Comp[0] != s.Comp[1] || s.Comp[2] != s.Comp[3] || s.Comp[0] == s.Comp[2] {
		t.Fatalf("comp = %v", s.Comp)
	}
	// Reverse topological numbering: the downstream component {2,3} gets
	// the smaller id.
	if s.Comp[2] > s.Comp[0] {
		t.Fatalf("numbering not reverse-topological: %v", s.Comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	g := line(5)
	s := StronglyConnected(g)
	if s.Count != 5 {
		t.Fatalf("components = %d", s.Count)
	}
}

func TestCondenseDAG(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	s := StronglyConnected(g)
	dag := s.Condense(g)
	if dag.NumNodes() != 3 {
		t.Fatalf("dag nodes = %d", dag.NumNodes())
	}
	// Every DAG edge goes from a higher component id to a lower one
	// (reverse topological numbering) — hence acyclic.
	for u := 0; u < dag.NumNodes(); u++ {
		for _, v := range dag.Out(NodeID(u)) {
			if v >= NodeID(u) {
				t.Fatalf("edge %d→%d violates reverse-topological order", u, v)
			}
		}
	}
}

// Property: u and v share a component iff they reach each other.
func TestQuickSCCMatchesMutualReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		g := randomGraph(r, n, r.Intn(3*n))
		s := StronglyConnected(g)
		rc := reachClosure(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := rc[u][v] && rc[v][u]
				if mutual != (s.Comp[u] == s.Comp[v]) {
					t.Logf("seed %d: (%d,%d) mutual=%v comp %d/%d", seed, u, v, mutual, s.Comp[u], s.Comp[v])
					return false
				}
			}
		}
		// Condensation edges go high→low id.
		dag := s.Condense(g)
		for u := 0; u < dag.NumNodes(); u++ {
			for _, v := range dag.Out(NodeID(u)) {
				if v >= NodeID(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeepGraphNoOverflow(t *testing.T) {
	// A 200k-node cycle would blow a recursive Tarjan's stack.
	n := 200_000
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	s := StronglyConnected(b.Build())
	if s.Count != 1 {
		t.Fatalf("components = %d", s.Count)
	}
}
