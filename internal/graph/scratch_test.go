package graph

import "testing"

func TestDistMapSetResetCycle(t *testing.T) {
	m := NewDistMap(8)
	for v := NodeID(0); v < 8; v++ {
		if m.Visited(v) {
			t.Fatalf("fresh map claims %d visited", v)
		}
	}
	m.Set(3, 0)
	m.Set(5, 1)
	m.Set(3, 2) // re-set must not duplicate the touched entry
	if got := m.Dist(3); got != 2 {
		t.Fatalf("Dist(3) = %d, want 2", got)
	}
	if got := len(m.Touched()); got != 2 {
		t.Fatalf("touched %d nodes, want 2", got)
	}
	m.Reset()
	if m.Visited(3) || m.Visited(5) {
		t.Fatal("Reset left nodes visited")
	}
	if len(m.Touched()) != 0 {
		t.Fatal("Reset left touched entries")
	}
	// The map must be fully reusable after Reset.
	m.Set(5, 4)
	if m.Dist(5) != 4 || len(m.Touched()) != 1 {
		t.Fatal("map not reusable after Reset")
	}
}

func TestDistMapTouchedOrder(t *testing.T) {
	m := NewDistMap(10)
	order := []NodeID{7, 2, 9, 0}
	for i, v := range order {
		m.Set(v, int32(i))
	}
	got := m.Touched()
	for i, v := range order {
		if got[i] != v {
			t.Fatalf("touched[%d] = %d, want %d", i, got[i], v)
		}
	}
}
