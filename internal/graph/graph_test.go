package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds 0 → 1 → 2 → … → n-1.
func line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestBuildEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestBuildDedupAndSort(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(2, 1)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1) // dup
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	out := g.Out(2)
	if len(out) != 3 || out[0] != 0 || out[1] != 1 || out[2] != 3 {
		t.Fatalf("out(2) = %v", out)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestInOutConsistent(t *testing.T) {
	b := NewBuilder(5)
	edges := [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {3, 2}, {2, 4}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if got := g.In(2); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("in(2) = %v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(4) != 1 || g.Degree(2) != 4 {
		t.Fatalf("degrees wrong: out0=%d in4=%d deg2=%d", g.OutDegree(0), g.InDegree(4), g.Degree(2))
	}
}

func TestHasEdge(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2)
	g := b.Build()
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) || g.HasEdge(0, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 0)
	s := b.Build().Stats()
	if s.Nodes != 3 || s.Edges != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgDegree != 1.0 {
		t.Fatalf("avg degree %f", s.AvgDegree)
	}
	if s.MaxDegree != 3 { // node 0: out 2 + in 1
		t.Fatalf("max degree %d", s.MaxDegree)
	}
}

func TestBFSLine(t *testing.T) {
	g := line(6)
	tr := NewTraversal(g)
	if d := tr.ShortestDist(0, 5, 10); d != 5 {
		t.Fatalf("dist 0→5 = %d", d)
	}
	if d := tr.ShortestDist(0, 5, 4); d != -1 {
		t.Fatalf("bounded dist should be -1, got %d", d)
	}
	if d := tr.ShortestDist(5, 0, 10); d != -1 {
		t.Fatalf("reverse dist should be -1, got %d", d)
	}
	if d := tr.ShortestDist(3, 3, 10); d != 0 {
		t.Fatalf("self dist = %d", d)
	}
}

func TestBFSReuseNoStateLeak(t *testing.T) {
	g := line(10)
	tr := NewTraversal(g)
	for i := 0; i < 5; i++ {
		if d := tr.ShortestDist(0, 9, 20); d != 9 {
			t.Fatalf("iteration %d: dist = %d", i, d)
		}
	}
}

func TestBackwardBFS(t *testing.T) {
	// 0→2, 1→2: backward from 2 reaches {0,1} at 1 hop.
	b := NewBuilder(3)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build()
	tr := NewTraversal(g)
	got := map[NodeID]int{}
	tr.Backward(2, 5, func(v NodeID, h int) bool {
		got[v] = h
		return true
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("backward reach = %v", got)
	}
}

func TestForwardVisitPrune(t *testing.T) {
	// 0→1→2; visitor refusing expansion at 1 must not reach 2.
	g := line(3)
	tr := NewTraversal(g)
	reached := []NodeID{}
	tr.Forward(0, 10, func(v NodeID, h int) bool {
		reached = append(reached, v)
		return false
	})
	if len(reached) != 1 || reached[0] != 1 {
		t.Fatalf("reached %v", reached)
	}
}

func randomGraph(r *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	return b.Build()
}

// Property: every edge appears in both the out-list of its source and the
// in-list of its target, and total counts agree.
func TestQuickCSRSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(200))
		inCount := 0
		for u := 0; u < n; u++ {
			for _, v := range g.Out(NodeID(u)) {
				if !g.HasEdge(NodeID(u), v) {
					return false
				}
				found := false
				for _, s := range g.In(v) {
					if s == NodeID(u) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			inCount += g.InDegree(NodeID(u))
		}
		return inCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance equals Floyd-Warshall distance on small graphs.
func TestQuickBFSMatchesFloyd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := randomGraph(r, n, r.Intn(40))
		const inf = 1 << 20
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i == j {
					d[i][j] = 0
				} else {
					d[i][j] = inf
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(NodeID(u)) {
				d[u][v] = 1
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		tr := NewTraversal(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := d[i][j]
				if want == inf {
					want = -1
				}
				if got := tr.ShortestDist(NodeID(i), NodeID(j), n+1); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
