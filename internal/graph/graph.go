// Package graph implements the directed followee–follower network that
// underlies weighted reachability (paper §3, §4.1). An edge (u, v) means
// "u follows v": v is one of u's followees, so interest flows along out
// edges. Graphs are built once with a Builder and then frozen into a
// compact CSR (compressed sparse row) form that the reachability indexes
// and the BFS routines read concurrently without locks.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a user in the followee–follower network. IDs are dense:
// a graph with n nodes uses IDs 0..n-1.
type NodeID = int32

// Builder accumulates edges before freezing them into a Graph. Builders are
// not safe for concurrent use.
type Builder struct {
	n     int
	edges [][2]NodeID
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the follow edge u → v (u subscribes to v). Self-loops are
// ignored: a user's interest in herself carries no linking signal. Adding an
// out-of-range endpoint panics, since that is a programming error in the
// generator or loader, not a data condition.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, [2]NodeID{u, v})
}

// NumEdges reports the number of edges recorded so far (before dedup).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the accumulated edges into an immutable Graph, sorting
// adjacency lists and removing duplicate edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Dedup in place.
	dst := 0
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		b.edges[dst] = e
		dst++
	}
	b.edges = b.edges[:dst]

	g := &Graph{
		n:          b.n,
		outOffsets: make([]int64, b.n+1),
		outTargets: make([]NodeID, dst),
		inOffsets:  make([]int64, b.n+1),
		inSources:  make([]NodeID, dst),
	}
	for _, e := range b.edges {
		g.outOffsets[e[0]+1]++
		g.inOffsets[e[1]+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.outOffsets[i] += g.outOffsets[i-1]
		g.inOffsets[i] += g.inOffsets[i-1]
	}
	outNext := make([]int64, b.n)
	inNext := make([]int64, b.n)
	copy(outNext, g.outOffsets[:b.n])
	copy(inNext, g.inOffsets[:b.n])
	for _, e := range b.edges {
		g.outTargets[outNext[e[0]]] = e[1]
		outNext[e[0]]++
		g.inSources[inNext[e[1]]] = e[0]
		inNext[e[1]]++
	}
	// in-lists come out sorted by source because edges are sorted by source.
	return g
}

// Graph is a frozen directed graph in CSR form. All methods are safe for
// concurrent use.
type Graph struct {
	n          int
	outOffsets []int64
	outTargets []NodeID
	inOffsets  []int64
	inSources  []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of (deduplicated) edges.
func (g *Graph) NumEdges() int { return len(g.outTargets) }

// Out returns u's followees (targets of out edges), sorted ascending. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Out(u NodeID) []NodeID {
	return g.outTargets[g.outOffsets[u]:g.outOffsets[u+1]]
}

// In returns u's followers (sources of in edges), sorted ascending. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) In(u NodeID) []NodeID {
	return g.inSources[g.inOffsets[u]:g.inOffsets[u+1]]
}

// OutDegree returns the number of users u follows.
//
// microlint:noalloc
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outOffsets[u+1] - g.outOffsets[u])
}

// InDegree returns the number of followers of u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inOffsets[u+1] - g.inOffsets[u])
}

// Degree returns the total degree (in + out) of u, the ordering key used by
// the 2-hop cover's pruned landmark labeling (Algorithm 2, line 1).
func (g *Graph) Degree(u NodeID) int {
	return g.OutDegree(u) + g.InDegree(u)
}

// HasEdge reports whether the follow edge u → v exists, by binary search
// over u's sorted followee list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	out := g.Out(u)
	i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
	return i < len(out) && out[i] == v
}

// Stats summarises the structural numbers Table 5 reports per dataset.
type Stats struct {
	Nodes     int
	Edges     int
	AvgDegree float64 // average out-degree
	MaxDegree int     // maximum total degree
}

// Stats computes the Table 5 graph statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.n, Edges: g.NumEdges()}
	if g.n > 0 {
		s.AvgDegree = float64(g.NumEdges()) / float64(g.n)
	}
	for u := 0; u < g.n; u++ {
		if d := g.Degree(NodeID(u)); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}
