package graph

// DistMap is a reusable node → hop-distance scratch map with O(touched)
// reset, shared by the BFS Traversal and the reachability index builders.
// A fresh map costs O(n) once; afterwards every search pays only for the
// nodes it actually visits, which is what makes millions of pruned BFS
// runs during 2-hop construction affordable. Not safe for concurrent use;
// create one per worker goroutine.
//
// microlint:owned — per-worker scratch by contract, reached only through
// the worker's own Traversal or builder slot.
type DistMap struct {
	dist    []int32
	touched []NodeID
}

// NewDistMap returns a DistMap for a graph with n nodes, all unvisited.
func NewDistMap(n int) *DistMap {
	d := make([]int32, n)
	for i := range d {
		d[i] = unreachableDist
	}
	return &DistMap{dist: d}
}

// Dist returns v's recorded distance, or -1 when unvisited.
func (m *DistMap) Dist(v NodeID) int32 { return m.dist[v] }

// Visited reports whether v has been set since the last Reset.
func (m *DistMap) Visited(v NodeID) bool { return m.dist[v] != unreachableDist }

// Set records v's distance, tracking first touches for Reset.
func (m *DistMap) Set(v NodeID, d int32) {
	if m.dist[v] == unreachableDist {
		m.touched = append(m.touched, v)
	}
	m.dist[v] = d
}

// Touched returns the nodes set since the last Reset, in first-touch
// order. The slice aliases internal storage and is invalidated by Reset.
func (m *DistMap) Touched() []NodeID { return m.touched }

// Reset marks every touched node unvisited again in O(touched).
func (m *DistMap) Reset() {
	for _, v := range m.touched {
		m.dist[v] = unreachableDist
	}
	m.touched = m.touched[:0]
}
