package graph

// BFS machinery shared by the reachability baselines and index builders.
// The traversal object owns its scratch buffers so that repeated searches
// (millions, during index construction) do not allocate.

// unreachableDist marks an unvisited node inside a Traversal or DistMap.
const unreachableDist = int32(-1)

// Traversal is a reusable BFS scratch space over one graph. It is not safe
// for concurrent use; create one Traversal per worker goroutine.
//
// microlint:owned — per-worker scratch by contract: every holder either
// constructs its own Traversal or checks one out of a free list that
// hands each instance to at most one goroutine at a time.
type Traversal struct {
	g     *Graph
	marks *DistMap
	queue []NodeID
}

// NewTraversal returns a Traversal bound to g.
func NewTraversal(g *Graph) *Traversal {
	return &Traversal{g: g, marks: NewDistMap(g.NumNodes())}
}

func (t *Traversal) reset() {
	t.marks.Reset()
	t.queue = t.queue[:0]
}

// Forward runs a forward BFS (along follow edges) from src, visiting nodes
// up to maxHops away. visit is called once per reached node (src excluded)
// with its hop distance; returning false stops expansion *from* that node
// but the rest of the frontier still drains.
func (t *Traversal) Forward(src NodeID, maxHops int, visit func(v NodeID, hops int) bool) {
	t.run(src, maxHops, visit, t.g.Out)
}

// Backward runs a reverse BFS (against follow edges) from src: it reaches
// all nodes that can reach src. Used by the 2-hop label construction.
func (t *Traversal) Backward(src NodeID, maxHops int, visit func(v NodeID, hops int) bool) {
	t.run(src, maxHops, visit, t.g.In)
}

func (t *Traversal) run(src NodeID, maxHops int, visit func(NodeID, int) bool, adj func(NodeID) []NodeID) {
	t.reset()
	t.marks.Set(src, 0)
	t.queue = append(t.queue, src)
	head := 0
	for head < len(t.queue) {
		u := t.queue[head]
		head++
		d := t.marks.Dist(u)
		if int(d) >= maxHops {
			continue
		}
		for _, v := range adj(u) {
			if t.marks.Visited(v) {
				continue
			}
			t.marks.Set(v, d+1)
			if visit(v, int(d+1)) {
				t.queue = append(t.queue, v)
			}
		}
	}
}

// Dist returns the hop distance of v recorded by the most recent traversal,
// or -1 if v was not reached.
func (t *Traversal) Dist(v NodeID) int { return int(t.marks.Dist(v)) }

// ShortestDist returns the length of the shortest path from u to v bounded
// by maxHops, or -1 if v is unreachable within the bound.
func (t *Traversal) ShortestDist(u, v NodeID, maxHops int) int {
	if u == v {
		return 0
	}
	found := -1
	t.Forward(u, maxHops, func(w NodeID, hops int) bool {
		if w == v {
			found = hops
			return false
		}
		return found == -1 // stop expanding once found
	})
	return found
}
