package graph

// Strongly connected components (iterative Tarjan) and the condensation
// DAG, the substrate for GRAIL-style online-search pruning (paper §2's
// first category of reachability methods).

// SCC holds a strongly-connected-component decomposition of a graph.
type SCC struct {
	// Comp maps node → component id; components are numbered in reverse
	// topological order (Tarjan's property: a component's id is assigned
	// when it is popped, so every edge in the condensation goes from a
	// higher id to a lower id).
	Comp []int32
	// Count is the number of components.
	Count int
}

// StronglyConnected computes the SCC decomposition of g with an iterative
// Tarjan, safe for deep graphs.
func StronglyConnected(g *Graph) *SCC {
	n := g.NumNodes()
	const undef = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = undef
		comp[i] = undef
	}
	var stack []NodeID
	var next int32
	var nComp int32

	type frame struct {
		v  NodeID
		ei int // next out-edge index to consider
	}
	var call []frame

	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		call = append(call[:0], frame{v: NodeID(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			out := g.Out(f.v)
			advanced := false
			for f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] == undef {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v finished.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				if p := &call[len(call)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return &SCC{Comp: comp, Count: int(nComp)}
}

// Condense builds the condensation DAG: one node per component, edges
// between distinct components, deduplicated. Node ids are component ids.
func (s *SCC) Condense(g *Graph) *Graph {
	b := NewBuilder(s.Count)
	for u := 0; u < g.NumNodes(); u++ {
		cu := s.Comp[u]
		for _, v := range g.Out(NodeID(u)) {
			if cv := s.Comp[v]; cv != cu {
				b.AddEdge(cu, cv)
			}
		}
	}
	return b.Build()
}
