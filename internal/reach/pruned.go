package reach

import (
	"math/rand"
	"time"

	"microlink/internal/graph"
)

// PrunedSearch is the online-search substrate of the paper's §2 taxonomy,
// in the style of GRAIL [19]: no distance index at all, only lightweight
// interval labels on the SCC condensation that refute unreachable pairs
// without traversal. Reachable (or maybe-reachable) pairs fall back to the
// naive double BFS, so queries cost up to O(|E|) — the behaviour that
// makes the paper dismiss online search for real-time linking, reproduced
// here for completeness and for the Table 5 comparison benches.
//
// Labels: k independent randomized post-order DFS passes over the
// condensation DAG assign each component an interval [lowest post-order in
// its subtree, own post-order]. If u reaches v then u's interval contains
// v's in every pass; the contrapositive refutes in O(k).
type PrunedSearch struct {
	g      *graph.Graph
	h      int
	scc    *graph.SCC
	labels [][2]int32 // k intervals per component, flattened
	k      int
	naive  *Naive
	stats  BuildStats
}

// PrunedOptions tunes the online-search oracle.
type PrunedOptions struct {
	// MaxHops is the hop bound H; ≤ 0 selects DefaultMaxHops.
	MaxHops int
	// Passes is the number of random interval labelings k (default 2).
	Passes int
	// Seed drives the random traversal orders.
	Seed int64
}

// NewPrunedSearch builds the interval labels over g.
func NewPrunedSearch(g *graph.Graph, opts PrunedOptions) *PrunedSearch {
	if opts.MaxHops <= 0 {
		opts.MaxHops = DefaultMaxHops
	}
	if opts.Passes <= 0 {
		opts.Passes = 2
	}
	start := time.Now()
	scc := graph.StronglyConnected(g)
	dag := scc.Condense(g)
	ps := &PrunedSearch{
		g:      g,
		h:      opts.MaxHops,
		scc:    scc,
		k:      opts.Passes,
		labels: make([][2]int32, scc.Count*opts.Passes),
		naive:  NewNaive(g, opts.MaxHops),
	}
	r := rand.New(rand.NewSource(opts.Seed + 1))
	for pass := 0; pass < opts.Passes; pass++ {
		ps.labelPass(dag, pass, r)
	}
	ps.stats = BuildStats{
		BuildTime: time.Since(start),
		Entries:   int64(len(ps.labels)),
	}
	return ps
}

// labelPass runs one randomized post-order DFS over the DAG, assigning
// [min-post-in-subtree, post] intervals.
func (ps *PrunedSearch) labelPass(dag *graph.Graph, pass int, r *rand.Rand) {
	n := dag.NumNodes()
	visited := make([]bool, n)
	var post int32

	order := r.Perm(n)
	type frame struct {
		v   graph.NodeID
		ei  int
		adj []graph.NodeID
	}
	var stack []frame
	shuffled := func(s []graph.NodeID) []graph.NodeID {
		out := append([]graph.NodeID(nil), s...)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	set := func(c graph.NodeID, lo, hi int32) {
		ps.labels[int(c)*ps.k+pass] = [2]int32{lo, hi}
	}
	get := func(c graph.NodeID) [2]int32 { return ps.labels[int(c)*ps.k+pass] }

	for _, rootIdx := range order {
		root := graph.NodeID(rootIdx)
		if visited[root] {
			continue
		}
		visited[root] = true
		stack = append(stack[:0], frame{v: root, adj: shuffled(dag.Out(root))})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(f.adj) {
				w := f.adj[f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w, adj: shuffled(dag.Out(w))})
				}
				continue
			}
			// Post-visit: interval = [min over children (already final),
			// own post].
			lo := post
			for _, w := range dag.Out(f.v) {
				if cl := get(w); cl[0] < lo {
					lo = cl[0]
				}
			}
			set(f.v, lo, post)
			post++
			stack = stack[:len(stack)-1]
		}
	}
}

// MaybeReachable applies the interval filter: false means u certainly
// cannot reach v; true means a traversal is needed.
func (ps *PrunedSearch) MaybeReachable(u, v graph.NodeID) bool {
	cu, cv := ps.scc.Comp[u], ps.scc.Comp[v]
	if cu == cv {
		return true
	}
	for pass := 0; pass < ps.k; pass++ {
		lu := ps.labels[int(cu)*ps.k+pass]
		lv := ps.labels[int(cv)*ps.k+pass]
		if lv[0] < lu[0] || lv[1] > lu[1] {
			return false
		}
	}
	return true
}

// Query implements Index: interval refutation first, bounded BFS otherwise.
func (ps *PrunedSearch) Query(u, v graph.NodeID) (Result, bool) {
	if u == v {
		return Result{Dist: 0}, true
	}
	if !ps.MaybeReachable(u, v) {
		return Result{}, false
	}
	return ps.naive.Query(u, v)
}

// R implements Index.
func (ps *PrunedSearch) R(u, v graph.NodeID) float64 {
	res, ok := ps.Query(u, v)
	return score(res, ok, ps.g.OutDegree(u))
}

// SizeBytes implements Index: the labels are the entire index.
func (ps *PrunedSearch) SizeBytes() int64 {
	return int64(len(ps.labels))*8 + int64(len(ps.scc.Comp))*4
}

// BuildStats implements Index.
func (ps *PrunedSearch) BuildStats() BuildStats { return ps.stats }
