//go:build !race

package reach

// raceEnabled reports whether the race detector is compiled in. The
// heap-measurement and zero-allocation tests skip under -race: the
// detector's shadow memory and allocation instrumentation invalidate both
// kinds of measurement without indicating a real regression.
const raceEnabled = false
