package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microlink/internal/graph"
)

// Property tests for the paper's two theorems, checked against brute-force
// path enumeration on small random graphs.

// bruteFollowees computes F_uv exactly: u's followees t with
// d(u,t)=1 ∧ d(t,v) = d(u,v) − 1 (which, per Theorem 1, is equivalent to
// "t participates in a shortest u→v path").
func bruteFollowees(g *graph.Graph, tr *graph.Traversal, u, v graph.NodeID, h int) (int, []graph.NodeID) {
	duv := tr.ShortestDist(u, v, h)
	if duv <= 0 {
		return duv, nil
	}
	var fol []graph.NodeID
	for _, t := range g.Out(u) {
		if t == v && duv == 1 {
			fol = append(fol, t)
			continue
		}
		if tr.ShortestDist(t, v, h) == duv-1 {
			fol = append(fol, t)
		}
	}
	return duv, fol
}

// enumerateShortestFirstHops finds, by explicit BFS path counting, the set
// of first hops of all shortest u→v paths.
func enumerateShortestFirstHops(g *graph.Graph, tr *graph.Traversal, u, v graph.NodeID, h int) []graph.NodeID {
	duv := tr.ShortestDist(u, v, h)
	if duv <= 0 {
		return nil
	}
	var first []graph.NodeID
	for _, t := range g.Out(u) {
		// t starts a shortest path iff 1 + d(t,v) == d(u,v).
		var dtv int
		if t == v {
			dtv = 0
		} else {
			dtv = tr.ShortestDist(t, v, h)
		}
		if dtv >= 0 && 1+dtv == duv {
			first = append(first, t)
		}
	}
	return first
}

// TestTheorem1 — "there is a len-hop shortest path from u to v through u's
// followee t iff d(t,v) = len−1": the first-hop enumeration and the
// distance criterion agree on every pair.
func TestTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		g := randomGraph(r, n, r.Intn(4*n))
		tr := graph.NewTraversal(g)
		tr2 := graph.NewTraversal(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				_, byDist := bruteFollowees(g, tr, graph.NodeID(u), graph.NodeID(v), n+1)
				byEnum := enumerateShortestFirstHops(g, tr2, graph.NodeID(u), graph.NodeID(v), n+1)
				if !sameSet(byDist, byEnum) {
					t.Logf("seed %d (%d,%d): dist-criterion %v vs enumeration %v", seed, u, v, byDist, byEnum)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2 — Eq. 5's aggregation rule: for hubs w on a shortest u→v
// path, F_uw ⊆ F_uv. Verified via the exact closure.
func TestTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := randomGraph(r, n, r.Intn(4*n))
		tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: n + 1, KeepFollowees: true})
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				ruv, ok := tc.Query(graph.NodeID(u), graph.NodeID(v))
				if !ok || ruv.Dist == 0 {
					continue
				}
				for w := 0; w < n; w++ {
					if w == u || w == v {
						continue
					}
					ruw, ok1 := tc.Query(graph.NodeID(u), graph.NodeID(w))
					rwv, ok2 := tc.Query(graph.NodeID(w), graph.NodeID(v))
					if !ok1 || !ok2 {
						continue
					}
					if ruw.Dist+rwv.Dist != ruv.Dist {
						continue // w not on a shortest path
					}
					// Theorem 2: every followee on a shortest u→w prefix
					// participates in a shortest u→v path.
					if !subset(ruw.Followees, ruv.Followees) {
						t.Logf("seed %d: F(%d,%d)=%v ⊄ F(%d,%d)=%v via hub %d",
							seed, u, w, ruw.Followees, u, v, ruv.Followees, w)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoHopFolloweeExactnessRate quantifies the documented 2-hop
// approximation: distances are always exact; followee sets must be exact
// for the overwhelming majority of reachable pairs and never supersets.
func TestTwoHopFolloweeExactnessRate(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	total, exact := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(5*n))
		naive := NewNaive(g, 4)
		th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				nr, ok := naive.Query(graph.NodeID(u), graph.NodeID(v))
				if !ok {
					continue
				}
				hr, ok2 := th.Query(graph.NodeID(u), graph.NodeID(v))
				if !ok2 || hr.Dist != nr.Dist {
					t.Fatalf("distance must be exact: (%d,%d)", u, v)
				}
				total++
				if sameSet(nr.Followees, hr.Followees) {
					exact++
				} else if !subset(hr.Followees, nr.Followees) {
					t.Fatalf("(%d,%d): 2-hop set %v not a subset of exact %v", u, v, hr.Followees, nr.Followees)
				}
			}
		}
	}
	rate := float64(exact) / float64(total)
	t.Logf("2-hop followee sets exact on %.2f%% of %d reachable pairs", 100*rate, total)
	if rate < 0.95 {
		t.Errorf("exactness rate %.4f below 95%%", rate)
	}
}
