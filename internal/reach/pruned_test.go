package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microlink/internal/graph"
)

func TestPrunedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 60, 240)
	naive := NewNaive(g, 4)
	ps := NewPrunedSearch(g, PrunedOptions{MaxHops: 4, Seed: 1})
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			uid, vid := graph.NodeID(u), graph.NodeID(v)
			a, aok := naive.Query(uid, vid)
			b, bok := ps.Query(uid, vid)
			if aok != bok || (aok && a.Dist != b.Dist) {
				t.Fatalf("(%d,%d): naive %v/%v pruned %v/%v", u, v, a, aok, b, bok)
			}
		}
	}
}

// Property: the interval filter is sound — it never refutes a pair that is
// actually reachable (at any distance).
func TestQuickPrunedSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(18)
		g := randomGraph(r, n, r.Intn(3*n))
		ps := NewPrunedSearch(g, PrunedOptions{MaxHops: n + 1, Seed: seed})
		// Unbounded reachability by BFS with a huge bound.
		naive := NewNaive(g, n+1)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				uid, vid := graph.NodeID(u), graph.NodeID(v)
				_, reachable := naive.Query(uid, vid)
				if reachable && !ps.MaybeReachable(uid, vid) {
					t.Logf("seed %d: filter refuted reachable pair (%d,%d)", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPrunedFilterActuallyPrunes(t *testing.T) {
	// Two disconnected cliques: every cross pair must be refuted without
	// traversal.
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				b.AddEdge(graph.NodeID(10+i), graph.NodeID(10+j))
			}
		}
	}
	ps := NewPrunedSearch(b.Build(), PrunedOptions{MaxHops: 4, Seed: 3})
	refuted := 0
	for u := 0; u < 10; u++ {
		for v := 10; v < 20; v++ {
			if !ps.MaybeReachable(graph.NodeID(u), graph.NodeID(v)) {
				refuted++
			}
		}
	}
	if refuted != 100 {
		t.Fatalf("refuted %d of 100 cross pairs", refuted)
	}
}

func TestPrunedIndexTiny(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 200, 1500)
	ps := NewPrunedSearch(g, PrunedOptions{MaxHops: 4})
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	if ps.SizeBytes() >= tc.SizeBytes()/10 {
		t.Fatalf("pruned-search index (%d B) should be tiny next to the closure (%d B)",
			ps.SizeBytes(), tc.SizeBytes())
	}
	if ps.BuildStats().BuildTime <= 0 {
		t.Fatal("missing build stats")
	}
}

func TestPrunedHopBound(t *testing.T) {
	// Path 0→1→2→3 with H=2: pair (0,3) is reachable in general (filter
	// may pass) but the bounded BFS must refuse it.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	ps := NewPrunedSearch(b.Build(), PrunedOptions{MaxHops: 2})
	if _, ok := ps.Query(0, 3); ok {
		t.Fatal("3-hop pair visible at H=2")
	}
	if res, ok := ps.Query(0, 2); !ok || res.Dist != 2 {
		t.Fatalf("(0,2): %+v %v", res, ok)
	}
}
