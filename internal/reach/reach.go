// Package reach implements weighted reachability over the followee–follower
// network (paper §4.1.1, Eq. 4):
//
//	R(u,v) = (1/d_uv) · |F_uv| / |F_u|
//
// where d_uv is the shortest-path distance from u to v and F_uv is the set
// of u's followees that participate in at least one shortest path from u to
// v. Three interchangeable substrates are provided:
//
//   - Naive: a per-query double BFS with no index — the baseline the paper's
//     Fig. 5(b) compares against.
//   - TransitiveClosure: the extended transitive-closure matrix built by the
//     paper's incremental Algorithm 1 in O(H·|V|²) instead of O(|V|⁴).
//   - TwoHop: the extended 2-hop cover of Algorithm 2 (pruned landmark
//     labeling with per-label followee sets), trading query time for a much
//     smaller index (paper Table 5).
//
// One deliberate deviation from the literal formula: for a direct follow
// edge (d_uv = 1) Eq. 4 would yield 1/|F_u|, but the paper's Algorithm 1
// explicitly initialises direct edges to R = 1 (line 3). We follow the
// algorithm in all substrates so they agree with each other: following
// someone directly is maximal interest.
package reach

import (
	"time"

	"microlink/internal/graph"
)

// DefaultMaxHops is the default hop bound H. The paper cites the Twitter
// small-world result (average path 4.12 hops, [16]) to argue H stays small.
const DefaultMaxHops = 4

// Result carries the answer to a weighted reachability query
// Query(u, v): the shortest-path distance and the set of u's followees
// participating in at least one shortest path from u to v.
type Result struct {
	Dist      int            // shortest-path distance in hops
	Followees []graph.NodeID // F_uv, unspecified order
}

// Index answers weighted reachability queries. Implementations are safe for
// concurrent queries after construction.
type Index interface {
	// Query returns the shortest-path distance from u to v within the hop
	// bound and u's followees on shortest paths. ok is false when v is not
	// reachable from u within H hops.
	Query(u, v graph.NodeID) (Result, bool)
	// R returns the weighted reachability score in [0, 1].
	R(u, v graph.NodeID) float64
	// SizeBytes estimates the memory held by the index (Table 5's
	// "index size" column).
	SizeBytes() int64
	// BuildStats reports construction-time metrics.
	BuildStats() BuildStats
}

// BuildStats summarises index construction, feeding Table 5 and Fig. 5(b).
type BuildStats struct {
	BuildTime time.Duration // wall-clock construction time
	Entries   int64         // closure entries or 2-hop labels stored
}

// score converts a query result into R(u,v) per Eq. 4 with the Algorithm 1
// convention for d ≤ 1. outDeg is |F_u|.
func score(res Result, ok bool, outDeg int) float64 {
	if !ok {
		return 0
	}
	switch {
	case res.Dist == 0:
		// u's interest in herself: maximal by convention (the paper leaves
		// this case undefined; a user trivially "reaches" herself).
		return 1
	case res.Dist == 1:
		return 1
	default:
		if outDeg == 0 {
			return 0
		}
		return 1 / float64(res.Dist) * float64(len(res.Followees)) / float64(outDeg)
	}
}
