package reach

import (
	"fmt"

	"microlink/internal/graph"
	"microlink/internal/obs"
)

// Instrumented wraps an Index, counting queries and recording their
// latency into a registry under
//
//	microlink_reach_queries_total{kind=…}
//	microlink_reach_query_seconds{kind=…}
//
// where kind names the substrate (closure, twohop, naive, dynamic). The
// wrapper adds two clock reads per query on top of the atomic updates;
// callers that need the raw substrate (serialisation, incremental
// maintenance) can recover it via Unwrap.
type Instrumented struct {
	inner   Index
	queries *obs.Counter
	seconds *obs.Histogram
}

// Instrument wraps idx with query metrics registered in reg.
func Instrument(idx Index, reg *obs.Registry) *Instrumented {
	kind := KindName(idx)
	return &Instrumented{
		inner: idx,
		queries: reg.CounterVec("microlink_reach_queries_total",
			"Weighted reachability queries, by index substrate.", "kind").With(kind),
		seconds: reg.HistogramVec("microlink_reach_query_seconds",
			"Weighted reachability query latency, by index substrate.", nil, "kind").With(kind),
	}
}

// KindName names an index substrate for metric labels.
func KindName(idx Index) string {
	switch idx.(type) {
	case *TransitiveClosure:
		return "closure"
	case *TwoHop:
		return "twohop"
	case *Naive:
		return "naive"
	case *DynamicClosure:
		return "dynamic"
	case *Streaming:
		return "streaming"
	case *Instrumented:
		return KindName(idx.(*Instrumented).inner)
	default:
		return fmt.Sprintf("%T", idx)
	}
}

// Unwrap returns the underlying index.
func (x *Instrumented) Unwrap() Index { return x.inner }

// PublishTwoHopBuild exposes a 2-hop cover's construction profile as
// gauges, so operators can see how the index on a running linker was built
// (parallelism, batch merge overhead, label volume, memory):
//
//	microlink_reach_twohop_build_workers
//	microlink_reach_twohop_build_batch_size
//	microlink_reach_twohop_build_bfs_seconds
//	microlink_reach_twohop_build_merge_seconds
//	microlink_reach_twohop_build_barrier_wait_seconds
//	microlink_reach_twohop_build_freeze_seconds
//	microlink_reach_twohop_labels
//	microlink_reach_twohop_fol_pool_entries
//	microlink_reach_twohop_bytes
//
// merge_seconds and barrier_wait_seconds used to be summed into a single
// merge_wait_seconds gauge, which hid where the time went; they are
// published separately so a regression toward a serialized merge shows up
// as barrier growth, not as undifferentiated "merge wait".
func PublishTwoHopBuild(th *TwoHop, reg *obs.Registry) {
	info := th.BuildInfo()
	reg.Gauge("microlink_reach_twohop_build_workers",
		"Worker goroutines used by the last 2-hop cover build (0 = loaded from disk).").Set(float64(info.Workers))
	reg.Gauge("microlink_reach_twohop_build_batch_size",
		"Hub batch size of the last 2-hop cover build.").Set(float64(info.BatchSize))
	reg.Gauge("microlink_reach_twohop_build_bfs_seconds",
		"Pruned hub-BFS phase wall clock of the last 2-hop build.").Set(info.BFSTime.Seconds())
	reg.Gauge("microlink_reach_twohop_build_merge_seconds",
		"Partitioned delta-merge phase wall clock of the last 2-hop build.").Set(info.MergeTime.Seconds())
	reg.Gauge("microlink_reach_twohop_build_barrier_wait_seconds",
		"Mean per-worker idle at the batch-epoch fences of the last 2-hop build.").Set(info.BarrierWait.Seconds())
	reg.Gauge("microlink_reach_twohop_build_freeze_seconds",
		"Arena freeze wall clock of the last 2-hop build.").Set(info.FreezeTime.Seconds())
	out, in := th.LabelCounts()
	reg.Gauge("microlink_reach_twohop_labels",
		"Total 2-hop labels (out + in) in the frozen cover.").Set(float64(out + in))
	reg.Gauge("microlink_reach_twohop_fol_pool_entries",
		"Node ids in the interned followee pool of the frozen cover.").Set(float64(info.FolPool))
	reg.Gauge("microlink_reach_twohop_bytes",
		"Measured bytes of the frozen 2-hop cover arenas.").Set(float64(th.SizeBytes()))
}

// Query implements Index.
func (x *Instrumented) Query(u, v graph.NodeID) (Result, bool) {
	sp := obs.StartSpan(x.seconds)
	res, ok := x.inner.Query(u, v)
	sp.Stop()
	x.queries.Inc()
	return res, ok
}

// R implements Index.
func (x *Instrumented) R(u, v graph.NodeID) float64 {
	sp := obs.StartSpan(x.seconds)
	r := x.inner.R(u, v)
	sp.Stop()
	x.queries.Inc()
	return r
}

// SizeBytes implements Index, reporting the wrapped index's size.
func (x *Instrumented) SizeBytes() int64 { return x.inner.SizeBytes() }

// BuildStats implements Index.
func (x *Instrumented) BuildStats() BuildStats { return x.inner.BuildStats() }
