package reach

import (
	"runtime"
	"sync"
	"time"

	"microlink/internal/graph"
)

// TransitiveClosure is the extended transitive-closure substrate of §4.1.1:
// the full weighted reachability "matrix", stored sparsely per source node,
// built by the paper's incremental Algorithm 1. Construction scans the
// network H times instead of running a BFS per node pair, giving
// O(H·|V|²) work versus the naive O(|V|⁴).
//
// Rows additionally record, for every reachable target, the followee count
// |F_uv| and distance so that Query can report the same information as the
// other substrates.
type TransitiveClosure struct {
	g         *graph.Graph
	h         int
	rows      []ctRow
	maps      []map[graph.NodeID]int32 // v → index into rows[u].entries
	followees *ctFollowees
	stats     BuildStats
}

type ctEntry struct {
	v    graph.NodeID
	dist uint8
	nFol int32   // |F_uv|: number of u's followees on shortest u→v paths
	w    float32 // R(u,v)
}

// ctRow holds the reach set of one source node, entries appended in
// non-decreasing distance order, so the frontier discovered in the previous
// iteration is always a suffix.
//
// microlint:owned — rows are partitioned by source node: during the
// build each worker mutates only the rows in its [lo, hi) range, and
// after the final wg.Wait the rows are immutable.
type ctRow struct {
	entries       []ctEntry
	frontierStart int32 // first entry with dist == previous iteration's len
}

// ClosureOptions tunes Algorithm 1.
type ClosureOptions struct {
	// MaxHops is the hop bound H; ≤ 0 selects DefaultMaxHops.
	MaxHops int
	// Workers bounds construction parallelism; ≤ 0 selects GOMAXPROCS.
	// The per-iteration work parallelises across source nodes because each
	// node appends only to its own row and reads frozen snapshots of the
	// previous frontier.
	Workers int
	// KeepFollowees records the identities (not just the count) of the
	// followees on shortest paths, needed when callers want Result.Followees
	// populated. It grows the index; the linker itself only needs R(u,v),
	// so it defaults to off.
	KeepFollowees bool
}

// followeeSets, parallel to rows, populated only with KeepFollowees.
//
// microlint:owned — the sets slice is allocated before the build forks
// and its per-source maps are mutated only by the worker owning that
// source range; immutable once the build returns.
type ctFollowees struct {
	sets []map[graph.NodeID][]graph.NodeID
}

// BuildTransitiveClosure runs Algorithm 1 over g.
func BuildTransitiveClosure(g *graph.Graph, opts ClosureOptions) *TransitiveClosure {
	h := opts.MaxHops
	if h <= 0 {
		h = DefaultMaxHops
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The closure is assembled from build-local state and constructed
	// only after every worker has joined: nothing ever mutates a
	// published *TransitiveClosure.
	start := time.Now()
	n := g.NumNodes()
	rows := make([]ctRow, n)
	maps := make([]map[graph.NodeID]int32, n)
	fol := &ctFollowees{}
	if opts.KeepFollowees {
		fol.sets = make([]map[graph.NodeID][]graph.NodeID, n)
	}

	// Iteration 1 (Algorithm 1 lines 2–4): direct edges get R = 1.
	for u := 0; u < n; u++ {
		out := g.Out(graph.NodeID(u))
		row := &rows[u]
		row.entries = make([]ctEntry, 0, len(out))
		m := make(map[graph.NodeID]int32, len(out))
		for _, v := range out {
			m[v] = int32(len(row.entries))
			row.entries = append(row.entries, ctEntry{v: v, dist: 1, nFol: 1, w: 1})
		}
		maps[u] = m
		if opts.KeepFollowees {
			fs := make(map[graph.NodeID][]graph.NodeID, len(out))
			for _, v := range out {
				fs[v] = []graph.NodeID{v}
			}
			fol.sets[u] = fs
		}
	}

	// Iterations len = 2..H (lines 5–18). Per iteration we snapshot every
	// row's frontier — the entries discovered at distance len−1 — and then,
	// in parallel over source nodes, count for each new target v how many
	// followees t of u have d(t,v) = len−1 (Theorem 1) and insert
	// R(u,v) = (1/len)·(n_v/|T|).
	type frontier struct {
		entries []ctEntry // immutable snapshot slice
	}
	fronts := make([]frontier, n)
	for length := 2; length <= h; length++ {
		anyFrontier := false
		for u := 0; u < n; u++ {
			row := &rows[u]
			fronts[u] = frontier{entries: row.entries[row.frontierStart:len(row.entries):len(row.entries)]}
			if len(fronts[u].entries) > 0 {
				anyFrontier = true
			}
		}
		if !anyFrontier {
			break // no node gained new reach last round; fixpoint
		}
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, n)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				cnt := make(map[graph.NodeID]int32)
				var folScratch map[graph.NodeID][]graph.NodeID
				if opts.KeepFollowees {
					folScratch = make(map[graph.NodeID][]graph.NodeID)
				}
				for u := lo; u < hi; u++ {
					uid := graph.NodeID(u)
					followees := g.Out(uid)
					if len(followees) == 0 {
						continue
					}
					clear(cnt)
					if opts.KeepFollowees {
						clear(folScratch)
					}
					for _, t := range followees {
						for i := range fronts[t].entries {
							e := &fronts[t].entries[i]
							cnt[e.v]++
							if opts.KeepFollowees {
								folScratch[e.v] = append(folScratch[e.v], t)
							}
						}
					}
					row := &rows[u]
					newStart := int32(len(row.entries))
					m := maps[u]
					for v, c := range cnt {
						if v == uid {
							continue
						}
						if _, exists := m[v]; exists {
							continue // a shorter path already known (line 13)
						}
						m[v] = int32(len(row.entries))
						// Entry order inside a row is internal: every read goes
						// through the m[v] index, and R/NFol per (u,v) pair are
						// order-independent sums. Sorting here would slow the
						// hottest loop of the O(n·d) build for no observable gain.
						//nolint:microlint/detercheck -- row order is never observable; lookups go through m[v]
						row.entries = append(row.entries, ctEntry{
							v:    v,
							dist: uint8(length),
							nFol: c,
							w:    float32(1) / float32(length) * float32(c) / float32(len(followees)),
						})
						if opts.KeepFollowees {
							fol.sets[u][v] = append([]graph.NodeID(nil), folScratch[v]...)
						}
					}
					row.frontierStart = newStart
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	var entries int64
	for u := range rows {
		entries += int64(len(rows[u].entries))
	}
	return &TransitiveClosure{
		g:         g,
		h:         h,
		rows:      rows,
		maps:      maps,
		followees: fol,
		stats:     BuildStats{BuildTime: time.Since(start), Entries: entries},
	}
}

// followees is nil-safe auxiliary storage.
func (tc *TransitiveClosure) lookupFollowees(u, v graph.NodeID) []graph.NodeID {
	if tc.followees == nil || tc.followees.sets == nil {
		return nil
	}
	return tc.followees.sets[u][v]
}

// Query implements Index. Followee identities are populated only when the
// index was built with KeepFollowees; the count is always correct via R.
func (tc *TransitiveClosure) Query(u, v graph.NodeID) (Result, bool) {
	if u == v {
		return Result{Dist: 0}, true
	}
	idx, ok := tc.maps[u][v]
	if !ok {
		return Result{}, false
	}
	e := tc.rows[u].entries[idx]
	res := Result{Dist: int(e.dist), Followees: tc.lookupFollowees(u, v)}
	if res.Followees == nil && e.dist == 1 {
		res.Followees = []graph.NodeID{v}
	}
	return res, true
}

// R implements Index with a single map lookup — the constant-time query the
// transitive-closure approach is chosen for (paper §2).
func (tc *TransitiveClosure) R(u, v graph.NodeID) float64 {
	if u == v {
		return 1
	}
	idx, ok := tc.maps[u][v]
	if !ok {
		return 0
	}
	return float64(tc.rows[u].entries[idx].w)
}

// NumFollowees returns |F_uv| without materialising the set.
func (tc *TransitiveClosure) NumFollowees(u, v graph.NodeID) int {
	idx, ok := tc.maps[u][v]
	if !ok {
		return 0
	}
	return int(tc.rows[u].entries[idx].nFol)
}

// SizeBytes implements Index.
func (tc *TransitiveClosure) SizeBytes() int64 {
	var b int64
	for u := range tc.rows {
		b += int64(len(tc.rows[u].entries)) * 12 // v(4) + dist(1,padded) + nFol(4) + w(4) ≈ 12B packed
		b += int64(len(tc.maps[u])) * 16         // map entry overhead approximation
	}
	if tc.followees != nil && tc.followees.sets != nil {
		for _, m := range tc.followees.sets {
			for _, s := range m {
				b += int64(len(s))*4 + 16
			}
		}
	}
	return b
}

// BuildStats implements Index.
func (tc *TransitiveClosure) BuildStats() BuildStats { return tc.stats }

// Reachable returns the number of nodes reachable from u within H hops.
func (tc *TransitiveClosure) Reachable(u graph.NodeID) int { return len(tc.rows[u].entries) }

// MaxHops returns the hop bound H the closure was built with.
func (tc *TransitiveClosure) MaxHops() int { return tc.h }
