package reach

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"microlink/internal/graph"
)

func roundTripGraph() *graph.Graph {
	r := rand.New(rand.NewSource(21))
	return randomGraph(r, 120, 900)
}

func TestClosureRoundTrip(t *testing.T) {
	g := roundTripGraph()
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransitiveClosure(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			a := tc.R(graph.NodeID(u), graph.NodeID(v))
			b := got.R(graph.NodeID(u), graph.NodeID(v))
			if a != b {
				t.Fatalf("R(%d,%d): %f != %f", u, v, a, b)
			}
			ra, oka := tc.Query(graph.NodeID(u), graph.NodeID(v))
			rb, okb := got.Query(graph.NodeID(u), graph.NodeID(v))
			if oka != okb || (oka && ra.Dist != rb.Dist) {
				t.Fatalf("Query(%d,%d) differs", u, v)
			}
		}
	}
	if got.BuildStats().Entries != tc.BuildStats().Entries {
		t.Fatal("entry counts differ")
	}
}

func TestTwoHopRoundTrip(t *testing.T) {
	g := roundTripGraph()
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := th.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTwoHop(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			ra, oka := th.Query(graph.NodeID(u), graph.NodeID(v))
			rb, okb := got.Query(graph.NodeID(u), graph.NodeID(v))
			if oka != okb {
				t.Fatalf("Query(%d,%d): ok %v != %v", u, v, oka, okb)
			}
			if !oka {
				continue
			}
			if ra.Dist != rb.Dist || !sameSet(ra.Followees, rb.Followees) {
				t.Fatalf("Query(%d,%d): %+v != %+v", u, v, ra, rb)
			}
		}
	}
}

func TestLoadAgainstWrongGraph(t *testing.T) {
	g := roundTripGraph()
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := randomGraph(rand.New(rand.NewSource(99)), 120, 900)
	if _, err := ReadTransitiveClosure(&buf, other); !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("err = %v, want graph mismatch", err)
	}
}

func TestLoadWrongKind(t *testing.T) {
	g := roundTripGraph()
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := th.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTransitiveClosure(&buf, g); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want format error", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	g := roundTripGraph()
	cases := [][]byte{
		nil,
		[]byte("garbage"),
		[]byte("MLRI"),
		[]byte("MLRI\x01\x00\x01\x04"),
	}
	for i, c := range cases {
		if _, err := ReadTransitiveClosure(bytes.NewReader(c), g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadCorruptedPayload(t *testing.T) {
	g := roundTripGraph()
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload.
	data[len(data)/2] ^= 0xFF
	if _, err := ReadTransitiveClosure(bytes.NewReader(data), g); err == nil {
		t.Fatal("corrupted payload must not load")
	}
}

func TestLoadTruncated(t *testing.T) {
	g := roundTripGraph()
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	var buf bytes.Buffer
	if _, err := th.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTwoHop(bytes.NewReader(data), g); err == nil {
		t.Fatal("truncated file must not load")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g := roundTripGraph()
	if Fingerprint(g) != Fingerprint(g) {
		t.Fatal("fingerprint not deterministic")
	}
	other := randomGraph(rand.New(rand.NewSource(22)), 120, 900)
	if Fingerprint(g) == Fingerprint(other) {
		t.Fatal("fingerprint collision between different graphs")
	}
}
