package reach

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"microlink/internal/graph"
)

// Tests for the partitioned barrier-free merge: the rewritten builder must
// reproduce, byte for byte, what the PR 5 barrier build produced — same
// per-node label lists, same frozen arenas, same interned pool layout —
// for every worker count and batch size. The reference below re-creates
// the PR 5 pipeline verbatim (serial rank-order delta merge, fully serial
// freeze with a map[string]-keyed interner) on top of the unchanged BFS,
// so any behavioural drift in the partitioned merge or the two-stage
// freeze shows up as an arena diff, not just a serialization diff.

// buildTwoHopBarrierReference is the PR 5 build: same pruned hub BFS
// (runHub is shared), but deltas merged by a single goroutine in batch
// order and the arenas frozen by the old fully serial path.
func buildTwoHopBarrierReference(g *graph.Graph, h, batchSize int) *TwoHop {
	w := newThWork(g, h, false)
	n := len(w.order)
	deltas := make([]thDelta, batchSize)
	for i := range deltas {
		deltas[i].init(w.nparts)
	}
	b := newThBuilder(w)
	for lo := 0; lo < n; lo += batchSize {
		m := min(batchSize, n-lo)
		ds := deltas[:m]
		for i := range ds {
			ds[i].reset()
			b.runHub(w.order[lo+i], int32(lo+i), &ds[i])
		}
		// The PR 5 barrier merge: one goroutine, deltas in rank order.
		// Iterating a delta's partition buckets in partition order visits
		// each node's (single) entry exactly once, so per-node append
		// order matches the old flat-delta merge.
		for i := range ds {
			for p := 0; p < w.nparts; p++ {
				r := &ds[i].out[p]
				for j, s := range r.nodes {
					w.out[s] = append(w.out[s], r.labs[j])
				}
				r = &ds[i].in[p]
				for j, t := range r.nodes {
					w.in[t] = append(w.in[t], r.labs[j])
				}
			}
		}
	}
	return referenceFreeze(w)
}

// referenceFreeze is the PR 5 serial freeze, kept verbatim as the oracle
// for arena layout: append-built label arrays, one pass out then in with
// nodes ascending, and a content-keyed map interner.
func referenceFreeze(w *thWork) *TwoHop {
	n := w.g.NumNodes()
	th := &TwoHop{
		g:      w.g,
		h:      w.h,
		rank:   w.rank,
		order:  w.order,
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
	}
	intern := make(map[string]int32)
	var key []byte
	addSet := func(fol []graph.NodeID) (int32, uint16) {
		if len(fol) == 0 {
			return 0, 0
		}
		if len(fol) > maxFolLen {
			fol = fol[:maxFolLen]
		}
		sortNodeIDs(fol)
		if len(fol) <= maxInternedFol {
			key = key[:0]
			for _, v := range fol {
				key = binary.LittleEndian.AppendUint32(key, uint32(v))
			}
			if off, ok := intern[string(key)]; ok {
				return off, uint16(len(fol))
			}
			off := int32(len(th.folPool))
			th.folPool = append(th.folPool, fol...)
			intern[string(key)] = off
			return off, uint16(len(fol))
		}
		off := int32(len(th.folPool))
		th.folPool = append(th.folPool, fol...)
		return off, uint16(len(fol))
	}
	freezeDir := func(src [][]thLabel, off []int32, dst []thLabelFlat) []thLabelFlat {
		for u := 0; u < n; u++ {
			off[u] = int32(len(dst))
			labs := src[u]
			for i := range labs {
				l := &labs[i]
				folOff, folLen := addSet(l.fol)
				dst = append(dst, thLabelFlat{hub: l.hub, folOff: folOff, folLen: folLen, dist: l.dist})
			}
		}
		off[n] = int32(len(dst))
		return dst
	}
	th.outLab = freezeDir(w.out, th.outOff, th.outLab)
	th.inLab = freezeDir(w.in, th.inOff, th.inLab)
	return th
}

// requireSameArenas asserts every frozen arena of got equals want —
// stronger than serialize() equality, which does not cover pool offsets.
func requireSameArenas(t *testing.T, want, got *TwoHop) {
	t.Helper()
	if !slicesEq(want.outOff, got.outOff) || !slicesEq(want.inOff, got.inOff) {
		t.Fatalf("offset arrays differ")
	}
	if !slicesEq(want.outLab, got.outLab) {
		t.Fatalf("out-label arena differs")
	}
	if !slicesEq(want.inLab, got.inLab) {
		t.Fatalf("in-label arena differs")
	}
	if !slicesEq(want.folPool, got.folPool) {
		t.Fatalf("followee pool differs: want %d ids, got %d", len(want.folPool), len(got.folPool))
	}
}

func slicesEq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTwoHopPartitionedMatchesBarrierBuild pins the tentpole guarantee:
// for every (workers, batch) cell the partitioned barrier-free build is
// byte-identical — serialization and raw arenas, pool offsets included —
// to the PR 5 barrier build at the same batch size. The batch=1 column
// doubles as the serial-equivalence check (at batch size 1 the reference
// IS the serial algorithm).
func TestTwoHopPartitionedMatchesBarrierBuild(t *testing.T) {
	r := rand.New(rand.NewSource(1510))
	g := randomGraph(r, 150, 900)
	const h = 4
	for _, batch := range []int{1, 8, 32, 64} {
		ref := buildTwoHopBarrierReference(g, h, batch)
		refBytes := serialize(t, ref)
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				th := BuildTwoHop(g, TwoHopOptions{MaxHops: h, Workers: workers, BatchSize: batch})
				requireSameArenas(t, ref, th)
				if !bytes.Equal(refBytes, serialize(t, th)) {
					t.Fatalf("serialization differs from the barrier reference")
				}
			})
		}
	}
}

// TestTwoHopPartitionSchemeTinyGraphs walks the builder through graphs
// around the partition-span boundaries (single partition, exactly one
// span, one node over) where off-by-ones in the node→partition shift or
// the last short partition would corrupt the merge.
func TestTwoHopPartitionSchemeTinyGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{3, 63, 64, 65, 129} {
		g := randomGraph(r, n, 4*n)
		ref := buildTwoHopBarrierReference(g, 3, 4)
		th := BuildTwoHop(g, TwoHopOptions{MaxHops: 3, Workers: 4, BatchSize: 4})
		requireSameArenas(t, ref, th)

		shift, parts := partitionScheme(n)
		if parts != th.BuildInfo().Partitions {
			t.Fatalf("n=%d: info reports %d partitions, scheme says %d", n, th.BuildInfo().Partitions, parts)
		}
		if last := (n - 1) >> shift; last != parts-1 {
			t.Fatalf("n=%d: last node maps to partition %d of %d", n, last, parts)
		}
	}
}

// TestTwoHopMergeUtilizationSane checks the merge-utilization report: one
// fraction per merge worker, each within [0, 1] (a worker cannot be busy
// longer than the phase wall clock that contains it), absent for serial
// builds.
func TestTwoHopMergeUtilizationSane(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := randomGraph(r, 400, 3000)
	info := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: 16}).BuildInfo()
	if len(info.MergeUtilization) == 0 {
		t.Fatalf("parallel build reported no merge utilization")
	}
	for i, u := range info.MergeUtilization {
		if u < 0 || u > 1 {
			t.Fatalf("merge worker %d utilization %.3f outside [0,1]", i, u)
		}
	}
	if serial := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1}).BuildInfo(); len(serial.MergeUtilization) != 0 {
		t.Fatalf("serial build reported merge utilization %v", serial.MergeUtilization)
	}
}

// TestStreamingBuildConcurrentWithQueriesRace is the -race soak the issue
// asks for: parallel partitioned builds run through Streaming.Rebuild
// while query goroutines hammer the frozen arena across three
// copy-on-swap installs. Any unfenced access between the build's worker
// goroutines and the lock-free query path is the race detector's to
// catch.
func TestStreamingBuildConcurrentWithQueriesRace(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := randomGraph(r, 250, 1500)
	st := NewStreaming(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: 16})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := graph.NodeID(qr.Intn(250))
				v := graph.NodeID(qr.Intn(250))
				st.Query(u, v)
				st.R(u, v)
			}
		}(int64(q))
	}

	for round := 0; round < 3; round++ {
		pairs := make([][2]graph.NodeID, 40)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(250)), graph.NodeID(r.Intn(250))}
		}
		st.InsertEdges(pairs)
		th, at := st.Rebuild()
		st.Install(th, at)
	}
	close(stop)
	wg.Wait()

	if got := st.Swaps(); got != 3 {
		t.Fatalf("swaps = %d, want 3", got)
	}
	if s := st.Staleness(); s != 0 {
		t.Fatalf("staleness after final install = %d, want 0", s)
	}
}
