package reach

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"microlink/internal/graph"
)

// diamond: 0 → {1,2} → 3, plus 0 → 4 → 5 → 3 (a longer path to 3).
func diamond() *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(0, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	return b.Build()
}

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func sortedCopy(s []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sameSet(a, b []graph.NodeID) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subset(sub, sup []graph.NodeID) bool {
	for _, x := range sub {
		if !containsNode(sup, x) {
			return false
		}
	}
	return true
}

func allIndexes(g *graph.Graph, h int) map[string]Index {
	return map[string]Index{
		"naive":  NewNaive(g, h),
		"tc":     BuildTransitiveClosure(g, ClosureOptions{MaxHops: h, KeepFollowees: true}),
		"twohop": BuildTwoHop(g, TwoHopOptions{MaxHops: h}),
	}
}

func TestDiamondDistances(t *testing.T) {
	g := diamond()
	for name, idx := range allIndexes(g, 4) {
		res, ok := idx.Query(0, 3)
		if !ok || res.Dist != 2 {
			t.Fatalf("%s: Query(0,3) = %+v ok=%v, want dist 2", name, res, ok)
		}
	}
}

func TestDiamondFolloweesExact(t *testing.T) {
	g := diamond()
	// Shortest paths 0→3 are via followees 1 and 2 (the path via 4 is
	// longer), so F_{0,3} = {1,2} and R = (1/2)·(2/3).
	want := []graph.NodeID{1, 2}
	naive := NewNaive(g, 4)
	res, ok := naive.Query(0, 3)
	if !ok || !sameSet(res.Followees, want) {
		t.Fatalf("naive followees = %v", res.Followees)
	}
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4, KeepFollowees: true})
	res2, _ := tc.Query(0, 3)
	if !sameSet(res2.Followees, want) {
		t.Fatalf("tc followees = %v", res2.Followees)
	}
	if tc.NumFollowees(0, 3) != 2 {
		t.Fatalf("tc NumFollowees = %d", tc.NumFollowees(0, 3))
	}
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	res3, _ := th.Query(0, 3)
	if !sameSet(res3.Followees, want) {
		t.Fatalf("twohop followees = %v", res3.Followees)
	}
	wantR := 0.5 * 2.0 / 3.0
	for name, idx := range allIndexes(g, 4) {
		if r := idx.R(0, 3); math.Abs(r-wantR) > 1e-6 {
			t.Errorf("%s: R(0,3) = %f, want %f", name, r, wantR)
		}
	}
}

func TestDirectEdgeScoresOne(t *testing.T) {
	g := diamond()
	for name, idx := range allIndexes(g, 4) {
		if r := idx.R(0, 1); r != 1 {
			t.Errorf("%s: R(0,1) = %f, want 1 (Algorithm 1 line 3)", name, r)
		}
	}
}

func TestSelfReachability(t *testing.T) {
	g := diamond()
	for name, idx := range allIndexes(g, 4) {
		res, ok := idx.Query(2, 2)
		if !ok || res.Dist != 0 {
			t.Errorf("%s: self query = %+v ok=%v", name, res, ok)
		}
		if r := idx.R(2, 2); r != 1 {
			t.Errorf("%s: R(self) = %f", name, r)
		}
	}
}

func TestUnreachable(t *testing.T) {
	g := diamond()
	for name, idx := range allIndexes(g, 4) {
		if _, ok := idx.Query(3, 0); ok {
			t.Errorf("%s: 3 should not reach 0", name)
		}
		if r := idx.R(3, 0); r != 0 {
			t.Errorf("%s: R(3,0) = %f, want 0", name, r)
		}
	}
}

func TestHopBoundRespected(t *testing.T) {
	// 0→1→2→3: with H=2, node 3 is unreachable from 0.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	for name, idx := range allIndexes(g, 2) {
		if _, ok := idx.Query(0, 3); ok {
			t.Errorf("%s: H=2 must hide a 3-hop target", name)
		}
		if res, ok := idx.Query(0, 2); !ok || res.Dist != 2 {
			t.Errorf("%s: 2-hop target should remain visible, got %+v %v", name, res, ok)
		}
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g1 := graph.NewBuilder(1).Build()
	for name, idx := range allIndexes(g1, 4) {
		if r := idx.R(0, 0); r != 1 {
			t.Errorf("%s singleton: R = %f", name, r)
		}
	}
}

func TestClosureSizeAndStats(t *testing.T) {
	g := diamond()
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	if tc.SizeBytes() <= 0 {
		t.Error("closure SizeBytes should be positive")
	}
	if tc.BuildStats().Entries <= 0 {
		t.Error("closure should have entries")
	}
	if tc.Reachable(0) != 5 {
		t.Errorf("node 0 reaches %d nodes, want 5", tc.Reachable(0))
	}
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	if th.SizeBytes() <= 0 {
		t.Error("twohop SizeBytes should be positive")
	}
	out, in := th.LabelCounts()
	if out == 0 || in == 0 {
		t.Errorf("label counts %d/%d", out, in)
	}
}

func TestTwoHopSmallerThanClosureOnDenseGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomGraph(r, 300, 3000)
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	if th.SizeBytes() >= tc.SizeBytes() {
		t.Errorf("2-hop index (%d B) should be smaller than closure (%d B) on a dense small-world graph",
			th.SizeBytes(), tc.SizeBytes())
	}
}

// The central cross-validation: on random graphs all three substrates agree
// on distance; followee sets agree exactly between naive and the closure;
// the 2-hop sets are non-empty subsets of the exact ones (see the exactness
// note on TwoHop).
func TestQuickSubstratesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := randomGraph(r, n, r.Intn(5*n))
		h := 1 + r.Intn(4)
		naive := NewNaive(g, h)
		tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: h, KeepFollowees: true})
		th := BuildTwoHop(g, TwoHopOptions{MaxHops: h})
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				uid, vid := graph.NodeID(u), graph.NodeID(v)
				nr, nok := naive.Query(uid, vid)
				cr, cok := tc.Query(uid, vid)
				hr, hok := th.Query(uid, vid)
				if nok != cok || nok != hok {
					t.Logf("seed %d: reachability disagrees (%d,%d): naive=%v tc=%v 2hop=%v", seed, u, v, nok, cok, hok)
					return false
				}
				if !nok {
					continue
				}
				if nr.Dist != cr.Dist || nr.Dist != hr.Dist {
					t.Logf("seed %d: dist disagrees (%d,%d): naive=%d tc=%d 2hop=%d", seed, u, v, nr.Dist, cr.Dist, hr.Dist)
					return false
				}
				if nr.Dist >= 1 && !sameSet(nr.Followees, cr.Followees) {
					t.Logf("seed %d: followees disagree (%d,%d): naive=%v tc=%v", seed, u, v, nr.Followees, cr.Followees)
					return false
				}
				if nr.Dist >= 1 {
					if len(hr.Followees) == 0 {
						t.Logf("seed %d: 2hop followees empty (%d,%d) dist=%d", seed, u, v, nr.Dist)
						return false
					}
					if !subset(hr.Followees, nr.Followees) {
						t.Logf("seed %d: 2hop followees %v not subset of %v (%d,%d)", seed, hr.Followees, nr.Followees, u, v)
						return false
					}
				}
				// R agreement between naive and closure (exact substrates).
				if math.Abs(naive.R(uid, vid)-tc.R(uid, vid)) > 1e-6 {
					t.Logf("seed %d: R disagrees (%d,%d)", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: R is always within [0,1] and 0 exactly for unreachable pairs.
func TestQuickRRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(4*n))
		tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				rv := tc.R(graph.NodeID(u), graph.NodeID(v))
				if rv < 0 || rv > 1 {
					return false
				}
				_, ok := tc.Query(graph.NodeID(u), graph.NodeID(v))
				if !ok && rv != 0 {
					return false
				}
				if ok && u != v {
					res, _ := tc.Query(graph.NodeID(u), graph.NodeID(v))
					if res.Dist >= 1 && rv == 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoHopRandomOrderStillExactDistances(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := randomGraph(r, 40, 160)
	naive := NewNaive(g, 4)
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, RandomOrder: true})
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			nr, nok := naive.Query(graph.NodeID(u), graph.NodeID(v))
			hr, hok := th.Query(graph.NodeID(u), graph.NodeID(v))
			if nok != hok || (nok && nr.Dist != hr.Dist) {
				t.Fatalf("(%d,%d): naive %v/%v twohop %v/%v", u, v, nr, nok, hr, hok)
			}
		}
	}
}

func TestNaiveClosureTimeBudget(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(r, 60, 300)
	measured, extrapolated := NaiveClosureTime(g, 3, 0)
	if measured != extrapolated {
		t.Errorf("no budget: measured %v != extrapolated %v", measured, extrapolated)
	}
	if measured <= 0 {
		t.Error("measured should be positive")
	}
}

func TestIncrementalFasterThanNaiveConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 400, 4000)
	tc := BuildTransitiveClosure(g, ClosureOptions{MaxHops: 4})
	naiveTime, _ := NaiveClosureTime(g, 4, 0)
	if tc.BuildStats().BuildTime >= naiveTime {
		t.Errorf("incremental (%v) should beat naive (%v) — Fig 5(b)", tc.BuildStats().BuildTime, naiveTime)
	}
}

func TestConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 100, 800)
	for name, idx := range allIndexes(g, 4) {
		idx := idx
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			done := make(chan bool)
			for w := 0; w < 4; w++ {
				go func(w int) {
					rr := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 500; i++ {
						u := graph.NodeID(rr.Intn(100))
						v := graph.NodeID(rr.Intn(100))
						_ = idx.R(u, v)
					}
					done <- true
				}(w)
			}
			for w := 0; w < 4; w++ {
				<-done
			}
		})
	}
}
