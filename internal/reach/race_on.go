//go:build race

package reach

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
