package reach

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"microlink/internal/graph"
)

// serialize returns the exact byte image of a cover, the strongest
// equality notion we have: order, every label, every followee set.
func serialize(t *testing.T, th *TwoHop) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := th.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// TestTwoHopParallelMatchesOracle pins the parallel builder's contract for
// Workers=4 across batch sizes: on every (u, v) pair the distance matches
// the naive BFS oracle exactly, the followee set is a subset of the
// oracle's, and it is non-empty whenever the pair is reachable — the same
// properties the serial build guarantees (Theorems 1–2).
func TestTwoHopParallelMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	g := randomGraph(r, 90, 420)
	const h = 4
	oracle := NewNaive(g, h)
	for _, batch := range []int{1, 8, 64} {
		th := BuildTwoHop(g, TwoHopOptions{MaxHops: h, Workers: 4, BatchSize: batch})
		if got := th.BuildInfo().BatchSize; got != batch {
			t.Fatalf("BatchSize=%d: BuildInfo reports %d", batch, got)
		}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				nu, nv := graph.NodeID(u), graph.NodeID(v)
				want, wok := oracle.Query(nu, nv)
				got, gok := th.Query(nu, nv)
				if gok != wok {
					t.Fatalf("BatchSize=%d: reach(%d,%d) = %v, oracle %v", batch, u, v, gok, wok)
				}
				if !gok {
					continue
				}
				if got.Dist != want.Dist {
					t.Fatalf("BatchSize=%d: dist(%d,%d) = %d, oracle %d", batch, u, v, got.Dist, want.Dist)
				}
				if !subset(got.Followees, want.Followees) {
					t.Fatalf("BatchSize=%d: fol(%d,%d) = %v not ⊆ oracle %v",
						batch, u, v, got.Followees, want.Followees)
				}
				if got.Dist > 0 && len(got.Followees) == 0 {
					t.Fatalf("BatchSize=%d: fol(%d,%d) empty for reachable pair", batch, u, v)
				}
			}
		}
	}
}

// TestTwoHopParallelExactnessRate checks that the weaker batch-frozen
// pruning does not degrade followee-set exactness: parallel builds must be
// exact on at least as large a fraction of reachable pairs as the serial
// build (extra labels can only add correct followees, never remove them).
func TestTwoHopParallelExactnessRate(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	g := randomGraph(r, 80, 380)
	const h = 4
	oracle := NewNaive(g, h)

	exactRate := func(th *TwoHop) float64 {
		var reachable, exact int
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				nu, nv := graph.NodeID(u), graph.NodeID(v)
				want, ok := oracle.Query(nu, nv)
				if !ok || u == v {
					continue
				}
				reachable++
				if got, _ := th.Query(nu, nv); sameSet(got.Followees, want.Followees) {
					exact++
				}
			}
		}
		return float64(exact) / float64(reachable)
	}

	serial := exactRate(BuildTwoHop(g, TwoHopOptions{MaxHops: h, Workers: 1}))
	parallel := exactRate(BuildTwoHop(g, TwoHopOptions{MaxHops: h, Workers: 4, BatchSize: 32}))
	if parallel < serial {
		t.Fatalf("parallel exactness %.4f below serial %.4f", parallel, serial)
	}
}

// TestTwoHopBatchOneEqualsSerial pins the core design invariant: the
// batched builder with BatchSize=1 is the serial Algorithm 2, bit for bit,
// regardless of the worker count.
func TestTwoHopBatchOneEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	g := randomGraph(r, 120, 600)
	serial := serialize(t, BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1, BatchSize: 1}))
	par := serialize(t, BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: 1}))
	if !bytes.Equal(serial, par) {
		t.Fatal("Workers=4 BatchSize=1 build differs from serial build")
	}
}

// TestTwoHopParallelDeterministic pins that for a fixed batch size the
// output is a pure function of the graph — independent of worker count and
// goroutine scheduling — by comparing byte images across repeated builds
// with different worker counts.
func TestTwoHopParallelDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	g := randomGraph(r, 120, 600)
	ref := serialize(t, BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 2, BatchSize: 16}))
	for _, workers := range []int{2, 3, 4, 8} {
		got := serialize(t, BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: workers, BatchSize: 16}))
		if !bytes.Equal(ref, got) {
			t.Fatalf("Workers=%d build differs from Workers=2 build at BatchSize=16", workers)
		}
	}
}

// TestTwoHopSizeBytesMatchesHeap asserts the SizeBytes contract: the
// reported figure must be within 10% of the measured heap growth of an
// actual build, not a magic-constant estimate.
func TestTwoHopSizeBytesMatchesHeap(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector shadow memory skews heap measurement")
	}
	r := rand.New(rand.NewSource(75))
	g := randomGraph(r, 1500, 15000)

	measure := func() (live int64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1})
		runtime.GC()
		runtime.ReadMemStats(&after)
		live = int64(after.HeapAlloc) - int64(before.HeapAlloc)
		reported := th.SizeBytes()
		runtime.KeepAlive(th)
		if ratio := float64(reported) / float64(live); ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("SizeBytes = %d, measured heap growth %d (ratio %.3f, want within 10%%)",
				reported, live, ratio)
		}
		return live
	}
	measure()
}

// TestTwoHopQueryZeroAlloc asserts the query hot path's steady-state
// allocation contract: R and buffer-reusing QueryAppend allocate nothing
// once the scratch pool is warm.
func TestTwoHopQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	r := rand.New(rand.NewSource(76))
	g := randomGraph(r, 200, 1200)
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})

	pairs := make([][2]graph.NodeID, 256)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(200)), graph.NodeID(r.Intn(200))}
	}
	// Warm the scratch pool and size the reusable followee buffer.
	buf := make([]graph.NodeID, 0, 256)
	for _, p := range pairs {
		th.R(p[0], p[1])
		res, _ := th.QueryAppend(p[0], p[1], buf[:0])
		if cap(res.Followees) > cap(buf) {
			buf = res.Followees
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(400, func() {
		p := pairs[i%len(pairs)]
		th.R(p[0], p[1])
		i++
	}); avg != 0 {
		t.Fatalf("R allocates %.2f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(400, func() {
		p := pairs[i%len(pairs)]
		res, _ := th.QueryAppend(p[0], p[1], buf[:0])
		_ = res
		i++
	}); avg != 0 {
		t.Fatalf("QueryAppend with reused buffer allocates %.2f per op, want 0", avg)
	}
}

// TestTwoHopFolSetsSorted pins the frozen-layout invariant the merge-based
// query union relies on: every followee run in the pool is sorted
// ascending, and query results come back sorted.
func TestTwoHopFolSetsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := randomGraph(r, 100, 500)
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: 8})
	check := func(labs []thLabelFlat) {
		for _, l := range labs {
			fol := th.folSet(l)
			for i := 1; i < len(fol); i++ {
				if fol[i-1] >= fol[i] {
					t.Fatalf("followee run not strictly ascending: %v", fol)
				}
			}
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		check(th.outLabels(graph.NodeID(u)))
		check(th.inLabels(graph.NodeID(u)))
	}
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			res, ok := th.Query(graph.NodeID(u), graph.NodeID(v))
			if !ok {
				continue
			}
			for i := 1; i < len(res.Followees); i++ {
				if res.Followees[i-1] >= res.Followees[i] {
					t.Fatalf("Query(%d,%d) followees not sorted: %v", u, v, res.Followees)
				}
			}
		}
	}
}

// TestTwoHopParallelSizeWithinBound checks the documented space tradeoff:
// the batch-frozen build's index stays within 25% of the serial one.
func TestTwoHopParallelSizeWithinBound(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	g := randomGraph(r, 400, 2800)
	serial := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1})
	par := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: DefaultTwoHopBatch})
	if s, p := serial.SizeBytes(), par.SizeBytes(); float64(p) > 1.25*float64(s) {
		t.Fatalf("parallel index %d bytes exceeds 125%% of serial %d bytes", p, s)
	}
}
