package reach

import (
	"sort"
	"sync"

	"microlink/internal/graph"
)

// DynamicClosure maintains the extended transitive closure under follow-
// edge insertions — the "maintenance cost" half of the paper's abstract
// ("effective indexing structures along with incremental algorithms have
// also been developed to reduce the computation and maintenance costs").
// The social network grows continuously; rebuilding Algorithm 1's matrix
// per edge would be absurd, and the insertion rule below updates exactly
// the affected pairs instead.
//
// Insertion of edge (u, v) can only create shortest paths of the form
// s ⇝ u → v ⇝ t. Neither d(s,u) nor d(v,t) can change (a path to u through
// the new edge would have to revisit u), so for every source s reaching u
// and every target t reachable from v:
//
//	newd = d(s,u) + 1 + d(v,t)
//	newd < d(s,t):  replace — dist = newd, F_st = F_su (or {v} when s = u)
//	newd = d(s,t):  merge   — F_st ∪= F_su
//
// Additionally |F_u| (u's out-degree) grows, which rescales the weights of
// u's whole row (Eq. 4's denominator).
//
// DynamicClosure stores followee identity sets (not just counts) because
// the merge case needs set union. It is safe for concurrent use: an
// internal RWMutex serialises InsertEdge against the read paths, so a
// query never observes a half-applied insertion rule.
type DynamicClosure struct {
	mu  sync.RWMutex // microlint:lock-order reach-dyn
	h   int
	n   int
	out [][]graph.NodeID // adjacency including inserted edges
	in  [][]graph.NodeID
	// rows[s][t] holds the entry for the pair (s, t).
	rows []map[graph.NodeID]*dynEntry
}

type dynEntry struct {
	dist int32
	fol  []graph.NodeID
}

// NewDynamicClosure builds the initial closure over g with Algorithm 1 and
// prepares it for incremental edge insertions.
func NewDynamicClosure(g *graph.Graph, maxHops int) *DynamicClosure {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	base := BuildTransitiveClosure(g, ClosureOptions{MaxHops: maxHops, KeepFollowees: true})
	n := g.NumNodes()
	dc := &DynamicClosure{
		h:    maxHops,
		n:    n,
		out:  make([][]graph.NodeID, n),
		in:   make([][]graph.NodeID, n),
		rows: make([]map[graph.NodeID]*dynEntry, n),
	}
	for s := 0; s < n; s++ {
		dc.out[s] = append([]graph.NodeID(nil), g.Out(graph.NodeID(s))...)
		dc.in[s] = append([]graph.NodeID(nil), g.In(graph.NodeID(s))...)
		row := make(map[graph.NodeID]*dynEntry, len(base.rows[s].entries))
		for _, e := range base.rows[s].entries {
			ent := &dynEntry{dist: int32(e.dist)}
			if fol := base.lookupFollowees(graph.NodeID(s), e.v); fol != nil {
				ent.fol = append([]graph.NodeID(nil), fol...)
			} else if e.dist == 1 {
				ent.fol = []graph.NodeID{e.v}
			}
			row[e.v] = ent
		}
		dc.rows[s] = row
	}
	return dc
}

// OutDegree returns the current |F_u| including inserted edges.
func (dc *DynamicClosure) OutDegree(u graph.NodeID) int {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	return len(dc.out[u])
}

// HasEdge reports whether the follow edge u → v currently exists.
func (dc *DynamicClosure) HasEdge(u, v graph.NodeID) bool {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	return dc.hasEdgeLocked(u, v)
}

func (dc *DynamicClosure) hasEdgeLocked(u, v graph.NodeID) bool {
	for _, x := range dc.out[u] {
		if x == v {
			return true
		}
	}
	return false
}

// InsertEdge adds the follow edge u → v and incrementally repairs the
// closure. Duplicate edges and self-loops are no-ops. It reports whether
// the edge was new.
func (dc *DynamicClosure) InsertEdge(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if dc.hasEdgeLocked(u, v) {
		return false
	}
	dc.out[u] = append(dc.out[u], v)
	dc.in[v] = append(dc.in[v], u)

	// Sources reaching u (plus u itself) with their d(s,u); targets
	// reachable from v (plus v) with their d(v,t). Collected *before* any
	// mutation so the update sees the pre-insertion state consistently.
	type hop struct {
		node graph.NodeID
		dist int32
		fol  []graph.NodeID // F_su for sources; unused for targets
	}
	sources := []hop{{node: u, dist: 0}}
	for s := 0; s < dc.n; s++ {
		if ent, ok := dc.rows[s][u]; ok && graph.NodeID(s) != u {
			sources = append(sources, hop{node: graph.NodeID(s), dist: ent.dist, fol: ent.fol})
		}
	}
	targets := []hop{{node: v, dist: 0}}
	for t, ent := range dc.rows[v] {
		if t != v {
			targets = append(targets, hop{node: t, dist: ent.dist})
		}
	}
	// dc.rows[v] is a map: fix the update order so repeated runs apply
	// equal-distance F-set merges identically.
	sort.Slice(targets, func(i, j int) bool { return targets[i].node < targets[j].node })

	for _, src := range sources {
		row := dc.rows[src.node]
		// F contribution along s ⇝ u → v ⇝ t: s's followees on s⇝u paths,
		// or the new followee v itself when s = u.
		contrib := src.fol
		if src.node == u {
			contrib = []graph.NodeID{v}
		}
		for _, dst := range targets {
			if src.node == dst.node {
				continue
			}
			newd := src.dist + 1 + dst.dist
			if int(newd) > dc.h {
				continue
			}
			ent, ok := row[dst.node]
			switch {
			case !ok || newd < ent.dist:
				row[dst.node] = &dynEntry{dist: newd, fol: append([]graph.NodeID(nil), contrib...)}
			case newd == ent.dist:
				for _, f := range contrib {
					if !containsNode(ent.fol, f) {
						ent.fol = append(ent.fol, f)
					}
				}
			}
		}
	}
	return true
}

// Query implements Index.
func (dc *DynamicClosure) Query(u, v graph.NodeID) (Result, bool) {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	return dc.queryLocked(u, v)
}

func (dc *DynamicClosure) queryLocked(u, v graph.NodeID) (Result, bool) {
	if u == v {
		return Result{Dist: 0}, true
	}
	ent, ok := dc.rows[u][v]
	if !ok {
		return Result{}, false
	}
	return Result{Dist: int(ent.dist), Followees: ent.fol}, true
}

// R implements Index with the live |F_u| denominator. One RLock covers
// both the pair lookup and the degree read so the ratio is consistent.
func (dc *DynamicClosure) R(u, v graph.NodeID) float64 {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	res, ok := dc.queryLocked(u, v)
	return score(res, ok, len(dc.out[u]))
}

// SizeBytes implements Index.
func (dc *DynamicClosure) SizeBytes() int64 {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	var b int64
	for s := range dc.rows {
		for _, ent := range dc.rows[s] {
			b += 24 + int64(len(ent.fol))*4
		}
		b += int64(len(dc.out[s])+len(dc.in[s])) * 4
	}
	return b
}

// BuildStats implements Index (entries only; construction time belongs to
// the wrapped initial build).
func (dc *DynamicClosure) BuildStats() BuildStats {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	var entries int64
	for s := range dc.rows {
		entries += int64(len(dc.rows[s]))
	}
	return BuildStats{Entries: entries}
}

// Snapshot freezes the current adjacency into a new immutable Graph —
// used by tests to cross-validate the incremental state against a fresh
// Algorithm 1 build.
func (dc *DynamicClosure) Snapshot() *graph.Graph {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	b := graph.NewBuilder(dc.n)
	for s := 0; s < dc.n; s++ {
		outs := append([]graph.NodeID(nil), dc.out[s]...)
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
		for _, t := range outs {
			b.AddEdge(graph.NodeID(s), t)
		}
	}
	return b.Build()
}
