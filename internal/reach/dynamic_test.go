package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microlink/internal/graph"
)

// assertMatchesRebuild cross-validates the incremental closure against a
// fresh Algorithm 1 build over the same edge set: identical reachability,
// distances, followee sets and weights for every pair.
func assertMatchesRebuild(t *testing.T, dc *DynamicClosure, h int) {
	t.Helper()
	g := dc.Snapshot()
	fresh := BuildTransitiveClosure(g, ClosureOptions{MaxHops: h, KeepFollowees: true})
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			uid, vid := graph.NodeID(u), graph.NodeID(v)
			a, aok := dc.Query(uid, vid)
			b, bok := fresh.Query(uid, vid)
			if aok != bok {
				t.Fatalf("(%d,%d): reachability %v vs rebuild %v", u, v, aok, bok)
			}
			if !aok {
				continue
			}
			if a.Dist != b.Dist {
				t.Fatalf("(%d,%d): dist %d vs rebuild %d", u, v, a.Dist, b.Dist)
			}
			if a.Dist >= 1 && !sameSet(a.Followees, b.Followees) {
				t.Fatalf("(%d,%d) d=%d: followees %v vs rebuild %v", u, v, a.Dist, a.Followees, b.Followees)
			}
			// fresh stores weights in float32; allow that rounding.
			if ra, rb := dc.R(uid, vid), fresh.R(uid, vid); absf(ra-rb) > 1e-6 {
				t.Fatalf("(%d,%d): R %f vs rebuild %f", u, v, ra, rb)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDynamicSingleInsert(t *testing.T) {
	// 0→1, 2→3; insert 1→2 connects the chains.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	dc := NewDynamicClosure(b.Build(), 4)
	if _, ok := dc.Query(0, 3); ok {
		t.Fatal("0 should not reach 3 yet")
	}
	if !dc.InsertEdge(1, 2) {
		t.Fatal("insert reported not-new")
	}
	res, ok := dc.Query(0, 3)
	if !ok || res.Dist != 3 {
		t.Fatalf("after insert: %+v ok=%v", res, ok)
	}
	assertMatchesRebuild(t, dc, 4)
}

func TestDynamicDuplicateAndSelfLoop(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	dc := NewDynamicClosure(b.Build(), 4)
	if dc.InsertEdge(0, 1) {
		t.Fatal("duplicate must be a no-op")
	}
	if dc.InsertEdge(1, 1) {
		t.Fatal("self-loop must be a no-op")
	}
	assertMatchesRebuild(t, dc, 4)
}

func TestDynamicShorterPathReplaces(t *testing.T) {
	// 0→1→2→3 (d(0,3)=3); inserting 0→9→? no — insert 1→3 gives d(0,3)=2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	dc := NewDynamicClosure(b.Build(), 4)
	dc.InsertEdge(1, 3)
	res, _ := dc.Query(0, 3)
	if res.Dist != 2 {
		t.Fatalf("dist = %d, want 2", res.Dist)
	}
	assertMatchesRebuild(t, dc, 4)
}

func TestDynamicEqualPathMergesFollowees(t *testing.T) {
	// 0→1→3 exists; inserting 0→2 then 2→3 adds a second 2-hop path, so
	// F_{0,3} = {1, 2}.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 3)
	dc := NewDynamicClosure(b.Build(), 4)
	dc.InsertEdge(0, 2)
	dc.InsertEdge(2, 3)
	res, _ := dc.Query(0, 3)
	if res.Dist != 2 || !sameSet(res.Followees, []graph.NodeID{1, 2}) {
		t.Fatalf("res = %+v", res)
	}
	assertMatchesRebuild(t, dc, 4)
}

func TestDynamicRescalesRowWeights(t *testing.T) {
	// R(0,2) = (1/2)·(|F_02|/|F_0|): growing |F_0| by following a stranger
	// dilutes the weight.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	dc := NewDynamicClosure(b.Build(), 4)
	before := dc.R(0, 2) // (1/2)·(1/1)
	dc.InsertEdge(0, 3)  // follow someone irrelevant
	after := dc.R(0, 2)  // (1/2)·(1/2)
	if absf(before-0.5) > 1e-9 || absf(after-0.25) > 1e-9 {
		t.Fatalf("R before=%f after=%f", before, after)
	}
	assertMatchesRebuild(t, dc, 4)
}

func TestDynamicHopBound(t *testing.T) {
	// With H=2, inserting an edge that creates only a 3-hop path changes
	// nothing visible.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	dc := NewDynamicClosure(b.Build(), 2)
	dc.InsertEdge(1, 2)
	if _, ok := dc.Query(0, 3); ok {
		t.Fatal("3-hop pair must stay invisible at H=2")
	}
	assertMatchesRebuild(t, dc, 2)
}

// Property: a random insertion sequence always matches a from-scratch
// rebuild — the core maintenance invariant.
func TestQuickDynamicMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		h := 1 + r.Intn(4)
		// Start from a sparse base graph.
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
		}
		dc := NewDynamicClosure(b.Build(), h)
		for k := 0; k < 12; k++ {
			dc.InsertEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
		}
		// Inline the cross-validation (quick.Check wants a bool).
		g := dc.Snapshot()
		fresh := BuildTransitiveClosure(g, ClosureOptions{MaxHops: h, KeepFollowees: true})
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				uid, vid := graph.NodeID(u), graph.NodeID(v)
				a, aok := dc.Query(uid, vid)
				bb, bok := fresh.Query(uid, vid)
				if aok != bok {
					t.Logf("seed %d: (%d,%d) reach %v vs %v", seed, u, v, aok, bok)
					return false
				}
				if !aok {
					continue
				}
				if a.Dist != bb.Dist {
					t.Logf("seed %d: (%d,%d) dist %d vs %d", seed, u, v, a.Dist, bb.Dist)
					return false
				}
				if a.Dist >= 1 && !sameSet(a.Followees, bb.Followees) {
					t.Logf("seed %d: (%d,%d) d=%d fol %v vs %v", seed, u, v, a.Dist, a.Followees, bb.Followees)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicStatsAndSize(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	dc := NewDynamicClosure(b.Build(), 4)
	if dc.SizeBytes() <= 0 || dc.BuildStats().Entries <= 0 {
		t.Fatal("size/stats should be positive")
	}
	if dc.OutDegree(0) != 1 {
		t.Fatalf("out degree = %d", dc.OutDegree(0))
	}
	dc.InsertEdge(0, 4)
	if dc.OutDegree(0) != 2 {
		t.Fatalf("out degree after insert = %d", dc.OutDegree(0))
	}
}
