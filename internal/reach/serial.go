package reach

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"runtime"

	"microlink/internal/graph"
)

// Binary serialization for the reachability indexes. Construction is the
// expensive step (Table 5's "indexing time" column); a production service
// builds once and reloads on start. The format is versioned and guarded by
// a fingerprint of the graph it was built over, so an index can never be
// loaded against the wrong network, plus a trailing CRC over the payload.
//
// Layout (little endian):
//
//	magic "MLRI" | version u16 | kind u8 | maxHops u8
//	graph fingerprint u64
//	payload (kind-specific)
//	crc64(payload) u64

const (
	serialMagic   = "MLRI"
	serialVersion = 1

	kindClosure = 1
	kindTwoHop  = 2
)

// ErrFormat reports a malformed or incompatible index file.
var ErrFormat = errors.New("reach: bad index file")

// ErrGraphMismatch reports an index built over a different graph.
var ErrGraphMismatch = errors.New("reach: index does not match graph")

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint summarises a graph's structure for load-time validation.
func Fingerprint(g *graph.Graph) uint64 {
	h := crc64.New(crcTable)
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.NumNodes()))
	put(uint64(g.NumEdges()))
	// Sample degree structure: cheap but discriminating.
	step := g.NumNodes()/64 + 1
	for u := 0; u < g.NumNodes(); u += step {
		put(uint64(u)<<32 | uint64(g.OutDegree(graph.NodeID(u)))<<16 | uint64(g.InDegree(graph.NodeID(u))))
	}
	return h.Sum64()
}

type countingWriter struct {
	w   io.Writer
	crc uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.crc = crc64.Update(cw.crc, crcTable, p)
	return cw.w.Write(p)
}

func writeHeader(w io.Writer, kind, maxHops uint8, fp uint64) error {
	if _, err := io.WriteString(w, serialMagic); err != nil {
		return err
	}
	hdr := []any{uint16(serialVersion), kind, maxHops, fp}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader, wantKind uint8, fp uint64) (maxHops int, err error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(magic) != serialMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	var version uint16
	var kind, hops uint8
	var gotFP uint64
	for _, v := range []any{&version, &kind, &hops, &gotFP} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	if version != serialVersion {
		return 0, fmt.Errorf("%w: version %d", ErrFormat, version)
	}
	if kind != wantKind {
		return 0, fmt.Errorf("%w: kind %d, want %d", ErrFormat, kind, wantKind)
	}
	if gotFP != fp {
		return 0, ErrGraphMismatch
	}
	return int(hops), nil
}

// WriteTo serialises the closure (excluding followee identity sets, which
// are a debugging aid; counts and weights round-trip).
func (tc *TransitiveClosure) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindClosure, uint8(tc.h), Fingerprint(tc.g)); err != nil {
		return 0, err
	}
	cw := &countingWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(tc.rows))); err != nil {
		return 0, err
	}
	for u := range tc.rows {
		entries := tc.rows[u].entries
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(entries))); err != nil {
			return 0, err
		}
		for _, e := range entries {
			if err := binary.Write(cw, binary.LittleEndian, e.v); err != nil {
				return 0, err
			}
			if err := binary.Write(cw, binary.LittleEndian, e.dist); err != nil {
				return 0, err
			}
			if err := binary.Write(cw, binary.LittleEndian, e.nFol); err != nil {
				return 0, err
			}
			if err := binary.Write(cw, binary.LittleEndian, e.w); err != nil {
				return 0, err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return 0, err
	}
	return 0, bw.Flush()
}

type countingReader struct {
	r   io.Reader
	crc uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc64.Update(cr.crc, crcTable, p[:n])
	return n, err
}

// ReadTransitiveClosure loads a closure previously written with WriteTo,
// validating it against g.
func ReadTransitiveClosure(r io.Reader, g *graph.Graph) (*TransitiveClosure, error) {
	br := bufio.NewReader(r)
	hops, err := readHeader(br, kindClosure, Fingerprint(g))
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: br}
	var n uint32
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if int(n) != g.NumNodes() {
		return nil, ErrGraphMismatch
	}
	tc := &TransitiveClosure{
		g:    g,
		h:    hops,
		rows: make([]ctRow, n),
		maps: make([]map[graph.NodeID]int32, n),
	}
	var entries int64
	for u := 0; u < int(n); u++ {
		var m uint32
		if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		row := make([]ctEntry, m)
		idx := make(map[graph.NodeID]int32, m)
		for i := range row {
			e := &row[i]
			if err := binary.Read(cr, binary.LittleEndian, &e.v); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &e.dist); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &e.nFol); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &e.w); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			idx[e.v] = int32(i)
		}
		tc.rows[u] = ctRow{entries: row}
		tc.maps[u] = idx
		entries += int64(m)
	}
	payloadCRC := cr.crc
	var want uint64
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if payloadCRC != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFormat)
	}
	tc.stats = BuildStats{Entries: entries}
	return tc, nil
}

// WriteTo serialises the 2-hop cover including the per-label followee sets
// and the landmark ordering.
func (th *TwoHop) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindTwoHop, uint8(th.h), Fingerprint(th.g)); err != nil {
		return 0, err
	}
	cw := &countingWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(th.order))); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, th.order); err != nil {
		return 0, err
	}
	writeLabels := func(ls []thLabelFlat) error {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(ls))); err != nil {
			return err
		}
		for _, l := range ls {
			if err := binary.Write(cw, binary.LittleEndian, l.hub); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, l.dist); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, l.folLen); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, th.folSet(l)); err != nil {
				return err
			}
		}
		return nil
	}
	for u := 0; u < th.g.NumNodes(); u++ {
		if err := writeLabels(th.outLabels(graph.NodeID(u))); err != nil {
			return 0, err
		}
		if err := writeLabels(th.inLabels(graph.NodeID(u))); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return 0, err
	}
	return 0, bw.Flush()
}

// ReadTwoHop loads a 2-hop cover previously written with WriteTo,
// validating it against g.
func ReadTwoHop(r io.Reader, g *graph.Graph) (*TwoHop, error) {
	br := bufio.NewReader(r)
	hops, err := readHeader(br, kindTwoHop, Fingerprint(g))
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: br}
	var n uint32
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if int(n) != g.NumNodes() {
		return nil, ErrGraphMismatch
	}
	w := &thWork{
		g:     g,
		h:     hops,
		rank:  make([]int32, n),
		order: make([]graph.NodeID, n),
		out:   make([][]thLabel, n),
		in:    make([][]thLabel, n),
	}
	w.pshift, w.nparts = partitionScheme(int(n))
	if err := binary.Read(cr, binary.LittleEndian, w.order); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	for rk, v := range w.order {
		if v < 0 || int(v) >= int(n) {
			return nil, fmt.Errorf("%w: node %d out of range", ErrFormat, v)
		}
		w.rank[v] = int32(rk)
	}
	readLabels := func() ([]thLabel, error) {
		var m uint32
		if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
			return nil, err
		}
		ls := make([]thLabel, m)
		for i := range ls {
			if err := binary.Read(cr, binary.LittleEndian, &ls[i].hub); err != nil {
				return nil, err
			}
			if err := binary.Read(cr, binary.LittleEndian, &ls[i].dist); err != nil {
				return nil, err
			}
			var nf uint16
			if err := binary.Read(cr, binary.LittleEndian, &nf); err != nil {
				return nil, err
			}
			ls[i].fol = make([]graph.NodeID, nf)
			if err := binary.Read(cr, binary.LittleEndian, ls[i].fol); err != nil {
				return nil, err
			}
		}
		return ls, nil
	}
	var entries int64
	for u := 0; u < int(n); u++ {
		if w.out[u], err = readLabels(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if w.in[u], err = readLabels(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		entries += int64(len(w.out[u])) + int64(len(w.in[u]))
	}
	payloadCRC := cr.crc
	var want uint64
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if payloadCRC != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFormat)
	}
	th := w.freeze(runtime.GOMAXPROCS(0))
	th.stats = BuildStats{Entries: entries}
	return th, nil
}
