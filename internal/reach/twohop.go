package reach

import (
	"sort"
	"time"

	"microlink/internal/graph"
)

// TwoHop is the extended 2-hop cover of §4.1.1 (Algorithm 2): a pruned
// landmark labeling in which every out-label additionally stores the set of
// the source's followees that participate in the shortest path to the hub,
// so that weighted reachability (Eq. 4) can be recovered by label
// intersection (Eq. 5, Theorem 2). It trades slower queries for a far
// smaller index than the transitive closure (paper Table 5).
//
// Exactness note. Distances returned by Query are exact within the hop
// bound (the standard PLL cover property). Followee sets are exact for the
// vast majority of pairs but can be *under*-approximated in two corner
// cases inherited from the paper's algorithm: (1) pairs whose every
// covering hub equals the source itself are answered through in-labels,
// which Algorithm 2 (line 30) populates only on strict distance
// improvement, and (2) equal-length alternative shortest paths through
// pruned subtrees. We mitigate (1) by recording the hub's first-hop
// followee set inside in-labels during the forward BFS, which Eq. 5 then
// consumes for the hub = source case. The property tests in reach_test.go
// and theorems_test.go assert distance exactness and followee-subset
// behaviour against the naive oracle; empirically the sets are exact on
// ~97.5% of reachable pairs of random small-world graphs
// (TestTwoHopFolloweeExactnessRate).
type TwoHop struct {
	g     *graph.Graph
	h     int
	rank  []int32 // node → rank (0 = highest degree)
	order []graph.NodeID
	out   [][]thLabel // Lout, per node, sorted by hub rank
	in    [][]thLabel // Lin, per node, sorted by hub rank
	stats BuildStats
}

// thLabel is one 2-hop label entry. For out-labels fol is F_{v→hub} (v's
// followees on shortest v→hub paths); for in-labels fol is F_{hub→v} (the
// hub's followees on shortest hub→v paths).
type thLabel struct {
	hub  int32 // rank of the landmark
	dist uint8
	fol  []graph.NodeID
}

const infHops = 1 << 30

// TwoHopOptions tunes Algorithm 2.
type TwoHopOptions struct {
	// MaxHops is the hop bound H; ≤ 0 selects DefaultMaxHops.
	MaxHops int
	// RandomOrder replaces the degree-descending landmark order of
	// Algorithm 2 line 1 with node-id order. Exists only for the ablation
	// bench showing why degree ordering matters.
	RandomOrder bool
}

// BuildTwoHop runs Algorithm 2 over g.
func BuildTwoHop(g *graph.Graph, opts TwoHopOptions) *TwoHop {
	h := opts.MaxHops
	if h <= 0 {
		h = DefaultMaxHops
	}
	start := time.Now()
	n := g.NumNodes()
	th := &TwoHop{
		g:     g,
		h:     h,
		rank:  make([]int32, n),
		order: make([]graph.NodeID, n),
		out:   make([][]thLabel, n),
		in:    make([][]thLabel, n),
	}
	for i := 0; i < n; i++ {
		th.order[i] = graph.NodeID(i)
	}
	if !opts.RandomOrder {
		sort.Slice(th.order, func(i, j int) bool {
			di, dj := g.Degree(th.order[i]), g.Degree(th.order[j])
			if di != dj {
				return di > dj
			}
			return th.order[i] < th.order[j]
		})
	}
	for r, v := range th.order {
		th.rank[v] = int32(r)
	}

	b := &thBuilder{th: th, dist: make([]int32, n), fpath: make([][]graph.NodeID, n)}
	for i := range b.dist {
		b.dist[i] = -1
	}
	for k := 0; k < n; k++ {
		vk := th.order[k]
		b.backward(vk, int32(k))
		b.forward(vk, int32(k))
	}

	var entries int64
	for i := 0; i < n; i++ {
		entries += int64(len(th.out[i])) + int64(len(th.in[i]))
	}
	th.stats = BuildStats{BuildTime: time.Since(start), Entries: entries}
	return th
}

type thBuilder struct {
	th      *TwoHop
	dist    []int32
	touched []graph.NodeID
	fpath   [][]graph.NodeID // forward BFS first-hop followee sets
}

func (b *thBuilder) reset() {
	for _, v := range b.touched {
		b.dist[v] = -1
		b.fpath[v] = nil
	}
	b.touched = b.touched[:0]
}

func (b *thBuilder) mark(v graph.NodeID, d int32) {
	if b.dist[v] == -1 {
		b.touched = append(b.touched, v)
	}
	b.dist[v] = d
}

// lastIfHub returns a pointer to the final label of ls when its hub is k.
// Labels for hub k are only ever appended during round k, so if present it
// is the last element.
func lastIfHub(ls []thLabel, k int32) *thLabel {
	if len(ls) == 0 {
		return nil
	}
	if l := &ls[len(ls)-1]; l.hub == k {
		return l
	}
	return nil
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// backward performs the pruned backward BFS of Algorithm 2 lines 5–29,
// labeling every node s that reaches vk with (vk, d_s,vk, F_s,vk).
func (b *thBuilder) backward(vk graph.NodeID, k int32) {
	defer b.reset()
	th := b.th
	b.mark(vk, 0)
	frontier := []graph.NodeID{vk}
	for length := int32(1); length <= int32(th.h) && len(frontier) > 0; length++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, s := range th.g.In(u) {
				if s == vk {
					continue
				}
				switch d := b.dist[s]; {
				case d != -1 && d < length:
					// Reached on an earlier level: shorter path known.
				case d == length:
					// Same-level revisit via a different followee u: a new
					// shortest path (lines 20–27).
					if ent := lastIfHub(th.out[s], k); ent != nil && ent.dist == uint8(length) {
						if !containsNode(ent.fol, u) {
							ent.fol = append(ent.fol, u)
						}
					} else if ent == nil {
						// Covered by earlier hubs at this distance; record u
						// only if those hubs do not already encode it.
						if _, f := th.queryRank(s, vk); !containsNode(f, u) {
							th.out[s] = append(th.out[s], thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
					}
				default: // first visit this round
					dPrev, fPrev := th.queryRank(s, vk)
					switch {
					case int(length) < dPrev: // lines 11–19: shorter path found
						th.out[s] = append(th.out[s], thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						b.mark(s, length)
						next = append(next, s)
					case int(length) == dPrev: // lines 20–27: equal path via u
						if !containsNode(fPrev, u) {
							th.out[s] = append(th.out[s], thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
						b.mark(s, length) // visited, not expanded
					default: // pruned: earlier hubs already cover it strictly better
						b.mark(s, length)
					}
				}
			}
		}
		frontier = next
	}
}

// forward performs the pruned forward BFS of Algorithm 2 line 30, labeling
// every node t reachable from vk with (vk, d_vk,t) plus — our extension —
// the hub's first-hop followee set F_vk,t, which Eq. 5 needs when the hub
// itself is the query source.
func (b *thBuilder) forward(vk graph.NodeID, k int32) {
	defer b.reset()
	th := b.th
	b.mark(vk, 0)
	frontier := []graph.NodeID{vk}
	for length := int32(1); length <= int32(th.h) && len(frontier) > 0; length++ {
		var next []graph.NodeID
		for _, u := range frontier {
			var pf []graph.NodeID
			if length > 1 {
				pf = b.fpath[u]
			}
			for _, t := range th.g.Out(u) {
				if t == vk {
					continue
				}
				firstHop := pf
				if length == 1 {
					firstHop = []graph.NodeID{t}
				}
				switch d := b.dist[t]; {
				case d != -1 && d < length:
					// Earlier level: shorter path known.
				case d == length:
					// Same-level revisit: merge first-hop sets.
					merged := false
					for _, f := range firstHop {
						if !containsNode(b.fpath[t], f) {
							b.fpath[t] = append(b.fpath[t], f)
							merged = true
						}
					}
					if merged {
						if ent := lastIfHub(th.in[t], k); ent != nil && ent.dist == uint8(length) {
							for _, f := range firstHop {
								if !containsNode(ent.fol, f) {
									ent.fol = append(ent.fol, f)
								}
							}
						}
					}
				default: // first visit
					dPrev, _ := th.queryRank(vk, t)
					if int(length) < dPrev {
						fol := append([]graph.NodeID(nil), firstHop...)
						th.in[t] = append(th.in[t], thLabel{hub: k, dist: uint8(length), fol: fol})
						b.mark(t, length)
						b.fpath[t] = append([]graph.NodeID(nil), firstHop...)
						next = append(next, t)
					} else {
						// Covered (line 30 updates only on improvement).
						b.mark(t, length)
						b.fpath[t] = append([]graph.NodeID(nil), firstHop...)
					}
				}
			}
		}
		frontier = next
	}
}

// queryRank evaluates Eq. 5 on the current labels: the exact shortest-path
// distance from s to t (infHops when unreachable within H) and the union of
// the followee sets over all hubs achieving the minimum (Theorem 2).
func (th *TwoHop) queryRank(s, t graph.NodeID) (int, []graph.NodeID) {
	if s == t {
		return 0, nil
	}
	ls, lt := th.out[s], th.in[t]
	rs, rt := th.rank[s], th.rank[t]
	best := infHops
	var fol []graph.NodeID

	consider := func(d int, f []graph.NodeID) {
		if d > th.h || d > best {
			return
		}
		if d < best {
			best = d
			fol = fol[:0]
		}
		for _, x := range f {
			if !containsNode(fol, x) {
				fol = append(fol, x)
			}
		}
	}

	// Virtual self entries: hub = t (t ∈ Lout(s) directly) and hub = s
	// (s ∈ Lin(t); followee info comes from the in-label).
	i, j := 0, 0
	for i < len(ls) || j < len(lt) {
		var hi, hj int32 = 1 << 30, 1 << 30
		if i < len(ls) {
			hi = ls[i].hub
		}
		if j < len(lt) {
			hj = lt[j].hub
		}
		switch {
		case hi < hj:
			if hi == rt { // hub is t itself: d = d_s,t + 0
				consider(int(ls[i].dist), ls[i].fol)
			}
			i++
		case hj < hi:
			if hj == rs { // hub is s itself: d = 0 + d_s,t, F from in-label
				consider(int(lt[j].dist), lt[j].fol)
			}
			j++
		default:
			consider(int(ls[i].dist)+int(lt[j].dist), ls[i].fol)
			i++
			j++
		}
	}
	if best == infHops {
		return infHops, nil
	}
	return best, fol
}

// Query implements Index.
func (th *TwoHop) Query(u, v graph.NodeID) (Result, bool) {
	d, fol := th.queryRank(u, v)
	if d >= infHops {
		return Result{}, false
	}
	if d == 1 && len(fol) == 0 {
		fol = []graph.NodeID{v}
	}
	return Result{Dist: d, Followees: fol}, true
}

// R implements Index.
func (th *TwoHop) R(u, v graph.NodeID) float64 {
	res, ok := th.Query(u, v)
	return score(res, ok, th.g.OutDegree(u))
}

// SizeBytes implements Index.
func (th *TwoHop) SizeBytes() int64 {
	var b int64
	for i := range th.out {
		for _, l := range th.out[i] {
			b += 8 + int64(len(l.fol))*4 + 24
		}
		for _, l := range th.in[i] {
			b += 8 + int64(len(l.fol))*4 + 24
		}
	}
	b += int64(len(th.rank)) * 8
	return b
}

// BuildStats implements Index.
func (th *TwoHop) BuildStats() BuildStats { return th.stats }

// LabelCounts returns the total number of out- and in-labels, for the
// index-size ablation.
func (th *TwoHop) LabelCounts() (out, in int64) {
	for i := range th.out {
		out += int64(len(th.out[i]))
		in += int64(len(th.in[i]))
	}
	return out, in
}
