package reach

import (
	"sync"
	"time"
	"unsafe"

	"microlink/internal/graph"
)

// TwoHop is the extended 2-hop cover of §4.1.1 (Algorithm 2): a pruned
// landmark labeling in which every out-label additionally stores the set of
// the source's followees that participate in the shortest path to the hub,
// so that weighted reachability (Eq. 4) can be recovered by label
// intersection (Eq. 5, Theorem 2). It trades slower queries for a far
// smaller index than the transitive closure (paper Table 5).
//
// Storage layout. After construction the labels are frozen into CSR-style
// arenas: one flat []thLabelFlat per direction indexed by per-node offset
// arrays, plus a single shared followee pool holding every label's
// followee set sorted ascending, with identical small sets interned once.
// Queries therefore walk two cache-contiguous label runs and dedup followee
// sets by sorted merge instead of quadratic scans; SizeBytes reports the
// measured arena sizes, not an estimate.
//
// Exactness note. Distances returned by Query are exact within the hop
// bound (the standard PLL cover property). Followee sets are exact for the
// vast majority of pairs but can be *under*-approximated in two corner
// cases inherited from the paper's algorithm: (1) pairs whose every
// covering hub equals the source itself are answered through in-labels,
// which Algorithm 2 (line 30) populates only on strict distance
// improvement, and (2) equal-length alternative shortest paths through
// pruned subtrees. We mitigate (1) by recording the hub's first-hop
// followee set inside in-labels during the forward BFS, which Eq. 5 then
// consumes for the hub = source case. The property tests in reach_test.go
// and theorems_test.go assert distance exactness and followee-subset
// behaviour against the naive oracle; empirically the sets are exact on
// ~97.5% of reachable pairs of random small-world graphs
// (TestTwoHopFolloweeExactnessRate).
type TwoHop struct {
	g     *graph.Graph
	h     int
	rank  []int32 // node → rank (0 = highest degree)
	order []graph.NodeID

	// Frozen label arenas. outOff/inOff have n+1 entries; node u's labels
	// are outLab[outOff[u]:outOff[u+1]], sorted by hub rank. Followee sets
	// live in folPool, each run sorted ascending by node id.
	outOff  []int32
	inOff   []int32
	outLab  []thLabelFlat
	inLab   []thLabelFlat
	folPool []graph.NodeID

	stats BuildStats
	info  TwoHopBuildInfo
}

// thLabelFlat is one frozen 2-hop label entry: hub rank, distance and the
// label's followee set as a run inside the shared pool. For out-labels the
// set is F_{v→hub}; for in-labels it is F_{hub→v}.
type thLabelFlat struct {
	hub    int32
	folOff int32
	folLen uint16
	dist   uint8
}

const infHops = 1 << 30

// rankInf sentinels an exhausted label list in the merge walks.
const rankInf = int32(1<<31 - 1)

// TwoHopOptions tunes Algorithm 2.
type TwoHopOptions struct {
	// MaxHops is the hop bound H; ≤ 0 selects DefaultMaxHops.
	MaxHops int
	// Workers bounds construction parallelism; ≤ 0 selects GOMAXPROCS.
	// Workers == 1 runs the exact serial Algorithm 2 (hub batches of one),
	// which the oracle tests pin; Workers > 1 processes hubs in rank-
	// ordered batches (see BatchSize) with identical distances and a
	// slightly larger label set.
	Workers int
	// BatchSize is the number of hubs whose pruned BFS runs against the
	// same frozen label snapshot per round; ≤ 0 selects 1 when the
	// effective worker count is 1 (exact serial semantics) and
	// DefaultTwoHopBatch otherwise. Output is bit-for-bit deterministic
	// for a fixed batch size regardless of worker count or scheduling.
	BatchSize int
	// RandomOrder replaces the degree-descending landmark order of
	// Algorithm 2 line 1 with node-id order. Exists only for the ablation
	// bench showing why degree ordering matters.
	RandomOrder bool
}

// TwoHopBuildInfo reports how a cover was constructed, feeding the
// microlink_reach_twohop_* gauges and the `linkbench index` runner.
type TwoHopBuildInfo struct {
	Workers    int   // effective worker count (0 for a loaded index)
	BatchSize  int   // effective hub batch size
	Partitions int   // node-range partitions the merge/freeze fan over
	FolRefs    int64 // followee ids referenced by labels (pre-intern)
	FolPool    int64 // followee ids stored after interning

	// Per-stage wall-clock split of the build (BFS + Merge + Freeze ≈
	// BuildStats().BuildTime): BFSTime covers the pruned hub BFS phases,
	// MergeTime the partitioned delta merges, FreezeTime the conversion
	// into the flat CSR arenas. BarrierWait is the mean per-worker idle
	// spent at the batch-epoch fences waiting for each phase's slowest
	// worker — it is a slice of the BFS/merge wall clocks, not an extra
	// stage — and is the number the ISSUE-10 CI gate watches so the old
	// single-goroutine merge barrier cannot silently come back.
	BFSTime     time.Duration
	MergeTime   time.Duration
	BarrierWait time.Duration
	FreezeTime  time.Duration

	// MergeUtilization is each merge worker's busy fraction of the merge
	// wall clock (len = merge fan-out; nil when the merge ran serially).
	MergeUtilization []float64
}

// BuildInfo returns construction metadata for the last build. A cover
// loaded with ReadTwoHop reports zero Workers/BatchSize.
func (th *TwoHop) BuildInfo() TwoHopBuildInfo { return th.info }

// MaxHops returns the hop bound H the cover was built with.
func (th *TwoHop) MaxHops() int { return th.h }

// microlint:noalloc
func (th *TwoHop) outLabels(u graph.NodeID) []thLabelFlat {
	return th.outLab[th.outOff[u]:th.outOff[u+1]]
}

// microlint:noalloc
func (th *TwoHop) inLabels(u graph.NodeID) []thLabelFlat {
	return th.inLab[th.inOff[u]:th.inOff[u+1]]
}

// microlint:noalloc
func (th *TwoHop) folSet(l thLabelFlat) []graph.NodeID {
	return th.folPool[l.folOff : l.folOff+int32(l.folLen)]
}

// thScratch is the reusable per-query scratch threaded through
// queryRank/Query so steady-state queries allocate nothing: fol
// accumulates the followee union, tmp is the merge double-buffer.
type thScratch struct {
	fol []graph.NodeID
	tmp []graph.NodeID
}

var thScratchPool = sync.Pool{New: func() any { return new(thScratch) }}

// union folds a sorted set into the sorted accumulator sc.fol. All
// growth lands in the scratch's own fields, so steady state reuses
// their capacity.
//
// microlint:noalloc
func (sc *thScratch) union(set []graph.NodeID) {
	if len(set) == 0 {
		return
	}
	if len(sc.fol) == 0 {
		sc.fol = append(sc.fol[:0], set...)
		return
	}
	a, b := sc.fol, set
	dst := sc.tmp[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	sc.fol, sc.tmp = dst, a
}

// queryRank evaluates Eq. 5 on the frozen labels: the exact shortest-path
// distance from s to t (infHops when unreachable within H) and the union of
// the followee sets over all hubs achieving the minimum (Theorem 2), sorted
// ascending inside sc.fol. Two merge walks over the rank-sorted label runs:
// the first finds the minimum distance, the second unions only the followee
// sets of hubs achieving it, so non-minimal labels cost no set work.
//
// microlint:noalloc
func (th *TwoHop) queryRank(s, t graph.NodeID, sc *thScratch) (int, []graph.NodeID) {
	sc.fol = sc.fol[:0]
	if s == t {
		return 0, nil
	}
	ls, lt := th.outLabels(s), th.inLabels(t)
	rs, rt := th.rank[s], th.rank[t]
	best := infHops

	// Pass 1: minimum distance. Virtual self entries: hub = t (t ∈ Lout(s)
	// directly) and hub = s (s ∈ Lin(t)).
	i, j := 0, 0
	for i < len(ls) || j < len(lt) {
		hi, hj := rankInf, rankInf
		if i < len(ls) {
			hi = ls[i].hub
		}
		if j < len(lt) {
			hj = lt[j].hub
		}
		switch {
		case hi < hj:
			if hi == rt {
				if d := int(ls[i].dist); d <= th.h && d < best {
					best = d
				}
			}
			i++
		case hj < hi:
			if hj == rs {
				if d := int(lt[j].dist); d <= th.h && d < best {
					best = d
				}
			}
			j++
		default:
			if d := int(ls[i].dist) + int(lt[j].dist); d <= th.h && d < best {
				best = d
			}
			i++
			j++
		}
	}
	if best == infHops {
		return infHops, nil
	}

	// Pass 2: union the followee sets of every hub achieving best.
	i, j = 0, 0
	for i < len(ls) || j < len(lt) {
		hi, hj := rankInf, rankInf
		if i < len(ls) {
			hi = ls[i].hub
		}
		if j < len(lt) {
			hj = lt[j].hub
		}
		switch {
		case hi < hj:
			if hi == rt && int(ls[i].dist) == best {
				sc.union(th.folSet(ls[i]))
			}
			i++
		case hj < hi:
			// Hub is s itself: d = 0 + d_s,t, F from the in-label.
			if hj == rs && int(lt[j].dist) == best {
				sc.union(th.folSet(lt[j]))
			}
			j++
		default:
			if int(ls[i].dist)+int(lt[j].dist) == best {
				sc.union(th.folSet(ls[i]))
			}
			i++
			j++
		}
	}
	return best, sc.fol
}

// Query implements Index. The returned followee slice is freshly allocated;
// the allocation-free variants are QueryAppend and R.
func (th *TwoHop) Query(u, v graph.NodeID) (Result, bool) {
	return th.QueryAppend(u, v, nil)
}

// QueryAppend is Query with caller-owned followee storage: the result's
// followee set is appended to buf (which may be nil) and returned inside
// Result.Followees. With a reused buffer of sufficient capacity the call
// performs no allocation.
//
// microlint:noalloc
func (th *TwoHop) QueryAppend(u, v graph.NodeID, buf []graph.NodeID) (Result, bool) {
	sc := thScratchPool.Get().(*thScratch)
	d, fol := th.queryRank(u, v, sc)
	if d >= infHops {
		thScratchPool.Put(sc)
		return Result{}, false
	}
	if d == 1 && len(fol) == 0 {
		buf = append(buf, v)
	} else {
		buf = append(buf, fol...)
	}
	thScratchPool.Put(sc)
	return Result{Dist: d, Followees: buf}, true
}

// R implements Index. The whole evaluation runs on pooled scratch, so the
// linker's per-candidate hot path stays allocation-free.
//
// microlint:noalloc
func (th *TwoHop) R(u, v graph.NodeID) float64 {
	sc := thScratchPool.Get().(*thScratch)
	d, fol := th.queryRank(u, v, sc)
	var r float64
	switch {
	case d >= infHops:
		r = 0
	case d <= 1:
		r = 1
	default:
		if od := th.g.OutDegree(u); od > 0 {
			r = 1 / float64(d) * float64(len(fol)) / float64(od)
		}
	}
	thScratchPool.Put(sc)
	return r
}

// SizeBytes implements Index. With arena storage this is measured, not
// estimated: the sum of the actual backing-array and header sizes of the
// frozen index (the arenas are shrunk to exact capacity at freeze time).
func (th *TwoHop) SizeBytes() int64 {
	b := int64(unsafe.Sizeof(*th))
	b += int64(len(th.rank)) * int64(unsafe.Sizeof(int32(0)))
	b += int64(len(th.order)) * int64(unsafe.Sizeof(graph.NodeID(0)))
	b += int64(len(th.outOff)+len(th.inOff)) * int64(unsafe.Sizeof(int32(0)))
	b += int64(len(th.outLab)+len(th.inLab)) * int64(unsafe.Sizeof(thLabelFlat{}))
	b += int64(len(th.folPool)) * int64(unsafe.Sizeof(graph.NodeID(0)))
	return b
}

// BuildStats implements Index.
func (th *TwoHop) BuildStats() BuildStats { return th.stats }

// LabelCounts returns the total number of out- and in-labels, for the
// index-size ablation.
func (th *TwoHop) LabelCounts() (out, in int64) {
	return int64(len(th.outLab)), int64(len(th.inLab))
}
