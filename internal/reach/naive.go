package reach

import (
	"time"

	"microlink/internal/graph"
)

// Naive answers weighted reachability queries with no precomputation: a
// forward BFS from u finds d_uv, then a backward BFS from v bounded by
// d_uv−1 identifies which of u's followees lie on shortest paths (by
// Theorem 1, followee t participates iff d_tv = d_uv − 1). Each query costs
// O(|E|); this is the baseline whose quadratic-pairs construction cost
// motivates the incremental Algorithm 1 (paper Fig. 5(b)).
//
// Naive is safe for concurrent use: each query borrows a traversal pair
// from an internal free list.
type Naive struct {
	g    *graph.Graph
	h    int
	pool chan *naiveScratch
}

// naiveScratch pairs the two traversals one query needs.
//
// microlint:owned — handed out by the channel free list in get/put to
// exactly one query goroutine at a time.
type naiveScratch struct {
	fwd *graph.Traversal
	bwd *graph.Traversal
}

// NewNaive returns a Naive reachability oracle over g with hop bound
// maxHops (H). maxHops ≤ 0 selects DefaultMaxHops.
func NewNaive(g *graph.Graph, maxHops int) *Naive {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	return &Naive{g: g, h: maxHops, pool: make(chan *naiveScratch, 16)}
}

func (n *Naive) get() *naiveScratch {
	select {
	case s := <-n.pool:
		return s
	default:
		return &naiveScratch{fwd: graph.NewTraversal(n.g), bwd: graph.NewTraversal(n.g)}
	}
}

func (n *Naive) put(s *naiveScratch) {
	select {
	case n.pool <- s:
	default:
	}
}

// Query implements Index.
func (n *Naive) Query(u, v graph.NodeID) (Result, bool) {
	if u == v {
		return Result{Dist: 0}, true
	}
	s := n.get()
	defer n.put(s)

	d := s.fwd.ShortestDist(u, v, n.h)
	if d < 0 {
		return Result{}, false
	}
	if d == 1 {
		return Result{Dist: 1, Followees: []graph.NodeID{v}}, true
	}
	// Backward BFS from v, bounded d−1: afterwards Dist(t) is the distance
	// from t to v for every t within d−1 hops of v.
	s.bwd.Backward(v, d-1, func(graph.NodeID, int) bool { return true })
	var followees []graph.NodeID
	for _, t := range n.g.Out(u) {
		if s.bwd.Dist(t) == d-1 {
			followees = append(followees, t)
		}
	}
	return Result{Dist: d, Followees: followees}, true
}

// R implements Index.
func (n *Naive) R(u, v graph.NodeID) float64 {
	res, ok := n.Query(u, v)
	return score(res, ok, n.g.OutDegree(u))
}

// SizeBytes implements Index; the naive oracle holds no index.
func (n *Naive) SizeBytes() int64 { return 0 }

// BuildStats implements Index; the naive oracle builds nothing.
func (n *Naive) BuildStats() BuildStats { return BuildStats{} }

// NaiveClosureTime measures the cost of materialising the full weighted
// reachability matrix by running the naive per-pair query for every ordered
// pair of nodes — the "naive method" curve of Fig. 5(b). To keep the
// benchmark harness responsive on larger graphs it stops early once budget
// elapses (budget ≤ 0 means no limit) and reports the extrapolated total.
func NaiveClosureTime(g *graph.Graph, maxHops int, budget time.Duration) (measured, extrapolated time.Duration) {
	n := NewNaive(g, maxHops)
	start := time.Now()
	total := int64(g.NumNodes()) * int64(g.NumNodes())
	var done int64
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if u != v {
				n.Query(graph.NodeID(u), graph.NodeID(v))
			}
			done++
		}
		if budget > 0 && time.Since(start) > budget {
			elapsed := time.Since(start)
			return elapsed, time.Duration(float64(elapsed) * float64(total) / float64(done))
		}
	}
	elapsed := time.Since(start)
	return elapsed, elapsed
}
