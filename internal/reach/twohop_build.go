package reach

import (
	"encoding/binary"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microlink/internal/graph"
)

// Construction of the extended 2-hop cover (Algorithm 2) in rank-ordered
// hub batches. Every hub's pruned backward/forward BFS prunes against the
// label set frozen at the start of its batch and buffers its own label
// additions in a private delta; at the batch barrier the deltas merge into
// the global label lists in rank order. With batch size 1 this is exactly
// the serial Algorithm 2 (each hub sees every earlier hub's labels). With
// larger batches hubs inside one batch do not see each other, which only
// weakens pruning: distances stay exact — a label records the true BFS
// level from its hub, and the query minimum is achieved by whichever hub
// covers the pair — while the index may grow slightly (measured by
// `linkbench index`; within a few percent at the default batch size).
// Because each hub's BFS depends only on the frozen snapshot and deltas
// merge in rank order, the output is bit-for-bit deterministic for a fixed
// batch size, independent of worker count and scheduling.

// DefaultTwoHopBatch is the hub batch size used when TwoHopOptions.BatchSize
// is unset and more than one worker is in play.
const DefaultTwoHopBatch = 32

// thLabel is one 2-hop label entry in build form (per-node Go slices, fol
// in discovery order). freeze() converts these into the flat arenas the
// query path reads.
//
// microlint:owned — build-time state reached only through the worker's
// own thBuilder/thDelta; the query path reads the frozen arenas, never
// these.
type thLabel struct {
	hub  int32 // rank of the landmark
	dist uint8
	fol  []graph.NodeID
}

// thWork is the mutable label state during construction.
type thWork struct {
	g     *graph.Graph
	h     int
	rank  []int32
	order []graph.NodeID
	out   [][]thLabel // Lout, per node, sorted by hub rank
	in    [][]thLabel // Lin, per node, sorted by hub rank
}

func newThWork(g *graph.Graph, h int, randomOrder bool) *thWork {
	n := g.NumNodes()
	w := &thWork{
		g:     g,
		h:     h,
		rank:  make([]int32, n),
		order: make([]graph.NodeID, n),
		out:   make([][]thLabel, n),
		in:    make([][]thLabel, n),
	}
	for i := 0; i < n; i++ {
		w.order[i] = graph.NodeID(i)
	}
	if !randomOrder {
		sort.Slice(w.order, func(i, j int) bool {
			di, dj := g.Degree(w.order[i]), g.Degree(w.order[j])
			if di != dj {
				return di > dj
			}
			return w.order[i] < w.order[j]
		})
	}
	for r, v := range w.order {
		w.rank[v] = int32(r)
	}
	return w
}

// BuildTwoHop runs Algorithm 2 over g.
func BuildTwoHop(g *graph.Graph, opts TwoHopOptions) *TwoHop {
	h := opts.MaxHops
	if h <= 0 {
		h = DefaultMaxHops
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		if workers > 1 {
			batch = DefaultTwoHopBatch
		} else {
			batch = 1 // exact serial Algorithm 2
		}
	}
	start := time.Now()
	w := newThWork(g, h, opts.RandomOrder)
	tm := w.buildLabels(workers, batch)
	freezeStart := time.Now()
	th := w.freeze()
	tm.freeze = time.Since(freezeStart)
	th.stats = BuildStats{
		BuildTime: time.Since(start),
		Entries:   int64(len(th.outLab)) + int64(len(th.inLab)),
	}
	th.info.Workers = workers
	th.info.BatchSize = batch
	th.info.MergeWait = tm.barrier + tm.merge
	th.info.BFSTime = tm.bfs
	th.info.MergeTime = tm.merge
	th.info.FreezeTime = tm.freeze
	return th
}

// thBuildTimings is the per-stage wall-clock split buildLabels and freeze
// accumulate: bfs covers the hub BFS rounds (barrier wait included),
// barrier only the post-spawn wait on stragglers, merge the rank-ordered
// delta merges, freeze the arena conversion.
type thBuildTimings struct {
	bfs, barrier, merge, freeze time.Duration
}

// thDelta buffers one hub's label additions until the batch barrier.
// Nodes appear in BFS discovery order; merging batches hub-by-hub in rank
// order therefore keeps every node's label list sorted by hub rank.
//
// microlint:owned — deltas live in a slice indexed by batch slot; each
// worker fills exactly the slots of the hubs it was assigned, and the
// merge reads them only after the batch barrier.
type thDelta struct {
	outNodes []graph.NodeID
	outLabs  []thLabel
	inNodes  []graph.NodeID
	inLabs   []thLabel
}

func (d *thDelta) reset() {
	d.outNodes = d.outNodes[:0]
	d.outLabs = d.outLabs[:0]
	d.inNodes = d.inNodes[:0]
	d.inLabs = d.inLabs[:0]
}

// thBuilder is one worker's BFS scratch: O(n) distance marks (shared
// graph.DistMap), the per-node position of this hub's buffered label, and
// forward-BFS first-hop sets. Builders are reused across batches through
// thBuildPool.
//
// microlint:owned — per-worker scratch by contract: thBuildPool.acquire
// hands each builder to at most one worker at a time.
type thBuilder struct {
	w     *thWork
	marks *graph.DistMap
	pos   []int32          // node → index into the current delta's labels
	fpath [][]graph.NodeID // forward BFS first-hop followee sets
	qbuf  []graph.NodeID   // scratch for build-time cover queries
	cur   []graph.NodeID   // frontier double buffer
	nxt   []graph.NodeID
}

func newThBuilder(w *thWork) *thBuilder {
	n := w.g.NumNodes()
	b := &thBuilder{
		w:     w,
		marks: graph.NewDistMap(n),
		pos:   make([]int32, n),
		fpath: make([][]graph.NodeID, n),
	}
	for i := range b.pos {
		b.pos[i] = -1
	}
	return b
}

func (b *thBuilder) reset() {
	for _, v := range b.marks.Touched() {
		b.pos[v] = -1
		b.fpath[v] = b.fpath[v][:0]
	}
	b.marks.Reset()
}

func (b *thBuilder) runHub(vk graph.NodeID, k int32, d *thDelta) {
	b.backward(vk, k, d)
	b.forward(vk, k, d)
}

func (b *thBuilder) emitOut(d *thDelta, s graph.NodeID, lab thLabel) {
	b.pos[s] = int32(len(d.outLabs))
	d.outNodes = append(d.outNodes, s)
	d.outLabs = append(d.outLabs, lab)
}

func (b *thBuilder) emitIn(d *thDelta, t graph.NodeID, lab thLabel) {
	b.pos[t] = int32(len(d.inLabs))
	d.inNodes = append(d.inNodes, t)
	d.inLabs = append(d.inLabs, lab)
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// backward performs the pruned backward BFS of Algorithm 2 lines 5–29,
// labeling every node s that reaches vk with (vk, d_s,vk, F_s,vk). Labels
// are buffered in d; pruning consults only the frozen batch-start state
// (during a round the label lists of s and vk it reads are never touched
// by the round itself, so with batch size 1 this is the serial algorithm).
func (b *thBuilder) backward(vk graph.NodeID, k int32, d *thDelta) {
	defer b.reset()
	w := b.w
	b.marks.Set(vk, 0)
	frontier := append(b.cur[:0], vk)
	next := b.nxt[:0]
	for length := int32(1); length <= int32(w.h) && len(frontier) > 0; length++ {
		next = next[:0]
		for _, u := range frontier {
			for _, s := range w.g.In(u) {
				if s == vk {
					continue
				}
				switch dd := b.marks.Dist(s); {
				case dd != -1 && dd < length:
					// Reached on an earlier level: shorter path known.
				case dd == length:
					// Same-level revisit via a different followee u: a new
					// shortest path (lines 20–27).
					if p := b.pos[s]; p >= 0 {
						if ent := &d.outLabs[p]; ent.dist == uint8(length) && !containsNode(ent.fol, u) {
							ent.fol = append(ent.fol, u)
						}
					} else {
						// Covered by earlier hubs at this distance; record u
						// only if those hubs do not already encode it.
						var f []graph.NodeID
						_, f, b.qbuf = w.queryRank(s, vk, b.qbuf)
						if !containsNode(f, u) {
							b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
					}
				default: // first visit this round
					var dPrev int
					var fPrev []graph.NodeID
					dPrev, fPrev, b.qbuf = w.queryRank(s, vk, b.qbuf)
					switch {
					case int(length) < dPrev: // lines 11–19: shorter path found
						b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						b.marks.Set(s, length)
						next = append(next, s)
					case int(length) == dPrev: // lines 20–27: equal path via u
						if !containsNode(fPrev, u) {
							b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
						b.marks.Set(s, length) // visited, not expanded
					default: // pruned: earlier hubs already cover it strictly better
						b.marks.Set(s, length)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	b.cur, b.nxt = frontier[:0], next[:0]
}

// forward performs the pruned forward BFS of Algorithm 2 line 30, labeling
// every node t reachable from vk with (vk, d_vk,t) plus — our extension —
// the hub's first-hop followee set F_vk,t, which Eq. 5 needs when the hub
// itself is the query source.
func (b *thBuilder) forward(vk graph.NodeID, k int32, d *thDelta) {
	defer b.reset()
	w := b.w
	b.marks.Set(vk, 0)
	frontier := append(b.cur[:0], vk)
	next := b.nxt[:0]
	for length := int32(1); length <= int32(w.h) && len(frontier) > 0; length++ {
		next = next[:0]
		for _, u := range frontier {
			var pf []graph.NodeID
			if length > 1 {
				pf = b.fpath[u]
			}
			for _, t := range w.g.Out(u) {
				if t == vk {
					continue
				}
				firstHop := pf
				var one [1]graph.NodeID
				if length == 1 {
					one[0] = t
					firstHop = one[:]
				}
				switch dd := b.marks.Dist(t); {
				case dd != -1 && dd < length:
					// Earlier level: shorter path known.
				case dd == length:
					// Same-level revisit: merge first-hop sets.
					merged := false
					for _, f := range firstHop {
						if !containsNode(b.fpath[t], f) {
							b.fpath[t] = append(b.fpath[t], f)
							merged = true
						}
					}
					if merged {
						if p := b.pos[t]; p >= 0 {
							if ent := &d.inLabs[p]; ent.dist == uint8(length) {
								for _, f := range firstHop {
									if !containsNode(ent.fol, f) {
										ent.fol = append(ent.fol, f)
									}
								}
							}
						}
					}
				default: // first visit
					var dPrev int
					dPrev, _, b.qbuf = w.queryRank(vk, t, b.qbuf)
					if int(length) < dPrev {
						fol := append([]graph.NodeID(nil), firstHop...)
						b.emitIn(d, t, thLabel{hub: k, dist: uint8(length), fol: fol})
						b.marks.Set(t, length)
						b.fpath[t] = append(b.fpath[t][:0], firstHop...)
						next = append(next, t)
					} else {
						// Covered (line 30 updates only on improvement).
						b.marks.Set(t, length)
						b.fpath[t] = append(b.fpath[t][:0], firstHop...)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	b.cur, b.nxt = frontier[:0], next[:0]
}

// queryRank is the build-time Eq. 5 evaluation over the mutable per-node
// label slices, appending the followee union into buf and returning it for
// reuse (the query-path equivalent over the frozen arenas lives in
// twohop.go). Returned fol aliases buf and is valid until the next call.
func (w *thWork) queryRank(s, t graph.NodeID, buf []graph.NodeID) (int, []graph.NodeID, []graph.NodeID) {
	buf = buf[:0]
	if s == t {
		return 0, nil, buf
	}
	ls, lt := w.out[s], w.in[t]
	rs, rt := w.rank[s], w.rank[t]
	best := infHops
	fol := buf

	consider := func(d int, f []graph.NodeID) {
		if d > w.h || d > best {
			return
		}
		if d < best {
			best = d
			fol = fol[:0]
		}
		for _, x := range f {
			if !containsNode(fol, x) {
				fol = append(fol, x)
			}
		}
	}

	// Virtual self entries: hub = t (t ∈ Lout(s) directly) and hub = s
	// (s ∈ Lin(t); followee info comes from the in-label).
	i, j := 0, 0
	for i < len(ls) || j < len(lt) {
		hi, hj := rankInf, rankInf
		if i < len(ls) {
			hi = ls[i].hub
		}
		if j < len(lt) {
			hj = lt[j].hub
		}
		switch {
		case hi < hj:
			if hi == rt { // hub is t itself: d = d_s,t + 0
				consider(int(ls[i].dist), ls[i].fol)
			}
			i++
		case hj < hi:
			if hj == rs { // hub is s itself: d = 0 + d_s,t, F from in-label
				consider(int(lt[j].dist), lt[j].fol)
			}
			j++
		default:
			consider(int(ls[i].dist)+int(lt[j].dist), ls[i].fol)
			i++
			j++
		}
	}
	if best == infHops {
		return infHops, nil, fol
	}
	return best, fol, fol
}

// thBuildPool hands out per-worker BFS scratch across batches so the O(n)
// builder state is allocated once per worker, not once per batch.
type thBuildPool struct {
	w    *thWork
	mu   sync.Mutex   // microlint:lock-order reach-build
	free []*thBuilder // microlint:guarded-by mu
}

func (p *thBuildPool) acquire() *thBuilder {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return newThBuilder(p.w)
}

func (p *thBuildPool) release(b *thBuilder) {
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// buildLabels processes the ranked hubs in batches of batchSize, fanning
// each batch across up to workers goroutines. Returns the accumulated
// per-stage timings; barrier+merge is the parallel overhead the
// microlink_reach_twohop_build_merge_wait_seconds gauge reports.
func (w *thWork) buildLabels(workers, batchSize int) thBuildTimings {
	n := len(w.order)
	pool := &thBuildPool{w: w}
	deltas := make([]thDelta, batchSize)
	var tm thBuildTimings
	for lo := 0; lo < n; lo += batchSize {
		m := min(batchSize, n-lo)
		ds := deltas[:m]
		for i := range ds {
			ds[i].reset()
		}
		bfsStart := time.Now()
		if nw := min(workers, m); nw <= 1 {
			b := pool.acquire()
			for i := 0; i < m; i++ {
				b.runHub(w.order[lo+i], int32(lo+i), &ds[i])
			}
			pool.release(b)
		} else {
			// Hubs are claimed dynamically: ranks inside a batch differ
			// wildly in BFS cost (rank 0 is the highest-degree node), so
			// static striping would leave workers idle behind stragglers.
			var nextHub atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < nw; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					b := pool.acquire()
					defer pool.release(b)
					for {
						i := int(nextHub.Add(1)) - 1
						if i >= m {
							return
						}
						b.runHub(w.order[lo+i], int32(lo+i), &ds[i])
					}
				}()
			}
			barrier := time.Now()
			wg.Wait()
			tm.barrier += time.Since(barrier)
		}
		tm.bfs += time.Since(bfsStart)
		mergeStart := time.Now()
		for i := range ds {
			d := &ds[i]
			for j, s := range d.outNodes {
				w.out[s] = append(w.out[s], d.outLabs[j])
			}
			for j, t := range d.inNodes {
				w.in[t] = append(w.in[t], d.inLabs[j])
			}
		}
		tm.merge += time.Since(mergeStart)
	}
	return tm
}

// maxInternedFol bounds the followee-set length the freeze-time interning
// table keys on; longer sets (rare — a hub's whole first-hop neighborhood)
// are appended to the pool directly without a lookup.
const maxInternedFol = 16

// maxFolLen caps a single label's followee set at the serialization
// format's uint16 length. Unreachable on realistic social graphs (the set
// is bounded by one node's degree); truncation keeps the subset property.
const maxFolLen = 1<<16 - 1

// freeze converts the built per-node label slices into the flat CSR arenas
// of TwoHop: labels become cache-contiguous runs, every followee set is
// sorted ascending (enabling the query path's merge-based dedup), and
// identical small sets are interned once in the shared pool.
func (w *thWork) freeze() *TwoHop {
	n := w.g.NumNodes()
	th := &TwoHop{
		g:      w.g,
		h:      w.h,
		rank:   w.rank,
		order:  w.order,
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
	}
	var nOut, nIn int
	for u := 0; u < n; u++ {
		nOut += len(w.out[u])
		nIn += len(w.in[u])
	}
	th.outLab = make([]thLabelFlat, 0, nOut)
	th.inLab = make([]thLabelFlat, 0, nIn)

	intern := make(map[string]int32)
	var key []byte
	addSet := func(fol []graph.NodeID) (int32, uint16) {
		if len(fol) == 0 {
			return 0, 0
		}
		if len(fol) > maxFolLen {
			fol = fol[:maxFolLen]
		}
		sortNodeIDs(fol)
		th.info.FolRefs += int64(len(fol))
		if len(fol) <= maxInternedFol {
			key = key[:0]
			for _, v := range fol {
				key = binary.LittleEndian.AppendUint32(key, uint32(v))
			}
			if off, ok := intern[string(key)]; ok {
				return off, uint16(len(fol))
			}
			off := int32(len(th.folPool))
			th.folPool = append(th.folPool, fol...)
			intern[string(key)] = off
			return off, uint16(len(fol))
		}
		off := int32(len(th.folPool))
		th.folPool = append(th.folPool, fol...)
		return off, uint16(len(fol))
	}

	freezeDir := func(src [][]thLabel, off []int32, dst []thLabelFlat) []thLabelFlat {
		for u := 0; u < n; u++ {
			off[u] = int32(len(dst))
			labs := src[u]
			for i := range labs {
				l := &labs[i]
				folOff, folLen := addSet(l.fol)
				dst = append(dst, thLabelFlat{hub: l.hub, folOff: folOff, folLen: folLen, dist: l.dist})
			}
			src[u] = nil // release build storage as we go
		}
		off[n] = int32(len(dst))
		return dst
	}
	th.outLab = freezeDir(w.out, th.outOff, th.outLab)
	th.inLab = freezeDir(w.in, th.inOff, th.inLab)

	// Shrink the pool to exact capacity so SizeBytes reports reality.
	th.folPool = append(make([]graph.NodeID, 0, len(th.folPool)), th.folPool...)
	th.info.FolPool = int64(len(th.folPool))
	return th
}

// sortNodeIDs sorts a (small) followee set ascending in place.
func sortNodeIDs(s []graph.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
