package reach

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microlink/internal/graph"
)

// Construction of the extended 2-hop cover (Algorithm 2) in rank-ordered
// hub batches. Every hub's pruned backward/forward BFS prunes against the
// label set frozen at the start of its batch and buffers its own label
// additions in a private delta; when the batch's BFS epoch ends the
// deltas merge into the global label lists in rank order. With batch size
// 1 this is exactly the serial Algorithm 2 (each hub sees every earlier
// hub's labels). With larger batches hubs inside one batch do not see
// each other, which only weakens pruning: distances stay exact — a label
// records the true BFS level from its hub, and the query minimum is
// achieved by whichever hub covers the pair — while the index may grow
// slightly (measured by `linkbench index`; within a few percent at the
// default batch size).
//
// The merge itself is barrier-free in the sense that no single goroutine
// serialises it: labels are per-node, so the label lists are partitioned
// by node range and the deltas' partition buckets merge concurrently into
// disjoint partitions, claimed dynamically by the same workers that ran
// the BFS. The only global synchronisation left is the batch epoch (a
// WaitGroup fence between a batch's BFS and its merge, and between the
// merge and the next batch's BFS) that keeps rank-order pruning correct.
// Because each hub's BFS depends only on the frozen snapshot, each node's
// list receives its labels in rank order regardless of which worker owns
// its partition, and the freeze stitches the followee pool in a fixed
// serial order, the output is bit-for-bit deterministic for a fixed batch
// size, independent of worker count, partition count, and scheduling.

// DefaultTwoHopBatch is the hub batch size used when TwoHopOptions.BatchSize
// is unset and more than one worker is in play.
const DefaultTwoHopBatch = 32

// Node-range partitioning of the label arena. Spans are powers of two so
// the emit hot path maps node → partition with one shift; the span floor
// keeps buckets from degenerating into per-node slices on small graphs
// and the partition cap bounds per-delta bucket headers on huge ones.
const (
	thMinPartShift  = 6   // minimum span: 64 nodes per partition
	thMaxPartitions = 256 // upper bound on partition count
)

// partitionScheme fixes the node-range partitioning for an n-node build.
// It depends only on n — never on the worker count — so everything
// downstream of it (delta bucket layout, merge order, freeze stitch
// order) is a pure function of the graph and the batch size.
func partitionScheme(n int) (shift uint, parts int) {
	shift = thMinPartShift
	for n>>shift >= thMaxPartitions {
		shift++
	}
	parts = (n + (1 << shift) - 1) >> shift
	if parts < 1 {
		parts = 1
	}
	return shift, parts
}

// thLabel is one 2-hop label entry in build form (per-node Go slices, fol
// in discovery order). freeze() converts these into the flat arenas the
// query path reads.
//
// microlint:owned — build-time state reached only through the worker's
// own thBuilder/thDelta; the query path reads the frozen arenas, never
// these.
type thLabel struct {
	hub  int32 // rank of the landmark
	dist uint8
	fol  []graph.NodeID
}

// thWork is the mutable label state during construction.
type thWork struct {
	g      *graph.Graph
	h      int
	rank   []int32
	order  []graph.NodeID
	out    [][]thLabel // Lout, per node, sorted by hub rank
	in     [][]thLabel // Lin, per node, sorted by hub rank
	pshift uint        // node → partition is node >> pshift
	nparts int         // number of node-range partitions
}

func newThWork(g *graph.Graph, h int, randomOrder bool) *thWork {
	n := g.NumNodes()
	w := &thWork{
		g:     g,
		h:     h,
		rank:  make([]int32, n),
		order: make([]graph.NodeID, n),
		out:   make([][]thLabel, n),
		in:    make([][]thLabel, n),
	}
	w.pshift, w.nparts = partitionScheme(n)
	for i := 0; i < n; i++ {
		w.order[i] = graph.NodeID(i)
	}
	if !randomOrder {
		sort.Slice(w.order, func(i, j int) bool {
			di, dj := g.Degree(w.order[i]), g.Degree(w.order[j])
			if di != dj {
				return di > dj
			}
			return w.order[i] < w.order[j]
		})
	}
	for r, v := range w.order {
		w.rank[v] = int32(r)
	}
	return w
}

// BuildTwoHop runs Algorithm 2 over g.
func BuildTwoHop(g *graph.Graph, opts TwoHopOptions) *TwoHop {
	h := opts.MaxHops
	if h <= 0 {
		h = DefaultMaxHops
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		if workers > 1 {
			batch = DefaultTwoHopBatch
		} else {
			batch = 1 // exact serial Algorithm 2
		}
	}
	start := time.Now()
	w := newThWork(g, h, opts.RandomOrder)
	tm := w.buildLabels(workers, batch)
	freezeStart := time.Now()
	th := w.freeze(workers)
	tm.freeze = time.Since(freezeStart)
	th.stats = BuildStats{
		BuildTime: time.Since(start),
		Entries:   int64(len(th.outLab)) + int64(len(th.inLab)),
	}
	th.info.Workers = workers
	th.info.BatchSize = batch
	th.info.BFSTime = tm.bfs
	th.info.MergeTime = tm.merge
	th.info.BarrierWait = tm.barrier
	th.info.FreezeTime = tm.freeze
	if tm.merge > 0 && len(tm.mergeBusy) > 0 {
		util := make([]float64, len(tm.mergeBusy))
		for i, busy := range tm.mergeBusy {
			util[i] = busy.Seconds() / tm.merge.Seconds()
		}
		th.info.MergeUtilization = util
	}
	return th
}

// thBuildTimings is the per-stage wall-clock split buildLabels and freeze
// accumulate: bfs and merge are their phases' wall clocks (each including
// its own straggler tail), barrier is the mean per-worker idle spent at
// the epoch fences waiting for the slowest worker, freeze the arena
// conversion, and mergeBusy each merge worker's total busy time (for the
// utilization report).
type thBuildTimings struct {
	bfs, barrier, merge, freeze time.Duration
	mergeBusy                   []time.Duration
}

// stragglerIdle converts per-worker phase finish times into the mean idle
// a worker spent waiting for the phase's slowest member — the honest
// "barrier wait": with dynamic claiming it is bounded by one work item,
// and it collapses to ~0 when the workers timeshare a single core.
func stragglerIdle(finish []time.Duration) time.Duration {
	if len(finish) == 0 {
		return 0
	}
	var maxf time.Duration
	for _, f := range finish {
		if f > maxf {
			maxf = f
		}
	}
	var idle time.Duration
	for _, f := range finish {
		idle += maxf - f
	}
	return idle / time.Duration(len(finish))
}

// thDeltaRun is one partition bucket of a delta: the bucket's labeled
// nodes in BFS discovery order plus their label entries, index-aligned.
//
// microlint:owned — reached only through its owning thDelta's bucket
// slices.
type thDeltaRun struct {
	nodes []graph.NodeID
	labs  []thLabel
}

// thDelta buffers one hub's label additions until the batch epoch, in
// per-node-range partition buckets so the merge can fan out workers over
// disjoint partitions without locks.
//
// microlint:owned — deltas live in a slice indexed by batch slot; the
// worker that claimed the slot's hub fills its buckets during the BFS
// phase, and after the epoch fence each bucket is read by exactly one
// merge worker (partitions are claimed off an atomic counter).
type thDelta struct {
	out []thDeltaRun // one bucket per node-range partition
	in  []thDeltaRun
}

func (d *thDelta) init(nparts int) {
	d.out = make([]thDeltaRun, nparts)
	d.in = make([]thDeltaRun, nparts)
}

func (d *thDelta) reset() {
	for i := range d.out {
		d.out[i].nodes = d.out[i].nodes[:0]
		d.out[i].labs = d.out[i].labs[:0]
	}
	for i := range d.in {
		d.in[i].nodes = d.in[i].nodes[:0]
		d.in[i].labs = d.in[i].labs[:0]
	}
}

// thBuilder is one worker's BFS scratch: O(n) distance marks (shared
// graph.DistMap), the per-node position of this hub's buffered label, and
// forward-BFS first-hop sets. Builders are reused across batches through
// thBuildPool.
//
// microlint:owned — per-worker scratch by contract: thBuildPool.acquire
// hands each builder to at most one worker at a time.
type thBuilder struct {
	w     *thWork
	marks *graph.DistMap
	pos   []int32          // node → index into the current delta's bucket labs
	fpath [][]graph.NodeID // forward BFS first-hop followee sets
	qbuf  []graph.NodeID   // scratch for build-time cover queries
	cur   []graph.NodeID   // frontier double buffer
	nxt   []graph.NodeID
}

func newThBuilder(w *thWork) *thBuilder {
	n := w.g.NumNodes()
	b := &thBuilder{
		w:     w,
		marks: graph.NewDistMap(n),
		pos:   make([]int32, n),
		fpath: make([][]graph.NodeID, n),
	}
	for i := range b.pos {
		b.pos[i] = -1
	}
	return b
}

func (b *thBuilder) reset() {
	for _, v := range b.marks.Touched() {
		b.pos[v] = -1
		b.fpath[v] = b.fpath[v][:0]
	}
	b.marks.Reset()
}

func (b *thBuilder) runHub(vk graph.NodeID, k int32, d *thDelta) {
	b.backward(vk, k, d)
	b.forward(vk, k, d)
}

func (b *thBuilder) emitOut(d *thDelta, s graph.NodeID, lab thLabel) {
	r := &d.out[uint32(s)>>b.w.pshift]
	b.pos[s] = int32(len(r.labs))
	r.nodes = append(r.nodes, s)
	r.labs = append(r.labs, lab)
}

func (b *thBuilder) emitIn(d *thDelta, t graph.NodeID, lab thLabel) {
	r := &d.in[uint32(t)>>b.w.pshift]
	b.pos[t] = int32(len(r.labs))
	r.nodes = append(r.nodes, t)
	r.labs = append(r.labs, lab)
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// backward performs the pruned backward BFS of Algorithm 2 lines 5–29,
// labeling every node s that reaches vk with (vk, d_s,vk, F_s,vk). Labels
// are buffered in d; pruning consults only the frozen batch-start state
// (during a round the label lists of s and vk it reads are never touched
// by the round itself, so with batch size 1 this is the serial algorithm).
func (b *thBuilder) backward(vk graph.NodeID, k int32, d *thDelta) {
	defer b.reset()
	w := b.w
	b.marks.Set(vk, 0)
	frontier := append(b.cur[:0], vk)
	next := b.nxt[:0]
	for length := int32(1); length <= int32(w.h) && len(frontier) > 0; length++ {
		next = next[:0]
		for _, u := range frontier {
			for _, s := range w.g.In(u) {
				if s == vk {
					continue
				}
				switch dd := b.marks.Dist(s); {
				case dd != -1 && dd < length:
					// Reached on an earlier level: shorter path known.
				case dd == length:
					// Same-level revisit via a different followee u: a new
					// shortest path (lines 20–27).
					if p := b.pos[s]; p >= 0 {
						if ent := &d.out[uint32(s)>>w.pshift].labs[p]; ent.dist == uint8(length) && !containsNode(ent.fol, u) {
							ent.fol = append(ent.fol, u)
						}
					} else {
						// Covered by earlier hubs at this distance; record u
						// only if those hubs do not already encode it.
						var f []graph.NodeID
						_, f, b.qbuf = w.queryRank(s, vk, b.qbuf)
						if !containsNode(f, u) {
							b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
					}
				default: // first visit this round
					var dPrev int
					var fPrev []graph.NodeID
					dPrev, fPrev, b.qbuf = w.queryRank(s, vk, b.qbuf)
					switch {
					case int(length) < dPrev: // lines 11–19: shorter path found
						b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						b.marks.Set(s, length)
						next = append(next, s)
					case int(length) == dPrev: // lines 20–27: equal path via u
						if !containsNode(fPrev, u) {
							b.emitOut(d, s, thLabel{hub: k, dist: uint8(length), fol: []graph.NodeID{u}})
						}
						b.marks.Set(s, length) // visited, not expanded
					default: // pruned: earlier hubs already cover it strictly better
						b.marks.Set(s, length)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	b.cur, b.nxt = frontier[:0], next[:0]
}

// forward performs the pruned forward BFS of Algorithm 2 line 30, labeling
// every node t reachable from vk with (vk, d_vk,t) plus — our extension —
// the hub's first-hop followee set F_vk,t, which Eq. 5 needs when the hub
// itself is the query source.
func (b *thBuilder) forward(vk graph.NodeID, k int32, d *thDelta) {
	defer b.reset()
	w := b.w
	b.marks.Set(vk, 0)
	frontier := append(b.cur[:0], vk)
	next := b.nxt[:0]
	for length := int32(1); length <= int32(w.h) && len(frontier) > 0; length++ {
		next = next[:0]
		for _, u := range frontier {
			var pf []graph.NodeID
			if length > 1 {
				pf = b.fpath[u]
			}
			for _, t := range w.g.Out(u) {
				if t == vk {
					continue
				}
				firstHop := pf
				var one [1]graph.NodeID
				if length == 1 {
					one[0] = t
					firstHop = one[:]
				}
				switch dd := b.marks.Dist(t); {
				case dd != -1 && dd < length:
					// Earlier level: shorter path known.
				case dd == length:
					// Same-level revisit: merge first-hop sets.
					merged := false
					for _, f := range firstHop {
						if !containsNode(b.fpath[t], f) {
							b.fpath[t] = append(b.fpath[t], f)
							merged = true
						}
					}
					if merged {
						if p := b.pos[t]; p >= 0 {
							if ent := &d.in[uint32(t)>>w.pshift].labs[p]; ent.dist == uint8(length) {
								for _, f := range firstHop {
									if !containsNode(ent.fol, f) {
										ent.fol = append(ent.fol, f)
									}
								}
							}
						}
					}
				default: // first visit
					var dPrev int
					dPrev, _, b.qbuf = w.queryRank(vk, t, b.qbuf)
					if int(length) < dPrev {
						fol := append([]graph.NodeID(nil), firstHop...)
						b.emitIn(d, t, thLabel{hub: k, dist: uint8(length), fol: fol})
						b.marks.Set(t, length)
						b.fpath[t] = append(b.fpath[t][:0], firstHop...)
						next = append(next, t)
					} else {
						// Covered (line 30 updates only on improvement).
						b.marks.Set(t, length)
						b.fpath[t] = append(b.fpath[t][:0], firstHop...)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	b.cur, b.nxt = frontier[:0], next[:0]
}

// queryRank is the build-time Eq. 5 evaluation over the mutable per-node
// label slices, appending the followee union into buf and returning it for
// reuse (the query-path equivalent over the frozen arenas lives in
// twohop.go). Returned fol aliases buf and is valid until the next call.
func (w *thWork) queryRank(s, t graph.NodeID, buf []graph.NodeID) (int, []graph.NodeID, []graph.NodeID) {
	buf = buf[:0]
	if s == t {
		return 0, nil, buf
	}
	ls, lt := w.out[s], w.in[t]
	rs, rt := w.rank[s], w.rank[t]
	best := infHops
	fol := buf

	consider := func(d int, f []graph.NodeID) {
		if d > w.h || d > best {
			return
		}
		if d < best {
			best = d
			fol = fol[:0]
		}
		for _, x := range f {
			if !containsNode(fol, x) {
				fol = append(fol, x)
			}
		}
	}

	// Virtual self entries: hub = t (t ∈ Lout(s) directly) and hub = s
	// (s ∈ Lin(t); followee info comes from the in-label).
	i, j := 0, 0
	for i < len(ls) || j < len(lt) {
		hi, hj := rankInf, rankInf
		if i < len(ls) {
			hi = ls[i].hub
		}
		if j < len(lt) {
			hj = lt[j].hub
		}
		switch {
		case hi < hj:
			if hi == rt { // hub is t itself: d = d_s,t + 0
				consider(int(ls[i].dist), ls[i].fol)
			}
			i++
		case hj < hi:
			if hj == rs { // hub is s itself: d = 0 + d_s,t, F from in-label
				consider(int(lt[j].dist), lt[j].fol)
			}
			j++
		default:
			consider(int(ls[i].dist)+int(lt[j].dist), ls[i].fol)
			i++
			j++
		}
	}
	if best == infHops {
		return infHops, nil, fol
	}
	return best, fol, fol
}

// thBuildPool hands out per-worker BFS scratch across batches so the O(n)
// builder state is allocated once per worker, not once per batch.
type thBuildPool struct {
	w    *thWork
	mu   sync.Mutex   // microlint:lock-order reach-build
	free []*thBuilder // microlint:guarded-by mu
}

func (p *thBuildPool) acquire() *thBuilder {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return newThBuilder(p.w)
}

func (p *thBuildPool) release(b *thBuilder) {
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// mergeDeltaPartition folds every delta's partition-p bucket into the
// per-node label lists, deltas in batch-slot (= hub rank) order, so each
// node's list stays sorted by hub rank. Partitions are disjoint node
// ranges, so concurrent calls for different p touch disjoint entries of
// out and in: the merge needs no locks, only the batch epoch around it.
func mergeDeltaPartition(out, in [][]thLabel, ds []thDelta, p int) {
	for i := range ds {
		r := &ds[i].out[p]
		for j, s := range r.nodes {
			out[s] = append(out[s], r.labs[j])
		}
		r = &ds[i].in[p]
		for j, t := range r.nodes {
			in[t] = append(in[t], r.labs[j])
		}
	}
}

// buildLabels processes the ranked hubs in batches of batchSize. Each
// batch runs two phases over the same worker budget: the BFS phase fans
// hubs across goroutines (claimed dynamically off an atomic counter —
// ranks inside a batch differ wildly in BFS cost, so static striping
// would idle workers behind stragglers), then the merge phase fans the
// node-range partitions across goroutines the same way. The WaitGroup
// fences between the phases are the batch epoch that keeps rank-order
// pruning correct; there is no single-goroutine merge serialising the
// build. Returns the accumulated per-stage timings.
func (w *thWork) buildLabels(workers, batchSize int) thBuildTimings {
	n := len(w.order)
	pool := &thBuildPool{w: w}
	deltas := make([]thDelta, batchSize)
	for i := range deltas {
		deltas[i].init(w.nparts)
	}
	var tm thBuildTimings
	nwm := min(workers, w.nparts) // merge fan-out
	if workers > 1 && nwm > 1 {
		tm.mergeBusy = make([]time.Duration, nwm)
	}
	bfsFinish := make([]time.Duration, workers)
	mergeFinish := make([]time.Duration, nwm)
	out, in := w.out, w.in
	for lo := 0; lo < n; lo += batchSize {
		m := min(batchSize, n-lo)
		ds := deltas[:m]
		for i := range ds {
			ds[i].reset()
		}

		// Phase 1: pruned hub BFS against the batch-start label snapshot.
		bfsStart := time.Now()
		if nwb := min(workers, m); nwb <= 1 {
			b := pool.acquire()
			for i := 0; i < m; i++ {
				b.runHub(w.order[lo+i], int32(lo+i), &ds[i])
			}
			pool.release(b)
		} else {
			finish := bfsFinish[:nwb]
			var nextHub atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < nwb; g++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					b := pool.acquire()
					defer pool.release(b)
					for {
						i := int(nextHub.Add(1)) - 1
						if i >= m {
							break
						}
						b.runHub(w.order[lo+i], int32(lo+i), &ds[i])
					}
					finish[slot] = time.Since(bfsStart)
				}(g)
			}
			wg.Wait()
			tm.barrier += stragglerIdle(finish)
		}
		tm.bfs += time.Since(bfsStart)

		// Phase 2: merge the deltas' partition buckets into the disjoint
		// node-range partitions of the label lists, concurrently.
		mergeStart := time.Now()
		if nwm <= 1 || workers <= 1 {
			for p := 0; p < w.nparts; p++ {
				mergeDeltaPartition(out, in, ds, p)
			}
		} else {
			finish := mergeFinish[:nwm]
			nparts := w.nparts
			var nextPart atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < nwm; g++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					for {
						p := int(nextPart.Add(1)) - 1
						if p >= nparts {
							break
						}
						mergeDeltaPartition(out, in, ds, p)
					}
					finish[slot] = time.Since(mergeStart)
				}(g)
			}
			wg.Wait()
			tm.barrier += stragglerIdle(finish)
			for slot, f := range finish {
				tm.mergeBusy[slot] += f
			}
		}
		tm.merge += time.Since(mergeStart)
	}
	return tm
}

// maxInternedFol bounds the followee-set length the freeze-time interning
// table keys on; longer sets (rare — a hub's whole first-hop neighborhood)
// are appended to the pool directly without a lookup.
const maxInternedFol = 16

// maxFolLen caps a single label's followee set at the serialization
// format's uint16 length. Unreachable on realistic social graphs (the set
// is bounded by one node's degree); truncation keeps the subset property.
const maxFolLen = 1<<16 - 1

// hashNodeIDs is the content hash the freeze-time interning table keys
// on: FNV-1a over the set's ids with the length folded in. Candidates
// sharing a hash are verified by content compare, so collisions cost a
// probe, never correctness.
func hashNodeIDs(s []graph.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(len(s))*prime64
	for _, v := range s {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	return h
}

// internCand is one followee-pool run registered under a hash bucket of
// the freeze-time interning table.
type internCand struct {
	off int32
	n   uint16
}

// lookupIntern scans a hash bucket for a pool run equal to fol.
func lookupIntern(cands []internCand, pool, fol []graph.NodeID) (int32, bool) {
	for _, c := range cands {
		if int(c.n) != len(fol) {
			continue
		}
		run := pool[c.off : c.off+int32(c.n)]
		match := true
		for k := range run {
			if run[k] != fol[k] {
				match = false
				break
			}
		}
		if match {
			return c.off, true
		}
	}
	return 0, false
}

// prepFreeze is the parallel half of the arena conversion for nodes
// [lo, hi): it truncates and sorts every label's followee set in place,
// fills the hub/distance halves of the flat entries, and records each
// sorted set's content hash so the interning stitch never rebuilds keys.
// Returns the range's followee-reference count (the pre-intern FolRefs
// contribution). Safe to run concurrently for disjoint node ranges:
// every write lands in the range's own slice entries.
func prepFreeze(src [][]thLabel, dst []thLabelFlat, off []int32, hash []uint64, lo, hi int) int64 {
	var refs int64
	for u := lo; u < hi; u++ {
		labs := src[u]
		base := int(off[u])
		for i := range labs {
			l := &labs[i]
			if len(l.fol) > maxFolLen {
				l.fol = l.fol[:maxFolLen]
			}
			sortNodeIDs(l.fol)
			refs += int64(len(l.fol))
			dst[base+i] = thLabelFlat{hub: l.hub, dist: l.dist}
			hash[base+i] = hashNodeIDs(l.fol)
		}
	}
	return refs
}

// freeze converts the built per-node label slices into the flat CSR arenas
// of TwoHop: labels become cache-contiguous runs, every followee set is
// sorted ascending (enabling the query path's merge-based dedup), and
// identical small sets are interned once in the shared pool.
//
// The conversion runs in two stages. Stage 1 fans the per-label work that
// needs no shared state — followee-set truncation and sorting, the flat
// entries' hub/distance halves, content hashes — across workers over the
// build's node-range partitions. Stage 2 stitches the shared followee
// pool serially in a fixed order (out direction then in, nodes ascending,
// labels in rank order — exactly the order a fully serial freeze visits
// labels), so the pool layout, and with it every arena byte, is identical
// for every worker count.
func (w *thWork) freeze(workers int) *TwoHop {
	n := w.g.NumNodes()
	th := &TwoHop{
		g:      w.g,
		h:      w.h,
		rank:   w.rank,
		order:  w.order,
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
	}
	var nOut, nIn int32
	for u := 0; u < n; u++ {
		th.outOff[u] = nOut
		th.inOff[u] = nIn
		nOut += int32(len(w.out[u]))
		nIn += int32(len(w.in[u]))
	}
	th.outOff[n], th.inOff[n] = nOut, nIn
	th.outLab = make([]thLabelFlat, nOut)
	th.inLab = make([]thLabelFlat, nIn)
	outHash := make([]uint64, nOut)
	inHash := make([]uint64, nIn)

	// Stage 1: parallel per-label prep over the node-range partitions.
	var refs int64
	if nwf := min(workers, w.nparts); nwf <= 1 {
		refs = prepFreeze(w.out, th.outLab, th.outOff, outHash, 0, n) +
			prepFreeze(w.in, th.inLab, th.inOff, inHash, 0, n)
	} else {
		span := 1 << w.pshift
		nparts := w.nparts
		partRefs := make([]int64, nparts)
		out, in := w.out, w.in
		outLab, inLab := th.outLab, th.inLab
		outOff, inOff := th.outOff, th.inOff
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < nwf; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= nparts {
						return
					}
					lo := p * span
					hi := min(lo+span, n)
					partRefs[p] = prepFreeze(out, outLab, outOff, outHash, lo, hi) +
						prepFreeze(in, inLab, inOff, inHash, lo, hi)
				}
			}()
		}
		wg.Wait()
		for _, r := range partRefs {
			refs += r
		}
	}
	th.info.FolRefs = refs

	// Stage 2: serial interning stitch in the canonical label order.
	intern := make(map[uint64][]internCand)
	stitch := func(src [][]thLabel, off []int32, dst []thLabelFlat, hash []uint64) {
		for u := 0; u < n; u++ {
			labs := src[u]
			base := int(off[u])
			for i := range labs {
				l := &labs[i]
				fol := l.fol
				if len(fol) == 0 {
					continue // prep already wrote the hub/dist-only entry
				}
				folLen := uint16(len(fol))
				var folOff int32
				switch {
				case len(fol) > maxInternedFol:
					folOff = int32(len(th.folPool))
					th.folPool = append(th.folPool, fol...)
				default:
					h := hash[base+i]
					if poolOff, ok := lookupIntern(intern[h], th.folPool, fol); ok {
						folOff = poolOff
					} else {
						folOff = int32(len(th.folPool))
						th.folPool = append(th.folPool, fol...)
						intern[h] = append(intern[h], internCand{off: folOff, n: folLen})
					}
				}
				dst[base+i] = thLabelFlat{hub: l.hub, dist: l.dist, folOff: folOff, folLen: folLen}
			}
			src[u] = nil // release build storage as we go
		}
	}
	stitch(w.out, th.outOff, th.outLab, outHash)
	stitch(w.in, th.inOff, th.inLab, inHash)

	// Shrink the pool to exact capacity so SizeBytes reports reality.
	th.folPool = append(make([]graph.NodeID, 0, len(th.folPool)), th.folPool...)
	th.info.FolPool = int64(len(th.folPool))
	th.info.Partitions = w.nparts
	return th
}

// sortNodeIDs sorts a (small) followee set ascending in place.
func sortNodeIDs(s []graph.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
