package reach

import (
	"fmt"
	"math/rand"
	"testing"

	"microlink/internal/graph"
)

// benchGraph is the shared benchmark fixture: large enough that label
// construction dominates setup, small enough for -bench runs in CI.
func benchGraph() *graph.Graph {
	r := rand.New(rand.NewSource(4242))
	return randomGraph(r, 2000, 16000)
}

func BenchmarkBuildTwoHop(b *testing.B) {
	g := benchGraph()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1})
			b.ReportMetric(float64(th.SizeBytes()), "index-bytes")
		}
	})
	// Batch size is the merge-granularity knob: small batches merge (and
	// fence) often against small deltas, large batches amortize the epoch
	// but weaken in-batch pruning. Sweeping it keeps granularity
	// regressions visible in plain `go test -bench`.
	for _, batch := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("parallel/batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: batch})
				b.ReportMetric(float64(th.SizeBytes()), "index-bytes")
			}
		})
	}
}

// BenchmarkTwoHopQuery measures the frozen query hot path. Steady state
// must report 0 allocs/op: R runs entirely on pooled scratch and
// QueryAppend reuses the caller's buffer.
func BenchmarkTwoHopQuery(b *testing.B) {
	g := benchGraph()
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	r := rand.New(rand.NewSource(99))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{
			graph.NodeID(r.Intn(g.NumNodes())),
			graph.NodeID(r.Intn(g.NumNodes())),
		}
	}
	b.Run("R", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			sink += th.R(p[0], p[1])
		}
		_ = sink
	})
	b.Run("QueryAppend", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]graph.NodeID, 0, 512)
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			res, _ := th.QueryAppend(p[0], p[1], buf[:0])
			_ = res
		}
	})
}
