package reach

import (
	"math/rand"
	"testing"

	"microlink/internal/graph"
)

// benchGraph is the shared benchmark fixture: large enough that label
// construction dominates setup, small enough for -bench runs in CI.
func benchGraph() *graph.Graph {
	r := rand.New(rand.NewSource(4242))
	return randomGraph(r, 2000, 16000)
}

func BenchmarkBuildTwoHop(b *testing.B) {
	g := benchGraph()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 1})
			b.ReportMetric(float64(th.SizeBytes()), "index-bytes")
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4, Workers: 4, BatchSize: DefaultTwoHopBatch})
			b.ReportMetric(float64(th.SizeBytes()), "index-bytes")
		}
	})
}

// BenchmarkTwoHopQuery measures the frozen query hot path. Steady state
// must report 0 allocs/op: R runs entirely on pooled scratch and
// QueryAppend reuses the caller's buffer.
func BenchmarkTwoHopQuery(b *testing.B) {
	g := benchGraph()
	th := BuildTwoHop(g, TwoHopOptions{MaxHops: 4})
	r := rand.New(rand.NewSource(99))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{
			graph.NodeID(r.Intn(g.NumNodes())),
			graph.NodeID(r.Intn(g.NumNodes())),
		}
	}
	b.Run("R", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			sink += th.R(p[0], p[1])
		}
		_ = sink
	})
	b.Run("QueryAppend", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]graph.NodeID, 0, 512)
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			res, _ := th.QueryAppend(p[0], p[1], buf[:0])
			_ = res
		}
	})
}
