package reach

import (
	"sync"
	"sync/atomic"

	"microlink/internal/graph"
)

// Streaming is the reachability substrate of the ingest pipeline: a frozen
// 2-hop cover (Algorithm 2) serving queries lock-free behind an atomic
// pointer, paired with a DynamicClosure absorbing follow-edge insertions
// online as the authoritative live state. The two are reconciled by
// copy-on-swap: a rebuild snapshots the closure's adjacency, runs the
// parallel 2-hop builder off the hot path, and Install publishes the new
// arena with two atomic stores — queries never block on maintenance, and
// the gap between the live graph and the frozen arena is the bounded,
// observable staleness the ingest pipeline reports.
//
// Concurrency contract. Query/R/BuildStats read only the frozen arena
// (atomic load, no lock). The mutable half — the dynamic closure and the
// applied-edge counter — sits behind mu; InsertEdge/InsertEdges take the
// write side, SnapshotGraph/Staleness the read side. Install performs no
// locking at all: callers run it under the linker's write lock (via
// Linker.UpdateReachability) so the arena swap and the interest-cache
// flush are atomic with respect to scorers, which read the frozen arena
// inside the linker's read-locked sections and therefore never observe a
// torn index.
type Streaming struct {
	opts TwoHopOptions

	// frozen is the immutable 2-hop arena serving queries; frozenAt is the
	// applied-edge count it was built from; swaps counts installs.
	frozen   atomic.Pointer[TwoHop]
	frozenAt atomic.Int64
	swaps    atomic.Int64

	// mu guards the live (mutable) state. Edge application and
	// snapshotting acquire it and then the dynamic closure's own lock
	// (reach-dyn) through dc's methods; the rebuild manager holds its own
	// mutex (ingest-rebuild) strictly above it.
	//
	// microlint:lock-order reach-stream < reach-dyn
	//
	// Warm-restored instances (NewStreamingFromFrozen) defer the dynamic
	// closure: dc stays nil while base holds the restored graph and
	// pending buffers inserted edges, until the first SnapshotGraph
	// hydrates the closure off the serving path.
	mu         sync.RWMutex                 // microlint:lock-order reach-stream
	dc         *DynamicClosure              // microlint:guarded-by mu — nil until hydrated
	base       *graph.Graph                 // microlint:guarded-by mu — restored graph, nil once hydrated
	pending    [][2]graph.NodeID            // microlint:guarded-by mu — edges awaiting hydration
	pendingSet map[[2]graph.NodeID]struct{} // microlint:guarded-by mu — dedup for pending
	applied    int64                        // microlint:guarded-by mu
}

// NewStreaming builds the initial frozen cover and the live closure over
// g. opts selects the hop bound and the rebuild parallelism; the same
// options are reused by every subsequent Rebuild so successive arenas are
// built identically (and therefore bit-for-bit deterministically for a
// fixed batch size).
func NewStreaming(g *graph.Graph, opts TwoHopOptions) *Streaming {
	if opts.MaxHops <= 0 {
		opts.MaxHops = DefaultMaxHops
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultTwoHopBatch
	}
	st := &Streaming{
		opts: opts,
		dc:   NewDynamicClosure(g, opts.MaxHops),
	}
	st.frozen.Store(BuildTwoHop(g, opts))
	return st
}

// NewStreamingFromFrozen restores a Streaming substrate from persisted
// state: g is the live graph the arena was built from (a loaded segment,
// not a fresh build) and th the deserialized frozen arena. The dynamic
// closure — the expensive half — is NOT built here: inserted edges are
// buffered (deduplicated against g and each other) and the closure
// hydrates lazily on the first SnapshotGraph, which runs on the rebuild
// path, off serving. A warm restart therefore pays segment load plus WAL
// replay, never a closure or 2-hop construction.
func NewStreamingFromFrozen(g *graph.Graph, th *TwoHop, opts TwoHopOptions) *Streaming {
	if opts.MaxHops <= 0 {
		opts.MaxHops = DefaultMaxHops
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultTwoHopBatch
	}
	st := &Streaming{
		opts:       opts,
		base:       g,
		pendingSet: make(map[[2]graph.NodeID]struct{}),
	}
	st.frozen.Store(th)
	return st
}

// Frozen returns the currently serving 2-hop arena.
func (st *Streaming) Frozen() *TwoHop { return st.frozen.Load() }

// MaxHops returns the hop bound H the substrate builds arenas with.
func (st *Streaming) MaxHops() int { return st.opts.MaxHops }

// insertPendingLocked buffers one edge in deferred (pre-hydration) mode,
// reporting whether it was new relative to the restored graph and the
// buffer.
func (st *Streaming) insertPendingLocked(u, v graph.NodeID) bool {
	key := [2]graph.NodeID{u, v}
	if st.base.HasEdge(u, v) {
		return false
	}
	if _, dup := st.pendingSet[key]; dup {
		return false
	}
	st.pendingSet[key] = struct{}{}
	st.pending = append(st.pending, key)
	return true
}

// hydrateLocked builds the dynamic closure from the restored graph and
// replays the buffered edges into it. Called with mu held for writing.
func (st *Streaming) hydrateLocked() {
	if st.dc != nil {
		return
	}
	dc := NewDynamicClosure(st.base, st.opts.MaxHops)
	for _, p := range st.pending {
		dc.InsertEdge(p[0], p[1])
	}
	st.dc = dc
	st.base = nil
	st.pending = nil
	st.pendingSet = nil
}

// InsertEdge applies one follow edge u → v to the live closure, reporting
// whether it was new. The frozen arena is untouched: staleness grows by
// one per inserted edge until the next Install.
func (st *Streaming) InsertEdge(u, v graph.NodeID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dc == nil {
		if !st.insertPendingLocked(u, v) {
			return false
		}
	} else if !st.dc.InsertEdge(u, v) {
		return false
	}
	st.applied++
	return true
}

// InsertEdges applies a batch of follow edges under one lock acquisition —
// the payoff of the ingest pipeline's batch coalescing — and returns the
// number of edges that were new.
func (st *Streaming) InsertEdges(pairs [][2]graph.NodeID) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, p := range pairs {
		var fresh bool
		if st.dc == nil {
			fresh = st.insertPendingLocked(p[0], p[1])
		} else {
			fresh = st.dc.InsertEdge(p[0], p[1])
		}
		if fresh {
			n++
		}
	}
	st.applied += int64(n)
	return n
}

// SnapshotGraph freezes the live adjacency into an immutable Graph and
// returns it with the applied-edge count it reflects. The pair is what a
// rebuild needs: build the arena from the graph, install it stamped with
// the count.
// A warm-restored substrate hydrates its dynamic closure here, on the
// first call — the rebuild path, not the serving path.
func (st *Streaming) SnapshotGraph() (*graph.Graph, int64) {
	st.mu.RLock()
	if st.dc != nil {
		defer st.mu.RUnlock()
		return st.dc.Snapshot(), st.applied
	}
	st.mu.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hydrateLocked()
	return st.dc.Snapshot(), st.applied
}

// Rebuild constructs a fresh 2-hop arena from the current live graph,
// off any lock: the snapshot holds the read side only for the adjacency
// copy, and the (expensive) parallel build runs on a private graph.
// The result is not installed — callers publish it via Install under the
// linker's write lock so the swap excludes concurrent scorers.
func (st *Streaming) Rebuild() (*TwoHop, int64) {
	_, th, at := st.RebuildSnapshot()
	return th, at
}

// RebuildSnapshot is Rebuild keeping the graph the arena was built from —
// the persistence path needs the (graph, arena) pair so the snapshot's
// graph segment matches the reach segment's fingerprint exactly.
func (st *Streaming) RebuildSnapshot() (*graph.Graph, *TwoHop, int64) {
	g, at := st.SnapshotGraph()
	return g, BuildTwoHop(g, st.opts), at
}

// Install publishes a rebuilt arena as the serving index. It performs
// atomic stores only — no locks — because callers are expected to run it
// inside Linker.UpdateReachability, whose write lock already excludes
// every scorer and whose cache flush makes the swap observable
// atomically. Once installed the arena is frozen: publishcheck flags
// any later write through the same pointer at the call site.
//
// microlint:published-by frozen
func (st *Streaming) Install(th *TwoHop, atEdges int64) {
	st.frozen.Store(th)
	st.frozenAt.Store(atEdges)
	st.swaps.Add(1)
}

// Staleness returns the number of follow edges applied to the live
// closure but not yet reflected in the frozen arena — the pipeline's
// microlink_ingest_staleness_events gauge. Zero means the serving index
// is exactly the live graph.
func (st *Streaming) Staleness() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.applied - st.frozenAt.Load()
}

// Applied returns the total number of edges inserted since construction.
func (st *Streaming) Applied() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.applied
}

// Swaps returns how many arenas have been installed since construction.
func (st *Streaming) Swaps() int64 { return st.swaps.Load() }

// Query implements Index against the frozen arena (lock-free).
func (st *Streaming) Query(u, v graph.NodeID) (Result, bool) {
	return st.frozen.Load().Query(u, v)
}

// R implements Index against the frozen arena (lock-free).
func (st *Streaming) R(u, v graph.NodeID) float64 {
	return st.frozen.Load().R(u, v)
}

// SizeBytes implements Index: the frozen arena plus the live closure (or
// the pending-edge buffer while the closure is deferred).
func (st *Streaming) SizeBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	live := int64(len(st.pending)) * 8
	if st.dc != nil {
		live = st.dc.SizeBytes()
	}
	return st.frozen.Load().SizeBytes() + live
}

// BuildStats implements Index, reporting the frozen arena's stats.
func (st *Streaming) BuildStats() BuildStats { return st.frozen.Load().BuildStats() }
