package ner

import (
	"testing"

	"microlink/internal/kb"
)

func testKB() *kb.KB {
	b := kb.NewBuilder()
	mj := b.AddEntity(kb.Entity{Name: "Michael Jordan"})
	bulls := b.AddEntity(kb.Entity{Name: "Chicago Bulls"})
	nyc := b.AddEntity(kb.Entity{Name: "New York City"})
	nba := b.AddEntity(kb.Entity{Name: "NBA"})
	love := b.AddEntity(kb.Entity{Name: "Love (movie)"})
	b.AddSurface("jordan", mj)
	b.AddSurface("michael jordan", mj)
	b.AddSurface("bulls", bulls)
	b.AddSurface("chicago bulls", bulls)
	b.AddSurface("nyc", nyc)
	b.AddSurface("the big apple", nyc)
	b.AddSurface("nba", nba)
	b.AddSurface("love", love) // collides with a stopword
	return b.Build()
}

func TestLongestCover(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	spans := e.Extract("Michael Jordan leads the Chicago Bulls")
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Surface != "michael jordan" || spans[1].Surface != "chicago bulls" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Start != 0 || spans[0].End != 2 {
		t.Fatalf("span positions = %+v", spans[0])
	}
}

func TestLongestBeatsShorter(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	// "michael jordan" must win over "jordan" alone.
	spans := e.Extract("michael jordan")
	if len(spans) != 1 || spans[0].Surface != "michael jordan" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestStopwordSuppressed(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	// "love" alone is a stopword even though the dictionary has it; "the
	// big apple" contains stopwords but matches as a phrase.
	spans := e.Extract("i love the big apple")
	if len(spans) != 1 || spans[0].Surface != "the big apple" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestURLAndUserSkipped(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	spans := e.Extract("@jordan check https://nba.example watch NBA tonight")
	if len(spans) != 1 || spans[0].Surface != "nba" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestHashtagMatches(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	spans := e.Extract("watching #NBA finals")
	if len(spans) != 1 || spans[0].Surface != "nba" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestNoMentions(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	if spans := e.Extract("nothing relevant here at all"); len(spans) != 0 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans := e.Extract(""); len(spans) != 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestNonOverlapping(t *testing.T) {
	e := NewExtractor(testKB(), Options{})
	spans := e.Extract("jordan jordan bulls")
	if len(spans) != 3 {
		t.Fatalf("spans = %+v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("overlap: %+v", spans)
		}
	}
}

func TestMaxTokensRespected(t *testing.T) {
	b := kb.NewBuilder()
	e5 := b.AddEntity(kb.Entity{Name: "long"})
	b.AddSurface("a b c d e", e5)
	k := b.Build()
	ex := NewExtractor(k, Options{MaxTokens: 4})
	if spans := ex.Extract("a b c d e"); len(spans) != 0 {
		t.Fatalf("5-token span must be invisible at MaxTokens=4: %+v", spans)
	}
	ex5 := NewExtractor(k, Options{MaxTokens: 5})
	spans := ex5.Extract("a b c d e")
	// Each single letter is a stopword-free single token? They're not in
	// the dictionary individually, so only the full span matches.
	if len(spans) != 1 || spans[0].Surface != "a b c d e" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestExtraStopwords(t *testing.T) {
	e := NewExtractor(testKB(), Options{ExtraStopwords: []string{"NBA"}})
	if spans := e.Extract("watch nba tonight"); len(spans) != 0 {
		t.Fatalf("extra stopword ignored: %+v", spans)
	}
}
