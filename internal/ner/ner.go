// Package ner implements knowledge-based named entity recognition for
// microblog text (paper Appendix A): the Longest-Cover method, which scans
// a tweet and greedily selects the longest token spans whose normalised
// phrase exists in the knowledgebase's surface dictionary. The paper adopts
// exactly this unsupervised approach as its pre-step, for its simplicity
// and streaming-friendliness.
package ner

import (
	"microlink/internal/kb"
	"microlink/internal/textutil"
)

// Span is one extracted entity mention: a token span plus its normalised
// surface phrase.
type Span struct {
	Start, End int // token positions [Start, End)
	Surface    string
	Offset     int // byte offset of the first token in the original text
}

// Extractor recognises mentions by dictionary lookup. Safe for concurrent
// use after construction.
type Extractor struct {
	kb        *kb.KB
	maxTokens int
	stop      map[string]struct{}
}

// Options configures the extractor.
type Options struct {
	// MaxTokens bounds mention length in tokens. Default 4.
	MaxTokens int
	// ExtraStopwords extends the built-in single-token stopword list; a
	// single stopword token alone never forms a mention even if the
	// dictionary contains it.
	ExtraStopwords []string
}

// defaultStopwords are common words that must not become single-token
// mentions even when some entity's surface form collides with them.
var defaultStopwords = []string{
	"a", "an", "the", "i", "you", "he", "she", "it", "we", "they",
	"is", "am", "are", "was", "were", "be", "been", "do", "did", "done",
	"and", "or", "but", "not", "no", "yes", "of", "in", "on", "at", "to",
	"for", "with", "by", "from", "about", "as", "so", "this", "that",
	"my", "your", "his", "her", "its", "our", "their", "me", "him", "us",
	"what", "who", "when", "where", "why", "how", "all", "some", "any",
	"new", "just", "now", "today", "go", "get", "got", "like", "love",
}

// NewExtractor returns a longest-cover extractor over k's surface forms.
func NewExtractor(k *kb.KB, opts Options) *Extractor {
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = 4
	}
	e := &Extractor{kb: k, maxTokens: opts.MaxTokens, stop: make(map[string]struct{})}
	for _, w := range defaultStopwords {
		e.stop[w] = struct{}{}
	}
	for _, w := range opts.ExtraStopwords {
		e.stop[textutil.NormalizePhrase(w)] = struct{}{}
	}
	return e
}

// Extract returns the entity mentions of text, left to right,
// non-overlapping, each the longest dictionary match starting at its
// position. URLs and @user tokens never participate in mentions; hashtag
// text does (hashtags frequently carry entity names).
func (e *Extractor) Extract(text string) []Span {
	return e.ExtractTokens(textutil.Tokenize(text))
}

// ExtractTokens is Extract over a pre-tokenised input.
func (e *Extractor) ExtractTokens(toks []textutil.Token) []Span {
	var spans []Span
	i := 0
	for i < len(toks) {
		if k := toks[i].Kind(); k == textutil.KindURL || k == textutil.KindUserRef {
			i++
			continue
		}
		matched := false
		maxJ := min(i+e.maxTokens, len(toks))
		// Longest-cover: try the longest span first.
		for j := maxJ; j > i; j-- {
			if !e.spanUsable(toks, i, j) {
				continue
			}
			phrase := textutil.JoinTokens(toks, i, j)
			if !e.kb.HasSurface(phrase) {
				continue
			}
			if j-i == 1 {
				if _, isStop := e.stop[phrase]; isStop {
					continue
				}
			}
			spans = append(spans, Span{Start: i, End: j, Surface: phrase, Offset: toks[i].Offset})
			i = j
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return spans
}

// spanUsable rejects spans that cross URL or @user tokens.
func (e *Extractor) spanUsable(toks []textutil.Token, i, j int) bool {
	for k := i; k < j; k++ {
		if kind := toks[k].Kind(); kind == textutil.KindURL || kind == textutil.KindUserRef {
			return false
		}
	}
	return true
}
