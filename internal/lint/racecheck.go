package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// racecheck is the annotation-free race detector: it infers the
// module's locking discipline instead of trusting guarded-by comments.
// Built on lockset.go's must-held dataflow and goroutine-root analysis,
// it flags any struct field or package-level variable that is (a)
// reachable from two or more concurrent roots (counting a
// multi-instance root — a `go` in a loop, an HTTP handler — twice,
// since it races with itself), (b) written at least once, and (c) not
// protected by any common lock: the intersection of the locksets held
// across the racing accesses is empty, where a write only counts as
// protected by locks held in *write* mode (an RLock-only write is the
// classic shared-RWMutex bug). The diagnostic lands on the two witness
// accesses so both halves of the race are visible in review.
//
// Fields that already carry a guarded-by annotation are lockcheck's
// jurisdiction and are skipped here; sync.* and sync/atomic.* values
// are synchronization, not data; and accesses whose base object is a
// fresh function-local (the constructor building a struct before any
// goroutine can see it) are private by the escape check and never
// participate.
//
// In advisory mode the report inverts: fields whose accesses *are*
// consistently protected by an inferrable lock but carry no annotation
// get a suggested `// microlint:guarded-by <mu>` diagnostic at the
// field declaration, so the inferred discipline can be promoted to a
// declared one. Advisory runs are non-blocking (see cmd/microlint
// -advisory).
//
// Known soundness holes, deliberate and documented in DESIGN.md §6:
// calls through function-typed parameters resolve to nothing (the
// callgraph's choice), a callback reference is credited the referencing
// function's locks even though it may run later without them, the
// escape check is per-base-object rather than per-path, lock identity
// is the field object (all instances of a struct share "one" lock), and
// function-local variables shared by closure capture are out of scope —
// only struct fields and package vars are tracked.
type racecheck struct {
	advisory bool
}

func (racecheck) Name() string { return "racecheck" }
func (racecheck) Doc() string {
	return "shared fields accessed from concurrent goroutine roots must share a common lock (annotation-free)"
}

// Run is satisfied per the Analyzer interface; the analysis is
// module-wide and lives in RunModule.
func (racecheck) Run(pkg *Package, report func(token.Pos, string)) {}

func (rc racecheck) RunModule(mod *Module, report func(token.Pos, string)) {
	ri := mod.raceAnalysis()

	// An ownership assertion without a justification is as suspect as a
	// reason-less nolint: the why is the reviewable part.
	if !rc.advisory {
		for _, d := range ri.own.ownedDecls {
			if d.reason == "" {
				report(d.pos, fmt.Sprintf(
					"type %s is marked microlint:owned without a justification; write `// microlint:owned — why instances are confined to one goroutine`",
					d.typeName))
			}
		}
	}

	// Group the concurrent accesses by accessed object. Only accesses in
	// functions reachable from at least one root participate: code no
	// goroutine root reaches runs single-threaded as far as this module
	// can prove.
	type objState struct {
		obj      types.Object
		accesses []*memAccess
	}
	byObj := map[types.Object]*objState{}
	var order []types.Object
	for fn, accs := range ri.accesses {
		if len(ri.rootsOf[fn]) == 0 {
			continue
		}
		for _, a := range accs {
			st := byObj[a.obj]
			if st == nil {
				st = &objState{obj: a.obj}
				byObj[a.obj] = st
				order = append(order, a.obj)
			}
			st.accesses = append(st.accesses, a)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return byObj[order[i]].accesses[0].pos < byObj[order[j]].accesses[0].pos
	})

	for _, obj := range order {
		st := byObj[obj]
		sort.Slice(st.accesses, func(i, j int) bool { return st.accesses[i].pos < st.accesses[j].pos })

		// Concurrency degree: distinct roots reaching the accessing
		// functions, multi-instance roots counting double.
		roots := map[*raceRoot]bool{}
		for _, a := range st.accesses {
			for _, r := range ri.rootsOf[a.fn] {
				roots[r] = true
			}
		}
		degree := 0
		for r := range roots {
			if r.multi {
				degree += 2
			} else {
				degree++
			}
		}
		if degree < 2 {
			continue
		}

		hasWrite := false
		prot := make([]heldSet, len(st.accesses))
		for i, a := range st.accesses {
			hasWrite = hasWrite || a.write
			prot[i] = ri.protSet(a)
		}
		if !hasWrite {
			continue // read-only shared state is race-free
		}

		if rc.advisory {
			rc.advise(ri, st.obj, st.accesses, prot, report)
			continue
		}

		// Witness search: the earliest write whose protection set shares
		// no lock with some other access (or with a second instance of
		// itself, when a multi root reaches it).
		reported := false
		for i, w := range st.accesses {
			if reported || !w.write {
				continue
			}
			for j, b := range st.accesses {
				if i == j {
					continue
				}
				if !disjoint(prot[i], prot[j]) {
					continue
				}
				report(w.pos, fmt.Sprintf(
					"%s is written here holding {%s} but accessed at %s holding {%s}; no common lock protects it (roots: %s)",
					ri.ci.lockName(obj), ri.lockSetNames(prot[i]), ri.shortPos(b.pos),
					ri.lockSetNames(prot[j]), rootLabels(roots)))
				report(b.pos, fmt.Sprintf(
					"%s is accessed here holding {%s}, racing the write at %s",
					ri.ci.lockName(obj), ri.lockSetNames(prot[j]), ri.shortPos(w.pos)))
				reported = true
				break
			}
			if reported {
				break
			}
			// Self-race: one unprotected write in a function reached by a
			// multi-instance root races a second instance of itself.
			if len(prot[i]) == 0 {
				for _, r := range ri.rootsOf[w.fn] {
					if r.multi {
						report(w.pos, fmt.Sprintf(
							"%s is written here with no lock held, and %s runs concurrently with itself",
							ri.ci.lockName(obj), r.label))
						reported = true
						break
					}
				}
			}
		}
	}
}

// advise emits the advisory-mode suggestion for one object: when every
// access is protected by a common lock and the field is unannotated,
// suggest promoting the inferred guard to a guarded-by annotation.
func (rc racecheck) advise(ri *raceInfo, obj types.Object, accesses []*memAccess, prot []heldSet, report func(token.Pos, string)) {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return // only struct fields carry guarded-by annotations
	}
	if _, annotated := ri.guards[obj]; annotated {
		return
	}
	common := prot[0].clone()
	for _, p := range prot[1:] {
		intersectInto(common, p)
	}
	if len(common) == 0 {
		return // inconsistent discipline is the race report's business
	}
	names := make([]string, 0, len(common))
	for k := range common {
		names = append(names, k.Name())
	}
	sort.Strings(names)
	report(obj.Pos(), fmt.Sprintf(
		"field %s is consistently protected by %s across %d concurrent accesses but carries no annotation; suggest `// microlint:guarded-by %s`",
		v.Name(), ri.lockSetNames(common), len(accesses), names[0]))
}

// disjoint reports whether two locksets share no lock.
func disjoint(a, b heldSet) bool {
	for k := range a {
		if _, ok := b[k]; ok {
			return false
		}
	}
	return true
}

// rootLabels renders a root set deterministically for diagnostics.
func rootLabels(roots map[*raceRoot]bool) string {
	labels := make([]string, 0, len(roots))
	for r := range roots {
		l := r.label
		if r.multi {
			l += " (multi)"
		}
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return strings.Join(labels, "; ")
}

// collectAccesses gathers fn's struct-field and package-variable
// accesses: which object, where, read or write, minus everything the
// analysis exempts (sync-typed values, sync/atomic call arguments,
// guarded-by-annotated fields, fields of microlint:owned types,
// composite-literal keys, sync.Once.Do bodies, and accesses whose base
// chain is provably private by the ownership analysis).
func (ri *raceInfo) collectAccesses(fn *funcNode) []*memAccess {
	pkg := fn.pkg
	if ri.own.onceBody[fn] {
		return nil // runs exactly once, happens-before every Do return
	}

	// Pass 1: classify write targets and exempt positions.
	writeTarget := map[ast.Node]bool{}
	exempt := map[ast.Node]bool{}
	var markWrite func(e ast.Expr)
	markWrite = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			writeTarget[x] = true
		case *ast.SelectorExpr:
			writeTarget[x] = true
			writeTarget[x.Sel] = true
		case *ast.IndexExpr:
			// A map-element write mutates the map's internals: the map
			// header itself is written. A slice/array element write only
			// reads the header; disjoint-index parallel writes (workers
			// filling results[i]) are the idiom that exemption admits —
			// a documented soundness hole for genuinely overlapping
			// indexes.
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					markWrite(x.X)
				}
			}
		case *ast.StarExpr:
			// A write through a pointer mutates the pointee, whose
			// identity this analysis does not track; the pointer itself
			// is only read.
		}
	}
	fn.walkOwn(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.KeyValueExpr:
			// Composite-literal keys name fields, they don't access them.
			if id, ok := n.Key.(*ast.Ident); ok {
				exempt[id] = true
			}
		case *ast.CallExpr:
			// Arguments of sync/atomic calls are the atomic accesses;
			// atomiccheck owns their discipline.
			if isAtomicCall(pkg, n) {
				for _, arg := range n.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						exempt[m] = true
						return true
					})
				}
			}
		}
		return true
	})

	// Pass 2: record the surviving accesses.
	var accs []*memAccess
	record := func(obj types.Object, pos token.Pos, write bool) {
		accs = append(accs, &memAccess{obj: obj, pos: pos, write: write, fn: fn})
	}
	fn.walkOwn(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if exempt[n] || exempt[n.Sel] {
				return true
			}
			s := pkg.Info.Selections[n]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || !ri.trackable(v) {
				return true
			}
			// Ownership check: a field reached from provably private
			// memory (the struct under construction, an owned parameter,
			// pooled scratch this activation holds) cannot race.
			if ri.own.priv(fn, n.X) {
				return true
			}
			record(v, n.Sel.Pos(), writeTarget[n])
		case *ast.Ident:
			if exempt[n] {
				return true
			}
			v, ok := pkg.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() || !ri.trackable(v) {
				return true
			}
			// Only package-level variables: locals (even closure-captured
			// ones) are out of scope, a documented hole.
			if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return true
			}
			record(v, n.Pos(), writeTarget[n])
		}
		return true
	})
	return accs
}

// trackable reports whether obj is shared state racecheck reasons
// about: not a sync/atomic value (synchronization, not data), not
// already under a declared guarded-by discipline (lockcheck's job),
// and not a field of a microlint:owned type (asserted single-goroutine
// confinement — pool handout, per-worker slot).
func (ri *raceInfo) trackable(v *types.Var) bool {
	if _, annotated := ri.guards[v]; annotated {
		return false
	}
	if ri.own.ownedFields[v] {
		return false
	}
	return !isSyncFamilyType(v.Type())
}

// isSyncFamilyType reports whether t is (a pointer to) a sync or
// sync/atomic type — mutexes, wait groups, atomic wrappers.
func isSyncFamilyType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s := t.String()
	return strings.HasPrefix(s, "sync.") || strings.HasPrefix(s, "sync/atomic.")
}
