package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// dataflow.go is the intraprocedural dataflow layer under the protocol
// analyzers (publishcheck, durcheck, alloccheck). It adds three
// capabilities to the CFG of cfg.go:
//
//   - propagateMarks: a forward may-analysis that tracks a set of
//     "marked" local objects through assignments. Marks are introduced
//     at analyzer-chosen points (a value flowing into an
//     atomic.Pointer.Store, say), copied through alias assignments
//     (y := x marks y when x is marked), and killed when a variable is
//     rebound to a fresh value. Reporting happens on "use" events whose
//     object carries a mark on some path — the same
//     fixpoint-then-final-emit shape as the held-lock dataflow in
//     summary.go.
//
//   - pathReachesAvoiding: the forward twin of pathToExitAvoiding —
//     "can execution reach this node from the function entry without
//     passing a node the predicate stops at", used for ordering rules
//     (an os.Rename with no fsync anywhere before it).
//
//   - value-source queries: rootObj resolves an lvalue or derived view
//     to the variable it is backed by, and freshLocals classifies each
//     local as fresh (every reaching definition allocates: make, a
//     composite literal, nil) or reuse-backed (some definition derives
//     from a parameter, a field, or pooled scratch). alloccheck uses
//     the split to flag append growth into escaping fresh slices while
//     allowing the amortised-zero scratch idiom.
//
// Like the CFG itself, everything here is conservative in the
// *under*-reporting direction: an expression the helpers cannot resolve
// contributes no mark, no kill, and no stop.

// markEventKind discriminates the actions propagateMarks understands.
type markEventKind int

const (
	// eventMark introduces a mark on obj (a publish point).
	eventMark markEventKind = iota
	// eventCopy propagates the mark of src to dst (alias assignment)
	// or, when src is unmarked or nil, kills dst (fresh rebinding).
	eventCopy
	// eventUse observes obj; the engine reports it to the caller when
	// obj may be marked here.
	eventUse
)

// markEvent is one action inside a CFG node, positioned so that events
// within a node replay in source order.
type markEvent struct {
	kind markEventKind
	pos  token.Pos
	obj  types.Object // marked / destination / used object
	src  types.Object // eventCopy source (nil = fresh value)
	via  string       // eventMark: how the mark happened, for diagnostics
	node ast.Node     // witness expression, for diagnostics
}

// markFact records where and through what a mark was introduced, so a
// diagnostic at the use site can point back at the publish site.
type markFact struct {
	pos token.Pos
	via string
}

// propagateMarks runs the forward may-analysis over g. events lists the
// ordered mark events of each node (callers precompute and cache it);
// use is invoked once per converged eventUse whose object is marked on
// some path, with the fact of the earliest mark that reaches it.
func (g *funcCFG) propagateMarks(events map[ast.Node][]markEvent, use func(ev markEvent, fact markFact)) {
	copyState := func(s map[types.Object]markFact) map[types.Object]markFact {
		out := make(map[types.Object]markFact, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}

	transfer := func(b *cfgBlock, cur map[types.Object]markFact, emit bool) map[types.Object]markFact {
		for _, n := range b.nodes {
			for _, ev := range events[n] {
				switch ev.kind {
				case eventMark:
					if ev.obj != nil {
						cur[ev.obj] = markFact{pos: ev.pos, via: ev.via}
					}
				case eventCopy:
					if ev.obj == nil {
						break
					}
					if fact, ok := cur[ev.src]; ev.src != nil && ok {
						cur[ev.obj] = fact
					} else {
						delete(cur, ev.obj)
					}
				case eventUse:
					if !emit || ev.obj == nil {
						break
					}
					if fact, ok := cur[ev.obj]; ok {
						use(ev, fact)
					}
				}
			}
		}
		return cur
	}

	in := map[*cfgBlock]map[types.Object]markFact{g.entry: {}}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, copyState(in[b]), false)
		for _, s := range b.succs {
			next, ok := in[s]
			if !ok {
				in[s] = copyState(out)
				work = append(work, s)
				continue
			}
			grown := false
			for k, v := range out {
				if old, ok := next[k]; !ok || v.pos < old.pos {
					next[k] = v
					grown = true
				}
			}
			if grown {
				work = append(work, s)
			}
		}
	}
	for _, b := range g.blocks {
		if s, ok := in[b]; ok {
			transfer(b, copyState(s), true)
		}
	}
}

// sortEvents orders a node's events by source position, so publishes,
// aliases, and writes packed into one statement replay correctly.
func sortEvents(evs []markEvent) []markEvent {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// pathReachesAvoiding reports whether some path from the function entry
// reaches a node for which hit returns true without first passing a node
// for which stop returns true. Within a block, nodes before the hit are
// checked against stop in order; a node can both hit and stop (hit
// wins), so "is there an unsynced path to this rename" asks hit=rename,
// stop=sync.
func (g *funcCFG) pathReachesAvoiding(hit, stop func(ast.Node) bool) bool {
	seen := map[*cfgBlock]bool{g.entry: true}
	stack := []*cfgBlock{g.entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blocked := false
		for _, n := range b.nodes {
			if hit(n) {
				return true
			}
			if stop(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// rootObj resolves an lvalue or derived-view expression to the variable
// object backing it: x, x.f, x[i], *x, x[i:j], and parenthesised forms
// all root at x. Returns nil when the base is not a named variable (a
// call result, a literal).
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := pkg.Info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// Only field access derives from the base; a package-qualified
			// name (os.Args) roots at the package variable itself.
			if sel := pkg.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				e = x.X
				continue
			}
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// paramObjs collects the parameter and receiver objects of a function
// type (including named results, which are caller-visible storage).
func paramObjs(pkg *Package, recv *ast.FieldList, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj := pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addList(recv)
	addList(ft.Params)
	addList(ft.Results)
	return out
}

// localDefs collects, for each local variable assigned in body, the
// expressions that define it: declaration initialisers and plain
// assignments. A no-initialiser var declaration records a nil entry
// (the zero value, which for slices is a fresh nil slice).
func localDefs(pkg *Package, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	defs := map[types.Object][]ast.Expr{}
	add := func(id *ast.Ident, rhs ast.Expr) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			defs[v] = append(defs[v], rhs)
		}
	}
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						add(id, n.Rhs[i])
					}
				}
			} else {
				// Multi-value: x, y := f() — the sources are opaque.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						add(id, n.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if id.Name == "_" {
					continue
				}
				if i < len(n.Values) {
					add(id, n.Values[i])
				} else {
					add(id, nil)
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					add(id, n.X)
				}
			}
		}
		return true
	})
	return defs
}

// freshLocal reports whether every definition of obj yields fresh,
// function-owned storage — make, a composite literal, nil, the zero
// value, or append over another fresh local. A definition rooted in a
// parameter, a field, pooled scratch, or any call the classifier cannot
// see through makes the local reuse-backed, which is the permissive
// answer for alloccheck (growth into reused storage is amortised-free).
func freshLocal(pkg *Package, obj types.Object, defs map[types.Object][]ast.Expr, params map[types.Object]bool) bool {
	return freshLocalSeen(pkg, obj, defs, params, map[types.Object]bool{})
}

func freshLocalSeen(pkg *Package, obj types.Object, defs map[types.Object][]ast.Expr, params map[types.Object]bool, seen map[types.Object]bool) bool {
	if params[obj] {
		return false
	}
	if seen[obj] {
		return true // cycles (self-append chains) don't make a local reused
	}
	seen[obj] = true
	exprs, ok := defs[obj]
	if !ok {
		// Never assigned in this body: a free variable or package-level
		// state — reuse-backed by definition.
		return false
	}
	for _, e := range exprs {
		if !freshExpr(pkg, e, defs, params, seen) {
			return false
		}
	}
	return true
}

// freshExpr classifies one defining expression; nil means a
// no-initialiser declaration (fresh zero value).
func freshExpr(pkg *Package, e ast.Expr, defs map[types.Object][]ast.Expr, params map[types.Object]bool, seen map[types.Object]bool) bool {
	if e == nil {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		obj := pkg.Info.Uses[x]
		if obj == nil {
			return false
		}
		return freshLocalSeen(pkg, obj, defs, params, seen)
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			switch fun.Name {
			case "make", "new":
				return true
			case "append":
				if len(x.Args) > 0 {
					return freshExpr(pkg, x.Args[0], defs, params, seen)
				}
			}
		}
		return false
	case *ast.SliceExpr:
		return freshExpr(pkg, x.X, defs, params, seen)
	default:
		return false
	}
}

// markerText extracts the payload of a `// microlint:<marker> ...`
// comment, with the same grammar as the lock-order annotations
// (deadlockcheck.markerRest): one leading comment token is stripped, so
// an annotation quoted inside a doc comment (beginning "// //") does
// not parse, and anything after a nested "//" is trailing prose.
func markerText(comment, marker string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*"))
	rest, ok := strings.CutPrefix(text, marker)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // longer marker (e.g. noalloc vs noallocx)
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

// funcMarker scans a function declaration's doc comment for a marker
// annotation and returns its payload.
func funcMarker(fd *ast.FuncDecl, marker string) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if rest, ok := markerText(c.Text, marker); ok {
			return rest, true
		}
	}
	return "", false
}

// staticCallee resolves the *types.Func a call expression statically
// invokes: a named function, a package-qualified function, or a concrete
// method. Interface dispatch and function values return nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// aliasClasses unions function locals connected by direct
// ident-to-ident copies (b := a, b = a) of reference-typed values into
// equivalence classes. A publish through one name freezes the whole
// class, which catches aliases taken *before* the publish — forward
// copy propagation alone only carries marks into copies made after it.
// The classes are flow-insensitive, so an alias rebound to a fresh
// value before the publish stays in the class; that over-approximation
// is deliberate (the shape is worth rewriting anyway).
func aliasClasses(pkg *Package, body *ast.BlockStmt) map[types.Object][]types.Object {
	parent := map[types.Object]types.Object{}
	var find func(o types.Object) types.Object
	find = func(o types.Object) types.Object {
		p, ok := parent[o]
		if !ok || p == o {
			return o
		}
		r := find(p)
		parent[o] = r
		return r
	}
	union := func(a, b types.Object) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
		}
		if ra, rb := find(a), find(b); ra != rb {
			parent[ra] = rb
		}
	}
	localRef := func(id *ast.Ident) types.Object {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && isReferenceType(v.Type()) {
			return v
		}
		return nil
	}
	inspectNoFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, lok := ast.Unparen(lhs).(*ast.Ident)
			rid, rok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
			if !lok || !rok {
				continue
			}
			if lo, ro := localRef(lid), localRef(rid); lo != nil && ro != nil {
				union(lo, ro)
			}
		}
		return true
	})
	byRoot := map[types.Object][]types.Object{}
	for o := range parent {
		r := find(o)
		byRoot[r] = append(byRoot[r], o)
	}
	classes := map[types.Object][]types.Object{}
	for _, members := range byRoot {
		for _, o := range members {
			classes[o] = members
		}
	}
	return classes
}
