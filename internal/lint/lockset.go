package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockset.go is the substrate under racecheck: a *must*-held lockset
// dataflow over the CFG, a goroutine-root analysis over the callgraph,
// and the interprocedural composition of the two.
//
// The held-lock analysis in summary.go is a may-analysis — union at
// joins — because deadlockcheck wants to see every lock that can
// possibly be held at an acquire site. Race inference needs the dual: a
// lock protects an access only if it is held on *every* path reaching
// it, so locksets here intersect at joins, and a lock held in read mode
// on one inbound path and write mode on another survives the join
// demoted to read. Lock/RLock gen, Unlock/RUnlock kill, and a deferred
// Unlock keeps its lock held through function exit, exactly as at
// runtime. The fixpoint shrinks monotonically from the empty entry set,
// so it terminates; accesses in blocks the fixpoint never reaches
// (dead code) report no lockset at all and are skipped by the caller.
//
// Roots are the places the module becomes concurrent: the target of
// every `go` statement, every HTTP handler (the server runs handlers on
// per-connection goroutines), and the exported methods of any type that
// spawns goroutines (the ingest pipeline's Offer/Submit/Barrier shape —
// a caller's goroutine runs them concurrently with the background
// applier the constructor spawned). A root is multi-instance — it can
// race with itself — when it is a `go` statement inside a loop, a
// function spawned from two or more distinct `go` sites, or an HTTP
// handler.
//
// Context locksets flow down the callgraph from each root: the lockset
// a function's body can rely on is the intersection, over every call
// path from the root, of the locks the callers must hold at the call
// site. `go` edges deliberately propagate nothing (the spawned
// goroutine runs under no caller lock); static, defer, and reference
// edges propagate the caller's context unioned with the must-held set
// at the call site. Propagating through reference edges (a comparator
// literal handed to sort.Slice runs synchronously under the enclosing
// lock) is a deliberate soundness hole shared with the callgraph: a
// callback stored and invoked later from a bare goroutine would be
// credited locks it does not hold.

// heldSet maps a lock object to the strongest mode known to be held.
type heldSet map[lockKey]lockMode

func (s heldSet) clone() heldSet {
	out := make(heldSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersectInto shrinks dst to dst ∩ src, demoting a lock to read mode
// when the two sides disagree. Reports whether dst changed.
func intersectInto(dst, src heldSet) bool {
	changed := false
	for k, dm := range dst {
		sm, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		if dm == modeWrite && sm == modeRead {
			dst[k] = modeRead
			changed = true
		}
	}
	return changed
}

// unionInto grows dst to dst ∪ src, keeping the stronger (write) mode
// on disagreement.
func unionInto(dst, src heldSet) {
	for k, sm := range src {
		if dm, ok := dst[k]; !ok || (dm == modeRead && sm == modeWrite) {
			dst[k] = sm
		}
	}
}

// mustHeldLocksets runs the must-held forward dataflow over g and
// returns, for each query position, the converged lockset held on every
// path reaching it. Positions in CFG nodes the fixpoint never reaches
// (dead code) are absent from the result. Queries must lie inside g's
// nodes; a position the CFG does not model (a range clause variable)
// simply stays unanswered, which callers treat as the empty set — the
// conservative direction for race reporting.
func mustHeldLocksets(pkg *Package, g *funcCFG, queries []token.Pos) map[token.Pos]heldSet {
	type lsEvent struct {
		pos   token.Pos
		op    *lockOp // nil for a query event
		query bool
	}
	nodeEvs := map[ast.Node][]lsEvent{}
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			var evs []lsEvent
			for _, op := range lockOpsIn(pkg, n) {
				evs = append(evs, lsEvent{pos: op.pos, op: op})
			}
			for _, q := range queries {
				if n.Pos() <= q && q < n.End() {
					evs = append(evs, lsEvent{pos: q, query: true})
				}
			}
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
			nodeEvs[n] = evs
		}
	}

	out := map[token.Pos]heldSet{}
	transfer := func(b *cfgBlock, cur heldSet, emit bool) heldSet {
		for _, n := range b.nodes {
			for _, ev := range nodeEvs[n] {
				switch {
				case ev.query:
					if emit {
						if prev, ok := out[ev.pos]; ok {
							intersectInto(prev, cur)
						} else {
							out[ev.pos] = cur.clone()
						}
					}
				case ev.op.acquire:
					// Stronger mode wins: a re-acquire in read mode under a
					// held write lock (which would deadlock at runtime
					// anyway) does not weaken what the analysis knows.
					if m, ok := cur[ev.op.obj]; !ok || (m == modeRead && ev.op.mode == modeWrite) {
						cur[ev.op.obj] = ev.op.mode
					}
				default: // release
					if !ev.op.deferred {
						delete(cur, ev.op.obj)
					}
				}
			}
		}
		return cur
	}

	in := map[*cfgBlock]heldSet{g.entry: {}}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		outSet := transfer(b, in[b].clone(), false)
		for _, s := range b.succs {
			next, ok := in[s]
			if !ok {
				in[s] = outSet.clone()
				work = append(work, s)
				continue
			}
			if intersectInto(next, outSet) {
				work = append(work, s)
			}
		}
	}
	for _, b := range g.blocks {
		if s, ok := in[b]; ok {
			transfer(b, s.clone(), true)
		}
	}
	return out
}

// rootKind classifies why a function is considered concurrently
// executed.
type rootKind int

const (
	rootGo      rootKind = iota // target of a go statement
	rootHandler                 // HTTP handler: the server runs these concurrently
	rootEntry                   // exported method of a goroutine-spawning type
)

// raceRoot is one origin of concurrent execution.
type raceRoot struct {
	fn    *funcNode
	kind  rootKind
	multi bool // can run more than one instance of itself concurrently
	pos   token.Pos
	label string // deterministic display label for diagnostics
}

// memAccess is one shared-memory access racecheck tracks: a struct
// field or package-level variable read or written inside a function,
// with the must-held lockset at the access point.
type memAccess struct {
	obj   types.Object
	pos   token.Pos
	write bool
	fn    *funcNode
	held  heldSet // intraprocedural must-held; nil when the access is in dead code
}

// raceInfo is the module-wide race-inference state, built once and
// shared by racecheck and the designdrift test.
type raceInfo struct {
	ci       *concInfo
	roots    []*raceRoot
	rootsOf  map[*funcNode][]*raceRoot           // roots that reach fn (sorted by label)
	ctxHeld  map[*funcNode]map[*raceRoot]heldSet // locks held at fn entry under each root
	accesses map[*funcNode][]*memAccess
	guards   map[types.Object]types.Object // declared guarded-by annotations, module-wide
	own      *ownInfo                      // deep-ownership state (ownership.go)
}

// raceAnalysis returns the module's race-inference state, building it on
// first use (once-guarded like concurrency(), so the worker-pool runner
// can share the module across analyzer goroutines).
func (m *Module) raceAnalysis() *raceInfo {
	m.raceOnce.Do(func() {
		m.race = buildRaceInfo(m)
	})
	return m.race
}

func buildRaceInfo(mod *Module) *raceInfo {
	ci := mod.concurrency()
	ri := &raceInfo{
		ci:       ci,
		rootsOf:  map[*funcNode][]*raceRoot{},
		ctxHeld:  map[*funcNode]map[*raceRoot]heldSet{},
		accesses: map[*funcNode][]*memAccess{},
		guards:   map[types.Object]types.Object{},
	}

	// Declared guarded-by annotations, module-wide; lockcheck owns their
	// enforcement, racecheck only needs to know which fields are already
	// under a declared discipline.
	for _, pkg := range mod.Pkgs {
		for f, mu := range collectGuards(pkg, func(token.Pos, string) {}) {
			ri.guards[f] = mu
		}
	}

	ri.collectRoots()
	ri.own = buildOwnership(ci.cg, ri.roots)

	// Per-function accesses and must-held locksets. The lockset queries
	// for a function are its access positions plus its call sites, so one
	// dataflow pass answers both.
	heldAtCall := map[*callSite]heldSet{}
	for _, fn := range ci.cg.funcs {
		accs := ri.collectAccesses(fn)
		if len(accs) == 0 && len(fn.calls) == 0 {
			continue
		}
		queries := make([]token.Pos, 0, len(accs)+len(fn.calls))
		for _, a := range accs {
			queries = append(queries, a.pos)
		}
		for i := range fn.calls {
			queries = append(queries, fn.calls[i].pos)
		}
		held := mustHeldLocksets(fn.pkg, fn.cfg(), queries)
		for _, a := range accs {
			a.held = held[a.pos]
		}
		for i := range fn.calls {
			cs := &fn.calls[i]
			if h, ok := held[cs.pos]; ok {
				heldAtCall[cs] = h
			}
		}
		if len(accs) > 0 {
			ri.accesses[fn] = accs
		}
	}

	ri.propagateContexts(heldAtCall)
	return ri
}

// collectRoots finds every concurrent root of the module: go-statement
// targets (with loop/multi-site detection), HTTP handlers, and exported
// methods of goroutine-spawning types.
func (ri *raceInfo) collectRoots() {
	cg := ri.ci.cg
	byFn := map[*funcNode]*raceRoot{}
	add := func(fn *funcNode, kind rootKind, multi bool, pos token.Pos, label string) {
		if r, ok := byFn[fn]; ok {
			// A second independent spawn site makes any root
			// multi-instance; the first label and kind win.
			if multi || (kind == rootGo && r.kind == rootGo) {
				r.multi = true
			}
			return
		}
		r := &raceRoot{fn: fn, kind: kind, multi: multi, pos: pos, label: label}
		byFn[fn] = r
		ri.roots = append(ri.roots, r)
	}

	// Pass 1: go statements, with syntactic loop-ancestry tracking so a
	// spawn inside a for/range counts as multi-instance.
	for _, fn := range cg.funcs {
		if fn.body == nil {
			continue
		}
		var depth int
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch n := n.(type) {
			case *ast.FuncLit:
				return // its own funcNode walks its own body
			case *ast.ForStmt, *ast.RangeStmt:
				depth++
				walkChildren(n, walk)
				depth--
				return
			case *ast.GoStmt:
				for _, tgt := range cg.calleesOf(fn.pkg, n.Call) {
					add(tgt, rootGo, depth > 0, n.Pos(), "go "+tgt.name())
				}
			}
			walkChildren(n, walk)
		}
		for _, stmt := range fn.body.List {
			walk(stmt)
		}
	}

	// Pass 2: HTTP handlers, by signature or by the ServeHTTP name. The
	// server runs handlers on per-connection goroutines, so a handler can
	// always race with another instance of itself.
	for _, fn := range cg.funcs {
		if fn.obj == nil {
			continue
		}
		if sig, ok := fn.obj.Type().(*types.Signature); ok && isHTTPHandlerSig(sig) {
			add(fn, rootHandler, true, fn.decl.Pos(), "handler "+fn.name())
		}
	}

	// Pass 3: exported methods of spawner types. A type whose method
	// starts a goroutine (directly or in a nested literal) hands its
	// callers a concurrent object: every exported method may run on the
	// caller's goroutine concurrently with the spawned work.
	spawner := map[*types.TypeName]bool{}
	for _, fn := range cg.funcs {
		if fn.decl == nil || fn.decl.Body == nil {
			continue
		}
		hasGo := false
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				hasGo = true
				return false
			}
			return !hasGo
		})
		if !hasGo {
			continue
		}
		if tn := receiverTypeName(fn); tn != nil {
			spawner[tn] = true
		}
	}
	for _, fn := range cg.funcs {
		if fn.obj == nil || fn.decl == nil || !fn.obj.Exported() {
			continue
		}
		if tn := receiverTypeName(fn); tn != nil && spawner[tn] {
			add(fn, rootEntry, false, fn.decl.Pos(), "entry "+tn.Name()+"."+fn.name())
		}
	}

	sort.Slice(ri.roots, func(i, j int) bool {
		if ri.roots[i].label != ri.roots[j].label {
			return ri.roots[i].label < ri.roots[j].label
		}
		return ri.roots[i].pos < ri.roots[j].pos
	})
}

// walkChildren visits n's direct structural children with walk, the
// minimal helper needed for the loop-depth-tracking traversal above.
func walkChildren(n ast.Node, walk func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			walk(m)
		}
		return false
	})
}

// receiverTypeName resolves a method's receiver to its named type.
func receiverTypeName(fn *funcNode) *types.TypeName {
	if fn.obj == nil {
		return nil
	}
	sig, ok := fn.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// isHTTPHandlerSig reports whether sig takes (http.ResponseWriter,
// *http.Request) anywhere in its parameter list.
func isHTTPHandlerSig(sig *types.Signature) bool {
	hasW, hasR := false, false
	for i := 0; i < sig.Params().Len(); i++ {
		switch sig.Params().At(i).Type().String() {
		case "net/http.ResponseWriter":
			hasW = true
		case "*net/http.Request":
			hasR = true
		}
	}
	return hasW && hasR
}

// propagateContexts flows root identity and context locksets down the
// callgraph. For each (function, root) pair reachable through static,
// defer, and reference edges, ctxHeld converges to the intersection
// over every call path of (caller context ∪ must-held at the call
// site). go edges are the concurrency boundary: the target runs under
// no inherited lock and was already registered as its own root.
func (ri *raceInfo) propagateContexts(heldAtCall map[*callSite]heldSet) {
	type rkey struct {
		fn   *funcNode
		root *raceRoot
	}
	held := map[rkey]heldSet{}
	var work []rkey
	for _, r := range ri.roots {
		k := rkey{r.fn, r}
		held[k] = heldSet{}
		work = append(work, k)
	}
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		h := held[k]
		for i := range k.fn.calls {
			cs := &k.fn.calls[i]
			if cs.kind == callGo {
				continue
			}
			eff := h.clone()
			if at, ok := heldAtCall[cs]; ok {
				unionInto(eff, at)
			}
			for _, tgt := range cs.targets {
				kk := rkey{tgt, k.root}
				if cur, ok := held[kk]; !ok {
					held[kk] = eff.clone()
					work = append(work, kk)
				} else if intersectInto(cur, eff) {
					work = append(work, kk)
				}
			}
		}
	}

	for k, h := range held {
		m := ri.ctxHeld[k.fn]
		if m == nil {
			m = map[*raceRoot]heldSet{}
			ri.ctxHeld[k.fn] = m
		}
		m[k.root] = h
		ri.rootsOf[k.fn] = append(ri.rootsOf[k.fn], k.root)
	}
	for _, rs := range ri.rootsOf {
		sort.Slice(rs, func(i, j int) bool { return rs[i].label < rs[j].label })
	}
}

// effLockset is the lockset access a can rely on when running under
// root r: the intraprocedural must-held set at the access unioned with
// the context the root guarantees, filtered by adequacy — a write is
// protected only by locks held in write mode, a read by either mode.
func (ri *raceInfo) effLockset(a *memAccess, r *raceRoot) heldSet {
	eff := heldSet{}
	if a.held != nil {
		eff = a.held.clone()
	}
	if ctx, ok := ri.ctxHeld[a.fn][r]; ok {
		unionInto(eff, ctx)
	}
	if a.write {
		for k, m := range eff {
			if m != modeWrite {
				delete(eff, k)
			}
		}
	}
	return eff
}

// protSet is the lockset that protects access a under *every* root that
// can reach its function: the intersection of effLockset over roots.
func (ri *raceInfo) protSet(a *memAccess) heldSet {
	var out heldSet
	for _, r := range ri.rootsOf[a.fn] {
		eff := ri.effLockset(a, r)
		if out == nil {
			out = eff
			continue
		}
		intersectInto(out, eff)
	}
	if out == nil {
		out = heldSet{}
	}
	return out
}

// lockSetNames renders a heldSet deterministically for diagnostics.
func (ri *raceInfo) lockSetNames(s heldSet) string {
	if len(s) == 0 {
		return "no lock"
	}
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, ri.ci.lockName(k))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// shortPos renders a position as base-filename:line for messages.
func (ri *raceInfo) shortPos(pos token.Pos) string {
	p := ri.ci.mod.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
