module corpus/wgcheck

go 1.22
