// Corpus for the wgcheck analyzer: Add inside the spawned goroutine,
// Done missing on a path, value copies of WaitGroup/Mutex, and the
// clean Add-before-go / defer-Done idiom.
package wgcheck

import "sync"

func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "Add inside the spawned goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

func missedDone(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			if j < 0 {
				return
			}
			wg.Done() // want "some paths but not all"
		}(j)
	}
	wg.Wait()
}

// deferDone is the idiom the analyzer exists to push everyone toward.
func deferDone(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if j < 0 {
				return
			}
			work(j)
		}(j)
	}
	wg.Wait()
}

// lateDoneAllPaths signals Done on every path without defer: legal,
// and must not be flagged.
func lateDoneAllPaths(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			if j < 0 {
				wg.Done()
				return
			}
			work(j)
			wg.Done()
		}(j)
	}
	wg.Wait()
}

func byValueParam(wg sync.WaitGroup) { // want "by value"
	wg.Wait()
}

func byPointerParam(wg *sync.WaitGroup) {
	wg.Wait()
}

func copyAssign() {
	var mu sync.Mutex
	mu2 := mu // want "copies a sync.Mutex by value"
	mu2.Lock()
	mu2.Unlock()
}

func freshValuesClean() {
	mu := sync.Mutex{} // a fresh zero value, not a copy
	mu.Lock()
	mu.Unlock()
}

func suppressed(wg sync.WaitGroup) { //nolint:microlint/wgcheck -- corpus-only: demonstrating suppression syntax
	wg.Wait()
}

func work(int) {}
