module corpus/tagged

go 1.22
