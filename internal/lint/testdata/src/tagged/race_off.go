//go:build !race

package tagged

const raceEnabled = false
