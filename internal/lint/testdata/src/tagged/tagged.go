// Corpus for loader build-constraint handling: raceEnabled is defined
// in two files under opposite //go:build tags, mirroring the real
// module's internal/reach/race_{on,off}.go pair. A loader that ignored
// the constraints would see a duplicate declaration and fail to
// type-check; one that resolved them differently from `go build` would
// analyze code the compiler never builds.
package tagged

// Enabled reports the build-tag choice the loader made.
func Enabled() bool { return raceEnabled }
