module corpus/lockcheck

go 1.22
