// Corpus for the lockcheck analyzer: guarded-by annotations, good and
// bad accesses, the wrong-mutex case, the Locked-suffix exemption, and
// nolint suppression.
package lockcheck

import "sync"

type counter struct {
	mu    sync.Mutex
	other sync.RWMutex

	// microlint:guarded-by mu
	n int
	// microlint:guarded-by other
	m int
	// microlint:guarded-by missing
	broken int // want "not a field of this struct"
	// microlint:guarded-by n
	alsoBroken int // want "not a sync.Mutex or sync.RWMutex"
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) GoodRead() int {
	c.other.RLock()
	defer c.other.RUnlock()
	return c.m
}

func (c *counter) Bad() int {
	return c.n // want "guarded by mu"
}

// WrongMutex locks mu but reads a field guarded by other: the exact
// annotation-on-the-wrong-mutex case the corpus must catch.
func (c *counter) WrongMutex() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m // want "guarded by other"
}

// readLocked is exempt by the Locked-suffix convention.
func (c *counter) readLocked() int {
	return c.n
}

func (c *counter) Suppressed() int {
	//nolint:microlint/lockcheck -- single-goroutine setup path, lock not yet shared
	return c.n
}

func use() {
	var c counter
	_ = c.Good() + c.GoodRead() + c.Bad() + c.WrongMutex() + c.readLocked() + c.Suppressed()
	// Broken annotations disable guarding for their fields (the
	// annotation error above is the diagnostic), so these are clean.
	_ = c.broken + c.alsoBroken
}
