// Corpus for the ctxcheck analyzer: Background/TODO bans in
// ctx-carrying and Ctx-suffixed functions, with plain functions exempt.
package ctxcheck

import "context"

// HasParam already holds a context; minting a fresh one detaches it.
func HasParam(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want "detaches from the caller's deadline"
}

// ScoreCtx follows the repo's Ctx-suffix convention.
func ScoreCtx() context.Context {
	return context.TODO() // want "context.TODO"
}

// Plain has no context and no Ctx suffix: entrypoints may mint roots.
func Plain() context.Context {
	return context.Background()
}

func Suppressed(ctx context.Context) context.Context {
	_ = ctx
	//nolint:microlint/ctxcheck -- detached audit write must outlive the request
	return context.Background()
}
