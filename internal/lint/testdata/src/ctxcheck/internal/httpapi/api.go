// The internal/httpapi import-path suffix puts this whole package under
// the ban: handlers must propagate r.Context().
package httpapi

import (
	"context"
	"net/http"
)

func Handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "r.Context"
	_ = ctx
	_ = r.Context()
}

func helper() context.Context {
	return context.TODO() // want "context.TODO"
}
