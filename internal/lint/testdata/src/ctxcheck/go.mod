module corpus/ctxcheck

go 1.22
