module corpus/errdrop

go 1.22
