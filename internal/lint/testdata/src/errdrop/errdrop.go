// Corpus for the errdrop analyzer: bare-statement and blank-discarded
// error returns, with the defer/go, fmt, and sticky-writer exemptions.
package errdrop

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func Bad() {
	mayFail()        // want "silently discarded"
	_ = mayFail()    // want "assigned to _"
	n, _ := pair()   // want "assigned to _"
	_, err := pair() // fine: only the value is dropped
	_, _ = n, err
}

func BadInDeferredClosure() {
	f, _ := os.Open("x") // want "assigned to _"
	defer func() {
		f.Close() // want "silently discarded"
	}()
}

func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close() // direct defer: exempt
	fmt.Println("ok")
	var sb strings.Builder
	sb.WriteString("sticky")
	_ = sb.String()
	return nil
}

func Suppressed() {
	//nolint:microlint/errdrop -- best-effort cleanup on shutdown
	_ = mayFail()
}
