// Corpus for the reason-required rule: a reason-less nolint directive
// still suppresses its target, but emits its own diagnostic so the
// build stays red until the why is written down.
package nolintreason

import "errors"

func mayFail() error { return errors.New("boom") }

func Bad() {
	//nolint:microlint/errdrop
	_ = mayFail()
}

func Good() {
	//nolint:microlint/errdrop -- best-effort, failure is benign
	_ = mayFail()
}
