module corpus/nolintreason

go 1.22
