// Corpus for racecheck's advisory lane (-advisory): a field that every
// concurrent access protects with the same lock, but which carries no
// guarded-by annotation, earns a suggestion at its declaration. Fields
// already annotated, and fields with inconsistent discipline, stay
// silent here — the latter is the blocking race report's business.
package racecheckadvisory

import "sync"

type Ledger struct {
	mu      sync.Mutex
	balance int // want "suggest `// microlint:guarded-by mu`"
	note    string
}

func (l *Ledger) Spin() {
	go func() {
		l.mu.Lock()
		l.balance++
		l.mu.Unlock()
	}()
	go func() {
		l.mu.Lock()
		_ = l.balance
		l.mu.Unlock()
	}()
}

// Annotated fields get no suggestion: the annotation already exists.
type Annotated struct {
	mu sync.Mutex
	n  int // microlint:guarded-by mu
}

func (a *Annotated) Spin() {
	go func() {
		a.mu.Lock()
		a.n++
		a.mu.Unlock()
	}()
	go func() {
		a.mu.Lock()
		_ = a.n
		a.mu.Unlock()
	}()
}
