// Corpus for the unused-suppression rule: a nolint directive that
// suppresses no diagnostic is itself a build-failing finding, because a
// stale suppression silently swallows the next real diagnostic landing
// on its line. A directive that still earns its keep stays silent.
package nolintunused

import "errors"

func mayFail() error { return errors.New("boom") }

// Used: the directive suppresses a live errdrop finding — no report.
func Used() {
	//nolint:microlint/errdrop -- best-effort, failure is benign
	_ = mayFail()
}

// Stale: the code below was refactored to handle its error, so the
// directive no longer suppresses anything.
func Stale() error {
	//nolint:microlint/errdrop -- left behind after a refactor // want "suppresses no diagnostics"
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}
