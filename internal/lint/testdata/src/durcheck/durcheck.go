// Corpus for the durcheck analyzer: microlint:durable functions must
// order their commit steps write-temp → fsync → rename → dirsync, flush
// buffered writes before acknowledging success, and clean their temp
// files up when they can fail. Renames outside durable functions are
// flagged so the protocol cannot be dodged by omission.
package durcheck

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

var data = []byte("payload")

// commitGood is the full correct sequence: synced temp write, rename,
// directory sync, cleanup on the failure path.
//
// microlint:durable
func commitGood(dir string) error {
	tmp := filepath.Join(dir, "m.tmp")
	if err := writeFileSynced(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "m")); err != nil {
		if rmErr := os.Remove(tmp); rmErr != nil {
			return fmt.Errorf("rename: %v; cleanup: %v", err, rmErr)
		}
		return err
	}
	return syncDir(dir)
}

// commitNoSync is the seeded violation: the temp file is written with
// no fsync before the rename, the rename gets no directory sync, and
// the temp file is never removed although the function can fail.
//
// microlint:durable
func commitNoSync(dir string) error {
	tmp := filepath.Join(dir, "m.tmp") // want "temp file tmp is never removed"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "m")) // want "without a preceding fsync" "no directory sync after os.Rename"
}

// commitNoDirSync syncs the payload but forgets the directory entry.
//
// microlint:durable
func commitNoDirSync(dir string) error {
	tmp := filepath.Join(dir, "c.tmp")
	if err := writeFileSynced(tmp, data); err != nil {
		return removeTemp(tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "c")); err != nil { // want "no directory sync after os.Rename"
		return removeTemp(tmp, err)
	}
	return nil
}

// appendGood is the WAL ack path done right: buffered writes, one
// flush, then success.
//
// microlint:durable
func appendGood(bw *bufio.Writer, recs [][]byte) error {
	for _, r := range recs {
		if _, err := bw.Write(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendNoFlush acks records that may still sit in the userspace
// buffer.
//
// microlint:durable
func appendNoFlush(bw *bufio.Writer, rec []byte) error {
	if _, err := bw.Write(rec); err != nil { // want "not followed by Flush or Sync"
		return err
	}
	return nil
}

// appendDeferredClose is clean: the deferred sync-bearing helper runs
// on every exit.
//
// microlint:durable
func appendDeferredClose(f *os.File, rec []byte) error {
	bw := bufio.NewWriter(f)
	defer flushAndSync(bw, f)
	if _, err := bw.Write(rec); err != nil {
		return err
	}
	return nil
}

// renameOutsideProtocol is not annotated, so its rename escapes the
// ordering rules — which is itself the finding.
func renameOutsideProtocol(dir string) error {
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) // want "not annotated microlint:durable"
}

// writeFileSynced writes data to path and fsyncs before close; callees
// like this one make their call sites sync barriers.
//
// microlint:durable
func writeFileSynced(path string, b []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a rename inside it is durable.
//
// microlint:durable
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	return d.Sync()
}

// flushAndSync is the deferred barrier used by appendDeferredClose.
func flushAndSync(bw *bufio.Writer, f *os.File) {
	if err := bw.Flush(); err != nil {
		return
	}
	_ = f.Sync() //nolint:microlint/errdrop -- corpus helper; error handling is not what this corpus tests
}

// removeTemp joins cleanup errors onto the primary failure.
func removeTemp(tmp string, err error) error {
	if rmErr := os.Remove(tmp); rmErr != nil {
		return fmt.Errorf("%v; cleanup: %v", err, rmErr)
	}
	return err
}
