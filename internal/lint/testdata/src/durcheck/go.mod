module corpus/durcheck

go 1.22
