// Corpus for the atomiccheck analyzer: fields and package variables
// touched through sync/atomic must never be accessed plainly, across
// package boundaries included; composite-literal initialization and
// never-atomic fields stay clean.
package atomiccheck

import (
	"sync/atomic"

	"corpus/atomiccheck/internal/other"
)

type stats struct {
	hits  uint64
	total uint64
}

func (s *stats) IncHits() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) ReadHitsGood() uint64 {
	return atomic.LoadUint64(&s.hits)
}

func (s *stats) ReadHitsBad() uint64 {
	return s.hits // want "accessed atomically .* but plainly here"
}

// PlainTotal is clean: total is never touched atomically.
func (s *stats) PlainTotal() uint64 {
	return s.total
}

// newStats is clean: composite-literal keys initialize the value before
// it is shared.
func newStats() *stats {
	return &stats{hits: 0, total: 0}
}

var gen uint64

func bumpGen() {
	atomic.AddUint64(&gen, 1)
}

func readGenBad() uint64 {
	return gen // want "accessed atomically .* but plainly here"
}

func readGenSuppressed() uint64 {
	//nolint:microlint/atomiccheck -- test-only snapshot taken while no writer can run
	return gen
}

func crossPackageBad() int64 {
	return other.Counter // want "accessed atomically .* but plainly here"
}

func use() {
	s := newStats()
	s.IncHits()
	_ = s.ReadHitsGood() + s.ReadHitsBad() + s.PlainTotal()
	bumpGen()
	_ = readGenBad() + readGenSuppressed()
	other.Inc()
	_ = crossPackageBad()
}
