// Package other holds the atomic writer whose counter the root package
// reads plainly: the cross-package case a per-package analysis misses.
package other

import "sync/atomic"

// Counter is only ever written through sync/atomic.
var Counter int64

// Inc bumps the counter atomically.
func Inc() {
	atomic.AddInt64(&Counter, 1)
}
