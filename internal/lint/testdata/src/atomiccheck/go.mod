module corpus/atomiccheck

go 1.22
