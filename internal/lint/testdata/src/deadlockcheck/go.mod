module corpus/deadlockcheck

go 1.22
