// Corpus for the deadlockcheck analyzer: a seeded lock-order inversion
// against a declared hierarchy, an observed-only cycle between
// unannotated mutexes, double-Lock, Lock without release on a path,
// call-mediated re-acquisition, the RWMutex upgrade idiom (clean), and
// nolint suppression.
package deadlockcheck

import (
	"errors"
	"sync"
)

type S struct {
	muA sync.Mutex // microlint:lock-order a
	muB sync.Mutex // microlint:lock-order b
	muC sync.Mutex
	rw  sync.RWMutex
	val int
}

// Inverted acquires b then a: together with the declared edge a < b
// (bottom of file) this closes a cycle. This is the seeded inversion.
// The cycle reports at its earliest witness edge, which is this
// acquisition because Inverted precedes Good in the file.
func (s *S) Inverted() {
	s.muB.Lock()
	defer s.muB.Unlock()
	s.muA.Lock() // want "lock-order cycle: a -> b -> a"
	defer s.muA.Unlock()
}

// Good respects the declared a < b order.
func (s *S) Good() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.muB.Lock()
	defer s.muB.Unlock()
}

// DoubleLock re-acquires a non-reentrant mutex on the same goroutine.
func (s *S) DoubleLock() {
	s.muC.Lock()
	s.muC.Lock() // want "already held"
	s.muC.Unlock()
	s.muC.Unlock()
}

// LeakOnError returns with muC still held on the error path.
func (s *S) LeakOnError(fail bool) error {
	s.muC.Lock() // want "some path returns without releasing it"
	if fail {
		return errors.New("fail")
	}
	s.muC.Unlock()
	return nil
}

// Outer holds muC across a call whose callee locks muC again.
func (s *S) Outer() {
	s.muC.Lock()
	defer s.muC.Unlock()
	s.helper() // want "may acquire .* which is already held"
}

func (s *S) helper() {
	s.muC.Lock()
	defer s.muC.Unlock()
}

// Upgrade is the read-copy-update idiom: RLock, read, RUnlock, then
// Lock on a miss. The flow-sensitive held-set must see the RUnlock and
// not call this a double lock or a leak.
func (s *S) Upgrade() {
	s.rw.RLock()
	v := s.val
	s.rw.RUnlock()
	if v == 0 {
		s.rw.Lock()
		s.val = 1
		s.rw.Unlock()
	}
}

// SuppressedHandoff intentionally transfers lock ownership to the
// caller; the leak diagnostic is suppressed with a reason.
func (s *S) SuppressedHandoff() {
	//nolint:microlint/deadlockcheck -- lock handed off; caller must invoke ReleaseC
	s.muC.Lock()
}

// ReleaseC completes the handoff begun by SuppressedHandoff.
func (s *S) ReleaseC() {
	s.muC.Unlock()
}

type T struct {
	muX sync.Mutex
	muY sync.Mutex
}

// YthenX nests the unannotated mutexes one way...
func (t *T) YthenX() {
	t.muY.Lock()
	defer t.muY.Unlock()
	t.muX.Lock() // want "lock-order cycle: deadlockcheck.T.muX -> deadlockcheck.T.muY -> deadlockcheck.T.muX"
	defer t.muX.Unlock()
}

// ...and XthenY nests them the other way through a call, closing an
// observed-only cycle with no annotations involved.
func (t *T) XthenY() {
	t.muX.Lock()
	defer t.muX.Unlock()
	t.lockY()
}

func (t *T) lockY() {
	t.muY.Lock()
	defer t.muY.Unlock()
}

// Declaration of the annotated hierarchy, kept below the functions so
// the cycle's earliest witness is the inversion site itself.
// microlint:lock-order a < b

// A declaration may only reference bound level names.
// microlint:lock-order a < ghost // want "no mutex annotation binds"

// microlint:lock-order a < < b // want "malformed lock-order declaration"

type W struct {
	// Annotations must sit on mutexes.
	n int // microlint:lock-order bogus // want "not a sync.Mutex or sync.RWMutex"
}

func use(s *S, t *T, w *W) {
	s.Good()
	s.Inverted()
	s.DoubleLock()
	_ = s.LeakOnError(false)
	s.Outer()
	s.Upgrade()
	s.SuppressedHandoff()
	s.ReleaseC()
	t.YthenX()
	t.XthenY()
	_ = w.n
}
