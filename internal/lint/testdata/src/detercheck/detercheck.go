// Corpus for the detercheck analyzer: order-dependent appends and
// output inside range-over-map, with the sorted-afterwards, loop-local,
// and keyed-write exemptions.
package detercheck

import (
	"fmt"
	"sort"
)

type result struct{ scores []float64 }

// Keys leaks map iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "order depends on map iteration"
	}
	return out
}

// KeysSorted is the sanctioned pattern: append, then sort.
func KeysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FieldAppend leaks map order into a struct field.
func FieldAppend(m map[string]float64, r *result) {
	for _, v := range m {
		r.scores = append(r.scores, v) // want "order depends on map iteration"
	}
}

// Emit prints in map order.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output order depends on map iteration"
	}
}

// LoopLocal appends to per-iteration scratch consumed inside the loop.
func LoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// KeyedWrite builds a map from a map: content is order-independent.
func KeyedWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// Suppressed documents why unordered is fine here.
func Suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//nolint:microlint/detercheck -- feeds a set membership test; order never observable
		out = append(out, k)
	}
	return out
}
