module corpus/detercheck

go 1.22
