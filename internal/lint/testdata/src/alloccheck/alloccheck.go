// Corpus for the alloccheck analyzer: microlint:noalloc functions may
// not contain per-call allocation sites. The allowed shapes are the
// amortised-zero reuse idioms the real query path uses: append into
// parameters, fields, or pool-derived scratch, value struct results,
// and pointer-shaped interface arguments.
package alloccheck

import (
	"fmt"
	"sync"
)

type scratch struct {
	tmp []int
	buf []int
}

var pool = sync.Pool{New: func() any { return &scratch{} }}

// sink consumes an interface value; annotated so that calls to it
// exercise only the boxing rule, not callee propagation.
//
// microlint:noalloc
func sink(v any) { _ = v }

// allocEverywhere is the seeded violation set: one diagnostic per
// allocation form.
//
// microlint:noalloc
func allocEverywhere(n int) {
	s := make([]int, n) // want "make in a noalloc function allocates"
	p := new(int)       // want "new in a noalloc function allocates"
	l := []int{1, 2}    // want "slice literal in a noalloc function allocates backing storage"
	m := map[int]int{}  // want "map literal in a noalloc function allocates"
	a := &scratch{}     // want "&composite literal in a noalloc function heap-allocates the value"
	_, _, _, _, _ = s, p, l, m, a
}

// growsFreshSlice appends into a slice rooted at nothing but this
// call's own frame: the growth escapes every invocation.
//
// microlint:noalloc
func growsFreshSlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append into a fresh function-local slice"
	}
	return out
}

// reusesScratch is the blessed pool idiom from the two-hop query walk:
// scratch comes from the pool, appends target its fields (or views of
// them), and the pointer goes back without boxing.
//
// microlint:noalloc
func reusesScratch(xs []int) int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	sc.buf = sc.buf[:0]
	for _, x := range xs {
		sc.buf = append(sc.buf, x) // ok: field-rooted storage is reused
	}
	dst := sc.tmp[:0]
	dst = append(dst, sc.buf...) // ok: dst is a view of pooled scratch
	return len(dst)
}

// appendsIntoParam is the caller-owned-buffer idiom: growth is the
// caller's amortised cost, not a fresh escape here.
//
// microlint:noalloc
func appendsIntoParam(buf []int, xs []int) []int {
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x) // ok: parameter storage belongs to the caller
	}
	return buf
}

type result struct {
	dist int
	ids  []int
}

// valueResult returns a struct by value; whether it stays on the stack
// is the compiler's escape analysis to prove, so it is not flagged.
//
// microlint:noalloc
func valueResult(ids []int) result {
	return result{dist: 2, ids: ids} // ok: value literal, not &literal
}

// stringWork covers the string-building allocation forms.
//
// microlint:noalloc
func stringWork(a, b string, raw []byte) string {
	joined := a + b         // want "string concatenation in a noalloc function allocates"
	decoded := string(raw)  // want "conversion string in a noalloc function copies its operand"
	return joined + decoded // want "string concatenation in a noalloc function allocates"
}

// spawnsAndCloses covers the control-flow allocators: goroutines and
// closures.
//
// microlint:noalloc
func spawnsAndCloses(n int) {
	go leaf(n)                   // want "go statement in a noalloc function: spawning a goroutine allocates"
	f := func() int { return n } // want "function literal in a noalloc function allocates a closure"
	_ = f
}

// formatsAndBoxes covers fmt and interface boxing.
//
// microlint:noalloc
func formatsAndBoxes(n int, sc *scratch) {
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf in a noalloc function allocates"
	sink(n)                  // want "passing int value as interface in a noalloc function boxes it"
	sink(sc)                 // ok: pointers are single-word and box free
}

// callsUnannotated breaks the guarantee transitively: the callee may
// allocate and nothing checks it.
//
// microlint:noalloc
func callsUnannotated(n int) int {
	return helper(n) // want "call to helper, which is not annotated microlint:noalloc"
}

// callsAnnotated keeps the whole call tree under the contract.
//
// microlint:noalloc
func callsAnnotated(n int) int {
	return leaf(n) // ok: leaf carries its own noalloc annotation
}

// leaf is an annotated, allocation-free callee.
//
// microlint:noalloc
func leaf(n int) int { return n * 2 }

// helper is a module function without the annotation.
func helper(n int) int { return n + 1 }

// external has no body, so the annotation promises nothing checkable.
//
// microlint:noalloc
func external() // want "no body to check"
