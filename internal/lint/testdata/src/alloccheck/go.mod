module corpus/alloccheck

go 1.22
