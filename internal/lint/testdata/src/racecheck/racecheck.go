// Corpus for racecheck: annotation-free race inference. Each seeded
// race pairs two concurrent roots whose lockset intersection on a
// shared field (or package var) is empty with at least one write; the
// clean patterns at the bottom must stay silent.
package racecheck

import "sync"

// --- seeded race 1: unlocked counter touched from two goroutines ---

type Counter struct {
	mu sync.Mutex
	n  int
	ok int
}

func (c *Counter) Spin() {
	go func() {
		c.n++ // want "is written here holding"
	}()
	go func() {
		_ = c.n // want "racing the write"
	}()
}

// --- seeded race 2: write performed under RLock only ---

type Stats struct {
	mu   sync.RWMutex
	hits int
}

func (s *Stats) Serve() {
	go func() {
		s.mu.RLock()
		s.hits++ // want "is written here holding"
		s.mu.RUnlock()
	}()
	go func() {
		s.mu.RLock()
		_ = s.hits // want "racing the write"
		s.mu.RUnlock()
	}()
}

// --- seeded race 3: lock released before the publish ---

type Box struct {
	mu  sync.Mutex
	val *int
}

func (b *Box) Publish(p *int) {
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
		b.val = p // want "is written here holding"
	}()
	go func() {
		b.mu.Lock()
		_ = b.val // want "racing the write"
		b.mu.Unlock()
	}()
}

// --- seeded race 4: package var written from a multi-instance root ---

var total int

func Workers() {
	for i := 0; i < 4; i++ {
		go func() {
			total++ // want "runs concurrently with itself"
		}()
	}
}

// --- ownership assertion without a justification ---

// microlint:owned
type scratch struct { // want "marked microlint:owned without a justification"
	buf []byte
}

func (s *scratch) reset() { s.buf = s.buf[:0] }

// --- clean: consistent locking needs no annotation to pass ---

func (c *Counter) SpinSafe() {
	go func() {
		c.mu.Lock()
		c.ok++
		c.mu.Unlock()
	}()
	go func() {
		c.mu.Lock()
		_ = c.ok
		c.mu.Unlock()
	}()
}

// --- clean: a justified owned type is exempt even when spawned ---

// microlint:owned — each worker constructs its own arena and never
// shares it; the slice below is per-goroutine scratch by construction.
type arena struct {
	buf []byte
}

func Fan() {
	for i := 0; i < 2; i++ {
		go func() {
			a := &arena{}
			a.buf = append(a.buf, 1)
			_ = a.buf
		}()
	}
}
