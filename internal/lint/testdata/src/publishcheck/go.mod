module corpus/publishcheck

go 1.22
