// Corpus for the publishcheck analyzer: a value that flowed into an
// atomic.Pointer Store (or an annotated publisher) is immutable; later
// writes through it or its aliases are diagnostics, while rebinding to
// a fresh value and republishing is the blessed copy-on-swap idiom.
package publishcheck

import "sync/atomic"

type arena struct {
	n      int
	labels []int
	idx    map[string]int
}

var live atomic.Pointer[arena]

// mutateAfterStore is the seeded violation: the arena is published,
// then written through directly.
func mutateAfterStore() {
	a := &arena{labels: make([]int, 4)}
	live.Store(a)
	a.n = 1 // want "published via live.Store"
}

// mutateThroughAlias writes through a second name for the same value.
func mutateThroughAlias() {
	a := &arena{}
	b := a
	live.Store(a)
	b.n = 2 // want "published via live.Store"
}

// mutateDerivedView writes the published arena's backing array through
// a slice view taken from it after the store. (A view captured *before*
// the publish is a known intraprocedural blind spot: marks flow
// forward through assignments, not backward into earlier copies.)
func mutateDerivedView() {
	a := &arena{labels: make([]int, 4)}
	live.Store(a)
	labs := a.labels
	labs[0] = 7 // want "published via live.Store"
}

// mapAndSliceWrites covers the non-field write forms.
func mapAndSliceWrites() {
	a := &arena{labels: make([]int, 4), idx: map[string]int{}}
	live.Store(a)
	a.labels[2] = 9              // want "published via live.Store"
	a.idx["k"] = 1               // want "published via live.Store"
	delete(a.idx, "k")           // want "published via live.Store"
	copy(a.labels, a.labels[1:]) // want "published via live.Store"
	a.n++                        // want "published via live.Store"
}

// freshAfterRebind is clean: rebinding kills the mark, so preparing the
// next generation is fine, and publishing it freezes that one instead.
func freshAfterRebind() {
	a := &arena{}
	live.Store(a)
	a = &arena{labels: make([]int, 8)}
	a.n = 3 // ok: a now names a fresh, unpublished arena
	live.Store(a)
}

// buildThenPublish is the legal order: all mutation strictly before the
// store.
func buildThenPublish() {
	a := &arena{labels: make([]int, 4)}
	a.n = 10
	a.labels[0] = 1
	live.Store(a)
}

// publishOnSomePath must still flag: the store happens conditionally,
// and the write executes on the published path too (may-analysis).
func publishOnSomePath(swap bool) {
	a := &arena{}
	if swap {
		live.Store(a)
	}
	a.n = 4 // want "published via live.Store"
}

// install is an annotated publisher standing in for
// reach.Streaming.Install: callers' arguments freeze at the call.
//
// microlint:published-by live
func install(a *arena) {
	live.Store(a)
}

// mutateAfterInstall is the annotated-publisher half of the seeded
// violation.
func mutateAfterInstall() {
	a := &arena{}
	install(a)
	a.n = 5 // want "published via install \(published-by live\)"
}

// installInsideCallback publishes from a synchronous closure — the
// copy-on-swap shape used under the linker's write lock. The write
// after the callback statement is still caught.
func installInsideCallback(withLock func(func())) {
	a := &arena{}
	withLock(func() {
		install(a)
	})
	a.n = 6 // want "published via install"
}

// valueOnly has no pointer-shaped parameter, so the annotation cannot
// mean anything.
//
// microlint:published-by live
func valueOnly(n int) {} // want "no pointer, slice, or map parameter"

func use() {
	mutateAfterStore()
	mutateThroughAlias()
	mutateDerivedView()
	mapAndSliceWrites()
	freshAfterRebind()
	buildThenPublish()
	publishOnSomePath(true)
	mutateAfterInstall()
	installInsideCallback(func(f func()) { f() })
	valueOnly(0)
}
