// Corpus for the leakcheck analyzer: goroutines stuck on local
// channels, time.Tick, unstopped tickers, and the clean worker-pool /
// escaping-channel shapes that must not be flagged.
package leakcheck

import "time"

func tick() {
	for range time.Tick(time.Second) { // want "time.Tick leaks its ticker"
		work(0)
	}
}

func unstopped() {
	t := time.NewTicker(time.Second) // want "never stopped"
	<-t.C
}

func stopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func sendNoReceiver() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want "blocks forever"
	}()
}

// sendBuffered is clean: a buffered send completes without a receiver.
func sendBuffered() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
}

func recvNoSender() {
	ch := make(chan int)
	go func() {
		<-ch // want "nothing ever sends on or closes it"
	}()
}

func rangeNoClose(items []int) {
	ch := make(chan int, len(items))
	go func() {
		for v := range ch { // want "never closed"
			work(v)
		}
	}()
	for _, v := range items {
		ch <- v
	}
}

// workerPoolClean is the full idiom: feeder closes the work channel,
// the worker signals completion by closing done.
func workerPoolClean(items []int) {
	ch := make(chan int)
	done := make(chan struct{})
	go func() {
		for v := range ch {
			work(v)
		}
		close(done)
	}()
	for _, v := range items {
		ch <- v
	}
	close(ch)
	<-done
}

// escapes returns the channel: its receivers are out of scope for a
// local analysis, so nothing is flagged.
func escapes() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}

// passed hands the channel to another function, which may drain it.
func passed() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	drain(ch)
}

func suppressed() {
	ch := make(chan int)
	go func() {
		//nolint:microlint/leakcheck -- process-lifetime signal goroutine, leak is intentional here
		ch <- 1
	}()
}

func drain(ch chan int) { <-ch }

func work(int) {}
