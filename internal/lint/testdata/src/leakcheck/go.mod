module corpus/leakcheck

go 1.22
