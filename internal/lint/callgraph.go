package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// callgraph.go builds a module-wide static callgraph in the CHA
// (class-hierarchy analysis) style over go/types: every declared
// function, method, and function literal of the module is a node; call
// sites resolve to their static callee when the callee is a named
// module function, to every module implementation of the method when
// the receiver is an interface, and to the bound literal when a local
// variable holding a func literal is called. go and defer call sites
// are recorded with their kind so the concurrency analyzers can treat
// spawned work differently from same-goroutine calls.
//
// Known imprecision, chosen deliberately: calls through function-typed
// parameters and fields resolve to nothing (else every callback would
// acquire the union of all locks), and a *reference* to a named module
// function outside call position (a method value handed to a worker
// pool) adds a possible-call edge from the referencing function — a
// may-call overapproximation that errs toward surfacing lock-order
// edges rather than hiding them.

// callKind distinguishes how a call site transfers control.
type callKind int

const (
	callStatic callKind = iota // ordinary call, same goroutine
	callGo                     // go statement: runs in a new goroutine
	callDefer                  // defer: runs at function exit
	callRef                    // reference to a func outside call position
)

// callSite is one resolved call from a function to its possible targets.
type callSite struct {
	pos     token.Pos
	kind    callKind
	targets []*funcNode
}

// funcNode is one function of the module: a declaration or a literal.
type funcNode struct {
	obj  *types.Func   // nil for literals
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	pkg  *Package
	body *ast.BlockStmt

	calls []callSite

	// Filled by summary.go.
	acquires    map[lockKey]token.Pos // locks this body acquires directly
	acquiresAll map[lockKey]token.Pos // transitive over static/defer calls
	cfgOnce     sync.Once
	cfgGraph    *funcCFG
}

// name returns a human-readable identity for diagnostics.
func (f *funcNode) name() string {
	if f.obj != nil {
		return f.obj.Name()
	}
	return "func literal"
}

// cfg returns the lazily built CFG of the node's body (once-guarded:
// Precompute warms every node, but a cold concurrent call must be safe).
func (f *funcNode) cfg() *funcCFG {
	f.cfgOnce.Do(func() {
		f.cfgGraph = buildCFG(f.body)
	})
	return f.cfgGraph
}

// callgraph holds the module's function nodes and resolution indexes.
type callgraph struct {
	mod   *Module
	funcs []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	byVar map[types.Object]*funcNode // local var bound to a literal
	named []types.Type               // all module named types (and pointers)
}

// buildCallgraph collects every function node of the module and
// resolves its call sites.
func buildCallgraph(mod *Module) *callgraph {
	cg := &callgraph{
		mod:   mod,
		byObj: map[*types.Func]*funcNode{},
		byLit: map[*ast.FuncLit]*funcNode{},
		byVar: map[types.Object]*funcNode{},
	}
	for _, pkg := range mod.Pkgs {
		cg.collectNamedTypes(pkg)
	}
	for _, pkg := range mod.Pkgs {
		cg.collectFuncs(pkg)
	}
	for _, fn := range cg.funcs {
		cg.resolveCalls(fn)
	}
	return cg
}

func (cg *callgraph) collectNamedTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		cg.named = append(cg.named, t, types.NewPointer(t))
	}
}

func (cg *callgraph) collectFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			node := &funcNode{obj: obj, decl: fd, pkg: pkg, body: fd.Body}
			cg.funcs = append(cg.funcs, node)
			if obj != nil {
				cg.byObj[obj] = node
			}
			// Literals nested anywhere in the declaration (including
			// inside other literals) become their own nodes.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ln := &funcNode{lit: lit, pkg: pkg, body: lit.Body}
					cg.funcs = append(cg.funcs, ln)
					cg.byLit[lit] = ln
				}
				return true
			})
		}
	}
	// Bind `name := func(...) {...}` and `var name = func(...) {...}`
	// so calls through the variable resolve to the literal.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj != nil && cg.byLit[lit] != nil {
						cg.byVar[obj] = cg.byLit[lit]
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range n.Values {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Names) {
						continue
					}
					if obj := pkg.Info.Defs[n.Names[i]]; obj != nil && cg.byLit[lit] != nil {
						cg.byVar[obj] = cg.byLit[lit]
					}
				}
			}
			return true
		})
	}
}

// walkOwn visits fn's body in syntactic order without descending into
// nested function literals, which are their own nodes.
func (fn *funcNode) walkOwn(visit func(ast.Node) bool) {
	if fn.body == nil {
		return
	}
	for _, stmt := range fn.body.List {
		inspectNoFuncLit(stmt, visit)
	}
}

// resolveCalls records fn's call sites. Two pre-passes mark the call
// expressions owned by go/defer statements and the identifiers standing
// in call-operand position, so the main walk can classify each node in
// one visit.
func (cg *callgraph) resolveCalls(fn *funcNode) {
	pkg := fn.pkg
	goDefer := map[*ast.CallExpr]callKind{}
	callFun := map[*ast.Ident]bool{}
	fn.walkOwn(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goDefer[n.Call] = callGo
		case *ast.DeferStmt:
			goDefer[n.Call] = callDefer
		case *ast.CallExpr:
			switch f := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				callFun[f] = true
			case *ast.SelectorExpr:
				callFun[f.Sel] = true
			}
		}
		return true
	})

	record := func(pos token.Pos, kind callKind, targets []*funcNode) {
		if len(targets) > 0 {
			fn.calls = append(fn.calls, callSite{pos: pos, kind: kind, targets: targets})
		}
	}
	calledLits := map[*ast.FuncLit]bool{}
	fn.walkOwn(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			kind, ok := goDefer[n]
			if !ok {
				kind = callStatic
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				calledLits[lit] = true
			}
			record(n.Pos(), kind, cg.calleesOf(pkg, n))
		case *ast.Ident:
			// A module function referenced outside call position: may be
			// invoked later by whoever receives it.
			if callFun[n] {
				return true
			}
			if f, ok := pkg.Info.Uses[n].(*types.Func); ok {
				if tgt := cg.byObj[f]; tgt != nil {
					record(n.Pos(), callRef, []*funcNode{tgt})
				}
			}
		}
		return true
	})

	// A literal not in call position (a comparator handed to sort.Slice,
	// a callback stored for later) may still run while the enclosing
	// function's locks are held: add a may-call edge.
	fn.directLits(func(lit *ast.FuncLit) {
		if calledLits[lit] {
			return
		}
		if n := cg.byLit[lit]; n != nil {
			record(lit.Pos(), callRef, []*funcNode{n})
		}
	})
}

// directLits visits the function literals whose immediately enclosing
// function is fn (not literals nested inside other literals).
func (fn *funcNode) directLits(visit func(*ast.FuncLit)) {
	if fn.body == nil {
		return
	}
	for _, stmt := range fn.body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(lit)
				return false
			}
			return true
		})
	}
}

// calleesOf resolves the possible module targets of one call expression.
func (cg *callgraph) calleesOf(pkg *Package, call *ast.CallExpr) []*funcNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[fun]
		if f, ok := obj.(*types.Func); ok {
			if n := cg.byObj[f]; n != nil {
				return []*funcNode{n}
			}
			return nil
		}
		if obj != nil {
			if n := cg.byVar[obj]; n != nil {
				return []*funcNode{n}
			}
		}
		return nil
	case *ast.FuncLit:
		if n := cg.byLit[fun]; n != nil {
			return []*funcNode{n}
		}
		return nil
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			mobj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return cg.implementersOf(sel.Recv(), mobj)
			}
			if n := cg.byObj[mobj]; n != nil {
				return []*funcNode{n}
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := cg.byObj[f]; n != nil {
				return []*funcNode{n}
			}
		}
		return nil
	}
	return nil
}

// implementersOf returns the nodes of every module method that can be
// the dynamic target of calling method m on interface type iface.
func (cg *callgraph) implementersOf(iface types.Type, m *types.Func) []*funcNode {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*funcNode
	seen := map[*funcNode]bool{}
	for _, t := range cg.named {
		if !types.Implements(t, it) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := cg.byObj[f]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// qualifiedName renders a types.Object as pkg.Name for messages,
// trimming the module path prefix for brevity.
func qualifiedName(mod *Module, obj types.Object) string {
	if obj == nil {
		return "?"
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	p := strings.TrimPrefix(obj.Pkg().Path(), mod.Path+"/")
	if p == mod.Path {
		p = obj.Pkg().Name()
	}
	if i := strings.LastIndex(p, "/"); i >= 0 {
		p = p[i+1:]
	}
	return p + "." + obj.Name()
}
