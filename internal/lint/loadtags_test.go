package lint

import (
	"path/filepath"
	"testing"
)

// fileNames returns the base names of the files loaded for pkg.
func fileNames(pkg *Package) map[string]bool {
	names := map[string]bool{}
	for _, f := range pkg.Files {
		names[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
	}
	return names
}

// TestLoaderRespectsBuildTags loads a corpus whose raceEnabled constant
// is declared twice under opposite //go:build tags. The load must pick
// exactly the file `go build` would (no "race" tag in the default
// context), or the package would fail with a duplicate declaration.
func TestLoaderRespectsBuildTags(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "tagged"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadTree(dir, "corpus/tagged")
	if err != nil {
		t.Fatalf("load tagged corpus: %v", err)
	}
	if len(mod.Pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(mod.Pkgs))
	}
	names := fileNames(mod.Pkgs[0])
	if !names["race_off.go"] {
		t.Errorf("race_off.go (//go:build !race) should be loaded; got %v", names)
	}
	if names["race_on.go"] {
		t.Errorf("race_on.go (//go:build race) must be excluded; got %v", names)
	}
	if !names["tagged.go"] {
		t.Errorf("untagged tagged.go should be loaded; got %v", names)
	}

	// The analyzers must run cleanly over the constrained view.
	if diags := Run(mod, Analyzers()); len(diags) != 0 {
		t.Errorf("tagged corpus should be diagnostic-free, got %v", diags)
	}
}

// TestModuleLoadRespectsBuildTags pins the same behavior on the real
// module: internal/reach ships the race_{on,off}.go pair, and the
// module load must resolve it exactly like the corpus.
func TestModuleLoadRespectsBuildTags(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range mod.Pkgs {
		if pkg.PkgPath != "microlink/internal/reach" {
			continue
		}
		names := fileNames(pkg)
		if !names["race_off.go"] || names["race_on.go"] {
			t.Fatalf("reach package loaded the wrong race file set: %v", names)
		}
		return
	}
	t.Fatal("module load missed microlink/internal/reach")
}
