package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestWriteJSONGolden locks the -json wire format byte-for-byte: CI
// tooling parses this output, so a field rename or ordering change must
// show up as a test diff, not as a broken pipeline.
func TestWriteJSONGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/core/linker.go", Line: 42, Column: 7},
			Analyzer: "deadlockcheck",
			Message:  "lock-order cycle: a -> b -> a",
		},
		{
			Pos:      token.Position{Filename: "internal/obs/obs.go", Line: 9, Column: 1},
			Analyzer: "leakcheck",
			Message:  `goroutine ranges over ch, which is never closed; the goroutine never exits`,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	const golden = `[
  {
    "file": "internal/core/linker.go",
    "line": 42,
    "column": 7,
    "analyzer": "deadlockcheck",
    "message": "lock-order cycle: a -> b -> a"
  },
  {
    "file": "internal/obs/obs.go",
    "line": 9,
    "column": 1,
    "analyzer": "leakcheck",
    "message": "goroutine ranges over ch, which is never closed; the goroutine never exits"
  }
]
`
	if buf.String() != golden {
		t.Errorf("WriteJSON output drifted from the golden form:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
}

// TestWriteJSONEmpty pins the zero-diagnostic form: an empty array, not
// null — `jq length` must keep working on a clean run.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q", got, "[]\n")
	}
}

// TestWriteJSONSchema checks every emitted object carries exactly the
// five documented keys, guarding against accidental additions that
// would loosen the schema without a conscious decision.
func TestWriteJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "x.go", Line: 1, Column: 1},
		Analyzer: "wgcheck",
		Message:  "m",
	}}
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not a JSON array of objects: %v", err)
	}
	want := map[string]bool{"file": true, "line": true, "column": true, "analyzer": true, "message": true}
	for _, obj := range raw {
		if len(obj) != len(want) {
			t.Errorf("object has %d keys, want %d: %v", len(obj), len(want), obj)
		}
		for k := range obj {
			if !want[k] {
				t.Errorf("unexpected key %q in JSON output", k)
			}
		}
	}
}
