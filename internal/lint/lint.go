// Package lint implements microlint, the project's static-analysis
// suite. It loads every package of the module with go/parser + go/types
// (no external dependencies) and runs a fixed set of analyzers that
// encode repo-specific invariants: lock discipline on annotated fields,
// context propagation on request paths, determinism of map iteration
// feeding scores, and no silently dropped errors.
//
// Diagnostics can be suppressed with a justified
// //nolint:microlint/<analyzer> comment; see nolint.go.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the loaded module.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check run over every package of a module.
type Analyzer interface {
	Name() string
	Doc() string
	// Run inspects pkg and reports findings through report. Positions
	// must be valid in pkg.Fset.
	Run(pkg *Package, report func(pos token.Pos, msg string))
}

// ModuleAnalyzer is implemented by analyzers that need the whole module
// at once — the lock-order graph and atomic-vs-plain checks cannot be
// decided one package at a time. Run dispatches RunModule exactly once
// instead of calling Run per package.
type ModuleAnalyzer interface {
	Analyzer
	RunModule(mod *Module, report func(pos token.Pos, msg string))
}

// Analyzers returns the full microlint suite in its canonical order.
func Analyzers() []Analyzer {
	return []Analyzer{
		lockcheck{}, ctxcheck{}, detercheck{}, errdrop{},
		deadlockcheck{}, leakcheck{}, wgcheck{}, atomiccheck{},
		publishcheck{}, durcheck{}, alloccheck{}, racecheck{},
	}
}

// AdvisoryAnalyzers returns the analyzers of the non-blocking advisory
// lane: racecheck in suggestion mode, where consistently-locked but
// unannotated fields get a proposed guarded-by annotation instead of
// the module being required to be race-free (see cmd/microlint
// -advisory).
func AdvisoryAnalyzers() []Analyzer {
	return []Analyzer{racecheck{advisory: true}}
}

// AnalyzerByName resolves a single analyzer, for corpus tests.
func AnalyzerByName(name string) (Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the given analyzers over every package of mod, applies
// nolint suppression, and returns the surviving diagnostics sorted by
// position. Reason-less nolint directives produce their own
// diagnostics (analyzer "nolint"), so a suppression never silently
// weakens the build.
func Run(mod *Module, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	reporter := func(name string) func(token.Pos, string) {
		return func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{
				Pos:      mod.Fset.Position(pos),
				Analyzer: name,
				Message:  msg,
			})
		}
	}
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			ma.RunModule(mod, reporter(a.Name()))
			continue
		}
		for _, pkg := range mod.Pkgs {
			a.Run(pkg, reporter(a.Name()))
		}
	}
	return finishRun(mod, analyzers, diags)
}

// finishRun applies nolint suppression to the raw analyzer output, adds
// the directive hygiene findings (reason-less and unused suppressions),
// and returns the final sorted, deduplicated slice. Shared by Run and
// RunTimed.
func finishRun(mod *Module, analyzers []Analyzer, diags []Diagnostic) []Diagnostic {
	dirs, dirDiags := collectDirectives(mod)
	kept := dirDiags
	for _, d := range diags {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	kept = append(kept, dirs.unused(ran)...)
	sortDiagnostics(kept)
	return dedupe(kept)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupe drops exact duplicates (same position, analyzer, and message),
// which nested range statements can produce. ds must be sorted.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// jsonDiagnostic is the wire form of a Diagnostic for -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits diagnostics as a JSON array, one object per finding.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // diagnostics print "a -> b", not "a -> b"
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText emits diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, ds []Diagnostic) error {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
