package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// leakcheck finds goroutines that can never finish and tickers that are
// never stopped:
//
//   - a goroutine sending on an unbuffered function-local channel that
//     nothing in the function ever receives from — the send blocks
//     forever and the goroutine leaks;
//   - a goroutine receiving on a function-local channel that nothing
//     ever sends on or closes;
//   - a goroutine ranging over a function-local channel that is never
//     closed — the range never terminates;
//   - time.Tick (its ticker can never be stopped) and a local
//     time.NewTicker with no Stop call in the function.
//
// Channel reasoning is restricted to channels that do not escape the
// function: a channel passed to another function, stored in a struct,
// or returned has counterparties this analysis cannot see, so it is
// skipped rather than guessed at. That keeps the check near-zero false
// positives — exactly the property a worker-pool-heavy codebase needs
// from a gate that runs in CI.
type leakcheck struct{}

func (leakcheck) Name() string { return "leakcheck" }
func (leakcheck) Doc() string {
	return "goroutines blocked forever on local channels nobody drains/closes; time.Tick and unstopped tickers"
}

// chanUses aggregates everything one function does with one local channel.
//
// microlint:owned — allocated fresh per collectChanUses call and reached
// only through that call's local chans map; the traversal that fills it
// runs entirely on the calling analyzer's goroutine.
type chanUses struct {
	unbuffered bool
	escapes    bool

	sends, recvs, closes, ranges int
	goSend, goRecv, goRange      token.Pos // first occurrence inside a spawned goroutine
}

func (leakcheck) Run(pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChannels(pkg, fd.Body, report)
			checkTickers(pkg, fd.Body, report)
		}
		checkTick(pkg, f, report)
	}
}

// checkTick flags time.Tick anywhere: the underlying ticker is
// unreachable and runs for the life of the process.
func checkTick(pkg *Package, f *ast.File, report func(token.Pos, string)) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pkg, call.Fun, "time", "Tick") {
			report(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker and defer t.Stop()")
		}
		return true
	})
}

// checkTickers flags local time.NewTicker results with no Stop call in
// the function (escaping tickers are someone else's to stop).
func checkTickers(pkg *Package, body *ast.BlockStmt, report func(token.Pos, string)) {
	tickers := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPkgFunc(pkg, call.Fun, "time", "NewTicker") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			tickers[obj] = call.Pos()
		}
		return true
	})
	if len(tickers) == 0 {
		return
	}
	stopped := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						stopped[obj] = true
					}
				}
			}
			// A ticker handed to another function escapes.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj, pos := range tickers {
		if !stopped[obj] && !escaped[obj] {
			report(pos, fmt.Sprintf("ticker %s is never stopped; defer %s.Stop() or it runs forever", obj.Name(), obj.Name()))
		}
	}
}

// checkChannels runs the local-channel leak rules over one function body.
func checkChannels(pkg *Package, body *ast.BlockStmt, report func(token.Pos, string)) {
	chans := collectLocalChans(pkg, body)
	if len(chans) == 0 {
		return
	}

	goRanges := spawnedLitRanges(body)
	inGo := func(pos token.Pos) bool {
		for _, r := range goRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// classified maps identifiers consumed by a recognized channel
	// operation; every other use of a tracked channel is an escape.
	classified := map[*ast.Ident]bool{}
	chanIdent := func(e ast.Expr) (*ast.Ident, *chanUses) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, nil
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			if cu := chans[obj]; cu != nil {
				return id, cu
			}
		}
		return nil, nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if id, cu := chanIdent(n.Chan); cu != nil {
				classified[id] = true
				cu.sends++
				if inGo(n.Pos()) && cu.goSend == 0 {
					cu.goSend = n.Pos()
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if id, cu := chanIdent(n.X); cu != nil {
					classified[id] = true
					cu.recvs++
					if inGo(n.Pos()) && cu.goRecv == 0 {
						cu.goRecv = n.Pos()
					}
				}
			}
		case *ast.RangeStmt:
			if id, cu := chanIdent(n.X); cu != nil {
				classified[id] = true
				cu.ranges++
				if inGo(n.Pos()) && cu.goRange == 0 {
					cu.goRange = n.Pos()
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "close":
					if len(n.Args) == 1 {
						if aid, cu := chanIdent(n.Args[0]); cu != nil {
							classified[aid] = true
							cu.closes++
						}
					}
				case "len", "cap":
					if len(n.Args) == 1 {
						if aid, cu := chanIdent(n.Args[0]); cu != nil {
							classified[aid] = true
						}
					}
				}
			}
		}
		return true
	})

	// Any remaining use of a tracked channel is an escape.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || classified[id] {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			if cu := chans[obj]; cu != nil {
				cu.escapes = true
			}
		}
		return true
	})

	for obj, cu := range chans {
		if cu.escapes {
			continue
		}
		name := obj.Name()
		if cu.goSend != 0 && cu.unbuffered && cu.recvs == 0 && cu.ranges == 0 {
			report(cu.goSend, fmt.Sprintf(
				"goroutine sends on %s but the function never receives from it; the goroutine blocks forever", name))
		}
		if cu.goRecv != 0 && cu.sends == 0 && cu.closes == 0 {
			report(cu.goRecv, fmt.Sprintf(
				"goroutine receives on %s but nothing ever sends on or closes it; the goroutine blocks forever", name))
		}
		if cu.goRange != 0 && cu.closes == 0 {
			report(cu.goRange, fmt.Sprintf(
				"goroutine ranges over %s, which is never closed; the goroutine never exits", name))
		}
	}
}

// collectLocalChans finds `ch := make(chan T[, n])` declarations whose
// variable is local to body.
func collectLocalChans(pkg *Package, body *ast.BlockStmt) map[types.Object]*chanUses {
	chans := map[types.Object]*chanUses{}
	record := func(id *ast.Ident, call *ast.CallExpr) {
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "make" || len(call.Args) == 0 {
			return
		}
		if _, ok := pkg.Info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			chans[obj] = &chanUses{unbuffered: len(call.Args) == 1}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						record(id, call)
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if call, ok := rhs.(*ast.CallExpr); ok && i < len(n.Names) {
					record(n.Names[i], call)
				}
			}
		}
		return true
	})
	return chans
}

// spawnedLitRanges returns the source ranges of function literals
// launched directly by a go statement in body.
func spawnedLitRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return out
}

// isPkgFunc reports whether fun is a selector pkgName.funcName resolving
// to the named standard-library function.
func isPkgFunc(pkg *Package, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
