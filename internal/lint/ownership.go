package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ownership.go — the deep-ownership half of racecheck. The lockset
// dataflow (lockset.go) decides which locks protect an access; this
// file decides which accesses need protection at all. The judgment is
// RacerD-style ownership: an access whose base chain bottoms out in
// storage provably private to the current activation — a local, a
// by-value parameter copy, memory freshly allocated here or by a
// callee that only ever returns fresh memory — cannot race, whatever
// the lockset says.
//
// Ownership is *deep*: once a root is judged private, everything
// reached through selectors, indexes, and dereferences from it is
// treated as private too. That assumes a private struct does not hold
// pointers into shared memory that the chain then walks through — the
// same assumption RacerD makes, and a documented soundness hole here
// (in this module the hole is not exercised: shared state is reached
// through receivers, which ownership tracks precisely).
//
// Four judgments compose:
//
//   - freshness: locals whose every definition is fresh (make, new,
//     composite literals, append over fresh, calls that return fresh),
//     evaluated through the lexical chain so a closure inherits the
//     freshness of captured locals — unless the local is referenced
//     anywhere under a `go` statement, which publishes it.
//   - owned parameters: a pointer receiver/parameter is owned when
//     every resolvable call site in the module passes it provably
//     private memory. Functions the module never calls (http.Handler
//     methods invoked by net/http, exported API without internal
//     callers) keep their optimistic ownership — documented hole.
//   - returns-fresh summaries: a function whose every return statement
//     yields private memory confers freshness on its call results
//     (constructors: `return &Builder{n: n}`). Value-typed results are
//     always fresh — the caller receives a copy.
//   - annotated ownership: `// microlint:owned — reason` on a type
//     declaration asserts instances are confined to one goroutine at a
//     time (pool handout, per-worker slot). Any expression of the
//     annotated type is judged private, and its fields leave access
//     tracking entirely. The assertion is the escape hatch for
//     hand-over-hand ownership transfer the analysis cannot see (a
//     custom free list handing scratch state to exactly one worker);
//     the reason is mandatory, mirroring nolint.
//
// Concurrent roots — go targets, HTTP handlers, exported methods of
// spawner types — are demoted up front: their receivers and parameters
// arrive from contexts the module's call sites do not witness, so
// optimistic ownership must not survive on them (an exported method
// nobody calls in-module would otherwise have its receiver writes
// silently exempted).
//
// sync.Pool.Get results are owned by construction (Put is the transfer
// back), and the body of a func literal passed directly to
// (*sync.Once).Do is exempt wholesale: it runs exactly once,
// happens-before every Do return.

// ownFrame is the per-function state ownership reasons over.
type ownFrame struct {
	defs   map[types.Object][]ast.Expr // local → defining expressions
	params map[types.Object]bool       // receiver + parameters (not results)
}

// ownedDecl is one `microlint:owned` type annotation, kept for
// reason-enforcement and the advisory/docs surface.
type ownedDecl struct {
	typeName string
	pos      token.Pos
	reason   string
}

// ownInfo is the module-wide ownership state, built once per raceInfo.
type ownInfo struct {
	cg     *callgraph
	frames map[*funcNode]*ownFrame
	parent map[*funcNode]*funcNode // literal → lexically enclosing function

	// goShared holds every object referenced anywhere inside a go
	// statement's subtree but declared outside it: publishing a local to
	// a goroutine ends its freshness everywhere (flow-insensitively).
	goShared map[types.Object]bool

	owned    map[*types.Var]bool // pointer receivers/params proven owned
	retFresh map[*funcNode]bool  // returns-fresh memo (valid post-fixpoint)
	retBusy  map[*funcNode]bool  // recursion guard: optimistic on cycles

	onceBody    map[*funcNode]bool       // literal passed directly to (*sync.Once).Do
	ownedFields map[types.Object]bool    // fields of microlint:owned types
	ownedNamed  map[*types.TypeName]bool // microlint:owned type declarations
	ownedDecls  []ownedDecl

	rootFns map[*funcNode]bool // concurrent roots: params never stay owned
}

// buildOwnership computes the module's ownership state over the
// callgraph: frames, lexical parents, go-shared objects, annotated
// types, Once bodies, and the owned-parameter fixpoint.
func buildOwnership(cg *callgraph, roots []*raceRoot) *ownInfo {
	o := &ownInfo{
		cg:          cg,
		frames:      map[*funcNode]*ownFrame{},
		parent:      map[*funcNode]*funcNode{},
		goShared:    map[types.Object]bool{},
		owned:       map[*types.Var]bool{},
		retFresh:    map[*funcNode]bool{},
		retBusy:     map[*funcNode]bool{},
		onceBody:    map[*funcNode]bool{},
		ownedFields: map[types.Object]bool{},
		ownedNamed:  map[*types.TypeName]bool{},
		rootFns:     map[*funcNode]bool{},
	}
	for _, r := range roots {
		o.rootFns[r.fn] = true
	}
	for _, fn := range cg.funcs {
		if fn.body == nil {
			continue
		}
		o.frames[fn] = &ownFrame{
			defs:   localDefs(fn.pkg, fn.body),
			params: recvParamObjs(fn),
		}
		fn.directLits(func(lit *ast.FuncLit) {
			if child := cg.byLit[lit]; child != nil {
				o.parent[child] = fn
			}
		})
		o.markGoShared(fn)
		o.markOnceBodies(fn)
	}
	for _, pkg := range cg.mod.Pkgs {
		o.collectOwnedTypes(pkg)
	}
	o.computeOwned()
	return o
}

// recvParamObjs collects the receiver and parameter objects of fn —
// unlike paramObjs it excludes named results, which are plain local
// storage for ownership purposes (their defining assignments decide).
func recvParamObjs(fn *funcNode) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj := fn.pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	switch {
	case fn.decl != nil:
		add(fn.decl.Recv)
		add(fn.decl.Type.Params)
	case fn.lit != nil:
		add(fn.lit.Type.Params)
	}
	return out
}

// markGoShared records every object a go statement in fn's own body
// publishes: anything referenced under the statement (including the
// spawned literal's free variables and the call's arguments) that is
// declared outside it.
func (o *ownInfo) markGoShared(fn *funcNode) {
	fn.walkOwn(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(gs, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := fn.pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				if v.Pos() < gs.Pos() || v.Pos() >= gs.End() {
					o.goShared[v] = true
				}
			}
			return true
		})
		return true
	})
}

// markOnceBodies records func literals passed directly to
// (*sync.Once).Do: their bodies run exactly once and happen-before
// every Do return, so their accesses are exempt from race reporting.
func (o *ownInfo) markOnceBodies(fn *funcNode) {
	fn.walkOwn(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if !isSyncMethodCall(fn.pkg, call, "sync.Once", "Do") {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			if child := o.cg.byLit[lit]; child != nil {
				o.onceBody[child] = true
			}
		}
		return true
	})
}

// isSyncMethodCall reports whether call invokes the named method on a
// receiver of the given sync-package type (or a pointer to it).
func isSyncMethodCall(pkg *Package, call *ast.CallExpr, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String() == typeName
}

// collectOwnedTypes scans pkg for `microlint:owned` type annotations
// and records the annotated types' field objects.
func (o *ownInfo) collectOwnedTypes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				reason, found := ownedMarker(gd.Doc, ts.Doc, ts.Comment)
				if !found {
					continue
				}
				o.ownedDecls = append(o.ownedDecls, ownedDecl{
					typeName: ts.Name.Name,
					pos:      ts.Name.Pos(),
					reason:   reason,
				})
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					o.ownedNamed[tn] = true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, id := range f.Names {
						if obj := pkg.Info.Defs[id]; obj != nil {
							o.ownedFields[obj] = true
						}
					}
				}
			}
		}
	}
}

// ownedMarker finds a `microlint:owned` marker in any of the given
// comment groups and returns its trailing justification text.
func ownedMarker(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if text, ok := markerText(c.Text, "microlint:owned"); ok {
				return text, true
			}
		}
	}
	return "", false
}

// computeOwned runs the owned-parameter fixpoint. Every pointer
// receiver/parameter starts owned; a call site passing non-private
// memory, or any reference to the function outside call position
// (callbacks run with unknowable arguments), demotes. Demotion is
// monotone, so iteration terminates. The returns-fresh memo depends on
// ownership, so it is cleared each round and only final after
// convergence.
func (o *ownInfo) computeOwned() {
	for _, fn := range o.cg.funcs {
		recv, params, _ := funcSignature(fn)
		for _, v := range append(params, recv) {
			if v != nil && refLike(v.Type()) {
				o.owned[v] = true
			}
		}
	}

	// Concurrent roots run on goroutines whose arguments the module's
	// call sites do not fully witness (net/http, a caller outside the
	// module): nothing they receive is owned.
	for fn := range o.rootFns {
		o.demoteAll(fn)
	}

	// References outside call position: whoever receives the function
	// value calls it with arguments this analysis never sees.
	for _, fn := range o.cg.funcs {
		for i := range fn.calls {
			cs := &fn.calls[i]
			if cs.kind != callRef {
				continue
			}
			for _, tgt := range cs.targets {
				o.demoteAll(tgt)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		o.retFresh = map[*funcNode]bool{}
		for _, fn := range o.cg.funcs {
			fn.walkOwn(func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if o.demoteAtCall(fn, call) {
						changed = true
					}
				}
				return true
			})
		}
	}
}

// funcSignature returns fn's receiver and ordered parameters at the
// types level, plus whether the signature is variadic.
func funcSignature(fn *funcNode) (recv *types.Var, params []*types.Var, variadic bool) {
	var sig *types.Signature
	switch {
	case fn.obj != nil:
		sig, _ = fn.obj.Type().(*types.Signature)
	case fn.lit != nil:
		if tv, ok := fn.pkg.Info.Types[fn.lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil {
		return nil, nil, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return sig.Recv(), params, sig.Variadic()
}

// demoteAll strips ownership from every pointer parameter of tgt.
func (o *ownInfo) demoteAll(tgt *funcNode) {
	recv, params, _ := funcSignature(tgt)
	for _, v := range append(params, recv) {
		if v != nil {
			delete(o.owned, v)
		}
	}
}

// demoteAtCall matches call's arguments against each resolvable
// target's parameters and demotes any owned pointer parameter that
// receives memory not provably private to the caller. Reports whether
// any demotion happened.
func (o *ownInfo) demoteAtCall(fn *funcNode, call *ast.CallExpr) bool {
	pkg := fn.pkg
	targets := o.cg.calleesOf(pkg, call)
	if len(targets) == 0 {
		return false
	}
	var recvArg ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			recvArg = sel.X
		}
	}
	changed := false
	demote := func(v *types.Var, arg ast.Expr) {
		if v == nil || !o.owned[v] {
			return
		}
		if arg != nil && o.priv(fn, arg) {
			return
		}
		delete(o.owned, v)
		changed = true
	}
	for _, tgt := range targets {
		recv, params, variadic := funcSignature(tgt)
		args := call.Args
		if recv != nil {
			if recvArg != nil {
				demote(recv, recvArg)
			} else if len(args) > 0 {
				// Method expression: T.M(recv, args...).
				demote(recv, args[0])
				args = args[1:]
			} else {
				demote(recv, nil)
			}
		}
		if len(args) < len(params) && !(variadic && len(args) == len(params)-1) {
			// Multi-value forwarding (f(g())): sources are opaque.
			for _, p := range params {
				demote(p, nil)
			}
			continue
		}
		for i, arg := range args {
			pi := i
			if pi >= len(params) {
				if !variadic {
					break
				}
				pi = len(params) - 1
			}
			demote(params[pi], arg)
		}
	}
	return changed
}

// priv reports whether e names memory provably private to the current
// activation of fn: the base of the access path (or the value of the
// expression) bottoms out in fresh or owned storage.
func (o *ownInfo) priv(fn *funcNode, e ast.Expr) bool {
	return o.privSeen(fn, e, map[types.Object]bool{})
}

func (o *ownInfo) privSeen(fn *funcNode, e ast.Expr, seen map[types.Object]bool) bool {
	if e == nil {
		return true // the zero value owns nothing shared
	}
	if o.ownedTypedExpr(fn.pkg, e) {
		return true // annotated: instances are confined by convention
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return o.privIdent(fn, x, seen)
	case *ast.SelectorExpr:
		if s := fn.pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return o.privSeen(fn, x.X, seen) // deep ownership: field of private is private
		}
		return false // package-qualified var, method value
	case *ast.IndexExpr:
		return o.privSeen(fn, x.X, seen)
	case *ast.SliceExpr:
		return o.privSeen(fn, x.X, seen)
	case *ast.StarExpr:
		return o.privSeen(fn, x.X, seen)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return o.privSeen(fn, x.X, seen)
		}
		return false // channel receive etc.: provenance unknown
	case *ast.TypeAssertExpr:
		return o.privSeen(fn, x.X, seen)
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.CallExpr:
		return o.privCall(fn, x, seen)
	}
	return false
}

// privIdent resolves an identifier through the lexical frame chain: a
// closure inherits the privacy of captured locals from its enclosing
// function. Publishing to a goroutine (goShared) ends privacy
// everywhere.
func (o *ownInfo) privIdent(fn *funcNode, id *ast.Ident, seen map[types.Object]bool) bool {
	pkg := fn.pkg
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	if _, isNil := obj.(*types.Nil); isNil {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	for f := fn; f != nil; f = o.parent[f] {
		fr := o.frames[f]
		if fr == nil {
			break
		}
		if fr.params[v] {
			if o.goShared[v] {
				return false
			}
			if refLike(v.Type()) {
				return o.owned[v]
			}
			return true // by-value parameter: a private copy
		}
		if defs, ok := fr.defs[v]; ok {
			if o.goShared[v] {
				return false
			}
			if !refLike(v.Type()) {
				return true // value-typed local: the storage is this frame's
			}
			if seen[v] {
				return true // defining cycle: optimistic, like freshLocal
			}
			seen[v] = true
			for _, d := range defs {
				if !o.privSeen(f, d, seen) {
					return false
				}
			}
			return true
		}
	}
	return false // struct field, package var, or foreign object
}

// privCall judges a call result: builtin allocators and value-typed
// results are fresh copies, sync.Pool.Get transfers ownership, and a
// module call is private iff every resolvable target returns fresh.
func (o *ownInfo) privCall(fn *funcNode, call *ast.CallExpr, seen map[types.Object]bool) bool {
	pkg := fn.pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				return true
			case "append":
				if len(call.Args) > 0 {
					return o.privSeen(fn, call.Args[0], seen)
				}
			}
			return false
		}
	}
	if tv, ok := pkg.Info.Types[call]; ok && tv.Type != nil {
		if _, isTuple := tv.Type.(*types.Tuple); !isTuple && !refLike(tv.Type) {
			return true // value result: the caller gets a copy
		}
	}
	if isSyncMethodCall(pkg, call, "sync.Pool", "Get") {
		return true // pool handout: exclusively owned until Put
	}
	targets := o.cg.calleesOf(pkg, call)
	if len(targets) == 0 {
		return false
	}
	for _, t := range targets {
		if !o.returnsFresh(t) {
			return false
		}
	}
	return true
}

// returnsFresh reports whether every return statement of fn yields
// provably private memory — the constructor summary that lets
// `b := NewBuilder(n)` stay private in the caller. Naked returns
// through named results are not traced (conservatively not fresh).
func (o *ownInfo) returnsFresh(fn *funcNode) bool {
	if v, ok := o.retFresh[fn]; ok {
		return v
	}
	if o.retBusy[fn] {
		return true // recursive constructor: optimistic on the cycle
	}
	o.retBusy[fn] = true
	res := o.computeRetFresh(fn)
	delete(o.retBusy, fn)
	o.retFresh[fn] = res
	return res
}

func (o *ownInfo) computeRetFresh(fn *funcNode) bool {
	if fn.body == nil {
		return false
	}
	sawReturn, fresh := false, true
	fn.walkOwn(func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || !fresh {
			return fresh
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			fresh = false
			return false
		}
		for _, r := range ret.Results {
			if !o.privSeen(fn, r, map[types.Object]bool{}) {
				fresh = false
				return false
			}
		}
		return true
	})
	return sawReturn && fresh
}

// ownedTypedExpr reports whether e is a value expression whose static
// type (through one level of pointer) is a `microlint:owned` type: the
// annotation asserts confinement for every instance, wherever reached.
func (o *ownInfo) ownedTypedExpr(pkg *Package, e ast.Expr) bool {
	if len(o.ownedNamed) == 0 {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || !tv.IsValue() || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return o.ownedNamed[named.Obj()]
	}
	return false
}

// refLike reports whether values of t carry references to memory that
// outlives a copy — assigning such a value shares state, assigning a
// value type copies it.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// isPointer reports whether t's underlying type is a pointer.
func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// ownedTypeNames returns the annotated type names in declaration
// order, for the designdrift test and docs tooling.
func (o *ownInfo) ownedTypeNames() []string {
	names := make([]string, 0, len(o.ownedDecls))
	for _, d := range o.ownedDecls {
		names = append(names, d.typeName)
	}
	return names
}
