package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A directive is one //nolint:microlint/<analyzer>[,...] comment. A
// directive suppresses matching diagnostics on its own line and on the
// line directly below it (so it can sit above a long statement), within
// the same file. Every directive must carry a written reason after
// " -- " or a trailing "// "; a reason-less directive still suppresses
// its target but emits an analyzer="nolint" diagnostic, keeping the
// build red until someone writes down the why.
//
// A directive that suppresses *nothing* is also a build-failing
// finding: stale suppressions outlive the code they excused and then
// silently swallow the next real diagnostic at that line. The check
// only fires when every analyzer the directive names actually ran
// (under -only/-skip a dormant directive may just be waiting for its
// analyzer).
type directive struct {
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Pos
	position  token.Position
	hits      int // diagnostics this directive suppressed in this run
}

const nolintPrefix = "//nolint:"

// directiveSet indexes directives by file and line for suppression; all
// keeps them in collection (position) order for deterministic hygiene
// reports.
type directiveSet struct {
	byFileLine map[string]map[int][]*directive
	all        []*directive
}

func (s *directiveSet) suppresses(d Diagnostic) bool {
	lines := s.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, dl := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[dl] {
			if dir.analyzers[d.Analyzer] {
				dir.hits++
				return true
			}
		}
	}
	return false
}

// unused returns one diagnostic per directive that suppressed nothing,
// restricted to directives whose every named analyzer is in ran — a
// directive for an analyzer excluded from this run is merely dormant,
// not dead.
func (s *directiveSet) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.all {
		if dir.hits > 0 {
			continue
		}
		names := make([]string, 0, len(dir.analyzers))
		allRan := true
		for name := range dir.analyzers {
			names = append(names, name)
			allRan = allRan && ran[name]
		}
		if !allRan {
			continue
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Pos:      dir.position,
			Analyzer: "nolint",
			Message: fmt.Sprintf(
				"nolint directive for microlint/%s suppresses no diagnostics; delete the stale suppression",
				strings.Join(names, ", microlint/")),
		})
	}
	return out
}

// collectDirectives scans every comment of the module for microlint
// nolint directives. It returns the directive index plus one diagnostic
// per reason-less directive.
func collectDirectives(mod *Module) (*directiveSet, []Diagnostic) {
	set := &directiveSet{byFileLine: map[string]map[int][]*directive{}}
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					dir.file = pos.Filename
					dir.line = pos.Line
					dir.pos = c.Pos()
					lines := set.byFileLine[dir.file]
					if lines == nil {
						lines = map[int][]*directive{}
						set.byFileLine[dir.file] = lines
					}
					dir.position = pos
					lines[dir.line] = append(lines[dir.line], dir)
					set.all = append(set.all, dir)
					if dir.reason == "" {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "nolint",
							Message:  "nolint:microlint directive requires a reason (append `-- why this is safe`)",
						})
					}
				}
			}
		}
	}
	return set, diags
}

// parseDirective parses a comment like
//
//	//nolint:microlint/errdrop -- best-effort write, client may vanish
//	//nolint:microlint/lockcheck,microlint/detercheck -- init-time only
//
// Directives that name no microlint analyzer (e.g. //nolint:errcheck
// for other tools) are ignored entirely.
func parseDirective(text string) (*directive, bool) {
	rest, ok := strings.CutPrefix(text, nolintPrefix)
	if !ok {
		return nil, false
	}
	// The analyzer list runs until the first whitespace.
	list := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		list = rest[:i]
		reason = strings.TrimSpace(rest[i:])
	}
	reason = strings.TrimSpace(strings.TrimPrefix(reason, "--"))
	if i := strings.Index(reason, "//"); i == 0 {
		reason = strings.TrimSpace(reason[2:])
	}
	dir := &directive{analyzers: map[string]bool{}}
	for _, entry := range strings.Split(list, ",") {
		if name, ok := strings.CutPrefix(strings.TrimSpace(entry), "microlint/"); ok && name != "" {
			dir.analyzers[name] = true
		}
	}
	if len(dir.analyzers) == 0 {
		return nil, false
	}
	dir.reason = reason
	return dir, true
}
