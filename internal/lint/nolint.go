package lint

import (
	"go/token"
	"strings"
)

// A directive is one //nolint:microlint/<analyzer>[,...] comment. A
// directive suppresses matching diagnostics on its own line and on the
// line directly below it (so it can sit above a long statement), within
// the same file. Every directive must carry a written reason after
// " -- " or a trailing "// "; a reason-less directive still suppresses
// its target but emits an analyzer="nolint" diagnostic, keeping the
// build red until someone writes down the why.
type directive struct {
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Pos
}

const nolintPrefix = "//nolint:"

// directiveSet indexes directives by file and line for suppression.
type directiveSet struct {
	byFileLine map[string]map[int][]*directive
}

func (s *directiveSet) suppresses(d Diagnostic) bool {
	lines := s.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, dl := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[dl] {
			if dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans every comment of the module for microlint
// nolint directives. It returns the directive index plus one diagnostic
// per reason-less directive.
func collectDirectives(mod *Module) (*directiveSet, []Diagnostic) {
	set := &directiveSet{byFileLine: map[string]map[int][]*directive{}}
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					dir.file = pos.Filename
					dir.line = pos.Line
					dir.pos = c.Pos()
					lines := set.byFileLine[dir.file]
					if lines == nil {
						lines = map[int][]*directive{}
						set.byFileLine[dir.file] = lines
					}
					lines[dir.line] = append(lines[dir.line], dir)
					if dir.reason == "" {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "nolint",
							Message:  "nolint:microlint directive requires a reason (append `-- why this is safe`)",
						})
					}
				}
			}
		}
	}
	return set, diags
}

// parseDirective parses a comment like
//
//	//nolint:microlint/errdrop -- best-effort write, client may vanish
//	//nolint:microlint/lockcheck,microlint/detercheck -- init-time only
//
// Directives that name no microlint analyzer (e.g. //nolint:errcheck
// for other tools) are ignored entirely.
func parseDirective(text string) (*directive, bool) {
	rest, ok := strings.CutPrefix(text, nolintPrefix)
	if !ok {
		return nil, false
	}
	// The analyzer list runs until the first whitespace.
	list := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		list = rest[:i]
		reason = strings.TrimSpace(rest[i:])
	}
	reason = strings.TrimSpace(strings.TrimPrefix(reason, "--"))
	if i := strings.Index(reason, "//"); i == 0 {
		reason = strings.TrimSpace(reason[2:])
	}
	dir := &directive{analyzers: map[string]bool{}}
	for _, entry := range strings.Split(list, ",") {
		if name, ok := strings.CutPrefix(strings.TrimSpace(entry), "microlint/"); ok && name != "" {
			dir.analyzers[name] = true
		}
	}
	if len(dir.analyzers) == 0 {
		return nil, false
	}
	dir.reason = reason
	return dir, true
}
