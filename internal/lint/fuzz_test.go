package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// FuzzCFGBuild throws arbitrary (often syntactically broken) Go source
// at the CFG builder: any input go/parser accepts — including partial
// parses with error nodes — must build a CFG for every function body
// without panicking, and the graph must be structurally sound: every
// successor of a reachable block is registered in blocks, and entry and
// exit are present.
func FuzzCFGBuild(f *testing.F) {
	f.Add("package p\nfunc f() { for i := 0; i < 3; i++ { if i == 1 { continue } } }")
	f.Add("package p\nfunc f(xs []int) int {\n\ts := 0\nloop:\n\tfor _, x := range xs {\n\t\tswitch {\n\t\tcase x < 0:\n\t\t\tbreak loop\n\t\tcase x == 0:\n\t\t\tcontinue\n\t\tdefault:\n\t\t\ts += x\n\t\t}\n\t}\n\treturn s\n}")
	f.Add("package p\nfunc f() { defer g(); select { case <-c: return; default: } }")
	f.Add("package p\nfunc f() {\n\tswitch x := y.(type) {\n\tcase int:\n\t\tfallthrough\n\tdefault:\n\t\t_ = x\n\t}\n}")
	f.Add("package p\nfunc f() { goto done; done: return }")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if file == nil || err != nil {
			return // only fully parsed files reach buildCFG in production
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := buildCFG(fd.Body)
			if g == nil || g.entry == nil || g.exit == nil {
				t.Fatalf("buildCFG returned an incomplete graph for %q", src)
			}
			registered := make(map[*cfgBlock]bool, len(g.blocks))
			for _, b := range g.blocks {
				registered[b] = true
			}
			if !registered[g.entry] || !registered[g.exit] {
				t.Fatalf("entry/exit not registered in blocks for %q", src)
			}
			for _, b := range g.blocks {
				for _, s := range b.succs {
					if s == nil {
						t.Fatalf("nil successor in CFG for %q", src)
					}
					if !registered[s] {
						t.Fatalf("successor outside blocks in CFG for %q", src)
					}
				}
			}
		}
	})
}

// FuzzLocksetTransfer drives the heldSet lattice operations with
// arbitrary lock/mode sequences and checks the algebra racecheck's
// fixpoint depends on: intersection is a lower bound (subset of both
// sides, modes never stronger than either), union is an upper bound,
// both are idempotent, and clone is an independent copy.
func FuzzLocksetTransfer(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 3, 5})
	f.Add([]byte{}, []byte{7, 7, 7})
	f.Add([]byte{255, 0, 128}, []byte{})

	// A fixed universe of lock identities: fuzz bytes select (lock,
	// mode) pairs out of it, so the two sides overlap often enough to
	// exercise the demotion paths.
	universe := make([]lockKey, 8)
	for i := range universe {
		universe[i] = types.NewVar(token.NoPos, nil, "mu", types.Typ[types.Int])
	}
	mkSet := func(bs []byte) heldSet {
		s := heldSet{}
		for _, b := range bs {
			k := universe[int(b)%len(universe)]
			mode := lockMode(int(b>>3) % 2)
			// Acquiring in a stronger mode wins, as in the transfer
			// function: never downgrade an existing write entry.
			if cur, ok := s[k]; !ok || (cur == modeRead && mode == modeWrite) {
				s[k] = mode
			}
		}
		return s
	}

	f.Fuzz(func(t *testing.T, abs, bbs []byte) {
		a, b := mkSet(abs), mkSet(bbs)
		aOrig, bOrig := a.clone(), b.clone()

		inter := a.clone()
		intersectInto(inter, b)
		for k, m := range inter {
			am, aok := a[k]
			bm, bok := b[k]
			if !aok || !bok {
				t.Fatalf("intersection kept lock absent from one side")
			}
			if m == modeWrite && (am != modeWrite || bm != modeWrite) {
				t.Fatalf("intersection failed to demote a read/write disagreement")
			}
		}
		again := inter.clone()
		if intersectInto(again, b) {
			t.Fatalf("intersection is not idempotent")
		}

		uni := a.clone()
		unionInto(uni, b)
		for k, am := range a {
			um, ok := uni[k]
			if !ok {
				t.Fatalf("union dropped a lock from the left side")
			}
			if am == modeWrite && um != modeWrite {
				t.Fatalf("union weakened a write-mode lock")
			}
		}
		for k, bm := range b {
			um, ok := uni[k]
			if !ok {
				t.Fatalf("union dropped a lock from the right side")
			}
			if bm == modeWrite && um != modeWrite {
				t.Fatalf("union weakened a write-mode lock")
			}
		}
		uniAgain := uni.clone()
		unionInto(uniAgain, b)
		if len(uniAgain) != len(uni) {
			t.Fatalf("union is not idempotent")
		}

		// The operations above must not mutate their src arguments, and
		// clone must have produced independent copies.
		if len(a) != len(aOrig) || len(b) != len(bOrig) {
			t.Fatalf("lattice ops mutated their inputs")
		}
		for k, m := range aOrig {
			if a[k] != m {
				t.Fatalf("clone is not independent of its source")
			}
		}
	})
}
