package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `// want "..." "..."` expectation comments; each
// quoted string is a regexp that one diagnostic on that line must
// match.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans every .go file under dir for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %w", p, i+1, q[1], err)
				}
				wants = append(wants, &expectation{file: p, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runCorpus loads testdata/src/<name> as module corpus/<name>, runs the
// given analyzers, and checks the diagnostics against the want
// comments.
func runCorpus(t *testing.T, name string, analyzers []Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadTree(dir, "corpus/"+name)
	if err != nil {
		t.Fatalf("load corpus %s: %v", name, err)
	}
	diags := Run(mod, analyzers)
	wants := collectWants(t, dir)

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestCorpus(t *testing.T) {
	for _, name := range []string{
		"lockcheck", "ctxcheck", "detercheck", "errdrop",
		"deadlockcheck", "leakcheck", "wgcheck", "atomiccheck",
		"publishcheck", "durcheck", "alloccheck", "racecheck",
	} {
		t.Run(name, func(t *testing.T) {
			a, ok := AnalyzerByName(name)
			if !ok {
				t.Fatalf("no analyzer %q", name)
			}
			runCorpus(t, name, []Analyzer{a})
		})
	}
}

// TestRacecheckAdvisory runs the advisory lane over its corpus: the
// consistently-locked unannotated field earns a guarded-by suggestion,
// and annotated fields stay silent.
func TestRacecheckAdvisory(t *testing.T) {
	runCorpus(t, "racecheckadvisory", AdvisoryAnalyzers())
}

// TestNolintReasonRequired checks both halves of the reason rule: a
// reason-less directive suppresses its target but yields an
// analyzer="nolint" diagnostic; a justified one is silent.
func TestNolintReasonRequired(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "nolintreason"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadTree(dir, "corpus/nolintreason")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the missing reason): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "nolint" || !strings.Contains(d.Message, "requires a reason") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestNolintUnused checks the stale-suppression rule end to end: a
// directive that suppresses nothing is reported, one that still earns
// its keep is silent, and the check respects analyzer selection — a
// directive whose analyzer was excluded from the run is dormant, not
// dead.
func TestNolintUnused(t *testing.T) {
	runCorpus(t, "nolintunused", Analyzers())

	dir, err := filepath.Abs(filepath.Join("testdata", "src", "nolintunused"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadTree(dir, "corpus/nolintunused")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := AnalyzerByName("lockcheck")
	if !ok {
		t.Fatal("no analyzer lockcheck")
	}
	if diags := Run(mod, []Analyzer{a}); len(diags) != 0 {
		t.Fatalf("subset run without errdrop should leave the stale directive dormant, got %v", diags)
	}
}
