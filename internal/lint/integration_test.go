package lint

import "testing"

// TestModuleIsClean is the dogfooding gate: microlint over the real
// module must report nothing. Every deliberate exception in the tree
// carries a //nolint:microlint/<name> directive with a written reason;
// anything else that shows up here is a genuine regression.
func TestModuleIsClean(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if mod.Path != "microlink" {
		t.Fatalf("loaded module %q, want microlink", mod.Path)
	}
	diags := Run(mod, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("microlint found %d diagnostic(s) in the module; fix them or suppress with a reason", len(diags))
	}

	// The load must have covered the whole tree, not a stray subset.
	seen := map[string]bool{}
	for _, p := range mod.Pkgs {
		seen[p.PkgPath] = true
	}
	for _, want := range []string{
		"microlink",
		"microlink/internal/core",
		"microlink/internal/httpapi",
		"microlink/internal/kb",
		"microlink/internal/lint",
		"microlink/cmd/microlint",
	} {
		if !seen[want] {
			t.Errorf("module load missed package %s", want)
		}
	}
}
