package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomiccheck enforces the all-or-nothing contract of sync/atomic: a
// variable or field accessed through atomic.Load/Store/Add/Swap/
// CompareAndSwap anywhere in the module must never be read or written
// plainly anywhere else. A plain read racing an atomic write is still a
// data race, and worse, one the race detector only catches if the racy
// interleaving happens to run. The obs counters and the interest-cache
// generation stamps sidestep this by using the atomic.Uint64 wrapper
// types — this check guards the raw-uintptr style should it ever creep
// in.
//
// The analysis is module-wide: the atomic access can be in one package
// and the plain access in another, which is exactly the case a
// per-package check cannot see.
type atomiccheck struct{}

func (atomiccheck) Name() string { return "atomiccheck" }
func (atomiccheck) Doc() string {
	return "a field accessed via sync/atomic must never be read or written plainly elsewhere"
}

// Run is satisfied per the Analyzer interface; the analysis is
// module-wide and lives in RunModule.
func (atomiccheck) Run(pkg *Package, report func(token.Pos, string)) {}

func (atomiccheck) RunModule(mod *Module, report func(token.Pos, string)) {
	ci := mod.concurrency()

	// Pass 1: every object whose address is taken as the first argument
	// of a sync/atomic call, with one witness position, and the set of
	// identifiers that appear inside those arguments (they are the
	// atomic accesses — exempt from pass 2).
	atomicObjs := map[types.Object]token.Pos{}
	exempt := map[*ast.Ident]bool{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isAtomicCall(pkg, call) {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				if obj := addressedObj(pkg, addr.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					ast.Inspect(addr.X, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							exempt[id] = true
						}
						return true
					})
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other use of those objects is a plain access. Keys of
	// composite literals are exempt: initializing the field before the
	// value is shared is not a concurrent access.
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if kv, ok := n.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						exempt[id] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || exempt[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				witness, ok := atomicObjs[obj]
				if !ok {
					return true
				}
				report(id.Pos(), fmt.Sprintf(
					"%s is accessed atomically (%s) but plainly here; every access must go through sync/atomic",
					ci.lockName(obj), mod.Fset.Position(witness)))
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedObj resolves the operand of &x to the variable or field
// object being addressed, or nil when it is not a trackable identity.
func addressedObj(pkg *Package, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.IndexExpr:
		return addressedObj(pkg, x.X)
	}
	return nil
}
