package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxcheck enforces context propagation on request paths. Inside
//
//   - any package whose import path ends in internal/httpapi (the HTTP
//     layer, where every handler has r.Context() in hand), and
//   - any function that already receives a context.Context, or whose
//     name carries the repo's Ctx suffix convention (the core scoring
//     entrypoints ScoreCandidatesCtx / LinkMentionCtx / TopKCtx),
//
// calls to context.Background() or context.TODO() are banned: they
// detach the work from the caller's deadline and cancellation, which is
// exactly what the PR 2 batch pipeline plumbed contexts to avoid.
// Test files are not loaded by the module loader, so tests may use
// context.Background freely.
type ctxcheck struct{}

func (ctxcheck) Name() string { return "ctxcheck" }
func (ctxcheck) Doc() string {
	return "no context.Background/TODO in httpapi or in functions that already have a context"
}

// ctxBannedPkgSuffixes lists import-path suffixes where Background/TODO
// are banned everywhere, not just in ctx-carrying functions.
var ctxBannedPkgSuffixes = []string{"internal/httpapi"}

func (ctxcheck) Run(pkg *Package, report func(token.Pos, string)) {
	banEverywhere := false
	for _, suf := range ctxBannedPkgSuffixes {
		if pkg.PkgPath == suf || strings.HasSuffix(pkg.PkgPath, "/"+suf) {
			banEverywhere = true
			break
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !banEverywhere && !strings.HasSuffix(fd.Name.Name, "Ctx") && !hasCtxParam(pkg, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := contextConstructor(pkg, call)
				if name == "" {
					return true
				}
				report(call.Pos(), "context."+name+"() detaches from the caller's deadline and cancellation; propagate the context you already have (handlers: r.Context())")
				return true
			})
		}
	}
}

// hasCtxParam reports whether fd declares a parameter of type
// context.Context.
func hasCtxParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if t := pkg.Info.TypeOf(p.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

// contextConstructor returns "Background" or "TODO" if call is
// context.Background() or context.TODO(), else "".
func contextConstructor(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Background", "TODO":
	default:
		return ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}
