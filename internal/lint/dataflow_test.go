package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source file into a
// Package, for exercising the dataflow helpers directly.
func typecheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// funcBody finds the body of the named top-level function.
func funcBody(t *testing.T, pkg *Package, name string) *ast.BlockStmt {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd.Body
			}
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestRootObj(t *testing.T) {
	pkg := typecheckSrc(t, `package p
type s struct {
	n      int
	labels []int
	m      map[string]int
}
func f(p *s) {
	a := &s{}
	a.n = 1
	a.labels[0] = 2
	a.m["k"] = 3
	(*p).n = 4
	ls := a.labels
	ls[1] = 5
	_ = ls
}
`)
	// Expected root variable per assignment line (0 = plain ident LHS,
	// handled elsewhere).
	want := map[int]string{9: "a", 10: "a", 11: "a", 12: "p", 14: "ls"}
	got := map[int]string{}
	ast.Inspect(funcBody(t, pkg, "f"), func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs := as.Lhs[0]
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			return true
		}
		if obj := rootObj(pkg, lhs); obj != nil {
			got[pkg.Fset.Position(lhs.Pos()).Line] = obj.Name()
		}
		return true
	})
	for line, name := range want {
		if got[line] != name {
			t.Errorf("line %d: rootObj = %q, want %q", line, got[line], name)
		}
	}
}

func TestFreshLocal(t *testing.T) {
	pkg := typecheckSrc(t, `package p
type s struct{ buf []int }
func f(param []int, sc *s) {
	var zero []int
	made := make([]int, 4)
	lit := []int{1}
	grown := append(made, 1)
	view := sc.buf[:0]
	fromParam := param[1:]
	aliased := lit
	_, _, _, _, _, _, _ = zero, made, lit, grown, view, fromParam, aliased
}
`)
	body := funcBody(t, pkg, "f")
	var decl *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
				decl = x
			}
		}
	}
	params := paramObjs(pkg, decl.Recv, decl.Type)
	defs := localDefs(pkg, body)

	byName := map[string]types.Object{}
	for obj := range defs {
		byName[obj.Name()] = obj
	}
	want := map[string]bool{
		"zero":      true,  // zero-value declaration
		"made":      true,  // make
		"lit":       true,  // composite literal
		"grown":     true,  // append into a fresh slice
		"view":      false, // slice of a field: reuse-backed
		"fromParam": false, // slice of a parameter
		"aliased":   true,  // copy of a fresh local
	}
	for name, fresh := range want {
		obj := byName[name]
		if obj == nil {
			t.Fatalf("no local %s in defs", name)
		}
		if got := freshLocal(pkg, obj, defs, params); got != fresh {
			t.Errorf("freshLocal(%s) = %v, want %v", name, got, fresh)
		}
	}
}

func TestAliasClasses(t *testing.T) {
	pkg := typecheckSrc(t, `package p
type s struct{ n int }
func f() {
	a := &s{}
	b := a
	c := b
	lone := &s{}
	_, _ = c, lone
}
`)
	body := funcBody(t, pkg, "f")
	classes := aliasClasses(pkg, body)

	find := func(name string) types.Object {
		for obj := range classes {
			if obj.Name() == name {
				return obj
			}
		}
		return nil
	}
	a, b, c := find("a"), find("b"), find("c")
	if a == nil || b == nil || c == nil {
		t.Fatalf("alias classes missing copied locals: %v", classes)
	}
	if len(classes[a]) != 3 {
		t.Errorf("class of a has %d members, want 3 (a, b, c)", len(classes[a]))
	}
	if find("lone") != nil {
		t.Errorf("lone was never copied; it should not appear in any class")
	}
}

func TestPropagateMarks(t *testing.T) {
	pkg := typecheckSrc(t, `package p
type s struct{ n int }
func linear() {
	a := &s{}
	_ = a // mark line 5
	a.n = 1
}
func rebound() {
	a := &s{}
	_ = a // mark line 10
	a = &s{}
	a.n = 1
}
func branchy(c bool) {
	a := &s{}
	_ = a // mark line 16
	if c {
		a = &s{}
	}
	a.n = 1
}
`)
	// run wires mark/copy/use events for one function: the statement at
	// markLine marks `a`, every `a = ...` rebind kills it, and the final
	// a.n write is the use. It returns whether the use fired.
	run := func(name string, markLine int) bool {
		body := funcBody(t, pkg, name)
		g := buildCFG(body)
		var aObj types.Object
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "a" && pkg.Info.Defs[id] != nil {
				aObj = pkg.Info.Defs[id]
			}
			return true
		})
		if aObj == nil {
			t.Fatalf("%s: no local a", name)
		}
		events := map[ast.Node][]markEvent{}
		for _, b := range g.blocks {
			for _, n := range b.nodes {
				line := pkg.Fset.Position(n.Pos()).Line
				switch {
				case line == markLine:
					events[n] = []markEvent{{kind: eventMark, pos: n.Pos(), obj: aObj, via: "test", node: n}}
				default:
					if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
						if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "a" {
							// Rebind to a fresh value: kill.
							events[n] = []markEvent{{kind: eventCopy, pos: n.Pos(), obj: aObj, src: nil, node: n}}
							continue
						}
						// a.n = 1: the use.
						events[n] = []markEvent{{kind: eventUse, pos: n.Pos(), obj: aObj, node: as.Lhs[0]}}
					}
				}
			}
		}
		fired := false
		g.propagateMarks(events, func(ev markEvent, fact markFact) { fired = true })
		return fired
	}

	if !run("linear", 5) {
		t.Errorf("linear: mark should reach the write")
	}
	if run("rebound", 10) {
		t.Errorf("rebound: the rebind kills the mark before the write")
	}
	if !run("branchy", 16) {
		t.Errorf("branchy: may-analysis keeps the mark on the no-rebind path")
	}
}
