package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// wgcheck enforces the WaitGroup discipline the worker pools in
// internal/core and internal/synth rely on:
//
//   - Add must happen before the goroutine is spawned, never inside it
//     (Wait can otherwise return before the goroutine has counted
//     itself in — the classic lost-Add race);
//   - a spawned goroutine that calls Done must reach Done on every
//     path to its end (defer wg.Done() is the idiomatic proof);
//   - WaitGroups and Mutexes are passed and copied by pointer only —
//     a value copy forks the counter/lock state silently.
//
// Path reachability uses the CFG from cfg.go, so an early return
// between Add-ed work items is caught while a panic path is not (a
// deferred Done still runs on panic).
type wgcheck struct{}

func (wgcheck) Name() string { return "wgcheck" }
func (wgcheck) Doc() string {
	return "WaitGroup.Add inside spawned goroutine; Done unreachable on a path; WaitGroup/Mutex copied by value"
}

func (wgcheck) Run(pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkSpawnedLit(pkg, lit, report)
				}
			case *ast.FuncDecl:
				checkCopies(pkg, n.Type, report)
			case *ast.FuncLit:
				checkCopies(pkg, n.Type, report)
			case *ast.AssignStmt:
				checkValueCopy(pkg, n, report)
			}
			return true
		})
	}
}

// checkSpawnedLit applies the goroutine-side rules to one `go func(){…}()`.
func checkSpawnedLit(pkg *Package, lit *ast.FuncLit, report func(token.Pos, string)) {
	// Rule 1: Add inside the spawned goroutine. Nested closures are not
	// this goroutine's own control flow, but an Add anywhere inside the
	// spawned body is still counted after the spawn, so scan fully.
	var doneCalls []*ast.CallExpr
	deferredDone := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupCall(pkg, n, "Add") {
				report(n.Pos(), "WaitGroup.Add inside the spawned goroutine; call Add before the go statement")
			}
		case *ast.DeferStmt:
			if isWaitGroupCall(pkg, n.Call, "Done") {
				deferredDone = true
			}
		}
		return true
	})
	inspectNoFuncLit(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pkg, call, "Done") {
			doneCalls = append(doneCalls, call)
		}
		return true
	})

	// Rule 2: if the goroutine signals Done non-deferred, every path to
	// its end must pass a Done call.
	if deferredDone || len(doneCalls) == 0 {
		return
	}
	g := buildCFG(lit.Body)
	isDone := func(n ast.Node) bool {
		found := false
		inspectNoFuncLit(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isWaitGroupCall(pkg, call, "Done") {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if g.pathToExitAvoiding(g.entry, 0, isDone) {
		report(doneCalls[0].Pos(),
			"goroutine calls WaitGroup.Done on some paths but not all; use defer wg.Done() at the top")
	}
}

// isWaitGroupCall reports whether call is (*sync.WaitGroup).<method>.
func isWaitGroupCall(pkg *Package, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	switch tv.Type.String() {
	case "sync.WaitGroup", "*sync.WaitGroup":
		return true
	}
	return false
}

// checkCopies flags by-value sync.WaitGroup/Mutex/RWMutex parameters and
// results in a function signature.
func checkCopies(pkg *Package, ft *ast.FuncType, report func(token.Pos, string)) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tv, ok := pkg.Info.Types[fld.Type]
			if !ok {
				continue
			}
			if name := syncValueType(tv.Type); name != "" {
				report(fld.Pos(), fmt.Sprintf(
					"%s passes %s by value, forking its internal state; use a pointer", kind, name))
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkValueCopy flags `a := b` / `a = b` where b is a bare
// WaitGroup/Mutex value (a composite literal or new declaration of the
// zero value is fine; copying an existing one is not).
func checkValueCopy(pkg *Package, as *ast.AssignStmt, report func(token.Pos, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for _, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue
		}
		tv, ok := pkg.Info.Types[rhs]
		if !ok {
			continue
		}
		if name := syncValueType(tv.Type); name != "" {
			report(rhs.Pos(), fmt.Sprintf("assignment copies a %s by value; use a pointer", name))
		}
	}
}

// syncValueType returns the sync type name if t is a non-pointer
// WaitGroup, Mutex, or RWMutex, else "".
func syncValueType(t types.Type) string {
	switch t.String() {
	case "sync.WaitGroup", "sync.Mutex", "sync.RWMutex":
		return t.String()
	}
	return ""
}
