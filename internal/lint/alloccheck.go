package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// alloccheck turns the zero-alloc guarantee of the query hot path into
// a compile-time gate. Functions annotated
//
//	// microlint:noalloc
//
// promise steady-state allocation freedom (the property the
// AllocsPerRun tests measure); the analyzer flags the obvious ways to
// break it:
//
//   - make, new, slice/map composite literals, and &T{} — fresh heap
//     storage per call;
//   - append whose destination is a fresh function-local slice (growth
//     into escaping storage); append into parameters, fields, or pooled
//     scratch is the amortised-zero reuse idiom and is allowed;
//   - function literals — a closure capturing variables allocates;
//   - go statements — every spawn allocates a goroutine;
//   - string concatenation, string([]byte) / []byte(string)
//     conversions, and fmt.Sprint* / fmt.Errorf calls;
//   - passing a non-pointer-shaped concrete value (struct, slice,
//     string, number) where an interface is expected — the boxing
//     conversion allocates. Pointers, maps, channels, and funcs are
//     single-word and box free;
//   - static calls to module functions not themselves annotated
//     noalloc — the guarantee must propagate through the whole call
//     tree, stdlib excepted (sync.Pool.Get/Put and friends are part of
//     the idiom).
//
// The check is syntactic over typed ASTs, not an escape analysis: it
// cannot see what the compiler's escape analysis proves stack-bound,
// so value struct literals (Result{...}) and &arr[i] addressing are
// deliberately not flagged, and interface-method calls are not
// followed. The AllocsPerRun tests remain the ground truth; alloccheck
// is the reviewable gate that catches regressions before they run.
type alloccheck struct{}

func (alloccheck) Name() string { return "alloccheck" }
func (alloccheck) Doc() string {
	return "allocation sites inside microlint:noalloc functions: make/new/literals, append into fresh slices, closures, interface boxing, string building"
}

// Run is satisfied per the Analyzer interface; knowing whether a callee
// is annotated requires the module-wide table, so the analysis lives in
// RunModule.
func (alloccheck) Run(pkg *Package, report func(token.Pos, string)) {}

const noallocMarker = "microlint:noalloc"

func (alloccheck) RunModule(mod *Module, report func(token.Pos, string)) {
	annotated := map[*types.Func]bool{}
	var decls []struct {
		pkg *Package
		fd  *ast.FuncDecl
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := funcMarker(fd, noallocMarker); !ok {
					continue
				}
				if fd.Body == nil {
					report(fd.Pos(), fmt.Sprintf("noalloc annotation on %s, which has no body to check", fd.Name.Name))
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					annotated[obj] = true
				}
				decls = append(decls, struct {
					pkg *Package
					fd  *ast.FuncDecl
				}{pkg, fd})
			}
		}
	}
	for _, d := range decls {
		checkNoalloc(mod.Path, d.pkg, d.fd, annotated, report)
	}
}

// checkNoalloc walks one annotated function body and reports each
// allocation site.
func checkNoalloc(modPath string, pkg *Package, fd *ast.FuncDecl, annotated map[*types.Func]bool, report func(token.Pos, string)) {
	params := paramObjs(pkg, fd.Recv, fd.Type)
	defs := localDefs(pkg, fd.Body)

	inspectNoFuncLit(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement in a noalloc function: spawning a goroutine allocates")

		case *ast.CompositeLit:
			switch pkg.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal in a noalloc function allocates backing storage")
			case *types.Map:
				report(n.Pos(), "map literal in a noalloc function allocates")
			}
			// Struct and array literals are values; whether they escape is
			// the compiler's call, so they are not flagged.

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal in a noalloc function heap-allocates the value")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pkg.Info.Types[n].Type) {
				report(n.Pos(), "string concatenation in a noalloc function allocates the result")
			}

		case *ast.CallExpr:
			checkNoallocCall(modPath, pkg, n, defs, params, annotated, report)
		}
		return true
	})

	// Closures: direct literals of this function (not nested ones, which
	// belong to their enclosing literal's report).
	for _, stmt := range fd.Body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				report(lit.Pos(), "function literal in a noalloc function allocates a closure")
				return false
			}
			return true
		})
	}
}

// checkNoallocCall classifies one call expression inside a noalloc body.
func checkNoallocCall(modPath string, pkg *Package, call *ast.CallExpr, defs map[types.Object][]ast.Expr, params map[types.Object]bool, annotated map[*types.Func]bool, report func(token.Pos, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltinUse(pkg, id) {
		switch id.Name {
		case "make":
			report(call.Pos(), "make in a noalloc function allocates")
		case "new":
			report(call.Pos(), "new in a noalloc function allocates")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			dst := ast.Unparen(call.Args[0])
			fresh := false
			switch d := dst.(type) {
			case *ast.Ident:
				if obj := pkg.Info.Uses[d]; obj != nil {
					fresh = freshLocal(pkg, obj, defs, params)
				}
			case *ast.CompositeLit, *ast.CallExpr:
				fresh = true
			}
			if fresh {
				report(call.Pos(),
					"append into a fresh function-local slice in a noalloc function: growth escapes per call; append into a parameter, field, or pooled scratch instead")
			}
		}
		return
	}

	// Type conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pkg.Info.Types[call.Args[0]].Type
		if isStringByteConversion(to, from) {
			report(call.Pos(), fmt.Sprintf(
				"conversion %s in a noalloc function copies its operand", types.ExprString(call.Fun)))
		}
		return
	}

	callee := staticCallee(pkg, call)

	// fmt's formatting entry points always allocate.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), fmt.Sprintf("fmt.%s in a noalloc function allocates", callee.Name()))
		return
	}

	// Interface boxing at argument positions.
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok {
			checkBoxingArgs(pkg, call, sig, report)
		}
	}

	// The guarantee propagates: a module callee must be annotated too.
	if callee != nil && callee.Pkg() != nil && isModulePath(modPath, callee.Pkg().Path()) && !annotated[callee] {
		report(call.Pos(), fmt.Sprintf(
			"call to %s, which is not annotated microlint:noalloc; the zero-alloc guarantee must cover the whole call tree", callee.Name()))
	}
}

// isModulePath reports whether path belongs to the module under
// analysis (the module path itself or a package under it).
func isModulePath(modPath, path string) bool {
	return path == modPath ||
		len(path) > len(modPath) && path[:len(modPath)] == modPath && path[len(modPath)] == '/'
}

// checkBoxingArgs flags concrete non-pointer-shaped values passed where
// the callee expects an interface.
func checkBoxingArgs(pkg *Package, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	nparams := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= nparams-1 {
			pi = nparams - 1
		}
		if pi >= nparams {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == nparams-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), fmt.Sprintf(
			"passing %s value as interface in a noalloc function boxes it on the heap", at.String()))
	}
}

// isPointerShaped reports whether values of t fit in one pointer word
// and convert to interfaces without allocating.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConversion reports string([]byte), []byte(string), and
// the rune variants — conversions that copy.
func isStringByteConversion(to, from types.Type) bool {
	isBytesOrRunes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	if isStringType(to) && isBytesOrRunes(from) {
		return true
	}
	return isStringType(from) && isBytesOrRunes(to)
}
