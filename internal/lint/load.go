package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Module is a parsed and type-checked view of one Go module: every
// non-test package found under the module root, in deterministic
// (import-path) order.
type Module struct {
	Dir  string // absolute module root (directory containing go.mod)
	Path string // module path from the `module` directive
	Fset *token.FileSet
	Pkgs []*Package

	// The shared analysis state is built lazily behind sync.Once so the
	// worker-pool runner (runner.go) can share one Module across
	// analyzer goroutines; Precompute still forces everything up front,
	// the Onces make a cold call merely slow instead of racy.
	concOnce sync.Once
	conc     *concInfo // lazily built shared concurrency analysis (summary.go)
	raceOnce sync.Once
	race     *raceInfo // lazily built race-inference state (lockset.go)
}

// Package is one type-checked package of a Module. Files holds only
// non-_test.go files: microlint checks production code, and test files
// routinely do things (context.TODO, discarded errors) the analyzers ban.
type Package struct {
	PkgPath string // full import path, e.g. "microlink/internal/core"
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule locates the module containing dir, then parses and
// type-checks every package in it.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mp, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(root, mp)
}

// rawPkg is a parsed-but-not-yet-type-checked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

// LoadTree parses and type-checks every non-test package under root,
// treating root as the module root for import path modPath. Directories
// named testdata or vendor, and hidden/underscore directories, are
// skipped (matching the go tool's walk rules).
//
// Type information for stdlib dependencies comes from the source
// importer (go/importer "source"): modern toolchains no longer ship
// precompiled export data, so importing from source is the only
// dependency-free option. Cgo is disabled for the load so that packages
// like net resolve to their pure-Go fallbacks, which the source
// importer can check.
func LoadTree(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	raws := map[string]*rawPkg{}
	walkErr := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		// Respect build constraints the way the go tool does: a file tagged
		// out of the default build (e.g. //go:build race) must not be
		// type-checked into the package alongside its !race counterpart.
		if ok, err := build.Default.MatchFile(filepath.Dir(p), d.Name()); err != nil || !ok {
			return err
		}
		file, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", p, err)
		}
		dir := filepath.Dir(p)
		ip := importPathFor(root, modPath, dir)
		rp := raws[ip]
		if rp == nil {
			rp = &rawPkg{path: ip, dir: dir, imports: map[string]bool{}}
			raws[ip] = rp
		}
		rp.files = append(rp.files, file)
		for _, spec := range file.Imports {
			rp.imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}

	order, err := topoOrder(raws)
	if err != nil {
		return nil, err
	}

	mod := &Module{Dir: root, Path: modPath, Fset: fset}
	local := map[string]*types.Package{}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	imp := &chainImporter{local: local, std: std}
	for _, ip := range order {
		rp := raws[ip]
		// Deterministic file order within the package.
		sort.Slice(rp.files, func(i, j int) bool {
			return fset.File(rp.files[i].Pos()).Name() < fset.File(rp.files[j].Pos()).Name()
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, err := conf.Check(ip, fset, rp.files, info)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", ip, firstErr)
		}
		local[ip] = tpkg
		mod.Pkgs = append(mod.Pkgs, &Package{
			PkgPath: ip,
			Dir:     rp.dir,
			Fset:    fset,
			Files:   rp.files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return mod, nil
}

// importPathFor maps a directory under root to its import path.
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// topoOrder sorts packages so that every intra-module import is
// type-checked before its importers. External (stdlib) imports are
// ignored; import cycles are a hard error, as in the compiler.
func topoOrder(raws map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		deps := make([]string, 0, len(raws[p].imports))
		for dep := range raws[p].imports {
			if _, isLocal := raws[dep]; isLocal {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves intra-module imports from the packages already
// type-checked in this load, and everything else (stdlib) from source.
type chainImporter struct {
	local map[string]*types.Package
	std   types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}
