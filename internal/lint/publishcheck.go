package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// publishcheck enforces the copy-on-swap immutability contract: a value
// published through an atomic pointer is frozen forever after. Once a
// local flows into
//
//	p.Store(x)          // p of type sync/atomic.Pointer[T]
//
// or into a pointer argument of a function annotated
//
//	// microlint:published-by <ptr>
//
// (reach.Streaming.Install publishes through its frozen pointer), any
// later write through that value — x.f = v, x[i] = v, *x = v, map
// stores, delete, copy into its storage — is a diagnostic on every path
// where the publish may have happened. Aliases count: y := x carries
// the mark, and so do derived views (labs := x.labels shares the
// published backing array). Rebinding a variable to a fresh value
// clears its mark, which is exactly the legal idiom: build a new
// arena, publish it, never touch it again.
//
// The analysis is intraprocedural (the dataflow layer of dataflow.go);
// a value that escapes into another function and is mutated there is
// not caught, and a publish inside a closure marks the closure's
// variables at the statement that contains the literal — the
// synchronous-callback shape of Linker.UpdateReachability.
type publishcheck struct{}

func (publishcheck) Name() string { return "publishcheck" }
func (publishcheck) Doc() string {
	return "writes through values already published via atomic.Pointer.Store or a microlint:published-by function (copy-on-swap immutability)"
}

// Run is satisfied per the Analyzer interface; the analysis needs the
// module-wide annotation table and lives in RunModule.
func (publishcheck) Run(pkg *Package, report func(token.Pos, string)) {}

const publishedByMarker = "microlint:published-by"

func (publishcheck) RunModule(mod *Module, report func(token.Pos, string)) {
	publishers := collectPublishers(mod, report)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkPublished(pkg, fd.Body, publishers, report)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkPublished(pkg, lit.Body, publishers, report)
					}
					return true
				})
			}
		}
	}
}

// collectPublishers gathers the functions annotated published-by and
// validates that each can actually publish something.
func collectPublishers(mod *Module, report func(token.Pos, string)) map[*types.Func]string {
	out := map[*types.Func]string{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name, ok := funcMarker(fd, publishedByMarker)
				if !ok {
					continue
				}
				if name == "" {
					report(fd.Pos(), "published-by annotation is missing the pointer name; want `// microlint:published-by <ptr>`")
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if !hasReferenceParam(obj) {
					report(fd.Pos(), fmt.Sprintf(
						"published-by annotation on %s, which has no pointer, slice, or map parameter to publish", fd.Name.Name))
					continue
				}
				out[obj] = name
			}
		}
	}
	return out
}

// hasReferenceParam reports whether fn takes at least one argument whose
// mutation after publication would be observable through the publish
// point (pointer, slice, or map typed).
func hasReferenceParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isReferenceType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// checkPublished runs the publish dataflow over one function body.
func checkPublished(pkg *Package, body *ast.BlockStmt, publishers map[*types.Func]string, report func(token.Pos, string)) {
	g := buildCFG(body)
	classes := aliasClasses(pkg, body)
	events := map[ast.Node][]markEvent{}
	any := false
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			evs := publishEventsIn(pkg, n, publishers, classes)
			if len(evs) > 0 {
				events[n] = evs
				any = true
			}
		}
	}
	if !any {
		return
	}
	g.propagateMarks(events, func(ev markEvent, fact markFact) {
		pos := pkg.Fset.Position(fact.pos)
		report(ev.pos, fmt.Sprintf(
			"write to %s, published via %s at line %d; published values are immutable — build a fresh value and swap it in",
			types.ExprString(ev.node.(ast.Expr)), fact.via, pos.Line))
	})
}

// publishEventsIn decodes the mark events of one CFG node, in source
// order. Publishes descend into nested function literals (the
// UpdateReachability callback publishes on behalf of its enclosing
// statement); alias and write detection does not — a literal's own body
// is analyzed as its own function. A publish marks the whole alias
// class of its argument, so names copied before the store freeze too.
func publishEventsIn(pkg *Package, node ast.Node, publishers map[*types.Func]string, classes map[types.Object][]types.Object) []markEvent {
	var evs []markEvent

	mark := func(obj types.Object, pos token.Pos, via string, n ast.Node) {
		evs = append(evs, markEvent{kind: eventMark, pos: pos, obj: obj, via: via, node: n})
		for _, member := range classes[obj] {
			if member != obj {
				evs = append(evs, markEvent{kind: eventMark, pos: pos, obj: member, via: via, node: n})
			}
		}
	}

	// Publishes: atomic.Pointer Store calls and annotated publishers.
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := atomicPointerStore(pkg, call); ok && len(call.Args) == 1 {
			if obj := rootObj(pkg, call.Args[0]); obj != nil {
				mark(obj, call.Pos(), types.ExprString(recv)+".Store", call)
			}
			return true
		}
		if fn := staticCallee(pkg, call); fn != nil {
			if ptr, ok := publishers[fn]; ok {
				sig := fn.Type().(*types.Signature)
				for i, arg := range call.Args {
					pi := i
					if sig.Variadic() && pi >= sig.Params().Len() {
						pi = sig.Params().Len() - 1
					}
					if pi >= sig.Params().Len() || !isReferenceType(sig.Params().At(pi).Type()) {
						continue
					}
					if obj := rootObj(pkg, arg); obj != nil {
						mark(obj, call.Pos(), fmt.Sprintf("%s (published-by %s)", fn.Name(), ptr), call)
					}
				}
			}
		}
		return true
	})

	// Aliases, kills, and writes — own control flow only.
	inspectNoFuncLit(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			paired := len(n.Lhs) == len(n.Rhs)
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					var src types.Object
					if paired {
						src = aliasSource(pkg, n.Rhs[i])
					}
					evs = append(evs, markEvent{kind: eventCopy, pos: n.Pos(), obj: obj, src: src, node: lhs})
					continue
				}
				// x.f = v, x[i] = v, *x = v: a write through the base.
				if obj := rootObj(pkg, lhs); obj != nil {
					evs = append(evs, markEvent{kind: eventUse, pos: lhs.Pos(), obj: obj, node: lhs})
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := ast.Unparen(n.X).(*ast.Ident); !isIdent {
				if obj := rootObj(pkg, n.X); obj != nil {
					evs = append(evs, markEvent{kind: eventUse, pos: n.X.Pos(), obj: obj, node: n.X})
				}
			}
		case *ast.CallExpr:
			// delete(x.m, k) and copy(x.s, src) mutate published storage.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 &&
				(id.Name == "delete" || id.Name == "copy") && isBuiltinUse(pkg, id) {
				if obj := rootObj(pkg, n.Args[0]); obj != nil {
					evs = append(evs, markEvent{kind: eventUse, pos: n.Args[0].Pos(), obj: obj, node: n.Args[0]})
				}
			}
		}
		return true
	})

	return sortEvents(evs)
}

// aliasSource resolves the object whose mark an assignment's RHS
// carries: a plain identifier is a direct alias, and a selector, index,
// or slice of a marked base is a derived view sharing its storage.
// Anything else (a call, a literal, arithmetic) is a fresh value.
func aliasSource(pkg *Package, rhs ast.Expr) types.Object {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.UnaryExpr:
		return rootObj(pkg, rhs)
	}
	return nil
}

// isBuiltinUse reports whether id resolves to a predeclared builtin
// (and not a shadowing local function).
func isBuiltinUse(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// atomicPointerStore reports whether call is p.Store(x) with p of type
// sync/atomic.Pointer[T], returning the receiver expression.
func atomicPointerStore(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return nil, false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil, false
	}
	return sel.X, true
}
