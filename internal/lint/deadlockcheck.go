package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// deadlockcheck verifies the module's lock ordering. The hierarchy is
// declared in two kinds of annotation:
//
//	mu sync.RWMutex // microlint:lock-order linker
//
// on a mutex field or variable binds it to a named level, and
//
//	// microlint:lock-order linker < interest-shard < obs-registry
//
// anywhere declares that locks at the left level may be held while
// acquiring locks at the right, never the reverse. Observed nesting —
// a Lock/RLock performed, directly or through any same-goroutine call
// chain, while another lock is held — adds edges to the same graph.
// Any cycle in the merged declared+observed graph is a diagnostic: two
// functions acquiring the same two locks in opposite orders deadlock
// under contention even if each function is individually correct.
//
// The same traversal also reports acquiring a mutex that may already be
// held (Go mutexes are not reentrant) and acquires with no release on
// some path to return. Held-sets come from a may-analysis (summary.go):
// a report means "some path", and intentional exceptions take a
// //nolint:microlint/deadlockcheck with a reason.
type deadlockcheck struct{}

func (deadlockcheck) Name() string { return "deadlockcheck" }
func (deadlockcheck) Doc() string {
	return "lock-order cycles across declared + observed acquisition edges; double-Lock; Lock without release on a path"
}

// Run is satisfied per the Analyzer interface; the analysis is
// module-wide and lives in RunModule.
func (deadlockcheck) Run(pkg *Package, report func(token.Pos, string)) {}

const lockOrderMarker = "microlint:lock-order"

// lockOrderEdge is one directed constraint between level names.
type lockOrderEdge struct {
	from, to string
	pos      token.Pos
}

func (deadlockcheck) RunModule(mod *Module, report func(token.Pos, string)) {
	ci := mod.concurrency()

	levels, declared := collectLockOrder(mod, report)
	levelOf := func(obj lockKey) string {
		if lv, ok := levels[obj]; ok {
			return lv
		}
		return ci.lockName(obj)
	}

	// Verify declared edges reference bound levels, so a typo in a
	// declaration cannot silently drop a constraint.
	bound := map[string]bool{}
	for _, lv := range levels {
		bound[lv] = true
	}
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		m := edges[from]
		if m == nil {
			m = map[string]token.Pos{}
			edges[from] = m
		}
		if old, ok := m[to]; !ok || pos < old {
			m[to] = pos
		}
	}
	for _, e := range declared {
		for _, name := range []string{e.from, e.to} {
			if !bound[name] {
				report(e.pos, fmt.Sprintf(
					"lock-order declaration references level %q, which no mutex annotation binds", name))
			}
		}
		addEdge(e.from, e.to, e.pos)
	}

	// Observed edges and same-lock hazards, from the held-set dataflow.
	for _, fn := range ci.cg.funcs {
		res := ci.heldEvents(fn)
		for _, ev := range res.events {
			switch {
			case ev.acquire != nil:
				op := ev.acquire
				for held, mode := range ev.held {
					if held == op.obj {
						if mode == modeRead && op.mode == modeRead {
							continue // recursive RLock: tolerated, matches existing idiom
						}
						report(op.pos, fmt.Sprintf(
							"%s: %s.%s while %s is already held (mutexes are not reentrant)",
							fn.name(), ci.lockName(op.obj), op.mode, ci.lockName(held)))
						continue
					}
					addEdge(levelOf(held), levelOf(op.obj), op.pos)
				}
			case ev.call != nil:
				for _, tgt := range ev.call.targets {
					for acq := range tgt.acquiresAll {
						for held := range ev.held {
							if held == acq {
								report(ev.pos, fmt.Sprintf(
									"%s: call to %s may acquire %s, which is already held",
									fn.name(), tgt.name(), ci.lockName(acq)))
								continue
							}
							addEdge(levelOf(held), levelOf(acq), ev.pos)
						}
					}
				}
			}
		}
		for _, op := range res.unreleased {
			report(op.pos, fmt.Sprintf(
				"%s: %s acquired with %s but some path returns without releasing it",
				fn.name(), ci.lockName(op.obj), op.mode))
		}
	}

	reportCycles(mod, edges, report)
}

// reportCycles finds strongly connected components of the merged order
// graph and reports each cyclic one once, at its smallest witness
// position, with a deterministic cycle path in the message.
func reportCycles(mod *Module, edges map[string]map[string]token.Pos, report func(token.Pos, string)) {
	nodes := make([]string, 0, len(edges))
	seenNode := map[string]bool{}
	for from, m := range edges {
		if !seenNode[from] {
			seenNode[from] = true
			nodes = append(nodes, from)
		}
		for to := range m {
			if !seenNode[to] {
				seenNode[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	// Tarjan's SCC, iterative enough for our sizes via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}

	for _, comp := range sccs {
		selfLoop := len(comp) == 1 && edges[comp[0]] != nil && hasKey(edges[comp[0]], comp[0])
		if len(comp) < 2 && !selfLoop {
			continue
		}
		sort.Strings(comp)
		in := map[string]bool{}
		for _, n := range comp {
			in[n] = true
		}
		pos := token.Pos(0)
		for _, from := range comp {
			for to, p := range edges[from] {
				if in[to] && (pos == 0 || p < pos) {
					pos = p
				}
			}
		}
		var path string
		if selfLoop {
			path = comp[0] + " -> " + comp[0]
		} else {
			path = strings.Join(comp, " -> ") + " -> " + comp[0]
		}
		report(pos, fmt.Sprintf("lock-order cycle: %s (declared and observed acquisition edges conflict)", path))
	}
}

func hasKey(m map[string]token.Pos, k string) bool {
	_, ok := m[k]
	return ok
}

// collectLockOrder gathers level bindings (annotations on mutex fields
// and variables) and declared edges (annotations containing '<') from
// every file of the module.
func collectLockOrder(mod *Module, report func(token.Pos, string)) (map[lockKey]string, []lockOrderEdge) {
	levels := map[lockKey]string{}
	var declared []lockOrderEdge

	bindField := func(pkg *Package, fld *ast.Field, name string) {
		for _, id := range fld.Names {
			v := pkg.Info.Defs[id]
			if v == nil {
				continue
			}
			if !isMutexType(v.Type()) {
				report(fld.Pos(), fmt.Sprintf(
					"lock-order annotation on %s, which is not a sync.Mutex or sync.RWMutex", id.Name))
				continue
			}
			levels[v] = name
		}
	}

	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			// Level bindings on struct fields and package variables.
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					if n.Fields == nil {
						return true
					}
					for _, fld := range n.Fields.List {
						if name, ok := annotationLockOrder(fld.Doc, fld.Comment); ok {
							bindField(pkg, fld, name)
						}
					}
				case *ast.GenDecl:
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						name, ok := annotationLockOrder(n.Doc, vs.Doc, vs.Comment)
						if !ok {
							continue
						}
						for _, id := range vs.Names {
							v := pkg.Info.Defs[id]
							if v == nil {
								continue
							}
							if !isMutexType(v.Type()) {
								report(vs.Pos(), fmt.Sprintf(
									"lock-order annotation on %s, which is not a sync.Mutex or sync.RWMutex", id.Name))
								continue
							}
							levels[v] = name
						}
					}
				}
				return true
			})
			// Declared edges: any comment line with the marker and a '<'.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := markerRest(c.Text)
					if !ok || !strings.Contains(rest, "<") {
						continue
					}
					parts := strings.Split(rest, "<")
					names := make([]string, 0, len(parts))
					bad := false
					for _, p := range parts {
						p = strings.TrimSpace(p)
						if p == "" || strings.ContainsAny(p, " \t") {
							bad = true
							break
						}
						names = append(names, p)
					}
					if bad || len(names) < 2 {
						report(c.Pos(), "malformed lock-order declaration; want `// microlint:lock-order a < b < c`")
						continue
					}
					for i := 0; i+1 < len(names); i++ {
						declared = append(declared, lockOrderEdge{from: names[i], to: names[i+1], pos: c.Pos()})
					}
				}
			}
		}
	}
	return levels, declared
}

// annotationLockOrder extracts a level name from the first lock-order
// annotation in the given comment groups, provided it is a plain name
// (declaration chains containing '<' are handled separately).
func annotationLockOrder(groups ...*ast.CommentGroup) (string, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := markerRest(c.Text)
			if !ok || strings.Contains(rest, "<") {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

// markerRest returns the text after the lock-order marker in a comment,
// if present. Anything from a nested "//" on is trailing prose, not
// part of the annotation.
func markerRest(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*"))
	rest, ok := strings.CutPrefix(text, lockOrderMarker)
	if !ok {
		return "", false
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}
