package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// durcheck enforces the durability ordering contract of internal/store
// (DESIGN.md §8): write-temp → fsync → rename → dirsync for manifest
// commits, and append-then-flush before acking for the WAL. Functions
// opt in with
//
//	// microlint:durable
//
// on their declaration, so the rule travels with the code rather than
// being pinned to a package. Inside a durable function the analyzer
// checks, over the CFG:
//
//  1. every os.Rename is preceded on all paths by a call that fsyncs
//     (directly or through a callee that reaches (*os.File).Sync);
//  2. after an os.Rename, every success path to return passes a sync
//     (the directory sync making the rename itself durable);
//  3. every buffered write ((*bufio.Writer).Write and friends) is
//     followed on all success paths by a Flush or Sync before return —
//     an acked record still sitting in a userspace buffer is lost on
//     crash;
//  4. a ".tmp"-derived file created in the function is removed
//     somewhere (os.Remove/RemoveAll, deferred cleanups count) when the
//     function can fail — a failed commit must not leave junk the next
//     generation trips over.
//
// Paths that exit with an error (return of an error identifier or a
// wrapped fmt.Errorf/errors.* construction) are exempt from rules 2 and
// 3: the write never gets acknowledged on those paths. A rename in a
// function *not* annotated durable is itself a diagnostic, so the
// ordering rules cannot be dodged by forgetting the annotation.
type durcheck struct{}

func (durcheck) Name() string { return "durcheck" }
func (durcheck) Doc() string {
	return "durability ordering in microlint:durable functions: fsync before rename, dirsync after, flush after buffered writes, temp cleanup on error"
}

// Run is satisfied per the Analyzer interface; resolving sync-reaching
// callees needs the module callgraph, so the analysis lives in RunModule.
func (durcheck) Run(pkg *Package, report func(token.Pos, string)) {}

const durableMarker = "microlint:durable"

func (durcheck) RunModule(mod *Module, report func(token.Pos, string)) {
	ci := mod.concurrency()
	syncReach := computeCallReach(ci.cg, func(fn *funcNode) bool {
		return hasDirectCall(fn, func(call *ast.CallExpr) bool {
			return isFileSyncCall(fn.pkg, call)
		})
	})
	removeReach := computeCallReach(ci.cg, func(fn *funcNode) bool {
		return hasDirectCall(fn, func(call *ast.CallExpr) bool {
			return isPkgCall(fn.pkg, call, "os", "Remove") || isPkgCall(fn.pkg, call, "os", "RemoveAll")
		})
	})

	durable := map[*funcNode]bool{}
	for _, fn := range ci.cg.funcs {
		if fn.decl == nil {
			continue
		}
		if _, ok := funcMarker(fn.decl, durableMarker); ok {
			durable[fn] = true
		}
	}

	for _, fn := range ci.cg.funcs {
		if durable[fn] {
			checkDurable(fn, ci.cg, syncReach, removeReach, report)
			continue
		}
		// Rule 0: rename outside the durable protocol.
		fn.walkOwn(func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgCall(fn.pkg, call, "os", "Rename") {
				report(call.Pos(), fmt.Sprintf(
					"os.Rename in %s, which is not annotated microlint:durable; the fsync/rename/dirsync ordering is unchecked here", fn.name()))
			}
			return true
		})
	}
}

// hasDirectCall reports whether fn's own body contains a call matching
// the predicate.
func hasDirectCall(fn *funcNode, match func(*ast.CallExpr) bool) bool {
	direct := false
	fn.walkOwn(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && match(call) {
			direct = true
		}
		return true
	})
	return direct
}

// computeCallReach closes a direct-call property over static and defer
// edges of the callgraph. With "calls (*os.File).Sync" as the seed,
// writeFileSynced and syncDir count as sync barriers at their call
// sites; with "calls os.Remove" as the seed, cleanup helpers count as
// removals.
func computeCallReach(cg *callgraph, seed func(*funcNode) bool) map[*funcNode]bool {
	reach := map[*funcNode]bool{}
	for _, fn := range cg.funcs {
		if seed(fn) {
			reach[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.funcs {
			if reach[fn] {
				continue
			}
			for _, cs := range fn.calls {
				if cs.kind != callStatic && cs.kind != callDefer {
					continue
				}
				for _, tgt := range cs.targets {
					if reach[tgt] {
						reach[fn] = true
						changed = true
					}
				}
			}
		}
	}
	return reach
}

// checkDurable applies the ordering rules to one annotated function.
func checkDurable(fn *funcNode, cg *callgraph, syncReach, removeReach map[*funcNode]bool, report func(token.Pos, string)) {
	pkg := fn.pkg
	g := fn.cfg()

	syncBearing := func(n ast.Node) bool { return nodeHasSync(fn, cg, n, syncReach, false) }
	flushBearing := func(n ast.Node) bool { return nodeHasSync(fn, cg, n, syncReach, true) }
	deferredFlush := hasDeferredSync(fn, cg, syncReach)

	for _, b := range g.blocks {
		for i, n := range b.nodes {
			i, n := i, n
			var renames, bufWrites []*ast.CallExpr
			inspectNoFuncLit(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.DeferStmt); ok {
					return false // deferred calls run at exit, not here
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pkg, call, "os", "Rename") {
					renames = append(renames, call)
				}
				if isBufWriteCall(pkg, call) {
					bufWrites = append(bufWrites, call)
				}
				return true
			})
			for _, call := range renames {
				// Rule 1: some path from entry reaches this rename with no
				// fsync of the written file anywhere before it.
				if g.pathReachesAvoiding(func(m ast.Node) bool { return m == n }, syncBearing) {
					report(call.Pos(),
						"os.Rename reachable without a preceding fsync on some path; the renamed file's contents may not be durable (write-temp, fsync, then rename)")
				}
				// Rule 2: some success path returns after the rename with no
				// sync — the directory entry itself may be lost.
				if !deferredFlush && g.pathToExitAvoiding(b, i+1, func(m ast.Node) bool {
					return syncBearing(m) || isErrorExit(pkg, m)
				}) {
					report(call.Pos(),
						"no directory sync after os.Rename on some success path; the rename may not survive a crash (sync the directory after renaming)")
				}
			}
			// Rule 3: buffered write with no flush before a success return.
			for _, call := range bufWrites {
				if deferredFlush {
					continue
				}
				if g.pathToExitAvoiding(b, i+1, func(m ast.Node) bool {
					return flushBearing(m) || isErrorExit(pkg, m)
				}) {
					report(call.Pos(),
						"buffered write not followed by Flush or Sync on some success path; acknowledged data could be lost in the userspace buffer")
				}
			}
		}
	}

	checkTempCleanup(fn, cg, removeReach, report)
}

// checkTempCleanup implements rule 4: a ".tmp"-named file created by a
// fallible durable function must be os.Remove'd somewhere in it —
// directly, in a deferred closure, or by handing the path to a cleanup
// helper that reaches os.Remove.
func checkTempCleanup(fn *funcNode, cg *callgraph, removeReach map[*funcNode]bool, report func(token.Pos, string)) {
	if fn.body == nil {
		return
	}
	pkg := fn.pkg

	// Locals whose defining expression mentions a ".tmp" literal.
	tmpVars := map[types.Object]token.Pos{}
	fn.walkOwn(func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !mentionsTmpLiteral(as.Rhs[i]) {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				tmpVars[obj] = id.Pos()
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				tmpVars[obj] = id.Pos()
			}
		}
		return true
	})
	if len(tmpVars) == 0 {
		return
	}

	fallible := false
	fn.walkOwn(func(n ast.Node) bool {
		if isErrorExit(pkg, n) {
			fallible = true
		}
		return true
	})
	if !fallible {
		return
	}

	// Removal anywhere in the body counts, including deferred closures
	// and calls into remove-reaching cleanup helpers.
	removed := map[types.Object]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		direct := isPkgCall(pkg, call, "os", "Remove") || isPkgCall(pkg, call, "os", "RemoveAll")
		helper := false
		if !direct {
			if callee := staticCallee(pkg, call); callee != nil {
				if tgt := cg.byObj[callee]; tgt != nil && removeReach[tgt] {
					helper = true
				}
			}
		}
		if !direct && !helper {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObj(pkg, arg); obj != nil {
				removed[obj] = true
			}
			if direct {
				break // only the first arg is the removed path
			}
		}
		return true
	})

	for obj, pos := range tmpVars {
		if !removed[obj] {
			report(pos, fmt.Sprintf(
				"temp file %s is never removed although %s can fail; clean it up on error paths so a failed commit leaves no junk behind",
				obj.Name(), fn.name()))
		}
	}
}

// mentionsTmpLiteral reports whether expr contains a string literal
// containing ".tmp" — the naming convention for not-yet-committed files.
func mentionsTmpLiteral(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, ".tmp") {
			found = true
		}
		return !found
	})
	return found
}

// nodeHasSync reports whether node performs a durability barrier: a
// direct (*os.File).Sync, a call into a sync-reaching module function,
// or — when flush is set — a (*bufio.Writer).Flush. Deferred calls are
// skipped; they run at exit, not at their syntactic position.
func nodeHasSync(fn *funcNode, cg *callgraph, node ast.Node, syncReach map[*funcNode]bool, flush bool) bool {
	pkg := fn.pkg
	found := false
	inspectNoFuncLit(node, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isFileSyncCall(pkg, call) {
			found = true
			return false
		}
		if flush && isBufFlushCall(pkg, call) {
			found = true
			return false
		}
		if callee := staticCallee(pkg, call); callee != nil {
			if tgt := cg.byObj[callee]; tgt != nil && syncReach[tgt] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasDeferredSync reports whether fn defers a flush/sync-bearing call
// (defer w.close() style), which satisfies the before-return rules at
// every exit.
func hasDeferredSync(fn *funcNode, cg *callgraph, syncReach map[*funcNode]bool) bool {
	pkg := fn.pkg
	found := false
	fn.walkOwn(func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		call := d.Call
		if isFileSyncCall(pkg, call) || isBufFlushCall(pkg, call) {
			found = true
			return false
		}
		if callee := staticCallee(pkg, call); callee != nil {
			if tgt := cg.byObj[callee]; tgt != nil && syncReach[tgt] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isErrorExit reports whether node is a return that leaves with an
// error: a bare error-typed identifier (return err; return 0, err) or a
// wrapped construction (fmt.Errorf, errors.New/Join). Such paths never
// acknowledge the write, so durability rules 2 and 3 exempt them.
func isErrorExit(pkg *Package, node ast.Node) bool {
	ret, ok := node.(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		switch r := ast.Unparen(res).(type) {
		case *ast.Ident:
			if r.Name == "nil" {
				continue
			}
			if obj := pkg.Info.Uses[r]; obj != nil && isErrorType(obj.Type()) {
				return true
			}
		case *ast.CallExpr:
			if isPkgCall(pkg, r, "fmt", "Errorf") ||
				isPkgCall(pkg, r, "errors", "New") || isPkgCall(pkg, r, "errors", "Join") {
				return true
			}
		}
	}
	return false
}

// isPkgCall reports whether call invokes pkgPath.name (os.Rename,
// fmt.Errorf, ...), resolved through the type checker rather than
// source text so aliased imports still match.
func isPkgCall(pkg *Package, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isFileSyncCall reports a direct (*os.File).Sync() call.
func isFileSyncCall(pkg *Package, call *ast.CallExpr) bool {
	return isMethodOn(pkg, call, "os", "File", "Sync")
}

// isBufFlushCall reports a direct (*bufio.Writer).Flush() call.
func isBufFlushCall(pkg *Package, call *ast.CallExpr) bool {
	return isMethodOn(pkg, call, "bufio", "Writer", "Flush")
}

// isBufWriteCall reports a write into a bufio.Writer's userspace buffer.
func isBufWriteCall(pkg *Package, call *ast.CallExpr) bool {
	for _, m := range []string{"Write", "WriteString", "WriteByte", "WriteRune"} {
		if isMethodOn(pkg, call, "bufio", "Writer", m) {
			return true
		}
	}
	return false
}

// isMethodOn reports whether call is recv.method() with recv of (a
// pointer to) the named type pkgPath.typeName.
func isMethodOn(pkg *Package, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}
