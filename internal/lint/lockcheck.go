package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck enforces the repo's lock-discipline annotations. A struct
// field carrying a
//
//	// microlint:guarded-by mu
//
// comment (doc or trailing) may only be accessed inside functions that
// call Lock or RLock on that same mutex field. This is the exact bug
// class PR 2 fixed in the facade's Follow: a write to shared state that
// every other path guarded.
//
// Matching is by field object identity, not by expression text, so
// sh.m guarded by sh.mu and c.shards[i].m guarded by the same field
// resolve correctly. Functions whose names end in "Locked" are exempt
// by convention: their contract is that the caller holds the lock.
type lockcheck struct{}

func (lockcheck) Name() string { return "lockcheck" }
func (lockcheck) Doc() string {
	return "fields annotated `microlint:guarded-by mu` must only be accessed under that mutex"
}

const guardedByMarker = "microlint:guarded-by"

func (lockcheck) Run(pkg *Package, report func(token.Pos, string)) {
	guards := collectGuards(pkg, report)
	if len(guards) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			locked := lockedMutexes(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pkg.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				fv, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, guarded := guards[fv]
				if !guarded || locked[mu] {
					return true
				}
				report(sel.Sel.Pos(), fmt.Sprintf(
					"field %s is guarded by %s, but %s accesses it without calling %s.Lock or %s.RLock",
					fv.Name(), mu.Name(), fd.Name.Name, mu.Name(), mu.Name()))
				return true
			})
		}
	}
}

// collectGuards resolves every guarded-by annotation in the package to
// a map from guarded field object to its mutex field object. Broken
// annotations (guard missing, or not a sync.Mutex/RWMutex) are
// themselves diagnostics: a misspelled annotation must not silently
// disable the check.
func collectGuards(pkg *Package, report func(token.Pos, string)) map[*types.Var]*types.Var {
	guards := map[*types.Var]*types.Var{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				guardName := annotationGuard(fld)
				if guardName == "" {
					continue
				}
				mu := siblingField(pkg, st, guardName)
				if mu == nil {
					report(fld.Pos(), fmt.Sprintf(
						"guarded-by annotation names %q, which is not a field of this struct", guardName))
					continue
				}
				if !isMutexType(mu.Type()) {
					report(fld.Pos(), fmt.Sprintf(
						"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex", guardName))
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotationGuard extracts the guard name from a field's doc or
// trailing comment, or "" if the field is not annotated.
func annotationGuard(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if rest, ok := strings.CutPrefix(text, guardedByMarker); ok {
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// siblingField finds the named field in the same struct literal and
// returns its object.
func siblingField(pkg *Package, st *ast.StructType, name string) *types.Var {
	for _, fld := range st.Fields.List {
		for _, id := range fld.Names {
			if id.Name == name {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	switch t.String() {
	case "sync.Mutex", "sync.RWMutex", "*sync.Mutex", "*sync.RWMutex":
		return true
	}
	return false
}

// lockedMutexes collects the set of mutex field objects on which body
// calls Lock or RLock, directly or via defer.
func lockedMutexes(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	locked := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
		default:
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pkg.Info.Selections[inner]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				locked[v] = true
			}
		}
		return true
	})
	return locked
}
