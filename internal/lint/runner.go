package lint

import (
	"encoding/json"
	"go/token"
	"io"
	"sync"
	"time"
)

// runner.go is the parallel front end of the suite: analyzers are
// independent of each other once the module-wide lazy state is built,
// so cmd/microlint runs them on a bounded worker pool and reports
// per-analyzer wall time. The shared state — the callgraph/summary
// layer (Module.conc), the race analysis (Module.race), and every
// function's lazily built CFG — is once-guarded, so a cold concurrent
// call is safe; Precompute still forces all of it up front so workers
// never serialize on a Once and the per-analyzer timings measure the
// analyzers, not the shared build.

// Precompute forces the module's shared lazy analysis state:
// concurrency summaries, the race analysis (lockset dataflow, roots,
// ownership), and the CFG of every function. After it returns, the
// module is read-only for every analyzer in the suite and RunTimed may
// run them concurrently.
func (m *Module) Precompute() {
	ci := m.concurrency()
	m.raceAnalysis()
	for _, fn := range ci.cg.funcs {
		fn.cfg()
	}
}

// AnalyzerTiming is one analyzer's wall-clock cost in a timed run.
type AnalyzerTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"ms"`
}

// RunTimed is Run on a worker pool: each analyzer runs as one task on
// up to workers goroutines (workers < 1 means one per analyzer), and
// the returned timings hold per-analyzer wall time in canonical order.
// Diagnostics are identical to Run's — results are merged in analyzer
// submission order before suppression, and sorted the same way.
func RunTimed(mod *Module, analyzers []Analyzer, workers int) ([]Diagnostic, []AnalyzerTiming) {
	mod.Precompute()

	if workers < 1 || workers > len(analyzers) {
		workers = len(analyzers)
	}
	perAnalyzer := make([][]Diagnostic, len(analyzers))
	timings := make([]AnalyzerTiming, len(analyzers))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a Analyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			report := func(pos token.Pos, msg string) {
				perAnalyzer[i] = append(perAnalyzer[i], Diagnostic{
					Pos:      mod.Fset.Position(pos),
					Analyzer: a.Name(),
					Message:  msg,
				})
			}
			if ma, ok := a.(ModuleAnalyzer); ok {
				ma.RunModule(mod, report)
			} else {
				for _, pkg := range mod.Pkgs {
					a.Run(pkg, report)
				}
			}
			timings[i] = AnalyzerTiming{
				Analyzer: a.Name(),
				Millis:   float64(time.Since(start).Microseconds()) / 1000,
			}
		}(i, a)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, ds := range perAnalyzer {
		diags = append(diags, ds...)
	}
	return finishRun(mod, analyzers, diags), timings
}

// timedReport is the microlint.json wire form of a timed run: the
// diagnostics exactly as WriteJSON emits them, plus the per-analyzer
// timing table CI uploads as a build artifact.
type timedReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Timing      []AnalyzerTiming `json:"timing"`
}

// WriteJSONTimed emits a timed run as one JSON object
// {"diagnostics": [...], "timing": [...]}.
func WriteJSONTimed(w io.Writer, ds []Diagnostic, timings []AnalyzerTiming) error {
	rep := timedReport{Diagnostics: make([]jsonDiagnostic, 0, len(ds)), Timing: timings}
	for _, d := range ds {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
