package lint

import (
	"go/ast"
)

// cfg.go builds an intraprocedural control-flow graph over a function
// body: basic blocks of statement-level nodes connected by successor
// edges. The concurrency analyzers (deadlockcheck, wgcheck) use it for
// path queries — "is every path from this Lock to function exit covered
// by an Unlock", "does every return path pass wg.Done" — that a flat
// ast.Inspect cannot answer.
//
// The graph is deliberately conservative in the direction of *missing*
// paths rather than inventing them: constructs the builder does not
// model (goto) terminate their block with no successors, so an
// existential path query can only under-report, never hallucinate a
// path that does not exist. Blocks hold only the atomic parts of
// compound statements (an if's condition, a for's post statement); the
// bodies live in their own blocks, so no node is ever visited twice on
// one path.
//
// A call to panic, os.Exit, or the log.Fatal family ends its block
// without an edge to the synthetic exit: paths that die in a panic are
// not "returns" and are exempt from must-happen-before-return checks
// (a deferred Unlock or Done still runs on panic, and a non-deferred
// one on a panicking path is noise, not signal).
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is a
// synthetic empty block that every return statement and every fallen-off
// function end feeds into.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type loopTargets struct {
	brk  *cfgBlock // break target
	cont *cfgBlock // continue target; nil for switch/select
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// loops is the stack of enclosing breakable statements, innermost
	// last; labels maps label names to their statement's targets for
	// labeled break/continue.
	loops    []loopTargets
	labels   map[string]loopTargets
	ftTarget *cfgBlock // target of a fallthrough in the current case

	// pendingLabel is the label of a LabeledStmt whose statement is
	// about to be built; the loop builders register their targets under
	// it.
	pendingLabel string
}

// buildCFG constructs the CFG of body. body may be nil (function
// declarations without bodies); the result then has an empty entry
// flowing straight to exit.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: map[string]loopTargets{}}
	g.entry = b.newBlock()
	g.exit = &cfgBlock{}
	b.cur = g.entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.link(b.cur, g.exit)
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// dead parks the builder on a fresh unreachable block, after a
// terminating statement (return, break, panic).
func (b *cfgBuilder) dead() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label, registering targets for it.
func (b *cfgBuilder) takeLabel(t loopTargets) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = t
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.exit)
		b.dead()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, false)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.dead()
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	var t loopTargets
	ok := false
	if s.Label != nil {
		t, ok = b.labels[s.Label.Name]
	} else if len(b.loops) > 0 {
		// break/continue bind to the innermost breakable/continuable.
		if s.Tok.String() == "continue" {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].cont != nil {
					t, ok = b.loops[i], true
					break
				}
			}
		} else {
			t, ok = b.loops[len(b.loops)-1], true
		}
	}
	switch s.Tok.String() {
	case "break":
		if ok {
			b.link(b.cur, t.brk)
		}
	case "continue":
		if ok && t.cont != nil {
			b.link(b.cur, t.cont)
		}
	case "fallthrough":
		b.link(b.cur, b.ftTarget)
	case "goto":
		// Unmodeled: the path simply ends (conservative for
		// existential queries).
	}
	b.dead()
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.link(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.link(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.link(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.link(b.cur, after)
	} else {
		b.link(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.link(b.cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
		b.link(head, after)
	}
	b.link(head, body)

	b.takeLabel(loopTargets{brk: after, cont: post})
	b.loops = append(b.loops, loopTargets{brk: after, cont: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.link(b.cur, post)
	b.loops = b.loops[:len(b.loops)-1]

	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.link(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	b.add(s.X)
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.link(b.cur, head)
	b.link(head, body)
	b.link(head, after)

	b.takeLabel(loopTargets{brk: after, cont: head})
	b.loops = append(b.loops, loopTargets{brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.link(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// switchBody builds the clause blocks of a switch or type switch.
// allowFallthrough wires each case's fallthrough target to the next
// clause's block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, after)
	}

	b.takeLabel(loopTargets{brk: after})
	b.loops = append(b.loops, loopTargets{brk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if allowFallthrough && i+1 < len(blocks) {
			b.ftTarget = blocks[i+1]
		} else {
			b.ftTarget = after
		}
		b.stmtList(cc.Body)
		b.link(b.cur, after)
	}
	b.ftTarget = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	b.takeLabel(loopTargets{brk: after})
	b.loops = append(b.loops, loopTargets{brk: after})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.link(b.cur, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// isTerminatingCall reports whether e is a call that never returns:
// panic, os.Exit, or a *.Fatal/Fatalf/Fatalln method or function.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

// pathToExitAvoiding reports whether, starting at node index start of
// block from, some path reaches the function exit without passing a node
// for which stop returns true. stop is consulted on every node of every
// block along the way (function literals nested in a node are not the
// node's own control flow; callers' stop predicates use
// inspectNoFuncLit to respect that).
func (g *funcCFG) pathToExitAvoiding(from *cfgBlock, start int, stop func(ast.Node) bool) bool {
	type item struct {
		b   *cfgBlock
		idx int
	}
	seen := map[*cfgBlock]bool{}
	stack := []item{{from, start}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blocked := false
		for _, n := range it.b.nodes[it.idx:] {
			if stop(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if it.b == g.exit {
			return true
		}
		for _, s := range it.b.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, item{s, 0})
			}
		}
	}
	return false
}

// inspectNoFuncLit walks n in syntactic order like ast.Inspect but does
// not descend into function literals: a nested closure's body is its own
// function, not part of the enclosing control flow.
func inspectNoFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}
