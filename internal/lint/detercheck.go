package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// detercheck flags code whose observable output depends on Go's
// randomized map iteration order — the failure mode that would silently
// corrupt Eq. 1 / Eq. 8 / Eq. 11 reproduction numbers (float addition
// is not associative, and result slices feed ranked output). Two
// patterns are flagged inside `for ... range m` where m is a map:
//
//   - append to a slice declared outside the loop, unless the enclosing
//     function later (lexically after the loop) passes that slice to a
//     sort.* or slices.* call;
//   - direct output via the fmt print family, which emits lines in map
//     order.
//
// Writes keyed by the range variable (m2[k] = ...) are exempt: the
// resulting map content is order-independent.
type detercheck struct{}

func (detercheck) Name() string { return "detercheck" }
func (detercheck) Doc() string {
	return "no order-dependent appends or output inside range-over-map without a subsequent sort"
}

func (detercheck) Run(pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorts := collectSortCalls(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pkg, rs, sorts, report)
				return true
			})
		}
	}
}

// sortCall records one sort.*/slices.* call and every object its
// arguments reference, so "was this slice sorted after the loop" is an
// object-identity question.
type sortCall struct {
	pos  token.Pos
	objs map[types.Object]bool
}

func collectSortCalls(pkg *Package, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p := calleePackagePath(pkg, call); p != "sort" && p != "slices" {
			return true
		}
		sc := sortCall{pos: call.Pos(), objs: map[types.Object]bool{}}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				switch mm := m.(type) {
				case *ast.Ident:
					if obj := pkg.Info.Uses[mm]; obj != nil {
						sc.objs[obj] = true
					}
				case *ast.SelectorExpr:
					if s := pkg.Info.Selections[mm]; s != nil {
						sc.objs[s.Obj()] = true
					}
				}
				return true
			})
		}
		out = append(out, sc)
		return true
	})
	return out
}

func checkMapRangeBody(pkg *Package, rs *ast.RangeStmt, sorts []sortCall, report func(token.Pos, string)) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				if i >= len(stmt.Lhs) || !isAppendCall(pkg, rhs) {
					continue
				}
				target := stmt.Lhs[i]
				obj := assignTargetObject(pkg, target)
				if obj == nil {
					continue // indexed/map writes: content is order-independent
				}
				if declaredWithin(obj, rs) {
					continue // per-iteration scratch, consumed inside the loop
				}
				if sortedAfter(sorts, rs.End(), obj) {
					continue
				}
				report(stmt.Pos(), fmt.Sprintf(
					"append to %s while ranging over a map: element order depends on map iteration; sort %s afterwards or iterate sorted keys",
					obj.Name(), obj.Name()))
			}
		case *ast.CallExpr:
			if name := fmtPrintCall(pkg, stmt); name != "" {
				report(stmt.Pos(), fmt.Sprintf(
					"fmt.%s while ranging over a map: output order depends on map iteration; collect and sort first", name))
			}
		}
		return true
	})
}

// assignTargetObject resolves an append target to a stable object: the
// variable for an identifier, the struct field for a selector. Indexed
// targets (m[k], s[i]) return nil and are exempt.
func assignTargetObject(pkg *Package, e ast.Expr) types.Object {
	switch t := e.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[t]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[t]
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[t]; s != nil {
			return s.Obj()
		}
	}
	return nil
}

func isAppendCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// declaredWithin reports whether obj is declared inside the range
// statement itself (loop body or the key/value vars).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether any collected sort call lexically after
// end references obj.
func sortedAfter(sorts []sortCall, end token.Pos, obj types.Object) bool {
	for _, sc := range sorts {
		if sc.pos >= end && sc.objs[obj] {
			return true
		}
	}
	return false
}

// fmtPrintCall returns the function name if call is one of fmt's
// printing functions (not Sprint*, which produce values rather than
// output), else "".
func fmtPrintCall(pkg *Package, call *ast.CallExpr) string {
	if calleePackagePath(pkg, call) != "fmt" {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch name := sel.Sel.Name; name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return name
	}
	return ""
}

// calleePackagePath returns the import path of the package whose
// function is being called, or "" for methods, builtins, and locals.
func calleePackagePath(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Package-qualified call: X must be a package name.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
