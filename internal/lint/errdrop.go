package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errdrop flags error returns that are silently discarded in non-test
// code: a call whose result set contains an error used as a bare
// statement, or an error result assigned to the blank identifier. Both
// forms hide failures (a half-written results file, a refused write)
// that the caller should at least log.
//
// Deliberate discards stay possible — and visible — via
// //nolint:microlint/errdrop with a written reason.
//
// Exemptions, to keep the signal high:
//   - direct `defer f()` / `go f()` statements (the idiomatic
//     `defer f.Close()` on read paths); deferred *closures* get no such
//     pass, so errors dropped inside them are still caught;
//   - the fmt print family, hash.Hash.Write (documented to never fail),
//     and sticky-error writers (*bufio.Writer, strings.Builder,
//     bytes.Buffer), whose error returns are checked once at flush time
//     by convention.
type errdrop struct{}

func (errdrop) Name() string { return "errdrop" }
func (errdrop) Doc() string {
	return "no unchecked or blank-discarded error returns outside tests"
}

func (errdrop) Run(pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		// Calls that are the immediate operand of defer/go.
		direct := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				direct[s.Call] = true
			case *ast.GoStmt:
				direct[s.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || direct[call] || exemptCall(pkg, call) {
					return true
				}
				if pos := errorResultIndex(pkg, call); pos >= 0 {
					report(stmt.Pos(), fmt.Sprintf(
						"result of %s includes an error that is silently discarded; check it or suppress with a reason",
						calleeLabel(pkg, call)))
				}
			case *ast.AssignStmt:
				checkBlankAssign(pkg, stmt, report)
			}
			return true
		})
	}
}

// checkBlankAssign reports error results assigned to _.
func checkBlankAssign(pkg *Package, stmt *ast.AssignStmt, report func(token.Pos, string)) {
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// out, _ := f(...): tuple positions line up with Lhs.
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || exemptCall(pkg, call) {
			return
		}
		tuple, ok := pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(stmt.Lhs); i++ {
			if isBlank(stmt.Lhs[i]) && isErrorType(tuple.At(i).Type()) {
				report(stmt.Lhs[i].Pos(), fmt.Sprintf(
					"error result of %s assigned to _; check it or suppress with a reason",
					calleeLabel(pkg, call)))
			}
		}
		return
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		call, ok := stmt.Rhs[i].(*ast.CallExpr)
		if !ok || exemptCall(pkg, call) {
			continue
		}
		if t := pkg.Info.TypeOf(call); t != nil && isErrorType(t) {
			report(lhs.Pos(), fmt.Sprintf(
				"error result of %s assigned to _; check it or suppress with a reason",
				calleeLabel(pkg, call)))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// errorResultIndex returns the index of the first error in call's
// result types, or -1.
func errorResultIndex(pkg *Package, call *ast.CallExpr) int {
	t := pkg.Info.TypeOf(call)
	switch tt := t.(type) {
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if isErrorType(tt.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// exemptCall reports whether call belongs to the conventional
// don't-check list: fmt printing and sticky-error writers.
func exemptCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	// hash.Hash.Write is documented to never return an error. The method
	// object resolves through the embedded io.Writer, so match on the
	// receiver expression's static type instead.
	if name == "Write" {
		if rt := pkg.Info.TypeOf(sel.X); rt != nil && strings.HasPrefix(rt.String(), "hash.Hash") {
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch sig.Recv().Type().String() {
	case "*bufio.Writer", "*strings.Builder", "*bytes.Buffer":
		// Write* never returns a non-nil error on these types (bufio
		// sticks the error for Flush to report).
		return strings.HasPrefix(name, "Write")
	}
	return false
}

// calleeLabel renders a short human name for the called function.
func calleeLabel(pkg *Package, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
