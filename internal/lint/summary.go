package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// summary.go computes per-function concurrency summaries over the
// callgraph: which mutexes a function acquires (directly and
// transitively), and — via a may-held dataflow over the CFG — which
// locks can be held at each acquire site and call site. Lock identity
// is the types.Object of the mutex: for struct fields that is the field
// object itself, shared by every instance of the struct, which is
// exactly the granularity a lock *hierarchy* is defined at (all
// interest-cache shards are one level); for package-level and local
// mutex variables it is the variable object.
//
// The dataflow is a may-analysis (union at joins): a lock counts as
// held on a path if some predecessor path holds it. That errs toward
// reporting potential inversions; release via Unlock inside one basic
// block is tracked exactly, so the read-copy-update idiom
// (RLock/read/RUnlock then Lock/write/Unlock) does not produce false
// nesting. Deferred Unlocks keep the lock held until function exit, as
// they do at runtime.

// lockMode distinguishes write (Lock) from read (RLock) acquisition.
type lockMode int

const (
	modeWrite lockMode = iota
	modeRead
)

func (m lockMode) String() string {
	if m == modeRead {
		return "RLock"
	}
	return "Lock"
}

// lockOp is one Lock/RLock/Unlock/RUnlock call on a resolved mutex.
type lockOp struct {
	obj      types.Object
	pos      token.Pos
	acquire  bool
	mode     lockMode
	deferred bool
}

// lockEvent is something the deadlock analyzer cares about, annotated
// with the set of locks that may be held when it happens.
type lockEvent struct {
	pos  token.Pos
	held map[types.Object]lockMode // snapshot (owned by the event)

	// Exactly one of the following is set.
	acquire *lockOp   // a direct Lock/RLock
	call    *callSite // a call that may acquire further locks
}

// concInfo is the module's shared concurrency-analysis state, built
// once and reused by every analyzer that needs it.
type concInfo struct {
	mod   *Module
	cg    *callgraph
	names map[types.Object]string // display names for lock objects
}

// concurrency returns the module's concurrency info, building it on
// first use (once-guarded so concurrent analyzers can share it).
func (m *Module) concurrency() *concInfo {
	m.concOnce.Do(func() {
		ci := &concInfo{mod: m, cg: buildCallgraph(m), names: map[types.Object]string{}}
		for _, pkg := range m.Pkgs {
			ci.collectFieldNames(pkg)
		}
		for _, fn := range ci.cg.funcs {
			ci.collectAcquires(fn)
		}
		ci.propagateAcquires()
		m.conc = ci
	})
	return m.conc
}

// collectFieldNames maps every struct field object of the package to a
// pkg.Type.field display name, so lock diagnostics read like the
// declared hierarchy.
func (ci *concInfo) collectFieldNames(pkg *Package) {
	short := shortPkg(ci.mod, pkg.PkgPath)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, id := range fld.Names {
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						ci.names[v] = short + "." + ts.Name.Name + "." + id.Name
					}
				}
			}
			return true
		})
	}
}

// shortPkg trims the module prefix from an import path: the root
// package keeps its base name.
func shortPkg(mod *Module, pkgPath string) string {
	if pkgPath == mod.Path {
		if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
			return pkgPath[i+1:]
		}
		return pkgPath
	}
	p := strings.TrimPrefix(pkgPath, mod.Path+"/")
	if i := strings.LastIndex(p, "/"); i >= 0 {
		p = p[i+1:]
	}
	return p
}

// lockName renders a lock object for diagnostics.
func (ci *concInfo) lockName(obj types.Object) string {
	if n, ok := ci.names[obj]; ok {
		return n
	}
	if obj.Pkg() != nil {
		return shortPkg(ci.mod, obj.Pkg().Path()) + "." + obj.Name()
	}
	return obj.Name()
}

// mutexObjOf resolves the receiver expression of a Lock/Unlock call to
// its lock identity: the field object for selectors, the variable
// object for identifiers. Returns nil for anything else (an expression
// whose lock identity cannot be named is not tracked).
func mutexObjOf(pkg *Package, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		// Package-qualified variable: pkg.mu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// lockOpOf decodes call as a mutex operation, or nil.
func lockOpOf(pkg *Package, call *ast.CallExpr, deferred bool) *lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire bool
	var mode lockMode
	switch sel.Sel.Name {
	case "Lock":
		acquire, mode = true, modeWrite
	case "RLock":
		acquire, mode = true, modeRead
	case "Unlock":
		acquire, mode = false, modeWrite
	case "RUnlock":
		acquire, mode = false, modeRead
	default:
		return nil
	}
	if tv, ok := pkg.Info.Types[sel.X]; !ok || !isMutexType(tv.Type) {
		return nil
	}
	obj := mutexObjOf(pkg, sel.X)
	if obj == nil {
		return nil
	}
	return &lockOp{obj: obj, pos: call.Pos(), acquire: acquire, mode: mode, deferred: deferred}
}

// lockOpsIn lists the mutex operations syntactically inside one CFG
// node, in source order, with defer marking.
func lockOpsIn(pkg *Package, node ast.Node) []*lockOp {
	var ops []*lockOp
	deferred := map[*ast.CallExpr]bool{}
	inspectNoFuncLit(node, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	inspectNoFuncLit(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := lockOpOf(pkg, call, deferred[call]); op != nil {
				ops = append(ops, op)
			}
		}
		return true
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// collectAcquires records the locks fn's own body acquires.
func (ci *concInfo) collectAcquires(fn *funcNode) {
	fn.acquires = map[lockKey]token.Pos{}
	fn.walkOwn(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := lockOpOf(fn.pkg, call, false); op != nil && op.acquire {
				if _, seen := fn.acquires[op.obj]; !seen {
					fn.acquires[op.obj] = op.pos
				}
			}
		}
		return true
	})
}

// propagateAcquires computes the transitive acquire sets over the
// callgraph: static, defer, and reference edges propagate (the callee's
// locks may be taken while the caller runs or holds its locks); go
// edges do not (a spawned goroutine acquires on its own stack, which is
// concurrency, not nesting).
func (ci *concInfo) propagateAcquires() {
	for _, fn := range ci.cg.funcs {
		fn.acquiresAll = map[lockKey]token.Pos{}
		for k, p := range fn.acquires {
			fn.acquiresAll[k] = p
		}
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range ci.cg.funcs {
			for _, cs := range fn.calls {
				if cs.kind == callGo {
					continue
				}
				for _, tgt := range cs.targets {
					for k := range tgt.acquiresAll {
						if _, ok := fn.acquiresAll[k]; !ok {
							fn.acquiresAll[k] = cs.pos
							changed = true
						}
					}
				}
			}
		}
	}
}

// lockKey aliases types.Object to document intent at use sites.
type lockKey = types.Object

// heldEvents runs the may-held dataflow over fn's CFG and returns the
// acquire and call events with their held-set snapshots, plus, for each
// acquire, whether some path reaches function exit without releasing it
// (reported by deadlockcheck as a leaked lock).
type heldResult struct {
	events []lockEvent
	// unreleased maps an acquire op to true when a path reaches exit
	// with the lock still held and no deferred unlock exists.
	unreleased []*lockOp
}

func (ci *concInfo) heldEvents(fn *funcNode) heldResult {
	g := fn.cfg()
	pkg := fn.pkg

	// Per-node decoded operations and call sites, cached.
	nodeOps := map[ast.Node][]*lockOp{}
	nodeCalls := map[ast.Node][]*callSite{}
	for i := range fn.calls {
		cs := &fn.calls[i]
		for _, b := range g.blocks {
			for _, n := range b.nodes {
				if n.Pos() <= cs.pos && cs.pos < n.End() {
					nodeCalls[n] = append(nodeCalls[n], cs)
				}
			}
		}
	}
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			nodeOps[n] = lockOpsIn(pkg, n)
		}
	}

	// Deferred releases hold until exit; note which locks have one so
	// the leak check can exempt them.
	deferredRelease := map[lockKey]bool{}
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			for _, op := range nodeOps[n] {
				if !op.acquire && op.deferred {
					deferredRelease[op.obj] = true
				}
			}
		}
	}

	in := map[*cfgBlock]map[lockKey]lockMode{}
	copySet := func(s map[lockKey]lockMode) map[lockKey]lockMode {
		out := make(map[lockKey]lockMode, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}

	var res heldResult
	record := func(cur map[lockKey]lockMode, ev lockEvent) {
		ev.held = copySet(cur)
		res.events = append(res.events, ev)
	}

	// Fixpoint over block entry sets; events are (re)collected on a
	// final pass so each site reports once with its converged set.
	transfer := func(b *cfgBlock, cur map[lockKey]lockMode, emit bool) map[lockKey]lockMode {
		for _, n := range b.nodes {
			for _, op := range nodeOps[n] {
				if op.acquire {
					if emit {
						record(cur, lockEvent{pos: op.pos, acquire: op})
					}
					cur[op.obj] = op.mode
				} else if !op.deferred {
					delete(cur, op.obj)
				}
			}
			if emit {
				for _, cs := range nodeCalls[n] {
					if len(cur) > 0 && cs.kind != callGo {
						record(cur, lockEvent{pos: cs.pos, call: cs})
					}
				}
			}
		}
		return cur
	}

	in[g.entry] = map[lockKey]lockMode{}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, copySet(in[b]), false)
		for _, s := range b.succs {
			next, ok := in[s]
			if !ok {
				in[s] = copySet(out)
				work = append(work, s)
				continue
			}
			grown := false
			for k, v := range out {
				if _, ok := next[k]; !ok {
					next[k] = v
					grown = true
				}
			}
			if grown {
				work = append(work, s)
			}
		}
	}
	for _, b := range g.blocks {
		if s, ok := in[b]; ok {
			transfer(b, copySet(s), true)
		}
	}

	// Leaked locks: an acquire with no deferred release for its key and
	// some path to exit that passes no plain release of it.
	for _, b := range g.blocks {
		if _, reachable := in[b]; !reachable {
			continue
		}
		for i, n := range b.nodes {
			for _, op := range nodeOps[n] {
				if !op.acquire || op.deferred || deferredRelease[op.obj] {
					continue
				}
				releases := func(m ast.Node) bool {
					for _, o := range nodeOps[m] {
						if !o.acquire && !o.deferred && o.obj == op.obj {
							return true
						}
					}
					return false
				}
				if g.pathToExitAvoiding(b, i+1, releases) {
					res.unreleased = append(res.unreleased, op)
				}
			}
		}
	}
	return res
}
