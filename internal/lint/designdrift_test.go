package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestLockOrderMatchesDesignDoc keeps DESIGN.md §6's lock-order graph
// and the module's microlint:lock-order annotations from drifting
// apart: every edge and level in the doc's fenced block must exist in
// source, and every annotation in source must be listed in the doc.
// The deadlockcheck analyzer enforces the annotations against the code;
// this test enforces the document against the annotations, closing the
// loop.
func TestLockOrderMatchesDesignDoc(t *testing.T) {
	docLevels, docEdges := parseDesignLockOrder(t)
	srcLevels, srcEdges := parseSourceLockOrder(t)

	diff := func(kind string, a, b map[string]bool, aName, bName string) {
		var missing []string
		for k := range a {
			if !b[k] {
				missing = append(missing, k)
			}
		}
		sort.Strings(missing)
		for _, k := range missing {
			t.Errorf("%s %q is in %s but not in %s", kind, k, aName, bName)
		}
	}
	diff("level", docLevels, srcLevels, "DESIGN.md §6", "source annotations")
	diff("level", srcLevels, docLevels, "source annotations", "DESIGN.md §6")
	diff("edge", docEdges, srcEdges, "DESIGN.md §6", "source annotations")
	diff("edge", srcEdges, docEdges, "source annotations", "DESIGN.md §6")
}

// TestRacecheckLocksMatchDesignDoc closes the loop from the other
// direction: every lock racecheck *infers* as protecting a concurrently
// accessed object (the protection sets of root-reachable accesses) must
// carry a microlint:lock-order level, and that level must appear in
// DESIGN.md §6. A lock that protects shared state but is absent from
// the declared graph is exactly the drift the document exists to
// prevent — the code grew a synchronization role the doc doesn't know.
func TestRacecheckLocksMatchDesignDoc(t *testing.T) {
	docLevels, _ := parseDesignLockOrder(t)
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	ri := mod.raceAnalysis()
	levels, _ := collectLockOrder(mod, func(token.Pos, string) {})

	inferred := map[lockKey]bool{}
	for fn, accs := range ri.accesses {
		if len(ri.rootsOf[fn]) == 0 {
			continue // single-threaded as far as the module can prove
		}
		for _, a := range accs {
			for k := range ri.protSet(a) {
				inferred[k] = true
			}
		}
	}
	if len(inferred) == 0 {
		t.Fatal("racecheck inferred no protecting locks at all; the analysis is broken")
	}

	var names []string
	byName := map[string]lockKey{}
	for k := range inferred {
		n := ri.ci.lockName(k)
		names = append(names, n)
		byName[n] = k
	}
	sort.Strings(names)
	for _, n := range names {
		k := byName[n]
		lvl, ok := levels[k]
		if !ok {
			t.Errorf("racecheck infers %s as a guard of shared state, but it carries no microlint:lock-order level", n)
			continue
		}
		if !docLevels[lvl] {
			t.Errorf("racecheck infers %s (level %q) as a guard, but that level is not in the DESIGN.md §6 graph", n, lvl)
		}
	}
}

// parseDesignLockOrder extracts the lock-order block of DESIGN.md §6:
// the fenced code block following the "The declared lock-order graph"
// sentence. Lines are either `a < b  comment` (one edge, endpoints are
// levels) or `name  comment` (a level with no outgoing edge listed).
func parseDesignLockOrder(t *testing.T) (levels, edges map[string]bool) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "The declared lock-order graph") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("DESIGN.md: anchor sentence \"The declared lock-order graph\" not found")
	}

	levels, edges = map[string]bool{}, map[string]bool{}
	inBlock := false
	for _, l := range lines[start:] {
		if strings.HasPrefix(l, "```") {
			if inBlock {
				break // end of the graph block
			}
			inBlock = true
			continue
		}
		if !inBlock {
			continue
		}
		fields := strings.Fields(l)
		if len(fields) == 0 {
			continue
		}
		if len(fields) >= 3 && fields[1] == "<" {
			levels[fields[0]] = true
			levels[fields[2]] = true
			edges[fields[0]+" < "+fields[2]] = true
			continue
		}
		levels[fields[0]] = true
	}
	if !inBlock {
		t.Fatal("DESIGN.md: no fenced block after the lock-order anchor")
	}
	if len(edges) == 0 {
		t.Fatal("DESIGN.md: lock-order block contains no edges; parsing is broken")
	}
	return levels, edges
}

// parseSourceLockOrder collects the module's microlint:lock-order
// annotations with the same comment grammar deadlockcheck uses
// (markerRest): a single name binds a mutex to a level; a chain
// `a < b < c` declares consecutive edges.
func parseSourceLockOrder(t *testing.T) (levels, edges map[string]bool) {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	levels, edges = map[string]bool{}, map[string]bool{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := markerRest(c.Text)
					if !ok {
						continue
					}
					parts := strings.Split(rest, "<")
					if len(parts) == 1 {
						if name := strings.TrimSpace(parts[0]); name != "" {
							levels[name] = true
						}
						continue
					}
					for i := 0; i+1 < len(parts); i++ {
						a, b := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
						if a == "" || b == "" {
							t.Errorf("%s: malformed lock-order chain %q", mod.Fset.Position(c.Pos()), rest)
							continue
						}
						edges[fmt.Sprintf("%s < %s", a, b)] = true
					}
				}
			}
		}
	}
	if len(levels) == 0 || len(edges) == 0 {
		t.Fatalf("source scan found %d levels and %d edges; annotation parsing is broken", len(levels), len(edges))
	}
	return levels, edges
}
