package tweets

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	s := corpus()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len %d != %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.At(i), got.At(i)
		if a.ID != b.ID || a.User != b.User || a.Time != b.Time || a.Text != b.Text {
			t.Fatalf("tweet %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Mentions) != len(b.Mentions) {
			t.Fatalf("tweet %d mentions differ", i)
		}
		for j := range a.Mentions {
			if a.Mentions[j] != b.Mentions[j] {
				t.Fatalf("tweet %d mention %d: %+v vs %+v", i, j, a.Mentions[j], b.Mentions[j])
			}
		}
	}
}

func TestJSONLEmptyLinesSkipped(t *testing.T) {
	in := `{"id":1,"user":2,"time":3,"text":"x"}

{"id":2,"user":2,"time":4,"text":"y"}
`
	s, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestJSONLMalformed(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestJSONLEmptyInput(t *testing.T) {
	s, err := ReadJSONL(strings.NewReader(""))
	if err != nil || s.Len() != 0 {
		t.Fatalf("s=%v err=%v", s.Len(), err)
	}
}
