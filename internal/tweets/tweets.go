// Package tweets holds the microblog corpus: tweets with timestamps,
// authorship and their extracted entity mentions. The store feeds the
// offline knowledge-acquisition phase (complementing the KB via collective
// linking), serves per-user histories to the collective baseline, and
// carries generator ground truth for evaluation.
package tweets

import (
	"sort"

	"microlink/internal/kb"
)

// MentionKind tags the generative origin of a mention, for analysis only —
// linkers must never read it.
type MentionKind uint8

// Mention origins assigned by the generator.
const (
	KindProfile MentionKind = iota // drawn from the author's interests
	KindHot                        // off-profile reference to a hot entity
	KindChatter                    // daily-life chatter, uniform entity
)

// Mention is one entity mention inside a tweet: its surface string (already
// normalised), its token span, and — when the corpus comes from the
// generator — the ground-truth entity and its generative origin.
type Mention struct {
	Surface    string
	Start, End int         // token span [Start, End)
	Truth      kb.EntityID // ground-truth entity, NoEntity when unknown
	Kind       MentionKind // generative origin (analysis only)
}

// Tweet is one microblog posting (Table 1's d, with d.t and d.u).
type Tweet struct {
	ID       int64
	User     kb.UserID
	Time     int64 // unix seconds
	Text     string
	Mentions []Mention
}

// Store is an append-only tweet corpus with per-user indexes. It is frozen
// after loading; methods are safe for concurrent reads.
type Store struct {
	all    []Tweet
	byUser map[kb.UserID][]int32 // user → indexes into all, in time order
}

// NewStore builds a Store from tweets, which are sorted by time.
func NewStore(ts []Tweet) *Store {
	s := &Store{all: ts, byUser: make(map[kb.UserID][]int32)}
	sort.Slice(s.all, func(i, j int) bool {
		if s.all[i].Time != s.all[j].Time {
			return s.all[i].Time < s.all[j].Time
		}
		return s.all[i].ID < s.all[j].ID
	})
	for i := range s.all {
		u := s.all[i].User
		s.byUser[u] = append(s.byUser[u], int32(i))
	}
	return s
}

// Len returns the number of tweets.
func (s *Store) Len() int { return len(s.all) }

// At returns the i-th tweet in time order.
func (s *Store) At(i int) *Tweet { return &s.all[i] }

// All returns the backing slice in time order; callers must not modify it.
func (s *Store) All() []Tweet { return s.all }

// ByUser returns the tweets of user u in time order (copies of the
// indexes are not made; do not modify).
func (s *Store) ByUser(u kb.UserID) []*Tweet {
	idx := s.byUser[u]
	out := make([]*Tweet, len(idx))
	for i, j := range idx {
		out[i] = &s.all[j]
	}
	return out
}

// UserTweetCount returns the posting count of u — the activity filter
// (θ postings) that derives the D10…D90 datasets in §5.1.2.
func (s *Store) UserTweetCount(u kb.UserID) int { return len(s.byUser[u]) }

// Users returns all users with at least one tweet, in ascending order.
func (s *Store) Users() []kb.UserID {
	out := make([]kb.UserID, 0, len(s.byUser))
	for u := range s.byUser {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FilterByActivity partitions the corpus per §5.1.2: tweets of users with
// at least minPosts postings. Passing maxPosts > 0 additionally bounds the
// activity from above (used to sample the inactive-user test set Dtest).
func (s *Store) FilterByActivity(minPosts, maxPosts int) *Store {
	// Iterate users in sorted order, not map order: NewStore re-sorts by
	// time, but equal-timestamp tweets would otherwise land in a
	// run-dependent relative order.
	var kept []Tweet
	for _, u := range s.Users() {
		idx := s.byUser[u]
		n := len(idx)
		if n < minPosts {
			continue
		}
		if maxPosts > 0 && n > maxPosts {
			continue
		}
		for _, j := range idx {
			kept = append(kept, s.all[j])
		}
	}
	return NewStore(kept)
}

// MentionCount returns the total number of mentions across all tweets.
func (s *Store) MentionCount() int {
	n := 0
	for i := range s.all {
		n += len(s.all[i].Mentions)
	}
	return n
}

// Stats summarises a corpus the way Table 2 does.
type Stats struct {
	Users            int
	Tweets           int
	Mentions         int
	TweetsPerUser    float64
	MentionsPerTweet float64
}

// Stats computes corpus statistics.
func (s *Store) Stats() Stats {
	st := Stats{Users: len(s.byUser), Tweets: len(s.all), Mentions: s.MentionCount()}
	if st.Users > 0 {
		st.TweetsPerUser = float64(st.Tweets) / float64(st.Users)
	}
	if st.Tweets > 0 {
		st.MentionsPerTweet = float64(st.Mentions) / float64(st.Tweets)
	}
	return st
}
