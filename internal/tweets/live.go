package tweets

import (
	"sync"

	"microlink/internal/kb"
)

// LiveStore is the streaming counterpart of Store: an append-only corpus
// that accepts tweets while queries read it concurrently. The frozen
// Store is built once at load time and never mutated; the ingest pipeline
// appends arriving tweets here instead, keeping per-user histories and
// the recent-tail view fresh without touching the frozen corpus.
//
// All methods are safe for concurrent use. Tweets are kept in arrival
// order (the stream is assumed time-ordered; no re-sort happens on
// append), and accessors return copies so callers never alias the
// guarded backing storage.
type LiveStore struct {
	mu     sync.RWMutex          // microlint:lock-order tweets-live
	all    []Tweet               // microlint:guarded-by mu
	byUser map[kb.UserID][]int32 // microlint:guarded-by mu
}

// NewLiveStore returns an empty live corpus.
func NewLiveStore() *LiveStore {
	return &LiveStore{byUser: make(map[kb.UserID][]int32)}
}

// Append adds one tweet in arrival order.
func (s *LiveStore) Append(tw Tweet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byUser[tw.User] = append(s.byUser[tw.User], int32(len(s.all)))
	s.all = append(s.all, tw)
}

// Len returns the number of tweets appended so far.
func (s *LiveStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// ByUser returns copies of user u's tweets in arrival order.
func (s *LiveStore) ByUser(u kb.UserID) []Tweet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.byUser[u]
	out := make([]Tweet, len(idx))
	for i, j := range idx {
		out[i] = s.all[j]
	}
	return out
}

// Recent returns copies of the most recent n tweets (fewer when the
// store holds fewer), oldest first.
func (s *LiveStore) Recent(n int) []Tweet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n > len(s.all) {
		n = len(s.all)
	}
	out := make([]Tweet, n)
	copy(out, s.all[len(s.all)-n:])
	return out
}

// All returns a copy of the corpus in arrival order — the persistence
// capture: replaying Append over it reproduces the store exactly,
// per-user indexes included.
func (s *LiveStore) All() []Tweet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Tweet, len(s.all))
	copy(out, s.all)
	return out
}

// Snapshot freezes the current contents into a regular (time-sorted,
// immutable) Store.
func (s *LiveStore) Snapshot() *Store {
	s.mu.RLock()
	all := make([]Tweet, len(s.all))
	copy(all, s.all)
	s.mu.RUnlock()
	return NewStore(all)
}
