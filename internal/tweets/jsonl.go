package tweets

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"microlink/internal/kb"
)

// JSONL interchange for tweet corpora: one JSON object per line, the
// lingua franca of tweet datasets. Ground-truth fields are preserved so an
// exported synthetic corpus stays evaluable after a round trip.

// jsonlTweet is the wire form of one tweet.
type jsonlTweet struct {
	ID       int64          `json:"id"`
	User     kb.UserID      `json:"user"`
	Time     int64          `json:"time"`
	Text     string         `json:"text"`
	Mentions []jsonlMention `json:"mentions,omitempty"`
}

type jsonlMention struct {
	Surface string      `json:"surface"`
	Start   int         `json:"start,omitempty"`
	End     int         `json:"end,omitempty"`
	Truth   kb.EntityID `json:"truth"`
	Kind    uint8       `json:"kind,omitempty"`
}

// WriteJSONL streams the corpus to w in time order.
func (s *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.all {
		tw := &s.all[i]
		rec := jsonlTweet{ID: tw.ID, User: tw.User, Time: tw.Time, Text: tw.Text}
		for _, m := range tw.Mentions {
			rec.Mentions = append(rec.Mentions, jsonlMention{
				Surface: m.Surface, Start: m.Start, End: m.End,
				Truth: m.Truth, Kind: uint8(m.Kind),
			})
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a corpus written by WriteJSONL (or produced by any tool
// emitting the same one-object-per-line schema). Malformed lines abort
// with a line-numbered error.
func ReadJSONL(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var all []Tweet
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec jsonlTweet
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tweets: line %d: %w", line, err)
		}
		tw := Tweet{ID: rec.ID, User: rec.User, Time: rec.Time, Text: rec.Text}
		for _, m := range rec.Mentions {
			tw.Mentions = append(tw.Mentions, Mention{
				Surface: m.Surface, Start: m.Start, End: m.End,
				Truth: m.Truth, Kind: MentionKind(m.Kind),
			})
		}
		all = append(all, tw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tweets: %w", err)
	}
	return NewStore(all), nil
}
