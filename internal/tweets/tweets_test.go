package tweets

import (
	"testing"

	"microlink/internal/kb"
)

func corpus() *Store {
	return NewStore([]Tweet{
		{ID: 3, User: 1, Time: 300, Text: "c", Mentions: []Mention{{Surface: "x", Truth: 0}}},
		{ID: 1, User: 1, Time: 100, Text: "a", Mentions: []Mention{{Surface: "x", Truth: 0}, {Surface: "y", Truth: 1}}},
		{ID: 2, User: 2, Time: 200, Text: "b"},
		{ID: 4, User: 3, Time: 50, Text: "d"},
		{ID: 5, User: 1, Time: 400, Text: "e"},
	})
}

func TestStoreSortedByTime(t *testing.T) {
	s := corpus()
	for i := 1; i < s.Len(); i++ {
		if s.At(i).Time < s.At(i-1).Time {
			t.Fatalf("unsorted at %d", i)
		}
	}
	if s.At(0).ID != 4 {
		t.Fatalf("first tweet = %d", s.At(0).ID)
	}
}

func TestByUserTimeOrder(t *testing.T) {
	s := corpus()
	ts := s.ByUser(1)
	if len(ts) != 3 || ts[0].ID != 1 || ts[1].ID != 3 || ts[2].ID != 5 {
		ids := []int64{}
		for _, tw := range ts {
			ids = append(ids, tw.ID)
		}
		t.Fatalf("user 1 tweets = %v", ids)
	}
	if s.UserTweetCount(2) != 1 || s.UserTweetCount(99) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestUsersSorted(t *testing.T) {
	s := corpus()
	us := s.Users()
	if len(us) != 3 || us[0] != 1 || us[1] != 2 || us[2] != 3 {
		t.Fatalf("users = %v", us)
	}
}

func TestFilterByActivity(t *testing.T) {
	s := corpus()
	active := s.FilterByActivity(2, 0)
	if active.Stats().Users != 1 || active.Len() != 3 {
		t.Fatalf("active stats = %+v", active.Stats())
	}
	inactive := s.FilterByActivity(1, 1)
	if inactive.Stats().Users != 2 || inactive.Len() != 2 {
		t.Fatalf("inactive stats = %+v", inactive.Stats())
	}
}

func TestStats(t *testing.T) {
	s := corpus()
	st := s.Stats()
	if st.Tweets != 5 || st.Users != 3 || st.Mentions != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MentionsPerTweet != 0.6 {
		t.Fatalf("mentions/tweet = %f", st.MentionsPerTweet)
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewStore(nil)
	if s.Len() != 0 || s.MentionCount() != 0 {
		t.Fatal("empty store not empty")
	}
	st := s.Stats()
	if st.TweetsPerUser != 0 || st.MentionsPerTweet != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if got := s.ByUser(1); len(got) != 0 {
		t.Fatal("ByUser on empty store")
	}
}

func TestMentionTruthPreserved(t *testing.T) {
	s := corpus()
	tw := s.ByUser(1)[0]
	if tw.Mentions[1].Truth != kb.EntityID(1) {
		t.Fatalf("truth = %d", tw.Mentions[1].Truth)
	}
}
