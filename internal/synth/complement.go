package synth

import (
	"runtime"
	"sync"

	"microlink/internal/baseline"
	"microlink/internal/candidate"
	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// ComplementTruth builds a complemented knowledgebase by linking every
// mention of sub with its ground-truth entity — an oracle version of the
// offline knowledge-acquisition stage, useful for controlled experiments.
func (d *Dataset) ComplementTruth(sub *tweets.Store) *kb.Complemented {
	c := kb.Complement(d.KB)
	for _, tw := range sub.All() {
		for _, m := range tw.Mentions {
			if m.Truth != kb.NoEntity {
				c.Link(m.Truth, kb.Posting{Tweet: tw.ID, User: tw.User, Time: tw.Time})
			}
		}
	}
	return c
}

// ComplementCollective reproduces §3.2.1 faithfully: the collective linker
// [2] is run over every user of sub and its (imperfect) assignments
// populate the complemented knowledgebase. Mislinks on low-activity users
// introduce exactly the quality/coverage trade-off behind the D70→D50 dip
// of Fig. 4(b).
func (d *Dataset) ComplementCollective(sub *tweets.Store, cand *candidate.Index) *kb.Complemented {
	coll := baseline.NewCollective(d.KB, cand, sub, baseline.CollectiveOptions{})
	c := kb.Complement(d.KB)
	users := sub.Users()

	// Users are linked independently of each other, so the batch inference
	// fans out across a worker pool; the complemented KB serialises the
	// appends internally.
	workers := min(runtime.GOMAXPROCS(0), max(1, len(users)))
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(users) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				u := users[i]
				assigned := coll.LinkUser(u)
				for ti, tw := range sub.ByUser(u) {
					for mi := range tw.Mentions {
						if e := assigned[ti][mi]; e != kb.NoEntity {
							c.Link(e, kb.Posting{Tweet: tw.ID, User: tw.User, Time: tw.Time})
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return c
}

// ActivitySplit returns the activity-filtered corpus family of §5.1.2: for
// each threshold θ in thetas, the tweets of users with ≥ θ postings; plus
// the inactive-user test corpus (users with 1..testMax postings).
func (d *Dataset) ActivitySplit(thetas []int, testMax int) (active map[int]*tweets.Store, test *tweets.Store) {
	active = make(map[int]*tweets.Store, len(thetas))
	for _, th := range thetas {
		active[th] = d.Store.FilterByActivity(th, 0)
	}
	test = d.Store.FilterByActivity(1, testMax)
	return active, test
}
