package synth

import (
	"reflect"
	"testing"
)

func streamWorld() *Dataset {
	return Generate(Params{Seed: 11, Users: 200, Topics: 4, EntitiesPerTopic: 8, Days: 10})
}

func TestGenerateStreamDeterministic(t *testing.T) {
	d := streamWorld()
	a := GenerateStream(d, StreamParams{Seed: 3, Events: 400})
	b := GenerateStream(d, StreamParams{Seed: 3, Events: 400})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (world, params) produced different streams")
	}
	c := GenerateStream(d, StreamParams{Seed: 4, Events: 400})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different stream seeds produced identical streams")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	d := streamWorld()
	evs := GenerateStream(d, StreamParams{Seed: 3, Events: 1000, FollowFraction: 0.3, Hours: 2})
	if len(evs) != 1000 {
		t.Fatalf("len = %d, want 1000", len(evs))
	}
	horizon := d.Horizon()
	tweetsN, follows := 0, 0
	lastTime := int64(0)
	lastID := int64(0)
	for i, ev := range evs {
		if ev.Time <= horizon || ev.Time > horizon+2*3600 {
			t.Fatalf("event %d time %d outside (horizon, horizon+2h]", i, ev.Time)
		}
		if ev.Time < lastTime {
			t.Fatalf("event %d out of time order", i)
		}
		lastTime = ev.Time
		if ev.Tweet == nil {
			follows++
			if int(ev.U) >= d.Params.Users || int(ev.V) >= d.Params.Users || ev.U == ev.V {
				t.Fatalf("event %d: bad follow edge %d → %d", i, ev.U, ev.V)
			}
			continue
		}
		tweetsN++
		tw := ev.Tweet
		if tw.ID < StreamID || tw.ID <= lastID {
			t.Fatalf("event %d: tweet ID %d not increasing from stream base", i, tw.ID)
		}
		lastID = tw.ID
		if tw.Time != ev.Time {
			t.Fatalf("event %d: tweet time %d != event time %d", i, tw.Time, ev.Time)
		}
		if len(tw.Mentions) == 0 || tw.Mentions[0].Truth < 0 {
			t.Fatalf("event %d: tweet carries no ground-truth mention", i)
		}
	}
	// The follow mix is a Bernoulli draw; 0.3 ± generous slack.
	if follows < 200 || follows > 400 {
		t.Errorf("follow events = %d of 1000, want ≈300", follows)
	}
	if tweetsN+follows != 1000 {
		t.Errorf("tweets %d + follows %d != 1000", tweetsN, follows)
	}
}
