package synth

import (
	"math"
	"math/rand"
	"strings"

	"microlink/internal/graph"
	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// Event is a scheduled burst: a window in which extra postings about one
// entity are injected, standing in for the real-world events (NBA season,
// ICML week) that drive entity recency.
type Event struct {
	Entity     kb.EntityID
	Start, End int64 // unix seconds
}

// Dataset is one generated world: social graph, knowledgebase, tweet
// corpus with ground truth, and the burst-event schedule.
type Dataset struct {
	Params Params
	Graph  *graph.Graph
	KB     *kb.KB
	Store  *tweets.Store
	Events []Event

	// EntityTopic maps entity → topic cluster.
	EntityTopic []int
	// UserTopic maps user → primary topic.
	UserTopic []int
	// Broadcasters lists the designated high-activity discriminative
	// accounts per topic (the @NBAOfficial analogues).
	Broadcasters [][]kb.UserID
	// SurfacesOf lists each entity's surface forms, canonical first.
	SurfacesOf [][]string
}

// Horizon returns the end of the generated timeline (unix seconds); "now"
// for evaluation purposes.
func (d *Dataset) Horizon() int64 { return int64(d.Params.Days) * 86400 }

// categoryWeights follow the test-set distribution reported in
// Appendix C.1: Person 71.35%, Location 8.38%, Company 2.6%, Product
// 2.27%, Movie&Music 15.4%.
var categoryWeights = []float64{0.7135, 0.0838, 0.026, 0.0227, 0.154}

func sampleCategory(r *rand.Rand) kb.Category {
	x := r.Float64()
	for c, w := range categoryWeights {
		if x < w {
			return kb.Category(c)
		}
		x -= w
	}
	return kb.CategoryPerson
}

// Generate builds a Dataset from p. Generation is deterministic in
// p.Seed: identical parameters always produce the identical world.
func Generate(p Params) *Dataset {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))
	g := newWordGen(r)

	d := &Dataset{Params: p}
	nEnt := p.Topics * p.EntitiesPerTopic

	// --- Vocabularies ----------------------------------------------------
	// Each topic owns a small vocabulary, but tweet text is dominated by a
	// shared general vocabulary of daily-life chatter: the paper's premise
	// is that tweets are too short and unfocused for context similarity to
	// disambiguate reliably.
	vocab := make([][]string, p.Topics)
	for t := range vocab {
		vocab[t] = g.words(40)
	}
	general := g.words(250)

	// --- Entities ------------------------------------------------------
	kbb := kb.NewBuilder()
	d.EntityTopic = make([]int, nEnt)
	d.SurfacesOf = make([][]string, nEnt)
	entityOfTopic := make([][]kb.EntityID, p.Topics)
	for t := 0; t < p.Topics; t++ {
		for i := 0; i < p.EntitiesPerTopic; i++ {
			first, last := g.word(), g.word()
			ctx := make(map[string]float32, 15)
			for _, w := range pickDistinct(r, vocab[t], 12) {
				ctx[w] = 1
			}
			ctx[first] = 2
			ctx[last] = 2
			e := kbb.AddEntity(kb.Entity{
				Name:     first + " " + last,
				Category: sampleCategory(r),
				Context:  ctx,
			})
			d.EntityTopic[e] = t
			canonical := first + " " + last
			kbb.AddSurface(canonical, e)
			d.SurfacesOf[e] = []string{canonical}
			entityOfTopic[t] = append(entityOfTopic[t], e)
		}
	}

	// --- Ambiguous surface groups ---------------------------------------
	// Each shared surface maps to 2–5 entities drawn from *different*
	// topics: ambiguity is cross-topic ("jordan" → athlete, researcher,
	// country), which is exactly where social context disambiguates.
	groupSizeW := []float64{0.5, 0.3, 0.15, 0.05} // sizes 2..5
	coCand := make([][]kb.EntityID, nEnt)         // same-surface competitors
	for gi := 0; gi < p.AmbiguousSurfaces; gi++ {
		word := g.word()
		size := 2
		x := r.Float64()
		for s, w := range groupSizeW {
			if x < w {
				size = 2 + s
				break
			}
			x -= w
		}
		if size > p.Topics {
			size = p.Topics
		}
		var group []kb.EntityID
		for _, t := range pickDistinctInts(r, p.Topics, size) {
			e := entityOfTopic[t][r.Intn(len(entityOfTopic[t]))]
			kbb.AddSurface(word, e)
			d.SurfacesOf[e] = append(d.SurfacesOf[e], word)
			group = append(group, e)
		}
		for _, e := range group {
			for _, o := range group {
				if o != e {
					coCand[e] = append(coCand[e], o)
				}
			}
		}
	}

	// --- Hyperlinks ------------------------------------------------------
	// Dense intra-topic co-citation plus sparse cross-topic links: WLM is
	// high inside a topic, near zero across. Targets are Zipf-weighted by
	// in-topic rank, so the popular entities accumulate inlinks — the
	// commonness prior real linkers rely on.
	for e := 0; e < nEnt; e++ {
		t := d.EntityTopic[e]
		for _, to := range zipfDistinct(r, entityOfTopic[t], 8) {
			kbb.AddLink(kb.EntityID(e), to)
		}
		for i := 0; i < 1+r.Intn(2); i++ {
			kbb.AddLink(kb.EntityID(e), kb.EntityID(r.Intn(nEnt)))
		}
	}
	d.KB = kbb.Build()

	// --- Users -----------------------------------------------------------
	// The first Topics*B users are broadcasters (B per topic); everyone
	// else is a regular user with Pareto-distributed activity — most are
	// information seekers who tweet rarely or never but still follow.
	bPerTopic := max(2, p.Users/(p.Topics*25))
	nBroadcast := bPerTopic * p.Topics
	if nBroadcast > p.Users/2 {
		nBroadcast = p.Users / 2
		bPerTopic = max(1, nBroadcast/p.Topics)
		nBroadcast = bPerTopic * p.Topics
	}
	d.UserTopic = make([]int, p.Users)
	secondary := make([]int, p.Users) // -1 when absent
	activity := make([]int, p.Users)
	d.Broadcasters = make([][]kb.UserID, p.Topics)
	specialty := make([][]kb.EntityID, p.Users) // broadcasters only

	for u := 0; u < p.Users; u++ {
		if u < nBroadcast {
			t := u / bPerTopic
			b := u % bPerTopic
			d.UserTopic[u] = t
			secondary[u] = -1
			activity[u] = 150 + r.Intn(150)
			d.Broadcasters[t] = append(d.Broadcasters[t], kb.UserID(u))
			// Specialties partition the topic's entities round-robin, so
			// *every* entity has a discriminative broadcaster account —
			// the @NBAOfficial of its niche.
			for i := b; i < len(entityOfTopic[t]); i += bPerTopic {
				specialty[u] = append(specialty[u], entityOfTopic[t][i])
			}
			continue
		}
		d.UserTopic[u] = r.Intn(p.Topics)
		secondary[u] = -1
		if r.Float64() < 0.4 {
			if s := r.Intn(p.Topics); s != d.UserTopic[u] {
				secondary[u] = s
			}
		}
		// Pareto(x_m = 1, α): activity−1 so that most users post little.
		act := int(math.Pow(1-r.Float64(), -1/p.ActivityAlpha)) - 1
		if act > p.MaxActivity {
			act = p.MaxActivity
		}
		activity[u] = act
	}

	// Per-user entity affinities (the stable interests tweets draw from).
	affinity := make([][]kb.EntityID, p.Users)
	for u := 0; u < p.Users; u++ {
		if u < nBroadcast {
			affinity[u] = specialty[u]
			continue
		}
		aff := zipfDistinct(r, entityOfTopic[d.UserTopic[u]], min(6, p.EntitiesPerTopic))
		if s := secondary[u]; s >= 0 {
			aff = append(aff, zipfDistinct(r, entityOfTopic[s], min(3, p.EntitiesPerTopic))...)
		}
		affinity[u] = aff
	}

	// Topic membership lists for follow targeting.
	topicMembers := make([][]kb.UserID, p.Topics)
	for u := 0; u < p.Users; u++ {
		topicMembers[d.UserTopic[u]] = append(topicMembers[d.UserTopic[u]], kb.UserID(u))
	}

	// --- Follow edges ------------------------------------------------------
	// Interest is expressed through subscription: half of one's follows go
	// to broadcasters of one's topics, the rest to same-topic peers and a
	// sprinkle of random accounts.
	gb := graph.NewBuilder(p.Users)
	for u := 0; u < p.Users; u++ {
		nf := p.MeanFollows/2 + r.Intn(p.MeanFollows+1)
		for i := 0; i < nf; i++ {
			t := d.UserTopic[u]
			if s := secondary[u]; s >= 0 && r.Float64() < 0.25 {
				t = s
			}
			var v kb.UserID
			switch x := r.Float64(); {
			case x < 0.5 && len(d.Broadcasters[t]) > 0:
				v = d.Broadcasters[t][r.Intn(len(d.Broadcasters[t]))]
			case x < 0.85:
				v = topicMembers[t][r.Intn(len(topicMembers[t]))]
			default:
				v = kb.UserID(r.Intn(p.Users))
			}
			if v != kb.UserID(u) {
				gb.AddEdge(kb.UserID(u), v)
			}
		}
	}
	d.Graph = gb.Build()

	// --- Burst event schedule ---------------------------------------------
	// Scheduled before the stream so that regular tweeting can reference
	// the currently hot entity (off-profile mentions follow the news).
	horizon := int64(p.Days) * 86400
	for i := 0; i < p.BurstEvents; i++ {
		t := r.Intn(p.Topics)
		e := zipfDistinct(r, entityOfTopic[t], 1)[0]
		dur := int64(p.BurstDuration) * 3600
		start := int64(r.Float64() * float64(horizon-dur))
		d.Events = append(d.Events, Event{Entity: e, Start: start, End: start + dur})
	}
	activeEvent := func(ts int64) (kb.EntityID, bool) {
		// With several concurrent events, pick uniformly among the live
		// ones via reservoir sampling.
		var chosen kb.EntityID = kb.NoEntity
		n := 0
		for _, ev := range d.Events {
			if ts >= ev.Start && ts <= ev.End {
				n++
				if r.Intn(n) == 0 {
					chosen = ev.Entity
				}
			}
		}
		return chosen, n > 0
	}
	// activeEventIn reports a live burst entity from the given set.
	activeEventIn := func(ts int64, set []kb.EntityID) (kb.EntityID, bool) {
		for _, ev := range d.Events {
			if ts >= ev.Start && ts <= ev.End && containsEnt(set, ev.Entity) {
				return ev.Entity, true
			}
		}
		return kb.NoEntity, false
	}
	// hotEntity is the off-profile draw: the entity of a live burst when
	// one exists, otherwise a popularity-weighted global pick.
	hotEntity := func(ts int64) kb.EntityID {
		if e, ok := activeEvent(ts); ok && r.Float64() < 0.85 {
			return e
		}
		t := r.Intn(p.Topics)
		return zipfDistinct(r, entityOfTopic[t], 1)[0]
	}

	// --- Tweet stream --------------------------------------------------------
	var all []tweets.Tweet
	nextID := int64(1)
	emit := func(u int, ts int64, primary kb.EntityID, kind tweets.MentionKind) {
		tw := tweets.Tweet{ID: nextID, User: kb.UserID(u), Time: ts}
		nextID++
		nMentions := 1
		switch x := r.Float64(); {
		case x < 0.70:
			nMentions = 1
		case x < 0.95:
			nMentions = 2
		case x < 0.99:
			nMentions = 3
		default:
			nMentions = 4
		}
		ents := []kb.EntityID{primary}
		for len(ents) < nMentions {
			e := affinity[u][r.Intn(len(affinity[u]))]
			if !containsEnt(ents, e) {
				ents = append(ents, e)
			}
			if len(affinity[u]) <= len(ents) {
				break
			}
		}
		var words []string
		for _, e := range ents {
			surf := d.SurfacesOf[e][0]
			if len(d.SurfacesOf[e]) > 1 && r.Float64() < p.MentionAmbig {
				surf = d.SurfacesOf[e][1+r.Intn(len(d.SurfacesOf[e])-1)]
			}
			if r.Float64() < p.MisspellProb {
				surf = misspellPhrase(r, surf)
			}
			ctxWord := func() string {
				if r.Float64() < p.TopicWordProb {
					tv := vocab[d.EntityTopic[e]]
					return tv[r.Intn(len(tv))]
				}
				return general[r.Intn(len(general))]
			}
			mk := kind
			if e != primary {
				mk = tweets.KindProfile
			}
			words = append(words, ctxWord(), surf, ctxWord())
			tw.Mentions = append(tw.Mentions, tweets.Mention{Surface: surf, Truth: e, Kind: mk})
		}
		tw.Text = strings.Join(words, " ")
		all = append(all, tw)
	}

	for u := 0; u < p.Users; u++ {
		if len(affinity[u]) == 0 {
			continue
		}
		for i := 0; i < activity[u]; i++ {
			ts := int64(r.Float64() * float64(horizon))
			primary := affinity[u][r.Intn(len(affinity[u]))]
			// Even the most discriminative accounts occasionally post
			// off-specialty, and often about a *co-candidate* of their own
			// entity (§4.1.2's @NBAOfficial tweeting about Air Jordan) —
			// the incident that separates the entropy influence estimator
			// from the tf-idf one, which zeroes a user's influence once
			// she has touched every candidate of a mention.
			if u < nBroadcast && r.Float64() < 0.08 {
				e := kb.EntityID(r.Intn(nEnt))
				if r.Float64() < 0.6 {
					s := specialty[u][r.Intn(len(specialty[u]))]
					if len(coCand[s]) > 0 {
						e = coCand[s][r.Intn(len(coCand[s]))]
					}
				}
				emit(u, ts, e, tweets.KindChatter)
				continue
			}
			// Interests gravitate toward current events: when an entity
			// the author cares about is bursting, she is much more likely
			// to tweet about it (the paper's "Michael Jordan (basketball)
			// is more likely to be mentioned during NBA seasons").
			if e, ok := activeEventIn(ts, affinity[u]); ok && r.Float64() < 0.6 {
				primary = e
			}
			kind := tweets.KindProfile
			if u >= nBroadcast {
				switch x := r.Float64(); {
				case x < p.ChatterProb:
					primary = kb.EntityID(r.Intn(nEnt))
					kind = tweets.KindChatter
				case x < p.ChatterProb+p.OffProfileProb:
					primary = hotEntity(ts)
					kind = tweets.KindHot
				}
			}
			emit(u, ts, primary, kind)
		}
	}

	// --- Burst tweet injection ---------------------------------------------
	// Each event additionally concentrates extra postings about its entity
	// inside its window, mostly from same-topic users plus rubberneckers.
	// Authorship is weighted by activity: prolific accounts dominate event
	// coverage in real streams, which is what makes the burst visible in a
	// complemented KB built from active users.
	activitySampler := func(members []kb.UserID) func() int {
		cum := make([]float64, len(members))
		total := 0.0
		for i, u := range members {
			total += float64(activity[u] + 1)
			cum[i] = total
		}
		return func() int {
			x := r.Float64() * total
			i := 0
			for i < len(cum)-1 && cum[i] < x {
				i++
			}
			return int(members[i])
		}
	}
	topicSampler := make([]func() int, p.Topics)
	for t := range topicSampler {
		topicSampler[t] = activitySampler(topicMembers[t])
	}
	allUsers := make([]kb.UserID, p.Users)
	for i := range allUsers {
		allUsers[i] = kb.UserID(i)
	}
	anySampler := activitySampler(allUsers)
	for _, ev := range d.Events {
		t := d.EntityTopic[ev.Entity]
		dur := ev.End - ev.Start
		for j := 0; j < p.BurstTweets; j++ {
			// Events attract cross-community rubberneckers: most burst
			// postings come from outside the entity's own community (the
			// ML experts tweeting about MJ during the finals).
			var u int
			if r.Float64() < 0.4 {
				u = topicSampler[t]()
			} else {
				u = anySampler()
			}
			if len(affinity[u]) == 0 {
				continue
			}
			ts := ev.Start + int64(r.Float64()*float64(dur))
			emit(u, ts, ev.Entity, tweets.KindHot)
		}
	}

	d.Store = tweets.NewStore(all)
	return d
}

// zipfDistinct samples k distinct elements of s with probability
// ∝ 1/(i+2)^0.9 over positions i, so that low-index elements ("popular"
// entities) dominate while the tail stays reachable.
func zipfDistinct[T any](r *rand.Rand, s []T, k int) []T {
	if k >= len(s) {
		out := make([]T, len(s))
		copy(out, s)
		return out
	}
	cum := make([]float64, len(s))
	total := 0.0
	for i := range s {
		total += math.Pow(float64(i+2), -0.9)
		cum[i] = total
	}
	chosen := make(map[int]struct{}, k)
	out := make([]T, 0, k)
	for len(out) < k {
		x := r.Float64() * total
		i := 0
		for i < len(cum)-1 && cum[i] < x {
			i++
		}
		if _, dup := chosen[i]; dup {
			continue
		}
		chosen[i] = struct{}{}
		out = append(out, s[i])
	}
	return out
}

func containsEnt(s []kb.EntityID, e kb.EntityID) bool {
	for _, x := range s {
		if x == e {
			return true
		}
	}
	return false
}

// misspellPhrase misspells one word of a (possibly multi-word) surface.
func misspellPhrase(r *rand.Rand, phrase string) string {
	parts := strings.Split(phrase, " ")
	i := r.Intn(len(parts))
	parts[i] = misspell(r, parts[i])
	return strings.Join(parts, " ")
}

// pickDistinct samples k distinct elements from s (k ≤ len(s) enforced by
// truncation), preserving determinism.
func pickDistinct[T any](r *rand.Rand, s []T, k int) []T {
	if k >= len(s) {
		out := make([]T, len(s))
		copy(out, s)
		return out
	}
	idx := r.Perm(len(s))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// pickDistinctInts samples k distinct ints from [0, n).
func pickDistinctInts(r *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return r.Perm(n)[:k]
}
