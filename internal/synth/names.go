package synth

import (
	"math/rand"
	"strings"
)

// wordGen produces pronounceable, globally unique pseudo-words, used for
// topic vocabularies, entity names and surface forms. Uniqueness matters:
// a vocabulary word colliding with a surface form would corrupt ground
// truth, and cross-topic word reuse would blur the context signal.
type wordGen struct {
	r    *rand.Rand
	used map[string]struct{}
}

var (
	onsets = []string{"b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "sh", "st", "t", "tr", "v", "w", "z"}
	vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas  = []string{"", "", "", "n", "r", "s", "l", "m", "t", "k", "nd", "rn", "st"}
)

func newWordGen(r *rand.Rand) *wordGen {
	return &wordGen{r: r, used: make(map[string]struct{})}
}

// word returns a fresh unique word of 2–3 syllables.
func (g *wordGen) word() string {
	for {
		var b strings.Builder
		syllables := 2 + g.r.Intn(2)
		for i := 0; i < syllables; i++ {
			b.WriteString(onsets[g.r.Intn(len(onsets))])
			b.WriteString(vowels[g.r.Intn(len(vowels))])
			if i == syllables-1 {
				b.WriteString(codas[g.r.Intn(len(codas))])
			}
		}
		w := b.String()
		if _, dup := g.used[w]; !dup {
			g.used[w] = struct{}{}
			return w
		}
	}
}

// words returns n fresh unique words.
func (g *wordGen) words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.word()
	}
	return out
}

// misspell mutates one random position of w (substitute, delete or insert
// one ASCII letter), simulating the typos the fuzzy candidate index must
// absorb. Words of length ≤ 2 are returned unchanged.
func misspell(r *rand.Rand, w string) string {
	if len(w) <= 2 {
		return w
	}
	pos := r.Intn(len(w))
	switch r.Intn(3) {
	case 0: // substitute
		c := byte('a' + r.Intn(26))
		if c == w[pos] {
			c = byte('a' + (int(c-'a')+1)%26)
		}
		return w[:pos] + string(c) + w[pos+1:]
	case 1: // delete
		return w[:pos] + w[pos+1:]
	default: // insert
		c := byte('a' + r.Intn(26))
		return w[:pos] + string(c) + w[pos:]
	}
}
