package synth

import "testing"

func TestGenerateGraphDeterministic(t *testing.T) {
	a := GenerateGraph(GraphParams{Seed: 3, Users: 500})
	b := GenerateGraph(GraphParams{Seed: 3, Users: 500})
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatalf("nondeterministic: %d/%d edges", a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumNodes(); u++ {
		ao, bo := a.Out(int32(u)), b.Out(int32(u))
		if len(ao) != len(bo) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}

func TestGenerateGraphDefaults(t *testing.T) {
	g := GenerateGraph(GraphParams{Seed: 1})
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	st := g.Stats()
	if st.AvgDegree < 5 || st.AvgDegree > 25 {
		t.Fatalf("avg degree = %f", st.AvgDegree)
	}
	// Heavy tail: the max degree dwarfs the average (broadcaster hubs).
	if float64(st.MaxDegree) < 5*st.AvgDegree {
		t.Fatalf("max degree %d not hub-like vs avg %f", st.MaxDegree, st.AvgDegree)
	}
}

func TestGenerateGraphScalesLinearly(t *testing.T) {
	small := GenerateGraph(GraphParams{Seed: 9, Users: 1000, MeanFollows: 10})
	big := GenerateGraph(GraphParams{Seed: 9, Users: 4000, MeanFollows: 10})
	ratio := float64(big.NumEdges()) / float64(small.NumEdges())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("edge growth ratio = %f, want ≈4", ratio)
	}
}
