package synth

import (
	"math/rand"

	"microlink/internal/graph"
	"microlink/internal/kb"
)

// GraphParams configures the standalone social-graph generator used by the
// reachability scale experiments (Table 5, Fig. 5(b)), which need graphs
// much larger than a full world.
type GraphParams struct {
	Seed        int64
	Users       int // default 2000
	Topics      int // default max(4, Users/150)
	MeanFollows int // default 20
}

func (p *GraphParams) fill() {
	if p.Users <= 0 {
		p.Users = 2000
	}
	if p.Topics <= 0 {
		p.Topics = max(4, p.Users/150)
	}
	if p.MeanFollows <= 0 {
		p.MeanFollows = 20
	}
}

// GenerateGraph builds only the followee–follower network: the same
// community-plus-broadcaster structure as Generate, without the KB and the
// tweet stream. Deterministic in the seed.
func GenerateGraph(p GraphParams) *graph.Graph {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))

	bPerTopic := max(2, p.Users/(p.Topics*25))
	nBroadcast := bPerTopic * p.Topics
	if nBroadcast > p.Users/2 {
		bPerTopic = max(1, p.Users/2/p.Topics)
		nBroadcast = bPerTopic * p.Topics
	}
	userTopic := make([]int, p.Users)
	broadcasters := make([][]kb.UserID, p.Topics)
	topicMembers := make([][]kb.UserID, p.Topics)
	for u := 0; u < p.Users; u++ {
		var t int
		if u < nBroadcast {
			t = u / bPerTopic
			broadcasters[t] = append(broadcasters[t], kb.UserID(u))
		} else {
			t = r.Intn(p.Topics)
		}
		userTopic[u] = t
		topicMembers[t] = append(topicMembers[t], kb.UserID(u))
	}

	gb := graph.NewBuilder(p.Users)
	for u := 0; u < p.Users; u++ {
		nf := p.MeanFollows/2 + r.Intn(p.MeanFollows+1)
		t := userTopic[u]
		for i := 0; i < nf; i++ {
			var v kb.UserID
			switch x := r.Float64(); {
			case x < 0.5 && len(broadcasters[t]) > 0:
				v = broadcasters[t][r.Intn(len(broadcasters[t]))]
			case x < 0.85:
				v = topicMembers[t][r.Intn(len(topicMembers[t]))]
			default:
				v = kb.UserID(r.Intn(p.Users))
			}
			if v != kb.UserID(u) {
				gb.AddEdge(kb.UserID(u), v)
			}
		}
	}
	return gb.Build()
}
