// Package synth generates the synthetic substitute for the paper's
// proprietary data (see DESIGN.md §3): a community-structured
// followee–follower network, a Wikipedia-like knowledgebase with ambiguous
// surface forms and clustered hyperlinks, and a timestamped tweet stream
// with known ground truth and scheduled burst events.
//
// The generative model preserves the properties the paper's algorithms
// rely on:
//
//   - users have stable topical interests expressed primarily through who
//     they follow (information seekers follow but rarely tweet);
//   - each topic has a few high-degree "broadcaster" accounts that tweet
//     prolifically and discriminatively about specific entities (the
//     @NBAOfficial pattern that makes influence detection work);
//   - surface forms are ambiguous *across* topics, so context-free priors
//     fail exactly where social context helps;
//   - hyperlinks co-cite same-topic entities, giving WLM its cluster
//     structure; and
//   - burst events concentrate postings about one entity in a short
//     window, feeding the recency feature.
package synth

// Params configures the generator. Zero values select defaults sized for a
// laptop-scale run (~2k users, ~600 entities, ~100k tweets).
type Params struct {
	Seed int64

	// Social graph.
	Users       int // default 2000
	MeanFollows int // average out-degree, default 20

	// Knowledgebase.
	Topics            int // default 20
	EntitiesPerTopic  int // default 30
	AmbiguousSurfaces int // number of shared surface forms, default Topics*EntitiesPerTopic/5

	// Tweet stream.
	Days          int     // timeline length, default 120
	ActivityAlpha float64 // Pareto tail exponent of tweets-per-user, default 0.8
	MaxActivity   int     // activity cap per regular user, default 300
	MentionAmbig  float64 // probability a mention uses an ambiguous surface, default 0.6
	MisspellProb  float64 // probability a mention is misspelled, default 0.03
	// TopicWordProb is the probability that a context word around a
	// mention comes from the entity's topic vocabulary rather than the
	// general one (default 0.2). Low values reproduce the paper's premise
	// that tweets are too short and noisy for context similarity to work.
	TopicWordProb float64
	// OffProfileProb is the probability that a mention refers to a
	// globally hot entity instead of one from the author's own interests
	// (default 0.12) — the paper's observation that even machine-learning
	// experts sometimes tweet about Michael Jordan (basketball). During a
	// burst event the hot entity is the event's entity, which is what
	// makes recency informative; otherwise it is a popularity-weighted
	// draw.
	OffProfileProb float64
	// ChatterProb is the probability that a mention is daily-life chatter:
	// a uniformly random entity unrelated to the author's interests or to
	// current events (default 0.22). Chatter is the reason the paper
	// distrusts tweet-history interest models — "the topics of users'
	// tweets vary significantly" — it pollutes history-based inference
	// while leaving the followee–follower signal untouched.
	ChatterProb float64

	// Burst events.
	BurstEvents   int // default = Topics
	BurstTweets   int // extra tweets injected per event, default 40
	BurstDuration int // event length in hours, default 36
}

func (p *Params) fill() {
	if p.Users <= 0 {
		p.Users = 2000
	}
	if p.MeanFollows <= 0 {
		p.MeanFollows = 20
	}
	if p.Topics <= 0 {
		p.Topics = 20
	}
	if p.EntitiesPerTopic <= 0 {
		p.EntitiesPerTopic = 30
	}
	if p.AmbiguousSurfaces <= 0 {
		p.AmbiguousSurfaces = p.Topics * p.EntitiesPerTopic / 5
	}
	if p.Days <= 0 {
		p.Days = 120
	}
	if p.ActivityAlpha <= 0 {
		p.ActivityAlpha = 0.8
	}
	if p.MaxActivity <= 0 {
		p.MaxActivity = 300
	}
	if p.MentionAmbig <= 0 {
		p.MentionAmbig = 0.6
	}
	if p.MisspellProb < 0 {
		p.MisspellProb = 0
	} else if p.MisspellProb == 0 {
		p.MisspellProb = 0.03
	}
	if p.TopicWordProb <= 0 {
		p.TopicWordProb = 0.2
	}
	if p.BurstEvents <= 0 {
		p.BurstEvents = 6 * p.Topics
	}
	if p.BurstTweets <= 0 {
		p.BurstTweets = 60
	}
	if p.BurstDuration <= 0 {
		p.BurstDuration = 36
	}
	if p.OffProfileProb <= 0 {
		p.OffProfileProb = 0.15
	}
	if p.ChatterProb <= 0 {
		p.ChatterProb = 0.22
	}
}
