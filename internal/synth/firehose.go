package synth

import (
	"math/rand"
	"sort"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// StreamParams tunes GenerateStream. The zero value selects all
// defaults.
type StreamParams struct {
	// Seed makes the stream deterministic independently of the world's
	// seed, so the same world can be driven by different streams.
	Seed int64
	// Events is the total number of stream events. ≤ 0 selects 5000.
	Events int
	// FollowFraction is the fraction of events that are follow-edge
	// insertions (the rest are tweets). ≤ 0 selects 0.2; values ≥ 1 are
	// clamped to 0.9 so the stream always carries some tweets.
	FollowFraction float64
	// Hours is the stream's span past the world horizon. ≤ 0 selects 1.
	Hours int
}

// StreamID is the tweet-ID base of generated stream tweets, far above
// any corpus tweet ID so streamed tweets never collide with the frozen
// store.
const StreamID int64 = 1 << 40

// StreamEvent is one firehose item: a posted tweet (Tweet != nil) or a
// new follow edge U → V (Tweet == nil). Events are time-sorted.
type StreamEvent struct {
	Time  int64
	Tweet *tweets.Tweet
	U, V  kb.UserID
}

// GenerateStream derives a synthetic firehose from a generated world: a
// time-sorted mix of tweets (authored on-profile, with ambiguous surface
// forms at the world's ambiguity rate) and follow-edge churn (biased
// toward each topic's broadcasters, mirroring the static generator's
// attachment rule). The stream covers (Horizon, Horizon+Hours·3600] and
// is bursty: a third of the tweets land inside three ten-minute hot
// windows, standing in for the event-driven spikes a real firehose
// carries. Deterministic in (d, p).
func GenerateStream(d *Dataset, p StreamParams) []StreamEvent {
	if p.Events <= 0 {
		p.Events = 5000
	}
	if p.FollowFraction <= 0 {
		p.FollowFraction = 0.2
	}
	if p.FollowFraction >= 1 {
		p.FollowFraction = 0.9
	}
	if p.Hours <= 0 {
		p.Hours = 1
	}
	r := rand.New(rand.NewSource(p.Seed ^ 0x5ee0f1e5))
	users := d.Params.Users
	span := int64(p.Hours) * 3600
	start := d.Horizon()

	// Per-topic entity lists, derived from the stored topic map.
	entityOfTopic := make([][]kb.EntityID, d.Params.Topics)
	for e, t := range d.EntityTopic {
		entityOfTopic[t] = append(entityOfTopic[t], kb.EntityID(e))
	}

	// Three hot windows of ten minutes each, non-overlapping thirds.
	burst := make([]int64, 3)
	for i := range burst {
		third := span / 3
		burst[i] = start + int64(i)*third + r.Int63n(max(third-600, 1))
	}
	tweetTime := func() int64 {
		if r.Float64() < 1.0/3 {
			w := burst[r.Intn(len(burst))]
			return w + r.Int63n(600)
		}
		return start + 1 + r.Int63n(span)
	}

	out := make([]StreamEvent, 0, p.Events)
	for i := 0; i < p.Events; i++ {
		if r.Float64() < p.FollowFraction {
			// Follow churn: preferential attachment toward the follower's
			// topic broadcasters, like the static graph generator.
			u := r.Intn(users)
			t := d.UserTopic[u]
			var v kb.UserID
			if len(d.Broadcasters[t]) > 0 && r.Float64() < 0.6 {
				v = d.Broadcasters[t][r.Intn(len(d.Broadcasters[t]))]
			} else {
				v = kb.UserID(r.Intn(users))
			}
			if v == kb.UserID(u) {
				v = kb.UserID((u + 1) % users)
			}
			out = append(out, StreamEvent{
				Time: start + 1 + r.Int63n(span),
				U:    kb.UserID(u), V: v,
			})
			continue
		}
		u := r.Intn(users)
		ents := entityOfTopic[d.UserTopic[u]]
		e := ents[r.Intn(len(ents))]
		surf := d.SurfacesOf[e][0]
		if len(d.SurfacesOf[e]) > 1 && r.Float64() < d.Params.MentionAmbig {
			surf = d.SurfacesOf[e][1+r.Intn(len(d.SurfacesOf[e])-1)]
		}
		tw := &tweets.Tweet{
			User: kb.UserID(u),
			Time: tweetTime(),
			Text: "streamed take on " + surf,
			Mentions: []tweets.Mention{
				{Surface: surf, Truth: e, Kind: tweets.KindProfile},
			},
		}
		out = append(out, StreamEvent{Time: tw.Time, Tweet: tw})
	}

	// Time-sort (stable on the generation sequence for equal stamps),
	// then stamp tweet IDs in stream order so IDs grow with time.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	id := StreamID
	for i := range out {
		if out[i].Tweet != nil {
			out[i].Tweet.ID = id
			id++
		}
	}
	return out
}
