package synth

import (
	"math/rand"
	"testing"

	"microlink/internal/candidate"
	"microlink/internal/kb"
)

func smallParams(seed int64) Params {
	return Params{
		Seed: seed, Users: 300, Topics: 6, EntitiesPerTopic: 10,
		MeanFollows: 12, Days: 30, BurstEvents: 4, BurstTweets: 25,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams(1))
	b := Generate(smallParams(1))
	if a.Store.Len() != b.Store.Len() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("nondeterministic: %d/%d tweets, %d/%d edges",
			a.Store.Len(), b.Store.Len(), a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for i := 0; i < a.Store.Len(); i++ {
		x, y := a.Store.At(i), b.Store.At(i)
		if x.ID != y.ID || x.Text != y.Text || x.User != y.User {
			t.Fatalf("tweet %d differs", i)
		}
	}
	c := Generate(smallParams(2))
	if c.Store.Len() == a.Store.Len() && c.Graph.NumEdges() == a.Graph.NumEdges() {
		t.Fatal("different seeds produced identical worlds (suspicious)")
	}
}

func TestGroundTruthConsistent(t *testing.T) {
	d := Generate(smallParams(3))
	cand := candidate.NewIndex(d.KB, candidate.Options{MaxEdit: 1})
	misspelled := 0
	for _, tw := range d.Store.All() {
		for _, m := range tw.Mentions {
			if m.Truth == kb.NoEntity {
				t.Fatal("generator must always know the truth")
			}
			// The truth must be reachable through candidate generation
			// (exactly or via the fuzzy index for misspelled surfaces).
			found := false
			for _, c := range cand.Candidates(m.Surface) {
				if c.Entity == m.Truth {
					found = true
					break
				}
			}
			if !found {
				if d.KB.HasSurface(m.Surface) {
					t.Fatalf("surface %q resolves but not to truth %d", m.Surface, m.Truth)
				}
				misspelled++
				continue
			}
			if !d.KB.HasSurface(m.Surface) {
				misspelled++
			}
		}
	}
	total := d.Store.MentionCount()
	if misspelled > total/5 {
		t.Fatalf("%d/%d mentions unresolvable — misspelling rate too destructive", misspelled, total)
	}
}

func TestAmbiguityExists(t *testing.T) {
	d := Generate(smallParams(4))
	ambiguous := 0
	d.KB.EachSurface(func(_ string, cands []kb.EntityID) {
		if len(cands) > 1 {
			ambiguous++
		}
	})
	if ambiguous < 5 {
		t.Fatalf("only %d ambiguous surfaces", ambiguous)
	}
}

func TestTopicClusteredWLM(t *testing.T) {
	d := Generate(smallParams(5))
	r := rand.New(rand.NewSource(1))
	n := d.KB.NumEntities()
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 3000; i++ {
		a, b := kb.EntityID(r.Intn(n)), kb.EntityID(r.Intn(n))
		if a == b {
			continue
		}
		rel := d.KB.Relatedness(a, b)
		if d.EntityTopic[a] == d.EntityTopic[b] {
			intra += rel
			nIntra++
		} else {
			inter += rel
			nInter++
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("sample too small")
	}
	if intra/float64(nIntra) <= 2*inter/float64(nInter) {
		t.Fatalf("intra-topic WLM %.4f not well above inter-topic %.4f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestFollowGraphEncodesInterest(t *testing.T) {
	d := Generate(smallParams(6))
	// Users should follow same-topic accounts far more often than chance.
	same, total := 0, 0
	for u := 0; u < d.Graph.NumNodes(); u++ {
		for _, v := range d.Graph.Out(int32(u)) {
			total++
			if d.UserTopic[u] == d.UserTopic[v] {
				same++
			}
		}
	}
	if total == 0 {
		t.Fatal("no edges")
	}
	frac := float64(same) / float64(total)
	if frac < 0.5 {
		t.Fatalf("same-topic follow fraction = %.3f, want ≥ 0.5", frac)
	}
}

func TestBroadcastersAreHubs(t *testing.T) {
	d := Generate(smallParams(7))
	var bIn, rIn, nB, nR int
	isB := make(map[kb.UserID]bool)
	for _, bs := range d.Broadcasters {
		for _, b := range bs {
			isB[b] = true
		}
	}
	for u := 0; u < d.Graph.NumNodes(); u++ {
		if isB[kb.UserID(u)] {
			bIn += d.Graph.InDegree(int32(u))
			nB++
		} else {
			rIn += d.Graph.InDegree(int32(u))
			nR++
		}
	}
	if nB == 0 || nR == 0 {
		t.Fatal("missing user classes")
	}
	if float64(bIn)/float64(nB) < 5*float64(rIn)/float64(nR) {
		t.Fatalf("broadcaster avg in-degree %.1f not ≫ regular %.1f",
			float64(bIn)/float64(nB), float64(rIn)/float64(nR))
	}
}

func TestActivityHeavyTailed(t *testing.T) {
	d := Generate(Params{Seed: 8, Users: 2000, Topics: 8, EntitiesPerTopic: 10, Days: 30})
	inactive, active90 := 0, 0
	for _, u := range d.Store.Users() {
		n := d.Store.UserTweetCount(u)
		if n < 10 {
			inactive++
		}
		if n >= 90 {
			active90++
		}
	}
	// Users with zero tweets don't appear in Store.Users(); they are also
	// information seekers.
	silent := 2000 - len(d.Store.Users())
	if silent+inactive < 500 {
		t.Fatalf("only %d low-activity users; tail not heavy enough", silent+inactive)
	}
	if active90 < 10 {
		t.Fatalf("only %d users with ≥90 tweets; D90 analogue impossible", active90)
	}
}

func TestBurstEventsCreateWindows(t *testing.T) {
	d := Generate(smallParams(9))
	if len(d.Events) != 4 {
		t.Fatalf("events = %d", len(d.Events))
	}
	c := d.ComplementTruth(d.Store)
	for _, ev := range d.Events {
		inWindow := 0
		for _, p := range c.Postings(ev.Entity) {
			if p.Time >= ev.Start && p.Time <= ev.End {
				inWindow++
			}
		}
		if inWindow < d.Params.BurstTweets/2 {
			t.Fatalf("event %+v produced only %d postings in window", ev, inWindow)
		}
	}
}

func TestComplementTruthCounts(t *testing.T) {
	d := Generate(smallParams(10))
	c := d.ComplementTruth(d.Store)
	if int(c.TotalCount()) != d.Store.MentionCount() {
		t.Fatalf("postings %d != mentions %d", c.TotalCount(), d.Store.MentionCount())
	}
}

func TestComplementCollectiveImperfect(t *testing.T) {
	d := Generate(smallParams(11))
	cand := candidate.NewIndex(d.KB, candidate.Options{MaxEdit: 1})
	sub := d.Store.FilterByActivity(10, 0)
	if sub.Len() == 0 {
		t.Skip("no active users in this small world")
	}
	c := d.ComplementCollective(sub, cand)
	if c.TotalCount() == 0 {
		t.Fatal("collective complementation linked nothing")
	}
	// It should link most mentions (some may be unlinkable after typos).
	if float64(c.TotalCount()) < 0.8*float64(sub.MentionCount()) {
		t.Fatalf("linked %d of %d mentions", c.TotalCount(), sub.MentionCount())
	}
}

func TestActivitySplit(t *testing.T) {
	d := Generate(smallParams(12))
	active, test := d.ActivitySplit([]int{10, 30}, 9)
	if len(active) != 2 {
		t.Fatal("split sizes")
	}
	if active[30].Len() > active[10].Len() {
		t.Fatal("θ=30 corpus cannot exceed θ=10 corpus")
	}
	for _, u := range test.Users() {
		if n := test.UserTweetCount(u); n > 9 {
			t.Fatalf("test user with %d tweets", n)
		}
	}
}

func TestHorizon(t *testing.T) {
	d := Generate(smallParams(13))
	if d.Horizon() != int64(30)*86400 {
		t.Fatalf("horizon = %d", d.Horizon())
	}
	for _, tw := range d.Store.All() {
		if tw.Time < 0 || tw.Time > d.Horizon() {
			t.Fatalf("tweet outside timeline: %d", tw.Time)
		}
	}
}

func TestCategoriesCovered(t *testing.T) {
	d := Generate(Params{Seed: 14, Users: 100, Topics: 10, EntitiesPerTopic: 40, Days: 10})
	counts := make(map[kb.Category]int)
	for e := 0; e < d.KB.NumEntities(); e++ {
		counts[d.KB.Entity(kb.EntityID(e)).Category]++
	}
	if len(counts) < kb.NumCategories {
		t.Fatalf("categories seen = %v", counts)
	}
	if counts[kb.CategoryPerson] < counts[kb.CategoryProduct] {
		t.Fatal("Person should dominate per Appendix C.1 weights")
	}
}
