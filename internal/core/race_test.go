package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"microlink/internal/candidate"
	"microlink/internal/graph"
	"microlink/internal/influence"
	"microlink/internal/kb"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/tweets"
)

// raceFixture is a denser world than the running example: 64 users on a
// ring-with-chords graph over a dynamic closure, 12 entities behind 6
// ambiguous surfaces, and enough seed postings that every entity has a
// community. It exercises the full dynamic configuration: LinkBatch racing
// Feedback (KB + cache writes) and edge insertions (reachability writes).
type raceFixture struct {
	ckb  *kb.Complemented
	cand *candidate.Index
	dc   *reach.DynamicClosure
	inf  *influence.Estimator
	rec  *recency.Scorer
}

func newRaceFixture() *raceFixture {
	const users, entities = 64, 12
	b := kb.NewBuilder()
	for e := 0; e < entities; e++ {
		b.AddEntity(kb.Entity{Name: fmt.Sprintf("entity-%d", e)})
		b.AddSurface(fmt.Sprintf("s%d", e/2), kb.EntityID(e)) // s0..s5, 2 candidates each
	}
	// Co-linking articles so the recency propagation net is non-trivial.
	for a := 0; a < 6; a++ {
		id := b.AddEntity(kb.Entity{Name: "article"})
		b.AddLink(id, kb.EntityID(2*a%entities))
		b.AddLink(id, kb.EntityID((2*a+3)%entities))
	}
	k := b.Build()

	ckb := kb.Complement(k)
	id := int64(0)
	for e := 0; e < entities; e++ {
		for i := 0; i < 8; i++ {
			id++
			ckb.Link(kb.EntityID(e), kb.Posting{
				Tweet: id, User: kb.UserID((e*7 + i*5) % users), Time: int64(50 + i),
			})
		}
	}

	gb := graph.NewBuilder(users)
	for u := 0; u < users; u++ {
		gb.AddEdge(kb.UserID(u), kb.UserID((u+1)%users))
		gb.AddEdge(kb.UserID(u), kb.UserID((u+9)%users))
	}
	g := gb.Build()

	return &raceFixture{
		ckb:  ckb,
		cand: candidate.NewIndex(k, candidate.Options{MaxEdit: 1}),
		dc:   reach.NewDynamicClosure(g, 3),
		inf:  influence.New(ckb, influence.Entropy),
		rec:  recency.NewScorer(ckb, recency.BuildPropNet(k, 0.3), recency.Options{Tau: 100, Theta1: 3}),
	}
}

func (f *raceFixture) linker(cfg Config) *Linker {
	return New(f.ckb, f.cand, f.dc, f.inf, f.rec, cfg)
}

// TestLinkBatchRaceWithFeedbackAndFollow is the -race stress test for the
// batch pipeline: batch scorers hammer LinkBatch while one writer streams
// Feedback (complemented-KB appends + influence/interest cache
// invalidation) and another inserts follow edges through
// UpdateReachability (dynamic-closure repair + global cache flush). After
// the dust settles, a rescore through the cached linker must agree
// exactly with a cache-disabled linker over the same mutated substrates —
// any surviving stale entry (a missed invalidation, or a torn read cached
// mid-update) would show up as a divergence.
func TestLinkBatchRaceWithFeedbackAndFollow(t *testing.T) {
	f := newRaceFixture()
	l := f.linker(Config{Batch: BatchOptions{Workers: 4}})

	queries := make([]MentionQuery, 0, 48)
	for i := 0; i < 48; i++ {
		queries = append(queries, MentionQuery{
			User:    kb.UserID((i * 11) % 64),
			Now:     100,
			Surface: fmt.Sprintf("s%d", i%6),
		})
	}

	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, br := range l.LinkBatch(context.Background(), queries) {
					if br.Err != nil {
						t.Errorf("worker %d round %d query %d: %v", w, r, i, br.Err)
						return
					}
					if len(br.Scored) > 0 && br.Entity != br.Scored[0].Entity {
						t.Errorf("worker %d round %d query %d: torn result %+v", w, r, i, br)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // feedback writer
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			tw := &tweets.Tweet{
				ID: int64(10000 + r), User: kb.UserID(r % 64), Time: int64(100 + r),
				Mentions: []tweets.Mention{{Surface: fmt.Sprintf("s%d", r%6)}},
			}
			l.Feedback(tw, []kb.EntityID{kb.EntityID(r % 12)})
		}
	}()
	wg.Add(1)
	go func() { // follow writer: new chords, never duplicating seed edges
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			u := kb.UserID((r * 13) % 64)
			v := kb.UserID((r*13 + 17 + r%3) % 64)
			if u != v {
				l.UpdateReachability(func() { f.dc.InsertEdge(u, v) })
			}
		}
	}()
	wg.Wait()

	// Invalidation must have been observed: the cached linker now agrees
	// with a fresh cache-free linker over the same mutated substrates.
	fresh := f.linker(Config{Batch: BatchOptions{DisableInterestCache: true}})
	for _, q := range queries {
		got := l.ScoreCandidates(q.User, q.Now, q.Surface)
		want := fresh.ScoreCandidates(q.User, q.Now, q.Surface)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d vs %d candidates", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Entity != want[i].Entity || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
				t.Fatalf("%+v cand %d: cached %+v != fresh %+v (stale cache entry)", q, i, got[i], want[i])
			}
		}
	}
}
